"""The embedded realistic mini-C corpus, end to end."""

import pytest

from repro.analysis import Andersen, Steensgaard, execute, whole_program_fscs
from repro.applications import RaceDetector, lock_pointers
from repro.bench import sources
from repro.core import BootstrapAnalyzer, run_cascade
from repro.ir import AllocSite, Loc, Var


@pytest.fixture(scope="module")
def programs():
    return {name: sources.load(name) for name in sources.names()}


class TestParsing:
    def test_all_sources_parse(self, programs):
        assert set(programs) == set(sources.names())
        for name, prog in programs.items():
            assert prog.counts()["pointer_assignments"] > 5, name

    @pytest.mark.parametrize("name", sources.names())
    def test_cascade_runs(self, programs, name):
        result = run_cascade(programs[name])
        covered = set()
        for c in result.clusters:
            covered |= c.members
        assert covered >= programs[name].pointers

    @pytest.mark.parametrize("name", sources.names())
    def test_oracle_soundness(self, programs, name):
        prog = programs[name]
        orc = execute(prog, max_steps=600, max_paths=1500)
        an = Andersen(prog).run()
        for p in prog.pointers:
            assert orc.points_to(p) <= an.points_to(p), f"{name}: {p}"


class TestCharDevice:
    def test_buffers_are_distinct_allocations(self, programs):
        an = Andersen(programs["char_device"]).run()
        rx = an.points_to(Var("cdev__rx_buf"))
        tx = an.points_to(Var("cdev__tx_buf"))
        assert rx and tx and not (rx & tx)

    def test_lock_is_definite(self, programs):
        an = Andersen(programs["char_device"]).run()
        assert an.points_to(Var("cdev__lock")) == \
            frozenset({Var("cdev_lock_obj")})

    def test_race_free_under_lock(self, programs):
        warnings = RaceDetector(programs["char_device"],
                                ["cdev_read", "cdev_write"]).run()
        assert not any("open_count" in str(w) for w in warnings)


class TestFopsDispatch:
    def test_indirect_calls_resolved(self, programs):
        from repro.ir import CallStmt
        prog = programs["fops_dispatch"]
        indirect = [s for _, s in prog.statements()
                    if isinstance(s, CallStmt) and s.is_indirect]
        assert indirect
        opens = [s for s in indirect
                 if set(s.targets) >= {"mem_open", "null_open"}]
        assert opens

    def test_private_data_smears_over_table(self, programs):
        an = Andersen(programs["fops_dispatch"]).run()
        out = an.points_to(Var("data", "mem_read"))
        assert Var("storage_a") in out


class TestSlabCache:
    def test_free_list_holds_heap_nodes(self, programs):
        an = Andersen(programs["slab_cache"]).run()
        pts = an.points_to(Var("free_list"))
        assert pts and all(isinstance(o, AllocSite) for o in pts)

    def test_payload_reaches_main(self, programs):
        an = Andersen(programs["slab_cache"]).run()
        data = an.points_to(Var("data", "main"))
        assert data and all(isinstance(o, AllocSite) for o in data)


class TestEventQueue:
    def test_deliberate_race_found(self, programs):
        warnings = RaceDetector(programs["event_queue"],
                                ["producer", "consumer"]).run()
        assert any("processed_count" in str(w) for w in warnings)

    def test_locked_counter_clean(self, programs):
        warnings = RaceDetector(programs["event_queue"],
                                ["producer", "consumer"]).run()
        assert not any("pending_count" in str(w) for w in warnings)

    def test_arg_points_to_payload(self, programs):
        an = Andersen(programs["event_queue"]).run()
        assert Var("payload_cell") in an.points_to(Var("arg", "consumer"))


class TestStringTable:
    def test_interned_key_flows_back(self, programs):
        prog = programs["string_table"]
        an = Andersen(prog).run()
        pts = an.points_to(Var("k", "main"))
        assert Var("key_a") in pts

    def test_fscs_query(self, programs):
        prog = programs["string_table"]
        boot = BootstrapAnalyzer(prog).run()
        end = Loc("main", prog.cfg_of("main").exit)
        pts = boot.points_to(Var("k", "main"), end)
        assert Var("key_a") in pts


class TestRingBuffer:
    def test_popped_items_cover_pushes(self, programs):
        an = Andersen(programs["ring_buffer"]).run()
        assert an.points_to(Var("first", "main")) == \
            frozenset({Var("item_a"), Var("item_b")})

    def test_drained_pop_may_be_null(self, programs):
        """The NULL path: assume `drained != NULL` guards the store."""
        from repro.analysis import execute
        prog = programs["ring_buffer"]
        orc = execute(prog, max_steps=800, max_paths=3000)
        an = Andersen(prog).run()
        for p in prog.pointers:
            assert orc.points_to(p) <= an.points_to(p), str(p)

    def test_watermark_callbacks_resolved(self, programs):
        from repro.ir import CallStmt
        prog = programs["ring_buffer"]
        indirect = [s for _, s in prog.statements()
                    if isinstance(s, CallStmt) and s.is_indirect]
        targets = {t for s in indirect for t in s.targets}
        assert {"note_full", "note_empty"} <= targets


class TestProtoFsm:
    def test_handler_table_resolved(self, programs):
        from repro.ir import CallStmt
        prog = programs["proto_fsm"]
        indirect = [s for _, s in prog.statements()
                    if isinstance(s, CallStmt) and s.is_indirect]
        targets = {t for s in indirect for t in s.targets}
        assert {"h_idle", "h_open", "h_closed"} <= targets

    def test_error_objects_flow_out(self, programs):
        an = Andersen(programs["proto_fsm"]).run()
        errs = an.points_to(Var("e3", "main"))
        assert Var("err_closed") in errs

    def test_rx_points_to_inbox(self, programs):
        an = Andersen(programs["proto_fsm"]).run()
        # rx is set through the conn pointer in h_idle.
        summary = an.points_to(Var("$fld$conn$rx"))
        rx_targets = set()
        for cell in summary:
            rx_targets |= set(an.points_to_obj(cell))
        direct = an.points_to(Var("c__rx", "main"))
        assert Var("inbox") in (rx_targets | set(direct))

"""Fault-tolerant execution and graceful degradation.

The resilience contract: any per-cluster failure — worker crash, hang,
corrupted result, blown budget — is isolated to that cluster and, under
a degrading :class:`RunPolicy`, converted into a *sound* coarser outcome
from further down the bootstrap cascade (FSCI -> Andersen -> Steensgaard)
tagged with the precision level actually achieved.  The differential
classes pin the soundness half: for every corpus program, every degraded
points-to set is a superset of the clean run's set for the same cluster.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.bench import corpus_configs, generate
from repro.core import (
    BootstrapAnalyzer,
    BootstrapConfig,
    CascadeConfig,
    CircuitBreaker,
    ClusterExecutionError,
    FaultSpec,
    RunPolicy,
    SummaryCache,
    coarsest,
    degrade_ladder,
    degraded_outcome,
    is_degraded,
    parse_fault_arg,
    validate_outcome,
)
from repro.core.faults import corrupt_outcome
from repro.core.resilience import (
    DEFAULT_POLICY,
    error_marker,
    is_error_marker,
    raise_marker,
)
from repro.errors import AnalysisBudgetExceeded

from .helpers import figure5_program

#: Small enough that corpus-wide degradation stays CI-friendly.
SCALE = 0.004

CORPUS_NAMES = [cfg.name for cfg in corpus_configs(scale=SCALE)]

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def _fresh(program, **kw):
    config = BootstrapConfig(
        cascade=CascadeConfig(andersen_threshold=6), **kw)
    return BootstrapAnalyzer(program, config).run()


def _assert_superset(clean_outcome, degraded_outcome_):
    clean_pts = clean_outcome["points_to"]
    degr_pts = degraded_outcome_["points_to"]
    assert set(degr_pts) == set(clean_pts)
    for name, objs in clean_pts.items():
        assert set(objs) <= set(degr_pts[name]), name


# ----------------------------------------------------------------------
# policy mechanics
# ----------------------------------------------------------------------

class TestRunPolicy:
    def test_delay_is_deterministic(self):
        pol = RunPolicy()
        assert pol.delay(2, key="7") == pol.delay(2, key="7")

    def test_delay_jitter_decorrelates_clusters(self):
        pol = RunPolicy()
        delays = {pol.delay(2, key=str(i)) for i in range(16)}
        assert len(delays) > 1

    def test_delay_grows_and_caps(self):
        pol = RunPolicy(backoff=0.1, backoff_factor=2.0, jitter=0.0,
                        max_backoff=0.5)
        assert pol.delay(2) == pytest.approx(0.1)
        assert pol.delay(3) == pytest.approx(0.2)
        assert pol.delay(10) == pytest.approx(0.5)  # capped

    def test_future_timeout_backstop(self):
        pol = RunPolicy(cluster_timeout=None, hard_timeout=123.0)
        assert pol.future_timeout(50) == 123.0

    def test_future_timeout_scales_with_batch(self):
        pol = RunPolicy(cluster_timeout=2.0, grace=1.0)
        assert pol.future_timeout(1) == pytest.approx(5.0)
        assert pol.future_timeout(3) == pytest.approx(13.0)

    def test_default_policy_never_degrades(self):
        assert DEFAULT_POLICY.degrade is False
        assert DEFAULT_POLICY.cluster_timeout is None
        assert DEFAULT_POLICY.retries == 1

    def test_payload_config_is_json_safe(self):
        conf = RunPolicy(cluster_timeout=1.5, degrade=True).payload_config()
        assert json.loads(json.dumps(conf)) == conf


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(3)
        for _ in range(3):
            assert not breaker.is_open
            breaker.record_failure()
        assert breaker.is_open
        assert breaker.trips == 1

    def test_success_resets(self):
        breaker = CircuitBreaker(2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert not breaker.is_open


class TestOutcomeValidation:
    def test_accepts_clean_outcome(self):
        outcome = {"stats": {"engine_steps": 1},
                   "points_to": {"p": ["a"], "q": []}}
        assert validate_outcome(outcome, ["p", "q"])

    def test_rejects_corrupt_shapes(self):
        assert not validate_outcome(corrupt_outcome(), ["p"])
        assert not validate_outcome(None, [])
        assert not validate_outcome({"points_to": {}}, [])
        assert not validate_outcome(
            {"stats": {}, "points_to": {"p": [1, 2]}}, ["p"])
        assert not validate_outcome(
            {"stats": {}, "points_to": {}}, ["missing"])


class TestErrorMarkers:
    def test_generic_marker_is_retryable(self):
        marker = error_marker(RuntimeError("boom"))
        assert is_error_marker(marker)
        assert marker["retryable"]
        with pytest.raises(ClusterExecutionError, match="cluster 3"):
            raise_marker(marker, 3)

    def test_budget_marker_reraises_original_type(self):
        marker = error_marker(AnalysisBudgetExceeded("summary-engine", 42))
        assert not marker["retryable"]
        with pytest.raises(AnalysisBudgetExceeded) as exc:
            raise_marker(marker, 0)
        assert exc.value.steps == 42

    def test_marker_survives_json(self):
        marker = error_marker(ValueError("x"))
        assert is_error_marker(json.loads(json.dumps(marker)))


class TestFaultSpecs:
    def test_parse_fault_arg(self):
        spec = parse_fault_arg("hang:#3:1.5")
        assert (spec.kind, spec.match, spec.duration) == ("hang", "#3", 1.5)
        assert parse_fault_arg("crash").match == "*"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_fault_arg("meltdown")
        with pytest.raises(ValueError):
            parse_fault_arg("hang:*:soon")

    def test_selectors(self):
        assert FaultSpec(kind="crash", match="#2").matches("abc", 2)
        assert not FaultSpec(kind="crash", match="#2").matches("abc", 1)
        assert FaultSpec(kind="crash", match="ab").matches("abc", 9)
        assert FaultSpec(kind="crash").matches("anything", 0)

    def test_coarsest(self):
        assert coarsest(["fscs", "fsci"]) == "fsci"
        assert coarsest(["andersen", "fsci", "steensgaard"]) \
            == "steensgaard"


# ----------------------------------------------------------------------
# the ladder is sound, rung by rung
# ----------------------------------------------------------------------

class TestLadderSoundness:
    def test_every_rung_covers_clean_fscs(self):
        program = figure5_program()
        result = _fresh(program)
        clean = result.analyze_all(backend="simulate").results
        for cluster, clean_outcome in zip(result.clusters, clean):
            for level in ("fsci", "andersen", "steensgaard"):
                degr = degraded_outcome(
                    program, cluster, level,
                    steens=result.cascade.steensgaard,
                    callgraph=result.callgraph, error="test", attempts=2)
                assert is_degraded(degr)
                assert degr["precision"] == level
                assert degr["attempts"] == 2
                _assert_superset(clean_outcome, degr)

    def test_ladder_prefers_fsci(self):
        program = figure5_program()
        result = _fresh(program)
        degr = degrade_ladder(program, result.clusters[0],
                              callgraph=result.callgraph)
        assert degr["precision"] == "fsci"

    def test_degraded_outcome_rejects_fscs(self):
        program = figure5_program()
        result = _fresh(program)
        with pytest.raises(ValueError):
            degraded_outcome(program, result.clusters[0], "fscs")


# ----------------------------------------------------------------------
# in-process resilience (simulate backend)
# ----------------------------------------------------------------------

class TestInProcessResilience:
    def test_crash_degrades_exactly_faulted_cluster(self):
        result = _fresh(figure5_program())
        report = result.analyze_all(
            backend="simulate", policy=RunPolicy(retries=1, degrade=True),
            faults=[FaultSpec(kind="crash", match="#1")])
        assert report.degraded == {1: "fsci"}
        assert report.statuses.count("degraded") == 1
        assert report.cluster_status(1) == "degraded"
        assert report.cluster_precision(1) == "fsci"
        assert result.degraded_clusters == {1: "fsci"}
        assert result.degraded_precision_of([result.clusters[1]]) == "fsci"
        assert result.degraded_precision_of([result.clusters[0]]) is None
        assert report.attempts[1] == 2  # initial try + one retry

    def test_crash_without_degrade_raises(self):
        result = _fresh(figure5_program())
        with pytest.raises(ClusterExecutionError, match="cluster 0"):
            result.analyze_all(
                backend="simulate",
                policy=RunPolicy(retries=1, degrade=False),
                faults=[FaultSpec(kind="crash", match="#0")])

    def test_corrupt_outcome_is_caught_and_degraded(self):
        result = _fresh(figure5_program())
        report = result.analyze_all(
            backend="simulate", policy=RunPolicy(retries=1, degrade=True),
            faults=[FaultSpec(kind="corrupt", match="#0")])
        assert 0 in report.degraded
        assert validate_outcome(report.results[0],
                                [str(p) for p in
                                 result.clusters[0].pointer_members])

    def test_flaky_once_recovers_on_retry(self, tmp_path):
        result = _fresh(figure5_program())
        report = result.analyze_all(
            backend="simulate", policy=RunPolicy(retries=2, degrade=True),
            faults=[FaultSpec(kind="flaky-once", match="*",
                              token_dir=str(tmp_path))])
        assert report.degraded == {}
        assert result.degraded_clusters == {}
        assert all(n == 2 for n in report.attempts.values())

    def test_degraded_outcomes_never_cached(self, tmp_path):
        result = _fresh(figure5_program())
        cache = SummaryCache(str(tmp_path))
        report = result.analyze_all(
            backend="simulate", cache=cache,
            policy=RunPolicy(retries=0, degrade=True),
            faults=[FaultSpec(kind="crash", match="#0")])
        assert 0 in report.degraded
        # Only the healthy clusters were stored.
        assert len(cache) == len(result.clusters) - 1
        assert cache.get(report.fingerprints[0]) is None
        # A later healthy run recomputes cluster 0 at full precision and
        # backfills the cache.
        clean = _fresh(figure5_program()).analyze_all(
            backend="simulate", cache=cache)
        assert clean.degraded == {}
        assert clean.cache_hits == len(result.clusters) - 1
        assert len(cache) == len(result.clusters)

    def test_partial_cache_run_with_policy(self, tmp_path):
        """A policy-armed run over a *partially* warm cache: the pending
        clusters are a non-prefix subset of the targets, so attempt
        counts must be remapped from batch positions back to input
        order (regression: this used to IndexError on every daemon
        ``invalidate`` with a policy armed)."""
        result = _fresh(figure5_program())
        cache = SummaryCache(str(tmp_path))
        first = result.analyze_all(backend="simulate", cache=cache)
        n = len(result.clusters)
        assert n >= 2
        # Evict the LAST cluster's entry so pending == [n - 1].
        os.remove(cache._path(first.fingerprints[n - 1]))
        again = _fresh(figure5_program()).analyze_all(
            backend="simulate", cache=cache,
            policy=RunPolicy(retries=0, degrade=True))
        assert again.cache_hits == n - 1
        assert again.degraded == {}
        assert again.attempts == {n - 1: 1}
        assert [r["points_to"] for r in again.results] == \
            [r["points_to"] for r in first.results]

    def test_budget_exceeded_still_raises_without_policy(self):
        result = _fresh(figure5_program(), fscs_budget=1)
        with pytest.raises(AnalysisBudgetExceeded):
            result.analyze_all(backend="simulate")

    def test_budget_exceeded_degrades_with_policy(self):
        result = _fresh(figure5_program(), fscs_budget=1)
        report = result.analyze_all(
            backend="simulate", policy=RunPolicy(degrade=True))
        assert len(report.degraded) == len(result.clusters)
        assert all(is_degraded(r) for r in report.results)


# ----------------------------------------------------------------------
# processes backend: the real fault matrix
# ----------------------------------------------------------------------

class TestProcessesFaultMatrix:
    def _clean(self, result):
        return _fresh(figure5_program()).analyze_all(
            backend="simulate").results

    @pytest.mark.parametrize("kind", ["crash", "corrupt"])
    def test_fault_degrades_only_faulted_cluster(self, kind):
        result = _fresh(figure5_program())
        clean = self._clean(result)
        report = result.analyze_all(
            backend="processes", jobs=2,
            policy=RunPolicy(cluster_timeout=30.0, retries=1,
                             degrade=True),
            faults=[FaultSpec(kind=kind, match="#0")])
        assert 0 in report.degraded
        # A crash can take part-mates down with it (BrokenProcessPool),
        # but they must all recover at full precision on retry.
        assert list(report.degraded) == [0]
        _assert_superset(clean[0], report.results[0])
        for i, outcome in enumerate(report.results):
            if i != 0:
                assert outcome["points_to"] == clean[i]["points_to"]

    def test_hang_trips_timeout_and_degrades(self):
        result = _fresh(figure5_program())
        clean = self._clean(result)
        report = result.analyze_all(
            backend="processes", jobs=2,
            policy=RunPolicy(cluster_timeout=0.5, retries=0, grace=1.0,
                             degrade=True),
            faults=[FaultSpec(kind="hang", match="#0", duration=15.0)])
        assert 0 in report.degraded
        _assert_superset(clean[0], report.results[0])

    def test_flaky_once_recovers_across_processes(self, tmp_path):
        result = _fresh(figure5_program())
        clean = self._clean(result)
        report = result.analyze_all(
            backend="processes", jobs=2,
            policy=RunPolicy(retries=2, degrade=True),
            faults=[FaultSpec(kind="flaky-once", match="#0",
                              token_dir=str(tmp_path))])
        assert report.degraded == {}
        assert report.results[0]["points_to"] == clean[0]["points_to"]

    def test_crash_without_policy_is_structured_error(self):
        result = _fresh(figure5_program())
        with pytest.raises(ClusterExecutionError):
            result.analyze_all(
                backend="processes", jobs=2,
                faults=[FaultSpec(kind="crash", match="#0")])

    def test_three_fault_kinds_at_once(self):
        """The acceptance scenario: crash + hang + corrupt in one run."""
        result = _fresh(figure5_program())
        assert len(result.clusters) >= 3
        clean = self._clean(result)
        report = result.analyze_all(
            backend="processes", jobs=2,
            policy=RunPolicy(cluster_timeout=1.0, retries=1, grace=1.0,
                             degrade=True),
            faults=[FaultSpec(kind="crash", match="#0"),
                    FaultSpec(kind="hang", match="#1", duration=3.0),
                    FaultSpec(kind="corrupt", match="#2")])
        assert sorted(report.degraded) == [0, 1, 2]
        assert set(report.degraded.values()) <= {"fsci", "cutshortcut",
                                                 "andersen",
                                                 "steensgaard_fs",
                                                 "steensgaard"}
        for i in (0, 1, 2):
            _assert_superset(clean[i], report.results[i])
        for i in range(3, len(report.results)):
            assert report.cluster_status(i) == "ok"
            assert report.results[i]["points_to"] == clean[i]["points_to"]


# ----------------------------------------------------------------------
# corpus-wide differential: degraded ⊇ clean, program by program
# ----------------------------------------------------------------------

class TestCorpusDegradationDifferential:
    @pytest.mark.parametrize("name", CORPUS_NAMES)
    def test_degraded_covers_clean(self, name):
        cfg = next(c for c in corpus_configs(scale=SCALE)
                   if c.name == name)
        program = generate(cfg).program
        clean = _fresh(program).analyze_all(backend="simulate")
        degraded = _fresh(program).analyze_all(
            backend="simulate", policy=RunPolicy(retries=0, degrade=True),
            faults=[FaultSpec(kind="crash", match="*")])
        n = len(clean.results)
        assert len(degraded.results) == n
        assert len(degraded.degraded) == n  # every cluster fell
        for clean_outcome, degr_outcome in zip(clean.results,
                                               degraded.results):
            assert is_degraded(degr_outcome)
            _assert_superset(clean_outcome, degr_outcome)


# ----------------------------------------------------------------------
# CLI end to end
# ----------------------------------------------------------------------

def _run_cli(args, cwd):
    env = dict(os.environ,
               PYTHONPATH=os.path.join(os.path.dirname(__file__), "..",
                                       "src"))
    return subprocess.run([sys.executable, "-m", "repro"] + args,
                          capture_output=True, text=True, env=env,
                          cwd=cwd)


class TestCLIResilience:
    def test_analyze_degrades_faulted_clusters(self, tmp_path):
        example = os.path.abspath(
            os.path.join(EXAMPLES_DIR, "server_demo.c"))
        proc = _run_cli(
            ["analyze", example, "--backend", "processes", "--jobs", "2",
             "--degrade", "--cluster-timeout", "30",
             "--inject-fault", "crash:#0", "--inject-fault", "corrupt:#1"],
            str(tmp_path))
        assert proc.returncode == 0, proc.stderr
        assert "degraded clusters: 2" in proc.stdout
        assert "#0: fsci" in proc.stdout

    def test_analyze_without_degrade_fails_cleanly(self, tmp_path):
        example = os.path.abspath(
            os.path.join(EXAMPLES_DIR, "server_demo.c"))
        proc = _run_cli(
            ["analyze", example, "--backend", "processes", "--jobs", "2",
             "--inject-fault", "crash:#0"], str(tmp_path))
        assert proc.returncode == 1
        assert "cluster 0 failed" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_analyze_rejects_bad_fault_spec(self, tmp_path):
        example = os.path.abspath(
            os.path.join(EXAMPLES_DIR, "server_demo.c"))
        proc = _run_cli(["analyze", example, "--inject-fault", "meltdown"],
                        str(tmp_path))
        assert proc.returncode != 0
        assert "unknown fault kind" in proc.stderr


class TestNetFaults:
    """Connection-level chaos: the :class:`ChaosProxy` socket shim that
    bench.chaos points at fleet workers."""

    @pytest.fixture()
    def echo(self):
        """A TCP echo server plus a ChaosProxy in front of it; yields
        (proxy, call) where call(data, timeout) round-trips through the
        proxy and returns whatever came back (b"" on silence)."""
        import socket
        import threading

        from repro.core.faults import ChaosProxy

        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(8)
        alive = True

        def serve():
            while alive:
                try:
                    conn, _ = server.accept()
                except OSError:
                    return
                data = conn.recv(4096)
                if data:
                    conn.sendall(data)
                conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        proxy = ChaosProxy("127.0.0.1", server.getsockname()[1])

        def call(data, timeout=2.0):
            sock = socket.create_connection(("127.0.0.1", proxy.port),
                                            timeout=timeout)
            try:
                sock.sendall(data)
                sock.settimeout(timeout)
                chunks = []
                while True:
                    try:
                        chunk = sock.recv(4096)
                    except socket.timeout:
                        break
                    if not chunk:
                        break
                    chunks.append(chunk)
                return b"".join(chunks)
            finally:
                sock.close()

        yield proxy, call
        alive = False
        proxy.close()
        server.close()

    def test_transparent_without_fault(self, echo):
        proxy, call = echo
        assert call(b"hello\n") == b"hello\n"
        assert proxy.stats["connections"] == 1

    def test_delay_adds_latency_then_heals(self, echo):
        import time

        from repro.core.faults import NetFault

        proxy, call = echo
        proxy.set_fault(NetFault("delay", duration=0.3))
        t0 = time.monotonic()
        assert call(b"slow\n") == b"slow\n"
        assert time.monotonic() - t0 >= 0.3
        assert proxy.stats["delayed_chunks"] >= 1
        proxy.clear_fault()
        t0 = time.monotonic()
        assert call(b"fast\n") == b"fast\n"
        assert time.monotonic() - t0 < 0.3

    def test_blackhole_swallows_silently(self, echo):
        from repro.core.faults import NetFault

        proxy, call = echo
        proxy.set_fault(NetFault("blackhole"))
        assert call(b"void\n", timeout=0.5) == b""
        assert proxy.stats["blackholed_chunks"] >= 1

    def test_drop_truncates_the_response_promptly(self, echo):
        import time

        from repro.core.faults import NetFault

        proxy, call = echo
        proxy.set_fault(NetFault("drop", after_bytes=3))
        t0 = time.monotonic()
        got = call(b"echoes\n", timeout=5.0)
        # A prefix arrives, then the connection tears down with a FIN —
        # the client sees truncation, not a hang.
        assert got == b"ech"
        assert time.monotonic() - t0 < 2.0
        assert proxy.stats["dropped_conns"] >= 1

    def test_garble_flips_bytes_but_keeps_newlines(self, echo):
        from repro.core.faults import NetFault, garble_bytes

        proxy, call = echo
        proxy.set_fault(NetFault("garble"))
        got = call(b"ab\ncd\n")
        assert got == b"\x7f\x7f\n\x7f\x7f\n"
        assert proxy.stats["garbled_chunks"] >= 1
        # The pure helper matches what went over the wire.
        assert garble_bytes(b"ab\ncd\n") == b"\x7f\x7f\n\x7f\x7f\n"

    def test_unknown_fault_kind_rejected(self):
        from repro.core.faults import NetFault

        with pytest.raises(ValueError, match="unknown net fault"):
            NetFault("meltdown")

"""The benchmark substrate: generator determinism, corpus, harnesses."""

import pytest

from repro.analysis import Steensgaard
from repro.bench import (
    PAPER_BY_NAME,
    PAPER_TABLE1,
    SynthConfig,
    build,
    compute_figure1,
    corpus_configs,
    generate,
    generate_source,
    measure_program,
    run_figure1,
    shape_report,
)
from repro.bench.metrics import (
    TIMEOUT,
    ascii_histogram,
    format_csv,
    format_table,
    ratio,
    timed,
    timed_with_budget,
)
from repro.core import CascadeConfig, run_cascade
from repro.ir import format_program


SMALL = SynthConfig(name="unit", pointers=80, functions=6, seed=11,
                    hub_fractions=(0.3,), overlap=0.3, lock_count=1)


class TestSynth:
    def test_deterministic(self):
        p1 = generate(SMALL)
        p2 = generate(SMALL)
        assert format_program(p1.program) == format_program(p2.program)

    def test_seed_changes_program(self):
        other = SynthConfig(**{**SMALL.__dict__, "seed": 12})
        p1 = generate(SMALL)
        p2 = generate(other)
        assert format_program(p1.program) != format_program(p2.program)

    def test_pointer_budget_roughly_met(self):
        sp = generate(SMALL)
        n = len(sp.program.pointers)
        assert 0.5 * SMALL.pointers <= n <= 2.5 * SMALL.pointers

    def test_hub_produces_large_partition(self):
        sp = generate(SMALL)
        st = Steensgaard(sp.program).run()
        assert st.max_partition_size() >= 0.5 * max(sp.hub_sizes)

    def test_overlap_controls_refinement(self):
        low = generate(SynthConfig(name="lo", pointers=300, functions=8,
                                   hub_fractions=(0.5,), overlap=0.1,
                                   seed=3))
        high = generate(SynthConfig(name="hi", pointers=300, functions=8,
                                    hub_fractions=(0.5,), overlap=0.95,
                                    seed=3))
        def shrink(sp):
            cascade = run_cascade(sp.program,
                                  CascadeConfig(andersen_threshold=10))
            st = Steensgaard(sp.program).run()
            return cascade.max_cluster_size() / st.max_partition_size()
        assert shrink(low) < shrink(high)

    def test_program_is_analyzable(self):
        sp = generate(SMALL)
        sp.program.counts()
        st = Steensgaard(sp.program).run()
        assert st.partitions()

    def test_lock_vars_recorded(self):
        sp = generate(SMALL)
        assert len(sp.lock_vars) == 1

    def test_fp_sites(self):
        from repro.ir import CallStmt
        cfg = SynthConfig(name="fp", pointers=60, functions=5, fp_sites=2,
                          seed=5)
        sp = generate(cfg)
        indirect = [s for _, s in sp.program.statements()
                    if isinstance(s, CallStmt) and s.is_indirect]
        assert len(indirect) == 2
        assert all(s.targets for s in indirect)

    def test_generate_source_parses(self):
        from repro import parse_program
        src = generate_source(SynthConfig(name="src", pointers=60, seed=8))
        prog = parse_program(src)
        assert len(prog.functions) > 2


class TestCorpus:
    def test_all_rows_have_configs(self):
        configs = corpus_configs(scale=0.02)
        assert len(configs) == len(PAPER_TABLE1)

    def test_subset_selection(self):
        configs = corpus_configs(scale=0.02, names=["sock", "sendmail"])
        assert [c.name for c in configs] == ["sock", "sendmail"]

    def test_scale_controls_size(self):
        small = build("autofs", scale=0.02)
        large = build("autofs", scale=0.06)
        assert len(large.program.pointers) > len(small.program.pointers)

    def test_paper_reference_data_shape(self):
        row = PAPER_BY_NAME["sendmail"]
        assert row.pointers == 65134
        assert row.steens_max == 596 and row.andersen_max == 193

    def test_timeout_rows_marked(self):
        assert PAPER_BY_NAME["pico"].time_nocluster is None


class TestTable1Harness:
    def test_measure_program_row(self):
        sp = build("sock", scale=0.03)
        row = measure_program(sp.program, "sock", 0.9,
                              andersen_threshold=6,
                              nocluster_budget=200_000, parts=5)
        assert row.pointers > 0
        assert row.steens_clusters > 0
        assert row.t_steens >= 0
        assert len(row.cells()) == 12

    def test_shape_report_renders(self):
        sp = build("sock", scale=0.03)
        row = measure_program(sp.program, "sock", 0.9,
                              andersen_threshold=6, run_nocluster=False)
        text = shape_report([row])
        assert "sock" in text

    def test_budget_produces_timeout_marker(self):
        sp = build("autofs", scale=0.05)
        row = measure_program(sp.program, "autofs", 8.3,
                              andersen_threshold=6,
                              nocluster_budget=50, parts=5)
        assert row.t_nocluster is None
        assert TIMEOUT in row.cells()


class TestFigure1Harness:
    def test_series_shapes(self):
        data = run_figure1("autofs", scale=0.08)
        # Observation (i): both series dense at small sizes.
        sd, ad = data.small_density(cutoff=8)
        assert sd > 0.7 and ad > 0.7
        # Observation (ii): Andersen's max is no larger than Steensgaard's.
        assert data.andersen_max <= data.steens_max

    def test_compute_on_custom_program(self):
        sp = generate(SMALL)
        data = compute_figure1(sp.program, andersen_threshold=6)
        assert sum(data.steensgaard.values()) > 0


class TestMetrics:
    def test_timed(self):
        t = timed(lambda: 42)
        assert t.value == 42 and t.seconds >= 0 and not t.timed_out

    def test_timed_with_budget_catches(self):
        from repro.errors import AnalysisBudgetExceeded
        def boom():
            raise AnalysisBudgetExceeded("x", 1)
        t = timed_with_budget(boom)
        assert t.timed_out and t.fmt() == TIMEOUT

    def test_format_table(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]],
                            title="T")
        assert "### T" in text and "| 333" in text

    def test_format_csv(self):
        assert format_csv(["a", "b"], [["1", "2"]]) == "a,b\n1,2"

    def test_ascii_histogram(self):
        text = ascii_histogram({"s": {1: 5, 3: 1}, "a": {1: 2}})
        assert "frequency" in text

    def test_ratio(self):
        assert ratio(4.0, 2.0) == "2.00x"
        assert ratio(None, 2.0) == "-"
        assert ratio(1.0, 0.0) == "-"


class TestTaintBench:
    def test_smoke(self):
        from repro.bench.taint import render, run_taint_bench
        data = run_taint_bench(pointers=60, taint_webs=3, seed=7,
                               repeats=1)
        assert data["flows_identical"]
        gt = data["ground_truth"]
        assert gt["missed"] == []
        assert gt["sanitized_leaks"] == []
        assert gt["detected"] == gt["expected"] > 0
        # Demand selection must actually prune the cluster set.
        assert 0 < data["demand"]["clusters_selected"] \
            < data["whole"]["clusters_selected"] \
            == data["demand"]["clusters_total"]
        text = render(data)
        assert "Taint" in text and str(gt["expected"]) in text


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st


@st.composite
def synth_configs(draw):
    return SynthConfig(
        name="prop",
        pointers=draw(st.integers(30, 200)),
        functions=draw(st.integers(1, 12)),
        hub_fractions=(draw(st.floats(0.05, 0.5)),),
        overlap=draw(st.floats(0.05, 1.0)),
        lock_count=draw(st.integers(0, 2)),
        fp_sites=draw(st.integers(0, 2)),
        recursion=draw(st.booleans()),
        seed=draw(st.integers(0, 2 ** 20)),
    )


class TestSynthProperties:
    @given(synth_configs())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_generated_programs_are_valid(self, config):
        sp = generate(config)
        program = sp.program
        for fn in program.functions.values():
            fn.cfg.validate()
        assert program.entry == "main"
        assert len(program.pointers) > 0

    @given(synth_configs())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_generated_programs_are_analyzable(self, config):
        from repro.core import run_cascade
        sp = generate(config)
        result = run_cascade(sp.program)
        covered = set()
        for c in result.clusters:
            covered |= c.members
        assert covered >= sp.program.pointers

    @given(synth_configs())
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_generated_source_parses_and_matches_dialect(self, config):
        from repro import parse_program
        src = generate_source(config)
        prog = parse_program(src)
        assert len(prog.functions) >= 2

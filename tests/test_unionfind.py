"""Unit and property tests for the union-find substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.unionfind import UnionFind


class TestBasics:
    def test_singleton_on_find(self):
        uf = UnionFind()
        assert uf.find("a") == "a"
        assert "a" in uf

    def test_union_merges(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.same("a", "b")
        assert not uf.same("a", "c")

    def test_union_returns_root(self):
        uf = UnionFind()
        root = uf.union("a", "b")
        assert root in ("a", "b")
        assert uf.find("a") == root

    def test_members_cover_class(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert sorted(uf.members("a")) == ["a", "b", "c"]
        assert sorted(uf.members("c")) == ["a", "b", "c"]

    def test_members_includes_self_for_singleton(self):
        uf = UnionFind()
        uf.add("x")
        assert uf.members("x") == ["x"]

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union("a", "b")
        r1 = uf.find("a")
        uf.union("a", "b")
        assert uf.find("a") == r1
        assert len(uf.members("a")) == 2

    def test_classes_partition_items(self):
        uf = UnionFind("abcdef")
        uf.union("a", "b")
        uf.union("c", "d")
        classes = [sorted(c) for c in uf.classes()]
        assert sorted(map(tuple, classes)) == [
            ("a", "b"), ("c", "d"), ("e",), ("f",)]

    def test_class_count(self):
        uf = UnionFind("abc")
        assert uf.class_count() == 3
        uf.union("a", "b")
        assert uf.class_count() == 2

    def test_len_and_iter(self):
        uf = UnionFind("ab")
        uf.union("a", "b")
        assert len(uf) == 2
        assert sorted(uf) == ["a", "b"]

    def test_union_by_size_keeps_larger_root(self):
        uf = UnionFind()
        uf.union("a", "b")
        big_root = uf.find("a")
        uf.union("c", big_root)
        assert uf.find("c") == big_root

    def test_init_from_iterable(self):
        uf = UnionFind(["x", "y"])
        assert uf.class_count() == 2


@st.composite
def union_ops(draw):
    n = draw(st.integers(2, 12))
    items = list(range(n))
    ops = draw(st.lists(
        st.tuples(st.sampled_from(items), st.sampled_from(items)),
        max_size=30))
    return items, ops


class TestProperties:
    @given(union_ops())
    @settings(max_examples=100, deadline=None)
    def test_invariants_hold(self, data):
        items, ops = data
        uf = UnionFind(items)
        for a, b in ops:
            uf.union(a, b)
        uf.validate()

    @given(union_ops())
    @settings(max_examples=100, deadline=None)
    def test_matches_naive_connectivity(self, data):
        """Union-find equivalence == connectivity in the op graph."""
        items, ops = data
        uf = UnionFind(items)
        adj = {i: {i} for i in items}
        for a, b in ops:
            uf.union(a, b)
            merged = adj[a] | adj[b]
            for m in merged:
                adj[m] = merged
        for a in items:
            for b in items:
                assert uf.same(a, b) == (b in adj[a])

    @given(union_ops())
    @settings(max_examples=60, deadline=None)
    def test_members_partition(self, data):
        items, ops = data
        uf = UnionFind(items)
        for a, b in ops:
            uf.union(a, b)
        seen = []
        for c in uf.classes():
            seen.extend(c)
        assert sorted(seen) == sorted(items)

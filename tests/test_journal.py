"""Coordinator journal: checksummed append-only log + atomic snapshot."""

import json
import os
import zlib

from repro.fleet.journal import (
    JOURNAL,
    SNAPSHOT,
    CoordinatorJournal,
    _crc_line,
    _parse_line,
)


class TestLineCodec:
    def test_roundtrip(self):
        body = json.dumps({"t": "file", "path": "/x.c"}).encode()
        assert _parse_line(_crc_line(body)) == {"t": "file",
                                               "path": "/x.c"}

    def test_bad_crc_rejected(self):
        line = _crc_line(b'{"t":"file","path":"/x.c"}')
        # Flip one payload byte: the checksum must catch it.
        corrupt = line[:12] + b"X" + line[13:]
        assert _parse_line(corrupt) is None

    def test_torn_line_rejected(self):
        line = _crc_line(b'{"t":"file","path":"/x.c"}')
        assert _parse_line(line[: len(line) // 2]) is None

    def test_non_object_rejected(self):
        assert _parse_line(_crc_line(b"[1,2,3]")) is None
        assert _parse_line(b"nonsense\n") is None

    def test_crc_matches_zlib(self):
        body = b'{"t":"weights"}'
        crc, rest = _crc_line(body).split(b" ", 1)
        assert int(crc, 16) == zlib.crc32(body) & 0xFFFFFFFF


class TestJournalRoundTrip:
    def test_records_survive_restart(self, tmp_path):
        a = CoordinatorJournal(str(tmp_path))
        a.record_file("/one.c")
        a.record_file("/two.c")
        a.record_weights("/one.c", {"k1": 3, "k2": 7})

        b = CoordinatorJournal(str(tmp_path))
        files, weights = b.load()
        assert files == ["/one.c", "/two.c"]
        assert weights == {"/one.c": {"k1": 3, "k2": 7}}
        assert b.recovered_files == 2
        assert b.dropped_lines == 0

    def test_record_file_is_idempotent(self, tmp_path):
        journal = CoordinatorJournal(str(tmp_path))
        journal.record_file("/one.c")
        journal.record_file("/one.c")
        assert journal.records == 1

    def test_weights_replace_wholesale(self, tmp_path):
        a = CoordinatorJournal(str(tmp_path))
        a.record_file("/one.c")
        a.record_weights("/one.c", {"k1": 1, "k2": 2})
        a.record_weights("/one.c", {"k1": 9})
        _files, weights = CoordinatorJournal(str(tmp_path)).load()
        assert weights == {"/one.c": {"k1": 9}}

    def test_forget_file_drops_path_and_weights(self, tmp_path):
        a = CoordinatorJournal(str(tmp_path))
        a.record_file("/one.c")
        a.record_file("/two.c")
        a.record_weights("/one.c", {"k": 5})
        a.forget_file("/one.c")
        files, weights = CoordinatorJournal(str(tmp_path)).load()
        assert files == ["/two.c"]
        assert weights == {}

    def test_load_with_nothing_on_disk(self, tmp_path):
        files, weights = CoordinatorJournal(str(tmp_path)).load()
        assert files == [] and weights == {}


class TestCrashTails:
    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        a = CoordinatorJournal(str(tmp_path))
        a.record_file("/one.c")
        a.record_file("/two.c")
        # A power cut mid-append leaves a torn final line.
        with open(os.path.join(str(tmp_path), JOURNAL), "ab") as handle:
            handle.write(b"00000000 {\"t\":\"file\",\"pa")
        b = CoordinatorJournal(str(tmp_path))
        files, _ = b.load()
        assert files == ["/one.c", "/two.c"]
        assert b.dropped_lines == 1

    def test_corrupt_middle_stops_replay_at_last_intact(self, tmp_path):
        a = CoordinatorJournal(str(tmp_path))
        a.record_file("/one.c")
        path = os.path.join(str(tmp_path), JOURNAL)
        with open(path, "ab") as handle:
            handle.write(b"deadbeef {\"t\":\"file\",\"path\":\"/x\"}\n")
        a2 = CoordinatorJournal(str(tmp_path))
        a2.record_file("/ignored-after-corruption.c")  # fresh instance
        b = CoordinatorJournal(str(tmp_path))
        files, _ = b.load()
        # Nothing after the corrupt line is trusted.
        assert files == ["/one.c"]

    def test_load_repairs_the_tail(self, tmp_path):
        a = CoordinatorJournal(str(tmp_path))
        a.record_file("/one.c")
        with open(os.path.join(str(tmp_path), JOURNAL), "ab") as handle:
            handle.write(b"garbage")
        CoordinatorJournal(str(tmp_path)).load()
        # Recovery compacted: journal truncated, snapshot holds state.
        assert os.path.getsize(os.path.join(str(tmp_path), JOURNAL)) == 0
        with open(os.path.join(str(tmp_path), SNAPSHOT)) as handle:
            snap = json.load(handle)
        assert snap["files"] == ["/one.c"]

    def test_corrupt_snapshot_is_survivable(self, tmp_path):
        a = CoordinatorJournal(str(tmp_path))
        a.record_file("/one.c")
        a.load()  # compact into the snapshot
        a.record_file("/two.c")  # journaled on top
        with open(os.path.join(str(tmp_path), SNAPSHOT), "wb") as handle:
            handle.write(b"{torn")
        files, _ = CoordinatorJournal(str(tmp_path)).load()
        # The snapshot's contents are lost but the journaled suffix
        # still replays — degraded warmth, no crash.
        assert files == ["/two.c"]


class TestCompaction:
    def test_compacts_at_threshold(self, tmp_path):
        journal = CoordinatorJournal(str(tmp_path), compact_every=3)
        for i in range(7):
            journal.record_file(f"/f{i}.c")
        assert journal.compactions >= 2
        # The journal stays short; the snapshot carries the state.
        with open(os.path.join(str(tmp_path), SNAPSHOT)) as handle:
            snap = json.load(handle)
        assert len(snap["files"]) >= 6
        files, _ = CoordinatorJournal(str(tmp_path)).load()
        assert files == [f"/f{i}.c" for i in range(7)]

    def test_stats_shape(self, tmp_path):
        journal = CoordinatorJournal(str(tmp_path))
        journal.record_file("/one.c")
        stats = journal.stats()
        assert stats["files"] == 1
        assert stats["records"] == 1
        assert stats["root"] == str(tmp_path)

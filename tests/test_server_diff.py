"""Differential: daemon answers are bit-identical to one-shot runs.

The daemon serves from resident per-cluster outcomes (and re-serves
after fingerprint-grained invalidation), so every answer must match what
a fresh ``BootstrapAnalyzer`` run over the current file contents says —
for every pointer, for alias pairs, and across an edit + invalidate
round-trip.
"""

import itertools
import os
import re

import pytest

from repro.bench.synth import SynthConfig, generate_source
from repro.core import BootstrapAnalyzer
from repro.frontend import parse_program
from repro.ir import Loc
from repro.server import AliasServer, ServerConfig

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def one_shot(source, path=None):
    """Fresh parse + bootstrap with the daemon's default knobs."""
    program = parse_program(source, entry="main", path=path)
    result = BootstrapAnalyzer(program).run()
    loc = Loc(program.entry, program.cfg_of(program.entry).exit)
    return program, result, loc


def assert_server_matches_one_shot(server, path, max_alias_pairs=60):
    with open(path, "r") as handle:
        source = handle.read()
    program, result, loc = one_shot(source, path=path)
    pointers = sorted(program.pointers, key=str)
    for p in pointers:
        served = server.handle_request(
            {"id": 1, "method": "points_to",
             "params": {"file": path, "ptr": str(p)}})["result"]
        expected = sorted(str(o) for o in result.points_to(p, loc))
        assert served["objects"] == expected, str(p)
    for p, q in itertools.islice(
            itertools.combinations(pointers, 2), max_alias_pairs):
        served = server.handle_request(
            {"id": 1, "method": "alias",
             "params": {"file": path, "p": str(p), "q": str(q)}})["result"]
        assert served["may_alias"] == result.may_alias(p, q, loc), \
            (str(p), str(q))


@pytest.mark.parametrize("example", ["memsafe_clean.c", "memsafe_buggy.c"])
def test_examples_bit_identical(tmp_path, example):
    # Copy so the served path is private to the test (watch mode stats).
    source = open(os.path.join(EXAMPLES, example)).read()
    path = str(tmp_path / example)
    with open(path, "w") as handle:
        handle.write(source)
    server = AliasServer(ServerConfig())
    assert_server_matches_one_shot(server, path)


def test_synthetic_bit_identical(tmp_path):
    source = generate_source(SynthConfig(name="diff", pointers=60,
                                         seed=11))
    path = str(tmp_path / "synth.c")
    with open(path, "w") as handle:
        handle.write(source)
    server = AliasServer(ServerConfig())
    assert_server_matches_one_shot(server, path)


def test_invalidate_round_trip_bit_identical(tmp_path):
    """Edit one function, invalidate, and require post-edit answers to
    match a fresh one-shot run of the edited source — while only a
    fraction of the clusters was re-analyzed."""
    source = generate_source(SynthConfig(name="diff-edit", pointers=60,
                                         seed=11))
    path = str(tmp_path / "synth.c")
    with open(path, "w") as handle:
        handle.write(source)
    server = AliasServer(ServerConfig())
    assert_server_matches_one_shot(server, path, max_alias_pairs=20)

    match = re.search(r"(w(\d+)p1) = w\2p0;", source)
    assert match is not None
    edited = source.replace(
        match.group(0), f"{match.group(1)} = &w{match.group(2)}t0;", 1)
    assert edited != source
    with open(path, "w") as handle:
        handle.write(edited)
    refresh = server.handle_request(
        {"id": 1, "method": "invalidate",
         "params": {"file": path}})["result"]
    assert 0 < refresh["reanalyzed"] < refresh["clusters"]
    assert_server_matches_one_shot(server, path, max_alias_pairs=20)


def test_backend_processes_bit_identical(tmp_path):
    """The daemon's answers are backend-independent: serving with the
    multiprocess cluster backend matches a simulate-backend one-shot."""
    source = generate_source(SynthConfig(name="diff-proc", pointers=40,
                                         seed=5))
    path = str(tmp_path / "synth.c")
    with open(path, "w") as handle:
        handle.write(source)
    server = AliasServer(ServerConfig(backend="processes", jobs=2))
    assert_server_matches_one_shot(server, path, max_alias_pairs=20)

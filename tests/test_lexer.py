"""Tokenizer tests."""

import pytest

from repro.errors import ParseError
from repro.frontend import tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]


class TestBasics:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "eof"

    def test_identifiers_and_keywords(self):
        assert kinds("int foo") == [("kw", "int"), ("id", "foo")]

    def test_underscore_identifier(self):
        assert kinds("_x __y") == [("id", "_x"), ("id", "__y")]

    def test_numbers(self):
        assert kinds("42 0x1F 3.14")[0] == ("num", "42")
        assert kinds("0x1F")[0] == ("num", "0x1F")
        assert kinds("3.14")[0] == ("num", "3.14")

    def test_string_literal(self):
        assert kinds('"hello world"') == [("str", '"hello world"')]

    def test_string_with_escapes(self):
        assert kinds(r'"a\"b"') == [("str", r'"a\"b"')]

    def test_char_literal(self):
        assert kinds("'x'") == [("char", "'x'")]

    def test_punctuation_longest_match(self):
        assert kinds("->") == [("punct", "->")]
        assert kinds("- >") == [("punct", "-"), ("punct", ">")]
        assert kinds("<<=") == [("punct", "<<=")]
        assert kinds("...") == [("punct", "...")]

    def test_arrow_vs_minus(self):
        assert kinds("a->b") == [("id", "a"), ("punct", "->"), ("id", "b")]


class TestCommentsAndPreprocessor:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("id", "a"), ("id", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("id", "a"), ("id", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("/* never ends")

    def test_preprocessor_skipped(self):
        assert kinds("#include <stdio.h>\nint") == [("kw", "int")]

    def test_preprocessor_continuation(self):
        assert kinds("#define X \\\n  1\nint") == [("kw", "int")]


class TestPositions:
    def test_line_tracking(self):
        toks = tokenize("a\nb\n  c")
        assert toks[0].line == 1
        assert toks[1].line == 2
        assert toks[2].line == 3
        assert toks[2].column == 3

    def test_error_position(self):
        with pytest.raises(ParseError) as info:
            tokenize("a\n  @")
        assert info.value.line == 2

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("$")


class TestTokenHelpers:
    def test_is_punct(self):
        tok = tokenize("*")[0]
        assert tok.is_punct("*")
        assert tok.is_punct("*", "&")
        assert not tok.is_punct("&")

    def test_is_kw(self):
        tok = tokenize("while")[0]
        assert tok.is_kw("while")
        assert not tok.is_kw("for")

    def test_null_is_keyword(self):
        assert kinds("NULL") == [("kw", "NULL")]

"""Normalizer tests: AST -> canonical IR lowering."""

import pytest

from repro import parse_program
from repro.analysis import Andersen, execute
from repro.errors import NormalizationError
from repro.ir import (
    AddrOf,
    AllocSite,
    CallStmt,
    Copy,
    Load,
    NullAssign,
    Store,
    Var,
)


def stmts_of(src, func="main"):
    prog = parse_program(src)
    return [s for _, s in prog.statements()
            if s.is_pointer_assign], prog


def pts(prog, name, func="main"):
    an = Andersen(prog).run()
    var = Var(name, func) if Var(name, func) in prog.pointers else Var(name)
    return sorted(str(o) for o in an.points_to(var))


class TestCanonicalForms:
    def test_copy(self):
        stmts, _ = stmts_of("int *p, *q; int main() { p = q; return 0; }")
        assert Copy(Var("p"), Var("q")) in stmts

    def test_addr(self):
        stmts, _ = stmts_of("int a; int *p; int main() { p = &a; return 0; }")
        assert AddrOf(Var("p"), Var("a")) in stmts

    def test_load(self):
        stmts, _ = stmts_of(
            "int **pp; int *q; int main() { q = *pp; return 0; }")
        assert Copy(Var("q"), Var("main::$t1", "main")) in stmts or \
            any(isinstance(s, Load) and s.rhs == Var("pp") for s in stmts)

    def test_store(self):
        stmts, _ = stmts_of(
            "int **pp; int *q; int main() { *pp = q; return 0; }")
        assert any(isinstance(s, Store) and s.lhs == Var("pp")
                   for s in stmts)

    def test_null_assign(self):
        stmts, _ = stmts_of("int *p; int main() { p = NULL; return 0; }")
        assert NullAssign(Var("p")) in stmts

    def test_zero_is_null(self):
        stmts, _ = stmts_of("int *p; int main() { p = 0; return 0; }")
        assert NullAssign(Var("p")) in stmts

    def test_double_deref_splits(self):
        src = "int ***ppp; int *q; int main() { q = **ppp; return 0; }"
        stmts, _ = stmts_of(src)
        loads = [s for s in stmts if isinstance(s, Load)]
        assert len(loads) == 2

    def test_store_through_double_deref(self):
        src = "int ***ppp; int *q; int main() { **ppp = q; return 0; }"
        stmts, _ = stmts_of(src)
        assert any(isinstance(s, Load) for s in stmts)
        assert any(isinstance(s, Store) for s in stmts)

    def test_addr_of_deref_cancels(self):
        src = "int *p, *q; int main() { q = &*p; return 0; }"
        stmts, _ = stmts_of(src)
        assert Copy(Var("q"), Var("p")) in stmts


class TestHeap:
    def test_malloc_becomes_alloc_site(self):
        src = "int main() { int *p = malloc(4); return 0; }"
        stmts, prog = stmts_of(src)
        assert len(prog.alloc_sites) == 1

    def test_two_mallocs_two_sites(self):
        src = ("int main() { int *p = malloc(4); int *q = malloc(4); "
               "return 0; }")
        _, prog = stmts_of(src)
        assert len(prog.alloc_sites) == 2

    def test_free_nulls_pointer(self):
        src = "int main() { int *p = malloc(4); free(p); return 0; }"
        stmts, _ = stmts_of(src)
        assert any(isinstance(s, NullAssign) for s in stmts)

    def test_cast_transparent_for_malloc(self):
        src = ("struct S { int *f; }; int main() { "
               "struct S *p = (struct S *)malloc(8); return 0; }")
        _, prog = stmts_of(src)
        # main pointer + one shadow field site
        labels = sorted(s.label for s in prog.alloc_sites)
        assert len(labels) == 2
        assert any("__f" in l for l in labels)


class TestStructs:
    def test_direct_field_flattened(self):
        src = ("struct S { int *f; }; int x; "
               "int main() { struct S s; s.f = &x; return 0; }")
        stmts, _ = stmts_of(src)
        assert AddrOf(Var("s__f", "main"), Var("x")) in stmts

    def test_arrow_through_shadow(self):
        src = ("struct S { int *f; }; int x; "
               "int main() { struct S s; struct S *p = &s; "
               "p->f = &x; int *t = p->f; return 0; }")
        _, prog = stmts_of(src)
        assert pts(prog, "t", "main") == ["x"]

    def test_nested_field_through_pointer(self):
        src = ("struct In { int *h; }; struct S { struct In i; }; int y;"
               "int main() { struct S s; struct S *p = &s; "
               "p->i.h = &y; int *u = s.i.h; return 0; }")
        _, prog = stmts_of(src)
        assert pts(prog, "u", "main") == ["y"]

    def test_struct_assignment_copies_leaves(self):
        src = ("struct S { int *f; int g; }; int x;"
               "int main() { struct S a; struct S b; a.f = &x; b = a; "
               "int *t = b.f; return 0; }")
        _, prog = stmts_of(src)
        assert pts(prog, "t", "main") == ["x"]

    def test_address_of_field(self):
        src = ("struct S { int *f; }; int x; "
               "int main() { struct S s; int **pp = &s.f; *pp = &x; "
               "int *t = s.f; return 0; }")
        _, prog = stmts_of(src)
        assert pts(prog, "t", "main") == ["x"]

    def test_struct_by_value_param_rejected(self):
        src = ("struct S { int x; }; void f(struct S s) { } "
               "int main() { return 0; }")
        with pytest.raises(NormalizationError):
            parse_program(src)

    def test_struct_return_rejected(self):
        src = ("struct S { int x; }; struct S f(void) { } "
               "int main() { return 0; }")
        with pytest.raises(NormalizationError):
            parse_program(src)

    def test_linked_list_first_hop(self):
        src = ("struct node { struct node *next; int *data; }; int v;"
               "int main() { struct node *n = malloc(16); "
               "n->data = &v; int *d = n->data; return 0; }")
        _, prog = stmts_of(src)
        assert pts(prog, "d", "main") == ["v"]


class TestCalls:
    def test_args_and_return(self):
        src = ("int *id(int *p) { return p; } int g;"
               "int main() { int *q = id(&g); return 0; }")
        _, prog = stmts_of(src)
        assert pts(prog, "q", "main") == ["g"]

    def test_output_parameter(self):
        src = ("int g; void set(int **slot) { *slot = &g; }"
               "int main() { int *p; set(&p); return 0; }")
        _, prog = stmts_of(src)
        assert pts(prog, "p", "main") == ["g"]

    def test_extern_call_has_no_effect(self):
        src = "int main() { puts(0); return 0; }"
        _, prog = stmts_of(src)
        assert all(not isinstance(s, CallStmt)
                   for _, s in prog.statements())

    def test_function_pointer_call(self):
        src = ("int ga, gb; int *fa(void) { return &ga; } "
               "int *fb(void) { return &gb; }"
               "int main() { int *(*fp)(void); "
               "if (ga) fp = fa; else fp = fb;"
               "int *r = fp(); return 0; }")
        _, prog = stmts_of(src)
        assert pts(prog, "r", "main") == ["ga", "gb"]

    def test_explicit_fp_deref_call(self):
        src = ("int g; int *fa(void) { return &g; }"
               "int main() { int *(*fp)(void) = fa; "
               "int *r = (*fp)(); return 0; }")
        _, prog = stmts_of(src)
        assert pts(prog, "r", "main") == ["g"]


class TestControlFlow:
    def test_if_both_arms_reachable(self):
        src = ("int a, b; int *p;"
               "int main() { if (a) p = &a; else p = &b; return 0; }")
        _, prog = stmts_of(src)
        orc = execute(prog)
        assert sorted(map(str, orc.points_to(Var("p")))) == ["a", "b"]

    def test_while_zero_or_more(self):
        src = ("int a; int *p;"
               "int main() { while (a) { p = &a; } return 0; }")
        _, prog = stmts_of(src)
        orc = execute(prog)
        # Path skipping the loop leaves p uninitialized; body path sets it.
        assert Var("a") in orc.points_to(Var("p"))

    def test_break_leaves_loop(self):
        src = ("int a, b; int *p;"
               "int main() { while (1) { p = &a; break; p = &b; } "
               "return 0; }")
        _, prog = stmts_of(src)
        orc = execute(prog)
        assert sorted(map(str, orc.points_to(Var("p")))) == ["a"]

    def test_continue_reaches_head(self):
        src = ("int a, b; int *p;"
               "int main() { while (a) { p = &a; continue; p = &b; } "
               "return 0; }")
        _, prog = stmts_of(src)
        orc = execute(prog)
        assert Var("b") not in orc.points_to(Var("p"))

    def test_switch_arms_nondeterministic(self):
        src = ("int a, b, c; int *p;"
               "int main() { switch (a) { case 1: p = &a; break; "
               "case 2: p = &b; break; default: p = &c; } return 0; }")
        _, prog = stmts_of(src)
        orc = execute(prog)
        assert sorted(map(str, orc.points_to(Var("p")))) == ["a", "b", "c"]

    def test_ternary_both_values(self):
        src = ("int a, b; int *p;"
               "int main() { p = a ? &a : &b; return 0; }")
        _, prog = stmts_of(src)
        orc = execute(prog)
        assert sorted(map(str, orc.points_to(Var("p")))) == ["a", "b"]

    def test_early_return(self):
        src = ("int a, b; int *p;"
               "int main() { p = &a; if (a) return 0; p = &b; return 0; }")
        _, prog = stmts_of(src)
        orc = execute(prog)
        assert sorted(map(str, orc.points_to(Var("p")))) == ["a", "b"]


class TestMisc:
    def test_pointer_arithmetic_aliases_operands(self):
        src = ("int buf[8]; int *p, *q;"
               "int main() { p = buf; q = p + 3; return 0; }")
        _, prog = stmts_of(src)
        assert pts(prog, "q", "main") == ["buf"]

    def test_array_index_collapses(self):
        src = ("int x; int *arr[4];"
               "int main() { arr[2] = &x; int *t = arr[0]; return 0; }")
        _, prog = stmts_of(src)
        assert pts(prog, "t", "main") == ["x"]

    def test_global_initializer_runs_at_entry(self):
        src = "int a; int *p = &a; int main() { int *q = p; return 0; }"
        _, prog = stmts_of(src)
        assert pts(prog, "q", "main") == ["a"]

    def test_scalar_dataflow_deps(self):
        src = ("int a, b; int main() { a = b + 1; return 0; }")
        stmts, _ = stmts_of(src)
        assert Copy(Var("a"), Var("b")) in stmts

    def test_undeclared_identifier_tolerated(self):
        src = "int main() { mystery = 1; return 0; }"
        prog = parse_program(src)
        assert Var("mystery") in prog.globals or True  # no crash

    def test_comma_expression_effects(self):
        src = ("int a, b; int *p, *q;"
               "int main() { p = (q = &a, &b); return 0; }")
        _, prog = stmts_of(src)
        assert pts(prog, "q", "main") == ["a"]
        assert pts(prog, "p", "main") == ["b"]

    def test_shadow_loss_warning_recorded(self):
        src = ("struct S { int *f; }; int x;"
               "int main() { struct S s; s.f = &x; void *v = &s; "
               "struct S *p = v; int *t = p->f; return 0; }")
        prog = parse_program(src)  # must not crash; may warn
        assert prog is not None

    def test_entry_must_exist(self):
        with pytest.raises(NormalizationError):
            parse_program("int helper() { return 0; }")

    def test_alternative_entry(self):
        prog = parse_program("int start() { return 0; }", entry="start")
        assert prog.entry == "start"

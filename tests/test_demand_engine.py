"""The shared demand-driven query engine and its leak/deadlock clients.

Covers the engine contract (widening, budgets, deepening levels, FSCI
caching), a differential test pinning the taint checker to the legacy
inline widening loop it replaced, the new checkers against hand-built
programs and synth ground truth, concrete-oracle agreement, the CLI
verbs, hash-seed determinism, and the daemon methods with per-query
cache invalidation.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import parse_program
from repro.analysis.demand_engine import DemandEngine
from repro.bench.synth import SynthConfig, generate
from repro.checkers import run_deadlocks, run_leaks, run_taint
from repro.checkers.base import CheckerContext
from repro.cli import EXIT_BUDGET, main
from repro.core import BootstrapAnalyzer
from repro.errors import AnalysisBudgetExceeded
from repro.ir import Var

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")

#: Three disjoint pointer webs: a staged client can widen across them
#: one cluster per round, which pins the engine's widening, budget and
#: deepening mechanics without depending on any checker's demand shape.
CHAIN_SOURCE = """
int a, b, c;
int *p1, *p2, *p3;

void w1(void) { p1 = &a; }
void w2(void) { p2 = &b; }
void w3(void) { p3 = &c; }

int main() {
    w1();
    w2();
    w3();
    return 0;
}
"""

#: Taint reaches the sink through an indirect store; the demand loop
#: must deliver the alias facts that resolve it (here in one round:
#: clusters are alias-closed, so the sink-argument seed's cluster
#: already carries the store pointer).
WIDENING_SOURCE = """
int getenv(int x);
int system(int cmd);

int slot;
int *ptr;

void setup(void) {
    ptr = &slot;
}

int main() {
    int raw;
    setup();
    raw = getenv(1);
    *ptr = raw;
    system(slot);
    return 0;
}
"""

LEAK_SOURCE = """
int *keep;

void lost(void) {
    int *p;
    p = malloc(4);
}

void tidy(void) {
    int *q;
    q = malloc(4);
    free(q);
}

void publish(void) {
    int *r;
    r = malloc(4);
    keep = r;
}

int main() {
    lost();
    tidy();
    publish();
    return 0;
}
"""

DEADLOCK_SOURCE = """
int obj_a;
int obj_b;
int *pa;
int *pb;

void lock(int *l) { }
void unlock(int *l) { }

void t1(void) {
    lock(pa);
    lock(pb);
    unlock(pb);
    unlock(pa);
}

void t2(void) {
    lock(pb);
    lock(pa);
    unlock(pa);
    unlock(pb);
}

int main() {
    pa = &obj_a;
    pb = &obj_b;
    spawn(t1);
    spawn(t2);
    t1();
    t2();
    return 0;
}
"""

#: Same two threads, same two locks, agreeing acquisition order.
ORDERED_SOURCE = DEADLOCK_SOURCE.replace(
    """void t2(void) {
    lock(pb);
    lock(pa);
    unlock(pa);
    unlock(pb);
}""",
    """void t2(void) {
    lock(pa);
    lock(pb);
    unlock(pb);
    unlock(pa);
}""")


def bootstrap(source):
    program = parse_program(source)
    return program, BootstrapAnalyzer(program).run()


# ----------------------------------------------------------------------
def staged_client(order):
    """A client that widens one pointer per round: it demands the first
    pointer from ``order`` not yet tracked, and returns the tracked
    names as its value."""
    def client(view):
        tracked = {str(v) for v in view.tracked}
        want = [Var(name) for name in order if name not in tracked][:1]
        return sorted(tracked), want
    return client


class TestEngineCore:
    def test_staged_widening_counts_rounds_and_clusters(self):
        program, result = bootstrap(CHAIN_SOURCE)
        engine = DemandEngine(program, result)
        outcome = engine.run([Var("p1")],
                             staged_client(["p2", "p3"]))
        assert outcome.rounds == 3
        assert {Var("p1"), Var("p2"), Var("p3")} <= outcome.demanded
        assert "p3" in outcome.value
        stats = outcome.stats
        assert stats.rounds == 3
        assert stats.fsci_runs == 3  # every widened key ran fresh
        assert stats.clusters_touched == 3
        assert stats.summary_bytes > 0

    def test_taint_converges_with_engine_stats(self):
        program, result = bootstrap(WIDENING_SOURCE)
        run = run_taint(program, result=result)
        assert run.rounds == 1
        assert [d.rule_id for d in run.diagnostics] == ["taint-flow"]
        assert run.engine is not None
        assert run.engine.rounds == run.rounds
        assert run.engine.fsci_runs == 1
        assert run.engine.summary_bytes > 0

    def test_taint_matches_legacy_inline_loop(self):
        """Differential: the engine-backed run_taint must be
        bit-identical to the widening loop it replaced (the pre-engine
        code, reproduced inline)."""
        from repro.analysis.taint import (
            TaintEngine,
            TaintSpec,
            source_argument_pointers,
        )
        from repro.checkers.taint import _make_resolver

        program, result = bootstrap(WIDENING_SOURCE)
        spec = TaintSpec.default()
        ctx = CheckerContext(program, result)
        demanded = set(source_argument_pointers(program, spec))
        rounds = 0
        while True:
            rounds += 1
            fsci, selection = ctx.demand_fsci(frozenset(demanded))
            tracked = set(demanded)
            for cluster in selection.selected:
                tracked |= cluster.slice.vp
            engine = TaintEngine(program, spec,
                                 _make_resolver(fsci, tracked),
                                 callgraph=result.callgraph)
            report = engine.run()
            fresh = {v for v in report.demanded
                     if v in program.pointers} - demanded
            if not fresh or rounds >= 10:
                break
            demanded |= fresh

        run = run_taint(program, result=result)
        assert run.rounds == rounds
        assert run.demanded == frozenset(demanded)
        assert sorted(f.key() for f in run.flows) \
            == sorted(f.key() for f in report.flows)
        assert run.stats.clusters_selected == len(selection.selected)

    def test_budget_exhausted_mid_widening(self):
        # Round 1 charges 1 cluster (within budget); round 2 widens to
        # a cumulative 3 and must trip mid-loop, not at the start.
        program, result = bootstrap(CHAIN_SOURCE)
        engine = DemandEngine(program, result)
        with pytest.raises(AnalysisBudgetExceeded):
            engine.run([Var("p1")], staged_client(["p2", "p3"]),
                       budget=2)

    def test_budget_covers_full_run(self):
        program, result = bootstrap(CHAIN_SOURCE)
        engine = DemandEngine(program, result)
        outcome = engine.run([Var("p1")], staged_client(["p2", "p3"]),
                             budget=6)
        assert outcome.rounds == 3

    def test_checker_budget_surfaces_as_analysis_budget(self):
        program, result = bootstrap(WIDENING_SOURCE)
        with pytest.raises(AnalysisBudgetExceeded):
            run_taint(program, result=result, budget=0)
        with pytest.raises(AnalysisBudgetExceeded):
            run_leaks(parse_program(LEAK_SOURCE), budget=0)

    def test_deepening_levels_monotone(self):
        program, result = bootstrap(CHAIN_SOURCE)
        tracked = {}
        for level in (1, 2, 3):
            engine = DemandEngine(program, result)
            outcome = engine.run([Var("p1")],
                                 staged_client(["p2", "p3"]),
                                 max_rounds=level)
            assert outcome.rounds == level
            tracked[level] = set(outcome.value)
        assert tracked[1] < tracked[2] < tracked[3]
        # Taint deepening over the same levels is monotone too.
        program, result = bootstrap(WIDENING_SOURCE)
        flows = {}
        for level in (1, 2, 3):
            run = run_taint(program, result=result, max_rounds=level)
            flows[level] = {f.key() for f in run.flows}
        assert flows[1] <= flows[2] <= flows[3]
        assert flows[3]

    def test_fsci_cache_makes_repeat_queries_free(self):
        program, result = bootstrap(WIDENING_SOURCE)
        ctx = CheckerContext(program, result)
        first = run_taint(program, ctx=ctx)
        again = run_taint(program, ctx=ctx)
        assert first.engine.fsci_runs == 1
        assert again.engine.fsci_runs == 0  # every round hit the cache
        # Cached rounds charge nothing, so even a zero budget passes.
        free = run_taint(program, ctx=ctx, budget=0)
        assert [d.message for d in free.diagnostics] \
            == [d.message for d in first.diagnostics]

    def test_engine_is_shared_across_checkers(self):
        program, result = bootstrap(LEAK_SOURCE)
        ctx = CheckerContext(program, result)
        assert isinstance(ctx.engine, DemandEngine)
        run_leaks(program, ctx=ctx)
        # The leak query's sliced FSCI stays cached on the shared
        # engine: re-running is free.
        again = run_leaks(program, ctx=ctx)
        assert again.engine.fsci_runs == 0


# ----------------------------------------------------------------------
class TestLeakChecker:
    def test_lost_allocation_flagged(self):
        program, result = bootstrap(LEAK_SOURCE)
        run = run_leaks(program, result=result)
        (site,) = run.leaked
        assert str(site).startswith("alloc@lost:")
        (d,) = run.diagnostics
        assert d.rule_id == "repro-memory-leak"
        assert d.severity == "error"
        assert "never freed" in d.message
        assert len(d.trace) == 2

    def test_freed_and_escaped_stay_silent(self):
        program, result = bootstrap(LEAK_SOURCE)
        run = run_leaks(program, result=result)
        reported = {str(s) for s in run.leaked}
        assert not any("tidy" in s or "publish" in s for s in reported)

    def test_demand_selection_skips_unrelated_clusters(self):
        program, result = bootstrap(LEAK_SOURCE)
        run = run_leaks(program, result=result)
        assert run.stats.clusters_selected < run.stats.clusters_total

    def test_whole_program_parity(self):
        program, result = bootstrap(LEAK_SOURCE)
        demand = run_leaks(program, result=result)
        whole = run_leaks(program, result=result, whole_program=True)
        assert [d.message for d in demand.diagnostics] \
            == [d.message for d in whole.diagnostics]
        assert whole.stats.clusters_selected \
            > demand.stats.clusters_selected

    def test_conditional_free_is_not_a_must_leak(self):
        program, result = bootstrap("""
            int main() {
                int *p;
                int c;
                p = malloc(4);
                if (c) {
                    free(p);
                }
                return 0;
            }
        """)
        run = run_leaks(program, result=result)
        assert run.diagnostics == []

    def test_registered_with_run_checkers(self):
        from repro.checkers import run_checkers
        program = parse_program(LEAK_SOURCE)
        report = run_checkers(program, names=["leak"])
        assert [d.rule_id for d in report.diagnostics] \
            == ["repro-memory-leak"]


# ----------------------------------------------------------------------
class TestDeadlockChecker:
    def test_abba_cycle_found_with_witness(self):
        program, result = bootstrap(DEADLOCK_SOURCE)
        run = run_deadlocks(program, result=result)
        (d,) = run.diagnostics
        assert d.rule_id == "repro-deadlock"
        assert d.severity == "warning"
        assert "obj_a" in d.message and "obj_b" in d.message
        assert "t1" in d.message and "t2" in d.message
        assert len(d.trace) == 2

    def test_spawn_entries_detected(self):
        program, result = bootstrap(DEADLOCK_SOURCE)
        run = run_deadlocks(program, result=result)
        assert run.thread_entries == ["t1", "t2"]

    def test_consistent_order_is_silent(self):
        program, result = bootstrap(ORDERED_SOURCE)
        run = run_deadlocks(program, result=result)
        assert run.diagnostics == []

    def test_single_thread_cannot_deadlock(self):
        program, result = bootstrap(DEADLOCK_SOURCE)
        run = run_deadlocks(program, result=result,
                            thread_entries=["t1"])
        assert run.diagnostics == []

    def test_whole_program_parity(self):
        program, result = bootstrap(DEADLOCK_SOURCE)
        demand = run_deadlocks(program, result=result)
        whole = run_deadlocks(program, result=result,
                              whole_program=True)
        assert [d.message for d in demand.diagnostics] \
            == [d.message for d in whole.diagnostics]

    def test_registered_with_run_checkers(self):
        from repro.checkers import run_checkers
        program = parse_program(DEADLOCK_SOURCE)
        report = run_checkers(program, names=["deadlock"])
        assert [d.rule_id for d in report.diagnostics] \
            == ["repro-deadlock"]


# ----------------------------------------------------------------------
class TestSynthGroundTruth:
    @pytest.fixture(scope="class")
    def synth(self):
        sp = generate(SynthConfig(name="truth", pointers=60, leak_webs=6,
                                  deadlock_pairs=4, seed=7))
        return sp, BootstrapAnalyzer(sp.program).run()

    def test_leak_findings_match_truth_exactly(self, synth):
        sp, result = synth
        run = run_leaks(sp.program, result=result)
        expected = {f"alloc@{t['site']}" for t in sp.leak_truth
                    if t["leaked"]}
        assert {str(s) for s in run.leaked} == expected

    def test_deadlock_cycles_match_truth_exactly(self, synth):
        sp, result = synth
        run = run_deadlocks(sp.program, result=result,
                            thread_entries=list(sp.thread_entries))
        expected = {frozenset(t["locks"]) for t in sp.deadlock_truth
                    if t["cycle"]}
        assert {frozenset(str(n) for n in c.nodes)
                for c in run.cycles} == expected

    def test_spawned_entries_recovered_from_program(self, synth):
        sp, result = synth
        run = run_deadlocks(sp.program, result=result)
        assert run.thread_entries == sorted(sp.thread_entries)


# ----------------------------------------------------------------------
class TestConcreteOracles:
    """The static clients against exhaustive concrete execution: the
    oracle's must-facts are ground truth the checkers must cover."""

    @pytest.fixture(scope="class")
    def corpus_program(self):
        # Seed chosen so bounded DFS completes without truncation.
        sp = generate(SynthConfig(
            name="oracle", pointers=20, functions=4, leak_webs=6,
            deadlock_pairs=3, hub_fractions=(), recursion=False,
            seed=13))
        old = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old, 60000))
        yield sp, BootstrapAnalyzer(sp.program).run()
        sys.setrecursionlimit(old)

    def test_heap_oracle_agrees_with_static_leaks(self, corpus_program):
        from repro.analysis.oracle import execute_heap
        sp, result = corpus_program
        facts, executor = execute_heap(sp.program, max_steps=1500,
                                       max_paths=500)
        assert not facts.truncated
        static = {str(s) for s in
                  run_leaks(sp.program, result=result).leaked}
        oracle = {str(s) for s in executor.must_leaked}
        assert oracle == static  # 0 false negatives, 0 spurious

    def test_lock_oracle_agrees_with_static_cycles(self, corpus_program):
        from repro.analysis.oracle import execute_lock_orders
        sp, result = corpus_program
        _, cycles = execute_lock_orders(sp.program,
                                        list(sp.thread_entries),
                                        max_steps=1500, max_paths=500)
        run = run_deadlocks(sp.program, result=result,
                            thread_entries=list(sp.thread_entries))
        static = {frozenset(str(n) for n in c.nodes) for c in run.cycles}
        oracle = {frozenset(str(o) for o in c) for c in cycles}
        assert oracle == static


# ----------------------------------------------------------------------
class TestLeaksCLI:
    @pytest.fixture()
    def leak_file(self, tmp_path):
        path = tmp_path / "leak.c"
        path.write_text(LEAK_SOURCE)
        return str(path)

    def test_text_report(self, leak_file, capsys):
        assert main(["leaks", leak_file]) == 0
        out = capsys.readouterr().out
        assert "repro-memory-leak" in out
        assert "demand loop" in out

    def test_fail_on_severity(self, leak_file):
        assert main(["leaks", leak_file, "--fail-on", "error"]) == 1
        assert main(["leaks", leak_file, "--fail-on-finding"]) == 1

    def test_json_output(self, leak_file, capsys):
        assert main(["leaks", leak_file, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert [d["rule"] for d in data] == ["repro-memory-leak"]
        assert data[0]["severity"] == "error"

    def test_sarif_file(self, leak_file, tmp_path):
        out_path = tmp_path / "leaks.sarif"
        assert main(["leaks", leak_file, "--sarif", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        assert data["version"] == "2.1.0"
        assert len(data["runs"][0]["results"]) == 1

    def test_budget_exit_code(self, leak_file, capsys):
        assert main(["leaks", leak_file, "--budget", "0"]) == EXIT_BUDGET


class TestDeadlocksCLI:
    @pytest.fixture()
    def dl_file(self, tmp_path):
        path = tmp_path / "dl.c"
        path.write_text(DEADLOCK_SOURCE)
        return str(path)

    def test_text_report_with_auto_threads(self, dl_file, capsys):
        assert main(["deadlocks", dl_file]) == 0
        out = capsys.readouterr().out
        assert "repro-deadlock" in out
        assert "thread entries: t1, t2" in out

    def test_fail_on_severity(self, dl_file):
        assert main(["deadlocks", dl_file, "--fail-on", "warning"]) == 1
        # Cycles are warnings, not errors.
        assert main(["deadlocks", dl_file, "--fail-on", "error"]) == 0

    def test_explicit_threads_json(self, dl_file, capsys):
        assert main(["deadlocks", dl_file, "--threads", "t1,t2",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert [d["rule"] for d in data] == ["repro-deadlock"]

    def test_unknown_thread_rejected(self, dl_file):
        with pytest.raises(SystemExit, match="unknown thread"):
            main(["deadlocks", dl_file, "--threads", "nope"])

    def test_sarif_file(self, dl_file, tmp_path):
        out_path = tmp_path / "dl.sarif"
        assert main(["deadlocks", dl_file, "--sarif",
                     str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        assert len(data["runs"][0]["results"]) == 1


class TestRacesCLIParity:
    RACY = """
        int g;
        void t1(void) { g = g + 1; }
        void t2(void) { g = g + 2; }
        int main() { t1(); t2(); return 0; }
    """

    @pytest.fixture()
    def racy_file(self, tmp_path):
        path = tmp_path / "racy.c"
        path.write_text(self.RACY)
        return str(path)

    def test_fail_on_thresholds(self, racy_file, capsys):
        args = ["races", racy_file, "--threads", "t1,t2"]
        assert main(args) == 0
        assert main(args + ["--fail-on", "warning"]) == 1
        # Races are warnings: an error threshold does not trip.
        assert main(args + ["--fail-on", "error"]) == 0
        # The legacy flag still means "fail on any warning".
        assert main(args + ["--fail-on-race"]) == 1
        capsys.readouterr()

    def test_sarif_output(self, racy_file, tmp_path, capsys):
        out_path = tmp_path / "races.sarif"
        assert main(["races", racy_file, "--threads", "t1,t2",
                     "--sarif", str(out_path)]) == 0
        assert "SARIF written" in capsys.readouterr().out
        data = json.loads(out_path.read_text())
        assert data["version"] == "2.1.0"
        results = data["runs"][0]["results"]
        assert results
        assert all(r["ruleId"] == "repro-data-race" for r in results)


# ----------------------------------------------------------------------
def _run_cli(args, seed, cwd):
    env = dict(os.environ, PYTHONHASHSEED=str(seed),
               PYTHONPATH=os.path.join(os.path.dirname(__file__), "..",
                                       "src"))
    proc = subprocess.run([sys.executable, "-m", "repro"] + args,
                          capture_output=True, text=True, env=env,
                          cwd=cwd)
    assert proc.returncode in (0, 1), proc.stderr
    return proc.stdout


class TestHashSeedDeterminism:
    """Both new checkers must be independent of dict/set iteration
    order, like every other emitter in the suite."""

    def test_leaks_stable_across_hash_seeds(self, tmp_path):
        src = tmp_path / "leak.c"
        src.write_text(LEAK_SOURCE)
        args = ["leaks", str(src), "--json"]
        outs = {_run_cli(args, seed, str(tmp_path))
                for seed in (0, 31337)}
        assert len(outs) == 1
        assert json.loads(outs.pop())

    def test_deadlocks_stable_across_hash_seeds(self, tmp_path):
        src = tmp_path / "dl.c"
        src.write_text(DEADLOCK_SOURCE)
        args = ["deadlocks", str(src), "--json"]
        outs = {_run_cli(args, seed, str(tmp_path))
                for seed in (0, 24601)}
        assert len(outs) == 1
        assert json.loads(outs.pop())


# ----------------------------------------------------------------------
#: The leak program padded with the daemon suite's independent pointer
#: webs, so a one-web edit must leave the leak/deadlock answers
#: bit-identical while the cluster store reuses unchanged fingerprints.
DAEMON_SOURCE = LEAK_SOURCE + """
int c, d;
int *r, *s;
int *t, *u;

void bind_rs(void) { r = &c; s = r; }
void bind_tu(void) { t = &d; u = t; }
"""
DAEMON_SOURCE = DAEMON_SOURCE.replace(
    "    lost();", "    bind_rs();\n    bind_tu();\n    lost();")
DAEMON_EDITED = DAEMON_SOURCE.replace("t = &d;", "t = &c;")


class TestDaemonMethods:
    @pytest.fixture()
    def server(self):
        from repro.server import AliasServer, ServerConfig
        return AliasServer(ServerConfig())

    @pytest.fixture()
    def leak_file(self, tmp_path):
        path = tmp_path / "daemon_leak.c"
        path.write_text(DAEMON_SOURCE)
        return str(path)

    @pytest.fixture()
    def dl_file(self, tmp_path):
        path = tmp_path / "daemon_dl.c"
        path.write_text(DEADLOCK_SOURCE)
        return str(path)

    def _result(self, server, method, **params):
        response = server.handle_request(
            {"id": 1, "method": method, "params": params})
        assert "error" not in response, response
        return response["result"]

    def _error(self, server, method, **params):
        response = server.handle_request(
            {"id": 1, "method": method, "params": params})
        assert "result" not in response, response
        return response["error"]

    def test_leaks_matches_one_shot(self, server, leak_file):
        from repro.core import diagnostics_to_dict
        result = self._result(server, "leaks", file=leak_file)
        from repro.frontend import parse_program as parse_file
        program = parse_file(open(leak_file).read(), entry="main",
                             path=leak_file)
        run = run_leaks(program)
        assert result["diagnostics"] == diagnostics_to_dict(
            run.diagnostics)
        assert result["leaked"] == sorted(str(s) for s in run.leaked)
        assert result["engine"]["rounds"] == run.engine.rounds

    def test_deadlocks_matches_one_shot(self, server, dl_file):
        from repro.core import diagnostics_to_dict
        result = self._result(server, "deadlocks", file=dl_file,
                              threads=["t1", "t2"])
        from repro.frontend import parse_program as parse_file
        program = parse_file(open(dl_file).read(), entry="main",
                             path=dl_file)
        run = run_deadlocks(program, thread_entries=["t1", "t2"])
        assert result["diagnostics"] == diagnostics_to_dict(
            run.diagnostics)
        assert result["cycles"] == [c.key for c in run.cycles]

    def test_deadlocks_default_entries(self, server, dl_file):
        result = self._result(server, "deadlocks", file=dl_file)
        assert result["thread_entries"] == ["t1", "t2"]
        assert result["cycles"]

    def test_queries_cached_per_shape(self, server, dl_file):
        from repro.server import protocol
        first = self._result(server, "deadlocks", file=dl_file)
        again = self._result(server, "deadlocks", file=dl_file)
        assert first == again
        error = self._error(server, "deadlocks", file=dl_file,
                            threads=["nope"])
        assert error["code"] == protocol.INVALID_PARAMS
        error = self._error(server, "deadlocks", file=dl_file,
                            threads="t1")
        assert error["code"] == protocol.INVALID_PARAMS

    def test_one_function_edit_invalidates_and_reuses(
            self, server, leak_file):
        before = self._result(server, "leaks", file=leak_file)
        with open(leak_file, "w") as handle:
            handle.write(DAEMON_EDITED)
        self._result(server, "invalidate", file=leak_file)
        after = self._result(server, "leaks", file=leak_file)
        # Editing the unrelated t/u web must not change the leak
        # verdicts, and the reload reuses every unchanged cluster.
        assert after["diagnostics"] == before["diagnostics"]
        assert after["leaked"] == before["leaked"]
        refresh = after["refresh"]
        assert 0 < refresh["reanalyzed"] < refresh["clusters"]
        assert refresh["reused"] \
            == refresh["clusters"] - refresh["reanalyzed"]


# ----------------------------------------------------------------------
class TestDemandBench:
    def test_small_run_meets_acceptance(self, tmp_path):
        from repro.bench.demand import (
            render,
            run_oracle_corpus,
            run_savings,
            violations,
        )
        data = {
            "savings": run_savings(pointers=60, leak_webs=6,
                                   deadlock_pairs=2, seed=7, repeats=1),
            "oracle": run_oracle_corpus(seeds=(13,), max_steps=1500,
                                        max_paths=500),
        }
        assert violations(data) == []
        text = render(data)
        assert "Demand engine" in text
        assert "0 leak FN, 0 deadlock FN" in text

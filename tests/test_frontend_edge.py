"""Frontend edge cases: the long tail of mini-C the corpus exercises."""

import pytest

from repro import parse_program
from repro.analysis import Andersen, execute
from repro.errors import NormalizationError, ParseError
from repro.ir import AllocSite, CallStmt, Var


def pts(src, name, func="main"):
    prog = parse_program(src)
    an = Andersen(prog).run()
    var = Var(name, func)
    if var not in prog.pointers:
        var = Var(name)
    return prog, sorted(str(o) for o in an.points_to(var))


class TestDeclarations:
    def test_local_shadowing_global(self):
        prog, p = pts("""
            int g; int *p;
            int main() { int *p = &g; return 0; }
        """, "p", "main")
        assert p == ["g"]

    def test_block_scoped_redeclaration(self):
        prog, p = pts("""
            int a, b;
            int main() {
                int *p = &a;
                { int *p = &b; }
                return 0;
            }
        """, "p", "main")
        assert p == ["a"]   # outer p untouched by inner block

    def test_typedef_in_function(self):
        prog, p = pts("""
            typedef int *iptr;
            int a;
            int main() { iptr p = &a; return 0; }
        """, "p", "main")
        assert p == ["a"]

    def test_multi_declarator_with_inits(self):
        prog, _ = pts("""
            int a, b;
            int main() { int *p = &a, *q = &b; return 0; }
        """, "p", "main")
        an = Andersen(prog).run()
        assert sorted(map(str, an.points_to(Var("q", "main")))) == ["b"]

    def test_enum_declaration(self):
        prog = parse_program("""
            enum color { RED, GREEN };
            int main() { int c; c = 1; return 0; }
        """)
        assert prog is not None

    def test_union_treated_as_struct(self):
        prog = parse_program("""
            union u { int *p; int x; };
            int a;
            int main() { union u v; v.p = &a; return 0; }
        """)
        an = Andersen(prog).run()
        assert Var("a") in an.points_to(Var("v__p", "main"))


class TestExpressions:
    def test_chained_assignment(self):
        prog, _ = pts("""
            int a; int *p, *q;
            int main() { q = p = &a; return 0; }
        """, "p", "main")
        an = Andersen(prog).run()
        assert Var("a") in an.points_to(Var("q"))

    def test_address_of_deref_roundtrip(self):
        prog, p = pts("""
            int a; int *x;
            int main() { x = &a; int *y = &*x; return 0; }
        """, "y", "main")
        assert p == ["a"]

    def test_deref_of_addrof(self):
        prog = parse_program("""
            int a; int *p;
            int main() { p = &a; int v = *&a; return 0; }
        """)
        assert prog is not None

    def test_ternary_nested(self):
        prog, p = pts("""
            int a, b, c;
            int main() { int *p = a ? &a : (b ? &b : &c); return 0; }
        """, "p", "main")
        assert p == ["a", "b", "c"]

    def test_logical_ops_evaluate_operands(self):
        prog = parse_program("""
            int a; int *p, *q;
            int main() { if ((p = &a) && q) { } return 0; }
        """)
        an = Andersen(prog).run()
        assert Var("a") in an.points_to(Var("p"))

    def test_cast_chain(self):
        prog, p = pts("""
            int a;
            int main() { int *p = (int *)(void *)&a; return 0; }
        """, "p", "main")
        assert p == ["a"]

    def test_sizeof_does_not_evaluate(self):
        prog = parse_program("""
            int *p;
            int main() { int n = sizeof(*p); return 0; }
        """)
        assert prog is not None

    def test_pointer_difference_opaque(self):
        prog = parse_program("""
            int buf[4]; int *p, *q;
            int main() { p = buf; q = buf; int d = q - p; return 0; }
        """)
        assert prog is not None

    def test_compound_assignment_keeps_target(self):
        prog, p = pts("""
            int buf[8];
            int main() { int *p = buf; p += 2; return 0; }
        """, "p", "main")
        assert p == ["buf"]

    def test_string_literal_opaque(self):
        prog = parse_program("""
            int main() { char *s; s = "hello"; return 0; }
        """)
        assert prog is not None


class TestControlFlow:
    def test_do_while_executes_once(self):
        prog = parse_program("""
            int a; int *p;
            int main() { do { p = &a; } while (0); return 0; }
        """)
        orc = execute(prog)
        assert orc.points_to(Var("p")) == frozenset({Var("a")})

    def test_nested_loops_with_breaks(self):
        prog = parse_program("""
            int a, b; int *p;
            int main() {
                while (a) {
                    while (b) { p = &a; break; }
                    break;
                }
                return 0;
            }
        """)
        orc = execute(prog)
        assert Var("a") in orc.points_to(Var("p")) or True

    def test_for_with_comma_step(self):
        prog = parse_program("""
            int main() { int i, j; for (i = 0; i < 3; i++, j++) { } return 0; }
        """)
        assert prog is not None

    def test_return_inside_switch(self):
        prog = parse_program("""
            int a, b; int *p;
            int *pick(int k) {
                switch (k) {
                case 0: return &a;
                default: return &b;
                }
                return 0;
            }
            int main() { int *p = pick(1); return 0; }
        """)
        orc = execute(prog)
        assert orc.points_to(Var("p", "main")) == \
            frozenset({Var("a"), Var("b")})

    def test_unreachable_code_after_return(self):
        prog = parse_program("""
            int a; int *p;
            int main() { return 0; p = &a; }
        """)
        orc = execute(prog)
        assert orc.points_to(Var("p")) == frozenset()

    def test_empty_function_body(self):
        prog = parse_program("void nop(void) { } int main() { nop(); return 0; }")
        assert "nop" in prog.functions


class TestFunctions:
    def test_recursive_direct(self):
        prog = parse_program("""
            int n; int *acc;
            void count(int k) { if (k) { acc = &n; count(k - 1); } }
            int main() { count(3); return 0; }
        """)
        an = Andersen(prog).run()
        assert Var("n") in an.points_to(Var("acc"))

    def test_call_result_as_argument(self):
        prog, p = pts("""
            int g;
            int *inner(void) { return &g; }
            int *outer(int *x) { return x; }
            int main() { int *p = outer(inner()); return 0; }
        """, "p", "main")
        assert p == ["g"]

    def test_void_return(self):
        prog = parse_program("""
            void setter(int **slot, int *v) { *slot = v; }
            int g; int *p;
            int main() { setter(&p, &g); return 0; }
        """)
        an = Andersen(prog).run()
        assert an.points_to(Var("p")) == frozenset({Var("g")})

    def test_too_few_arguments_tolerated(self):
        prog = parse_program("""
            int g;
            int *f(int *a, int *b) { return a; }
            int main() { int *p = f(&g); return 0; }
        """)
        assert prog is not None

    def test_function_pointer_in_typedef_call(self):
        prog = parse_program("""
            typedef int *(*getter)(void);
            int g;
            int *get_g(void) { return &g; }
            int main() { getter fn = get_g; int *p = fn(); return 0; }
        """)
        an = Andersen(prog).run()
        assert Var("g") in an.points_to(Var("p", "main"))

    def test_prototype_then_definition(self):
        prog = parse_program("""
            int *make(void);
            int g;
            int main() { int *p = make(); return 0; }
            int *make(void) { return &g; }
        """)
        an = Andersen(prog).run()
        assert Var("g") in an.points_to(Var("p", "main"))


class TestStructsDeep:
    def test_struct_pointer_in_struct(self):
        prog = parse_program("""
            struct inner { int *data; };
            struct outer { struct inner *in; };
            int g;
            int main() {
                struct inner i;
                struct outer o;
                o.in = &i;
                i.data = &g;
                int *p = o.in->data;
                return 0;
            }
        """)
        an = Andersen(prog).run()
        assert Var("g") in an.points_to(Var("p", "main"))

    def test_array_of_structs_collapses(self):
        prog = parse_program("""
            struct S { int *f; };
            int g;
            struct S table[4];
            int main() { table[1].f = &g; int *p = table[2].f; return 0; }
        """)
        an = Andersen(prog).run()
        assert Var("g") in an.points_to(Var("p", "main"))

    def test_self_referential_two_hops_via_summary(self):
        """Deep traversal falls back to the per-field summary cell."""
        prog = parse_program("""
            struct node { struct node *next; int *val; };
            int g;
            int main() {
                struct node *a = malloc(16);
                struct node *b = malloc(16);
                a->next = b;
                b->val = &g;
                int *p = a->next->val;
                return 0;
            }
        """)
        an = Andersen(prog).run()
        assert Var("g") in an.points_to(Var("p", "main"))

    def test_anonymous_struct_variable(self):
        prog = parse_program("""
            int g;
            struct { int *f; } box;
            int main() { box.f = &g; int *p = box.f; return 0; }
        """)
        an = Andersen(prog).run()
        assert Var("g") in an.points_to(Var("p", "main"))


class TestDiagnostics:
    def test_missing_main(self):
        with pytest.raises(NormalizationError):
            parse_program("int helper(void) { return 0; }")

    def test_lexer_error_location(self):
        with pytest.raises(ParseError) as info:
            parse_program("int main() {\n  @;\n}")
        assert info.value.line == 2

    def test_field_of_undefined_struct_collapses(self):
        """Opaque struct pointers degrade to field-insensitive access
        (sound), rather than failing the build."""
        prog = parse_program("""
            struct ghost;
            int main() { struct ghost *g; int *p = g->f; return 0; }
        """)
        assert prog is not None

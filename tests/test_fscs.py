"""FSCS cluster analysis: origins, context-sensitive queries, covers."""

import pytest

from repro.analysis import (
    AddrTerm,
    ClusterFSCS,
    Steensgaard,
    execute,
    whole_program_fscs,
)
from repro.core import relevant_statements
from repro.errors import AnalysisBudgetExceeded
from repro.ir import Loc, ProgramBuilder, Var

from .helpers import (
    call_chain_program,
    diamond_program,
    exit_loc,
    figure2_program,
    figure5_program,
    v,
)


def cluster_for(prog, members):
    steens = Steensgaard(prog).run()
    cluster = set()
    for m in members:
        cluster |= steens.partition_of(m)
    slice_ = relevant_statements(prog, steens, cluster)
    return ClusterFSCS(prog,
                       cluster=[m for m in cluster if isinstance(m, Var)],
                       tracked=slice_.vp, relevant=slice_.statements)


class TestPointsToQueries:
    def test_flow_sensitive_points_to(self):
        prog = diamond_program()
        ca = cluster_for(prog, [v("p", "main")])
        end = exit_loc(prog)
        assert ca.points_to(v("p", "main"), end) == \
            frozenset({v("c", "main")})

    def test_points_to_before_strong_update(self):
        prog = diamond_program()
        ca = cluster_for(prog, [v("p", "main")])
        cfg = prog.cfg_of("main")
        # Location of q = p (the Copy node).
        from repro.ir import Copy
        copy_node = next(i for i in cfg.nodes()
                         if isinstance(cfg.stmt(i), Copy))
        pts = ca.points_to(v("q", "main"), Loc("main", copy_node))
        assert pts == frozenset({v("a", "main"), v("b", "main")})

    def test_figure2_full_pipeline(self):
        prog = figure2_program()
        ca = cluster_for(prog, [v("q", "main")])
        end = exit_loc(prog)
        # Flow-sensitively, q ends pointing only to c.
        assert ca.points_to(v("q", "main"), end) == \
            frozenset({v("c", "main")})

    def test_whole_program_mode(self):
        prog = figure2_program()
        ca = whole_program_fscs(prog)
        end = exit_loc(prog)
        assert ca.points_to(v("q", "main"), end) == \
            frozenset({v("c", "main")})


class TestMayAlias:
    def test_alias_via_shared_origin(self):
        prog = figure2_program()
        ca = cluster_for(prog, [v("q", "main")])
        end = exit_loc(prog)
        assert ca.may_alias(v("q", "main"), v("r", "main"), end)
        assert not ca.may_alias(v("q", "main"), v("p", "main"), end)

    def test_alias_through_uninitialized_common_source(self):
        """x = z; y = z with z never initialized: theorem-5 aliasing via
        the shared entry origin."""
        b = ProgramBuilder()
        with b.function("main") as f:
            f.copy("x", "z")
            f.copy("y", "z")
        prog = b.build()
        ca = cluster_for(prog, [v("x", "main")])
        end = exit_loc(prog)
        assert ca.may_alias(v("x", "main"), v("y", "main"), end)

    def test_null_pointers_do_not_alias(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.null("x")
            f.null("y")
        prog = b.build()
        ca = cluster_for(prog, [v("x", "main")])
        end = exit_loc(prog)
        assert not ca.may_alias(v("x", "main"), v("y", "main"), end)

    def test_alias_set(self):
        prog = figure2_program()
        ca = cluster_for(prog, [v("q", "main")])
        end = exit_loc(prog)
        aliases = ca.alias_set(v("q", "main"), end)
        assert v("r", "main") in aliases
        assert v("p", "main") not in aliases


class TestContextSensitivity:
    def _two_callers_program(self):
        """id() called from two sites with different pointers: context
        sensitivity distinguishes them, context-insensitive smears."""
        b = ProgramBuilder()
        b.global_var("out")
        with b.function("ident", params=("ip",)) as f:
            f.copy("out", "ip")
        with b.function("caller1") as f:
            f.addr("c1p", "o1")
            f.call("ident", ["c1p"])
        with b.function("caller2") as f:
            f.addr("c2p", "o2")
            f.call("ident", ["c2p"])
        with b.function("main") as f:
            f.call("caller1")
            f.call("caller2")
        return b.build()

    def test_context_insensitive_smears(self):
        prog = self._two_callers_program()
        ca = cluster_for(prog, [Var("out")])
        cfg = prog.cfg_of("ident")
        loc = Loc("ident", cfg.exit)
        pts = ca.points_to(Var("out"), loc)
        assert pts == frozenset({v("o1", "caller1"), v("o2", "caller2")})

    def test_context_sensitive_distinguishes(self):
        prog = self._two_callers_program()
        ca = cluster_for(prog, [Var("out")])
        loc = Loc("ident", prog.cfg_of("ident").exit)
        pts1 = ca.points_to(Var("out"), loc,
                            context=["main", "caller1", "ident"])
        pts2 = ca.points_to(Var("out"), loc,
                            context=["main", "caller2", "ident"])
        assert pts1 == frozenset({v("o1", "caller1")})
        assert pts2 == frozenset({v("o2", "caller2")})

    def test_context_must_end_at_query_function(self):
        prog = self._two_callers_program()
        ca = cluster_for(prog, [Var("out")])
        loc = Loc("ident", prog.cfg_of("ident").exit)
        with pytest.raises(ValueError):
            ca.points_to(Var("out"), loc, context=["main", "caller1"])

    def test_context_must_start_at_entry(self):
        prog = self._two_callers_program()
        ca = cluster_for(prog, [Var("out")])
        loc = Loc("ident", prog.cfg_of("ident").exit)
        with pytest.raises(ValueError):
            ca.points_to(Var("out"), loc, context=["caller1", "ident"])

    def test_unrelated_context_hop_rejected(self):
        prog = self._two_callers_program()
        ca = cluster_for(prog, [Var("out")])
        loc = Loc("ident", prog.cfg_of("ident").exit)
        with pytest.raises(ValueError):
            ca.points_to(Var("out"), loc,
                         context=["main", "ident", "ident"])

    def test_union_of_contexts_equals_insensitive(self):
        prog = self._two_callers_program()
        ca = cluster_for(prog, [Var("out")])
        loc = Loc("ident", prog.cfg_of("ident").exit)
        union = (ca.points_to(Var("out"), loc,
                              context=["main", "caller1", "ident"])
                 | ca.points_to(Var("out"), loc,
                                context=["main", "caller2", "ident"]))
        assert union == ca.points_to(Var("out"), loc)


class TestAnalyzeAndStats:
    def test_analyze_reports_stats(self):
        prog = figure5_program()
        ca = cluster_for(prog, [Var("x")])
        stats = ca.analyze()
        assert stats["summarized_functions"] >= 2
        assert stats["engine_steps"] > 0

    def test_budget_enforced(self):
        prog = figure5_program()
        steens = Steensgaard(prog).run()
        part = steens.partition_of(Var("x"))
        slice_ = relevant_statements(prog, steens, part)
        ca = ClusterFSCS(prog,
                         cluster=[m for m in part if isinstance(m, Var)],
                         tracked=slice_.vp, relevant=slice_.statements,
                         budget=2)
        with pytest.raises(AnalysisBudgetExceeded):
            ca.analyze()

    def test_summary_tuples_readable(self):
        prog = figure5_program()
        ca = cluster_for(prog, [Var("x")])
        tuples = ca.summary_tuples("foo")
        assert all("(" in str(t) for t in tuples)


class TestSoundness:
    @pytest.mark.parametrize("make", [figure2_program, diamond_program,
                                      call_chain_program])
    def test_fscs_sound_at_exit(self, make):
        prog = make()
        orc = execute(prog)
        ca = whole_program_fscs(prog)
        end = exit_loc(prog)
        cfg = prog.cfg_of("main")
        for p in prog.pointers:
            concrete = orc.pts_after(Loc("main", cfg.exit), p)
            assert concrete <= ca.points_to(p, end), str(p)

    def test_interprocedural_origin(self):
        prog = call_chain_program()
        ca = whole_program_fscs(prog)
        end = exit_loc(prog)
        assert ca.points_to(v("q", "main"), end) == \
            frozenset({v("obj", "main")})

"""Parser tests: declarations, statements, expressions."""

import pytest

from repro.errors import ParseError
from repro.frontend import parse_source
from repro.frontend import ast_nodes as A
from repro.frontend.types import (
    ArrayType,
    FuncType,
    IntType,
    PointerType,
    StructType,
)


def parse(src):
    unit, structs = parse_source(src)
    return unit


def first_func(src):
    return parse(src).functions[0]


class TestDeclarations:
    def test_simple_global(self):
        unit = parse("int x;")
        assert unit.globals[0].decls[0].name == "x"
        assert isinstance(unit.globals[0].decls[0].type, IntType)

    def test_pointer_levels(self):
        unit = parse("int ***p;")
        t = unit.globals[0].decls[0].type
        depth = 0
        while isinstance(t, PointerType):
            depth += 1
            t = t.base
        assert depth == 3

    def test_multiple_declarators(self):
        unit = parse("int a, *b, **c;")
        types = [d.type for d in unit.globals[0].decls]
        assert isinstance(types[0], IntType)
        assert isinstance(types[1], PointerType)
        assert isinstance(types[2].base, PointerType)

    def test_array(self):
        unit = parse("int a[10];")
        t = unit.globals[0].decls[0].type
        assert isinstance(t, ArrayType) and t.size == 10

    def test_array_of_pointers(self):
        unit = parse("int *a[4];")
        t = unit.globals[0].decls[0].type
        assert isinstance(t, ArrayType)
        assert isinstance(t.base, PointerType)

    def test_initializer(self):
        unit = parse("int x = 5;")
        assert isinstance(unit.globals[0].decls[0].init, A.IntLit)

    def test_qualifiers_skipped(self):
        unit = parse("static const unsigned long x;")
        assert unit.globals[0].decls[0].name == "x"

    def test_extern_prototype(self):
        unit = parse("extern int f(int x);\nint g() { return 0; }")
        assert [f.name for f in unit.functions] == ["g"]


class TestStructs:
    def test_struct_definition(self):
        unit, structs = parse_source("struct S { int a; int *b; };")
        assert structs.is_defined("S")
        fields = structs.fields_of(StructType("S"))
        assert [f[0] for f in fields] == ["a", "b"]

    def test_nested_struct(self):
        unit, structs = parse_source(
            "struct In { int x; }; struct Out { struct In i; int y; };")
        flat = structs.flatten(StructType("Out"), "o")
        assert [f[0] for f in flat] == ["o__i__x", "o__y"]

    def test_anonymous_struct_typedef(self):
        unit, structs = parse_source("typedef struct { int x; } T; T t;")
        decl = unit.globals[0].decls[0]
        assert isinstance(decl.type, StructType)

    def test_struct_variable(self):
        unit = parse("struct S { int x; }; struct S s;")
        assert isinstance(unit.globals[0].decls[0].type, StructType)

    def test_recursive_struct_through_pointer(self):
        unit, structs = parse_source(
            "struct node { struct node *next; int v; };")
        fields = structs.fields_of(StructType("node"))
        assert isinstance(fields[0][1], PointerType)


class TestTypedefs:
    def test_scalar_typedef(self):
        unit = parse("typedef int myint; myint x;")
        assert isinstance(unit.globals[0].decls[0].type, IntType)

    def test_pointer_typedef(self):
        unit = parse("typedef int *iptr; iptr p;")
        assert isinstance(unit.globals[0].decls[0].type, PointerType)

    def test_function_pointer_typedef(self):
        unit = parse("typedef int (*handler)(int); handler h;")
        t = unit.globals[0].decls[0].type
        assert isinstance(t, PointerType)
        assert isinstance(t.base, FuncType)


class TestFunctions:
    def test_definition(self):
        fn = first_func("int add(int a, int b) { return 0; }")
        assert fn.name == "add"
        assert [p.name for p in fn.params] == ["a", "b"]

    def test_void_params(self):
        fn = first_func("int f(void) { return 0; }")
        assert fn.params == []

    def test_pointer_param(self):
        fn = first_func("void f(int **pp) { }")
        assert isinstance(fn.params[0].type.base, PointerType)

    def test_array_param_decays(self):
        fn = first_func("void f(int a[]) { }")
        assert isinstance(fn.params[0].type, PointerType)

    def test_variadic(self):
        fn = first_func("void f(int a, ...) { }")
        assert [p.name for p in fn.params] == ["a"]

    def test_function_pointer_param(self):
        fn = first_func("void f(int (*cb)(int)) { }")
        assert fn.params[0].name == "cb"
        assert isinstance(fn.params[0].type, FuncType) or \
            isinstance(fn.params[0].type, PointerType)


class TestStatements:
    def body(self, code):
        return first_func(f"void f() {{ {code} }}").body.body

    def test_if_else(self):
        (stmt,) = self.body("if (1) x = 1; else x = 2;")
        assert isinstance(stmt, A.If) and stmt.otherwise is not None

    def test_while(self):
        (stmt,) = self.body("while (x) x = x - 1;")
        assert isinstance(stmt, A.While) and not stmt.do_while

    def test_do_while(self):
        (stmt,) = self.body("do x = 1; while (x);")
        assert isinstance(stmt, A.While) and stmt.do_while

    def test_for_full(self):
        (stmt,) = self.body("for (i = 0; i < 3; i++) x = i;")
        assert isinstance(stmt, A.For)
        assert stmt.init is not None and stmt.cond is not None

    def test_for_with_decl(self):
        (stmt,) = self.body("for (int i = 0; i < 3; i++) ;")
        assert isinstance(stmt.init, A.DeclStmt)

    def test_for_empty_clauses(self):
        (stmt,) = self.body("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_switch_arms(self):
        (stmt,) = self.body(
            "switch (x) { case 1: a = 1; break; case 2: a = 2; break; "
            "default: a = 3; }")
        assert isinstance(stmt, A.Switch)
        assert len(stmt.arms) == 3

    def test_return_value(self):
        (stmt,) = self.body("return x;")
        assert isinstance(stmt, A.Return) and stmt.value is not None

    def test_break_continue(self):
        stmts = self.body("while (1) { break; } while (1) { continue; }")
        assert isinstance(stmts[0].body.body[0], A.Break)
        assert isinstance(stmts[1].body.body[0], A.Continue)

    def test_goto_becomes_return(self):
        (stmt,) = self.body("goto out;")
        assert isinstance(stmt, A.Return)

    def test_label_skipped(self):
        (stmt,) = self.body("out: x = 1;")
        assert isinstance(stmt, A.ExprStmt)

    def test_empty_statement(self):
        (stmt,) = self.body(";")
        assert isinstance(stmt, A.Empty)

    def test_nested_blocks(self):
        (stmt,) = self.body("{ { x = 1; } }")
        assert isinstance(stmt, A.Block)


class TestExpressions:
    def expr(self, code):
        (stmt,) = first_func(f"void f() {{ {code}; }}").body.body
        return stmt.expr

    def test_assignment(self):
        e = self.expr("x = y")
        assert isinstance(e, A.Assign) and e.op == "="

    def test_compound_assignment(self):
        e = self.expr("x += 2")
        assert isinstance(e, A.Assign) and e.op == "+="

    def test_precedence(self):
        e = self.expr("x = a + b * c")
        assert isinstance(e.rhs, A.Binary) and e.rhs.op == "+"
        assert e.rhs.right.op == "*"

    def test_comparison_chain(self):
        e = self.expr("x = a < b == c")
        assert e.rhs.op == "=="

    def test_logical_ops(self):
        e = self.expr("x = a && b || c")
        assert e.rhs.op == "||"

    def test_unary_deref_addr(self):
        e = self.expr("*p = &q")
        assert isinstance(e.lhs, A.Unary) and e.lhs.op == "*"
        assert isinstance(e.rhs, A.Unary) and e.rhs.op == "&"

    def test_double_deref(self):
        e = self.expr("x = **pp")
        assert e.rhs.op == "*" and e.rhs.operand.op == "*"

    def test_member_access(self):
        e = self.expr("x = s.f")
        assert isinstance(e.rhs, A.Member) and not e.rhs.arrow

    def test_arrow_access(self):
        e = self.expr("x = p->f")
        assert isinstance(e.rhs, A.Member) and e.rhs.arrow

    def test_chained_member(self):
        e = self.expr("x = p->a.b")
        assert isinstance(e.rhs, A.Member)
        assert isinstance(e.rhs.base, A.Member) and e.rhs.base.arrow

    def test_index(self):
        e = self.expr("x = a[i]")
        assert isinstance(e.rhs, A.Index)

    def test_call_args(self):
        e = self.expr("g(a, b, c)")
        assert isinstance(e, A.Call) and len(e.args) == 3

    def test_call_through_pointer(self):
        e = self.expr("(*fp)(a)")
        assert isinstance(e, A.Call)
        assert isinstance(e.fn, A.Unary)

    def test_cast(self):
        e = self.expr("x = (int *)p")
        assert isinstance(e.rhs, A.Cast)
        assert isinstance(e.rhs.type, PointerType)

    def test_sizeof_type(self):
        e = self.expr("x = sizeof(int)")
        assert isinstance(e.rhs, A.SizeOf)

    def test_sizeof_expr(self):
        e = self.expr("x = sizeof x")
        assert isinstance(e.rhs, A.SizeOf)

    def test_ternary(self):
        e = self.expr("x = c ? a : b")
        assert isinstance(e.rhs, A.Ternary)

    def test_comma(self):
        e = self.expr("x = (a, b)")
        assert isinstance(e.rhs, A.Comma)

    def test_null_literal(self):
        e = self.expr("p = NULL")
        assert isinstance(e.rhs, A.NullLit)

    def test_pre_post_increment(self):
        e1 = self.expr("++x")
        e2 = self.expr("x++")
        assert e1.op == "++" and e2.op == "p++"

    def test_nested_parens(self):
        e = self.expr("x = ((a))")
        assert isinstance(e.rhs, A.Ident)


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int x")

    def test_unbalanced_brace(self):
        with pytest.raises(ParseError):
            parse("void f() { ")

    def test_bad_expression(self):
        with pytest.raises(ParseError):
            parse("void f() { x = ; }")

    def test_struct_without_tag_or_body(self):
        with pytest.raises(ParseError):
            parse("struct;")

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as info:
            parse("void f() {\n x = ;\n}")
        assert info.value.line == 2

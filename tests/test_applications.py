"""Lockset computation and race detection."""

import pytest

from repro import parse_program
from repro.applications import (
    LocksetAnalysis,
    RaceDetector,
    find_lock_sites,
    lock_pointers,
    thread_assignment,
)
from repro.ir import Loc, Var

DRIVER = r"""
int lock_obj_a, lock_obj_b;
int counter_safe, counter_racy, counter_wronglock;
int *lock_a, *lock_b;

void lock(int *l) { }
void unlock(int *l) { }

void thread1(void) {
    lock(lock_a);
    counter_safe = counter_safe + 1;
    unlock(lock_a);
    lock(lock_a);
    counter_wronglock = counter_wronglock + 1;
    unlock(lock_a);
    counter_racy = counter_racy + 1;
}

void thread2(void) {
    lock(lock_a);
    counter_safe = counter_safe + 1;
    unlock(lock_a);
    lock(lock_b);
    counter_wronglock = counter_wronglock + 1;
    unlock(lock_b);
    lock(lock_a);
    counter_racy = counter_racy + 1;
    unlock(lock_a);
}

int main() {
    lock_a = &lock_obj_a;
    lock_b = &lock_obj_b;
    thread1();
    thread2();
    return 0;
}
"""


@pytest.fixture(scope="module")
def driver():
    return parse_program(DRIVER)


@pytest.fixture(scope="module")
def warnings(driver):
    return RaceDetector(driver, ["thread1", "thread2"]).run()


class TestLockSites:
    def test_all_sites_found(self, driver):
        sites = find_lock_sites(driver)
        assert len(sites) == 10
        assert sum(1 for s in sites if s.is_lock) == 5

    def test_lock_pointers(self, driver):
        assert lock_pointers(driver) == \
            frozenset({Var("lock_a"), Var("lock_b")})

    def test_site_pointer_resolution(self, driver):
        sites = find_lock_sites(driver)
        assert all(s.pointer in (Var("lock_a"), Var("lock_b"))
                   for s in sites)


class TestLocksets:
    def test_lock_held_after_acquire(self, driver):
        result = LocksetAnalysis(driver).run()
        first_lock = next(s for s in result.sites
                          if s.is_lock and s.loc.function == "thread1")
        assert Var("lock_obj_a") in result.held_after(first_lock.loc)

    def test_released_after_unlock(self, driver):
        result = LocksetAnalysis(driver).run()
        first_unlock = next(s for s in result.sites
                            if not s.is_lock
                            and s.loc.function == "thread1")
        assert result.held_after(first_unlock.loc) == frozenset()

    def test_resolution_is_singleton(self, driver):
        result = LocksetAnalysis(driver).run()
        for site, objs in result.resolution.items():
            assert len(objs) <= 1


class TestRaces:
    def test_unprotected_counter_flagged(self, warnings):
        assert any("counter_racy" in str(w) for w in warnings)

    def test_protected_counter_clean(self, warnings):
        assert not any("counter_safe" in str(w) for w in warnings)

    def test_different_locks_still_race(self, warnings):
        """Both threads hold a lock around counter_wronglock, but not
        the same one."""
        assert any("counter_wronglock" in str(w) for w in warnings)

    def test_warnings_cross_threads(self, warnings):
        for w in warnings:
            assert len(w.first.threads | w.second.threads) > 1

    def test_at_least_one_write_involved(self, warnings):
        for w in warnings:
            assert w.first.is_write or w.second.is_write


class TestThreadAssignment:
    def test_reachability_based(self, driver):
        threads = thread_assignment(driver, ["thread1", "thread2"])
        assert threads["thread1"] == frozenset({"thread1"})
        assert threads["thread2"] == frozenset({"thread2"})

    def test_shared_callee_tagged_with_both(self):
        prog = parse_program(r"""
            int g;
            void helper(void) { g = g + 1; }
            void t1(void) { helper(); }
            void t2(void) { helper(); }
            int main() { t1(); t2(); return 0; }
        """)
        threads = thread_assignment(prog, ["t1", "t2"])
        assert "t1" in threads["helper"] and "t2" in threads["helper"]

    def test_shared_helper_races_with_itself(self):
        prog = parse_program(r"""
            int g;
            void helper(void) { g = g + 1; }
            void t1(void) { helper(); }
            void t2(void) { helper(); }
            int main() { t1(); t2(); return 0; }
        """)
        warnings = RaceDetector(prog, ["t1", "t2"]).run()
        # The helper runs in both threads, so its unlocked increment of
        # the shared global races with itself — the thread *sets* make
        # this visible (a merged "t1+t2" label used to hide it).
        assert any(str(w.first.obj) == "g" for w in warnings)


class TestHeapRaces:
    def test_shared_heap_object(self):
        prog = parse_program(r"""
            int *shared;
            void lock(int *l) { }
            void unlock(int *l) { }
            void t1(void) { *shared = 1; }
            void t2(void) { *shared = 2; }
            int main() {
                shared = malloc(4);
                t1(); t2();
                return 0;
            }
        """)
        warnings = RaceDetector(prog, ["t1", "t2"]).run()
        assert any("alloc@" in str(w) for w in warnings)

"""Path sensitivity (paper Section 3): assumes, refinement, constraints."""

import pytest

from repro import parse_program
from repro.analysis import (
    FSCI,
    Andersen,
    ClusterFSCS,
    SatOracle,
    Steensgaard,
    execute,
    null_atom,
    whole_program_fscs,
)
from repro.analysis.summaries import ObjTerm, SummaryEngine
from repro.ir import Assume, Loc, ProgramBuilder, Var

from .helpers import exit_loc, v


class TestAssumeStatement:
    def test_str_forms(self):
        assert str(Assume(Var("p"))) == "assume p == NULL"
        assert str(Assume(Var("p"), Var("q"), False)) == "assume p != q"

    def test_not_canonical(self):
        from repro.ir import is_canonical
        assert not is_canonical(Assume(Var("p")))

    def test_builder_helper(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.assume("p", equal=False)
        prog = b.build()
        stmts = [s for _, s in prog.statements()
                 if isinstance(s, Assume)]
        assert stmts == [Assume(v("p", "main"), None, False)]


class TestFrontendEmission:
    def assumes_of(self, src):
        prog = parse_program(src)
        return prog, [s for _, s in prog.statements()
                      if isinstance(s, Assume)]

    def test_truthiness_test(self):
        prog, assumes = self.assumes_of(
            "int *p; int main() { if (p) { } return 0; }")
        assert Assume(Var("p"), None, False) in assumes  # then: p != NULL
        assert Assume(Var("p"), None, True) in assumes   # else: p == NULL

    def test_negated_truthiness(self):
        prog, assumes = self.assumes_of(
            "int *p; int main() { if (!p) { } return 0; }")
        assert assumes[0] == Assume(Var("p"), None, True)

    def test_null_comparison(self):
        prog, assumes = self.assumes_of(
            "int *p; int main() { if (p == NULL) { } return 0; }")
        assert Assume(Var("p"), None, True) in assumes

    def test_zero_comparison(self):
        prog, assumes = self.assumes_of(
            "int *p; int main() { if (p != 0) { } return 0; }")
        assert Assume(Var("p"), None, False) in assumes

    def test_pointer_equality(self):
        prog, assumes = self.assumes_of(
            "int *p, *q; int main() { if (p == q) { } return 0; }")
        assert Assume(Var("p"), Var("q"), True) in assumes
        assert Assume(Var("p"), Var("q"), False) in assumes

    def test_while_condition(self):
        prog, assumes = self.assumes_of(
            "int *p; int main() { while (p != NULL) { p = NULL; } "
            "return 0; }")
        assert Assume(Var("p"), None, False) in assumes  # body arm
        assert Assume(Var("p"), None, True) in assumes   # exit arm

    def test_non_pointer_condition_ignored(self):
        prog, assumes = self.assumes_of(
            "int x; int main() { if (x > 3) { } return 0; }")
        assert assumes == []


class TestFSCIRefinement:
    def test_nonnull_arm_refined(self):
        prog = parse_program("""
            int a; int *p;
            int main() {
                if (a) p = &a; else p = NULL;
                if (p != NULL) { int *q = p; }
                return 0;
            }
        """)
        fsci = FSCI(prog).run()
        assert fsci.points_to(Var("q", "main")) == \
            frozenset({Var("a")})

    def test_null_arm_refined(self):
        prog = parse_program("""
            int a; int *p;
            int main() {
                if (a) p = &a; else p = NULL;
                if (p == NULL) { int *r = p; }
                return 0;
            }
        """)
        fsci = FSCI(prog).run()
        assert fsci.points_to(Var("r", "main")) == frozenset()

    def test_equality_refines_both_sides(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            with f.branch() as br:
                with br.then():
                    f.addr("p", "a")
                with br.otherwise():
                    f.addr("p", "b")
            f.addr("q", "a")
            f.assume("p", "q", equal=True)
            f.copy("w", "p")
        prog = b.build()
        fsci = FSCI(prog).run()
        assert fsci.points_to(v("w", "main")) == \
            frozenset({v("a", "main")})

    def test_uninit_blocks_refinement(self):
        """Garbage can compare equal to NULL: no refinement, soundly."""
        b = ProgramBuilder()
        with b.function("main") as f:
            with f.branch() as br:
                with br.then():
                    f.addr("p", "a")
                with br.otherwise():
                    f.skip()  # p stays uninit
            f.assume("p", equal=False)   # p != NULL
            f.copy("q", "p")
        prog = b.build()
        fsci = FSCI(prog).run()
        # p may be uninit at the assume, so {a} must survive.
        assert v("a", "main") in fsci.points_to(v("q", "main"))


class TestOraclePathFiltering:
    def test_infeasible_path_dropped(self):
        prog = parse_program("""
            int a; int *p;
            int main() {
                p = &a;
                if (p == NULL) { int *dead = p; }
                return 0;
            }
        """)
        orc = execute(prog)
        assert orc.points_to(Var("dead", "main")) == frozenset()

    def test_feasible_path_kept(self):
        prog = parse_program("""
            int a; int *p;
            int main() {
                p = &a;
                if (p != NULL) { int *live = p; }
                return 0;
            }
        """)
        orc = execute(prog)
        assert orc.points_to(Var("live", "main")) == \
            frozenset({Var("a")})

    def test_uninit_never_blocks(self):
        prog = parse_program("""
            int a; int *p;
            int main() {
                if (p != NULL) { int *x = &a; }
                return 0;
            }
        """)
        orc = execute(prog)
        assert orc.points_to(Var("x", "main")) == frozenset({Var("a")})


class TestSummaryBranchConstraints:
    def test_branch_constraint_recorded(self):
        b = ProgramBuilder()
        b.global_var("p")
        b.global_var("g")
        with b.function("main") as f:
            with f.branch() as br:
                with br.then():
                    f.assume("p", equal=False)
                    f.addr("g", "a")
                with br.otherwise():
                    f.assume("p", equal=True)
                    f.null("g")
        prog = b.build()
        eng = SummaryEngine(prog, fsci=FSCI(prog).run())
        entries = eng.exit_summary("main", ObjTerm(Var("g")))
        conds = {str(t): c for t, c in entries}
        # The &a tuple carries the p != NULL branch constraint.
        addr_conds = [c for t, c in entries if str(t) == "&main::a"]
        assert addr_conds and any("$NULL$" in str(a)
                                  for c in addr_conds for a in c)

    def test_path_sensitivity_can_be_disabled(self):
        b = ProgramBuilder()
        b.global_var("p")
        b.global_var("g")
        with b.function("main") as f:
            f.assume("p", equal=False)
            f.addr("g", "a")
        prog = b.build()
        eng = SummaryEngine(prog, fsci=FSCI(prog).run(),
                            path_sensitive=False)
        entries = eng.exit_summary("main", ObjTerm(Var("g")))
        assert all(not c for _t, c in entries)

    def test_infeasible_tuple_pruned_by_oracle(self):
        """A tuple guarded by `p == NULL` is dropped when FSCI proves p
        can never be NULL there."""
        prog = parse_program("""
            int a, b; int *p; int *g;
            int main() {
                p = &a;                  /* p is never NULL */
                if (p == NULL) { g = &a; } else { g = &b; }
                return 0;
            }
        """)
        ca = whole_program_fscs(prog)
        end = exit_loc(prog)
        assert ca.points_to(Var("g"), end) == frozenset({Var("b")})

    def test_fscs_sound_with_assumes(self):
        prog = parse_program("""
            int a, b; int *p; int *g;
            int main() {
                if (a) p = &a;
                if (p == NULL) { g = &b; } else { g = p; }
                return 0;
            }
        """)
        orc = execute(prog)
        ca = whole_program_fscs(prog)
        end = exit_loc(prog)
        cfg = prog.cfg_of("main")
        concrete = orc.pts_after(Loc("main", cfg.exit), Var("g"))
        assert concrete <= ca.points_to(Var("g"), end)


class TestFlowInsensitiveIgnoreAssumes:
    def test_steensgaard_and_andersen_unaffected(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            f.assume("p", equal=True)
            f.copy("q", "p")
        prog = b.build()
        an = Andersen(prog).run()
        assert an.points_to(v("q", "main")) == frozenset({v("a", "main")})
        st = Steensgaard(prog).run()
        assert st.same_partition(v("p", "main"), v("q", "main"))

"""Error types, printer labels, and small odds and ends."""

import pytest

from repro.errors import (
    AnalysisBudgetExceeded,
    NormalizationError,
    ParseError,
    ReproError,
)
from repro.ir import location_labels

from .helpers import figure2_program


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ParseError, ReproError)
        assert issubclass(NormalizationError, ReproError)
        assert issubclass(AnalysisBudgetExceeded, ReproError)

    def test_parse_error_location_in_message(self):
        err = ParseError("boom", line=3, column=7)
        assert "3:7" in str(err)
        assert err.line == 3 and err.column == 7

    def test_parse_error_without_location(self):
        err = ParseError("boom")
        assert str(err) == "boom"

    def test_budget_error_carries_stats(self):
        err = AnalysisBudgetExceeded("engine", 1234)
        assert err.analysis == "engine"
        assert err.steps == 1234
        assert "1234" in str(err)


class TestLocationLabels:
    def test_paper_style_labels(self):
        cfg = figure2_program().cfg_of("main")
        labels = location_labels(cfg)
        real = [l for l in labels.values() if not l.startswith("<")]
        # Five canonical statements -> 1x..5x with a shared suffix.
        assert len(real) == 5
        suffixes = {l[-1] for l in real}
        assert len(suffixes) == 1
        assert sorted(int(l[:-1]) for l in real) == [1, 2, 3, 4, 5]

    def test_synthetic_nodes_marked(self):
        cfg = figure2_program().cfg_of("main")
        labels = location_labels(cfg)
        assert labels[cfg.entry].startswith("<")
        assert labels[cfg.exit].startswith("<")


class TestPackageSurface:
    def test_version(self):
        import repro
        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_analysis_exports_resolve(self):
        from repro import analysis
        for name in analysis.__all__:
            assert hasattr(analysis, name), name

    def test_ir_exports_resolve(self):
        from repro import ir
        for name in ir.__all__:
            assert hasattr(ir, name), name

    def test_core_exports_resolve(self):
        from repro import core
        for name in core.__all__:
            assert hasattr(core, name), name

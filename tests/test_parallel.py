"""The greedy parallel schedule and runner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BootstrapAnalyzer,
    Cluster,
    ParallelRunner,
    RelevantSlice,
    greedy_parts,
)
from repro.ir import Var

from .helpers import figure5_program


def make_clusters(sizes):
    out = []
    for i, s in enumerate(sizes):
        members = frozenset(Var(f"c{i}v{j}") for j in range(s))
        sl = RelevantSlice(cluster=members, vp=members,
                           statements=frozenset())
        out.append(Cluster(members=members, slice=sl,
                           origin="steensgaard", parent_size=s))
    return out


class TestGreedyParts:
    def test_every_cluster_scheduled_once(self):
        clusters = make_clusters([5, 3, 8, 1, 1, 4, 2])
        parts = greedy_parts(clusters, 3)
        flat = [c for p in parts for c in p]
        assert len(flat) == len(clusters)
        assert {id(c) for c in flat} == {id(c) for c in clusters}

    def test_at_most_requested_parts(self):
        clusters = make_clusters([1] * 20)
        assert len(greedy_parts(clusters, 5)) <= 5

    def test_single_part(self):
        clusters = make_clusters([3, 3, 3])
        parts = greedy_parts(clusters, 1)
        assert len(parts) == 1

    def test_part_closes_when_target_exceeded(self):
        """The paper's rule: close the part as soon as the accumulated
        pointer count strictly exceeds total/k."""
        clusters = make_clusters([7, 7, 7, 7])  # total 28, target 7
        parts = greedy_parts(clusters, 4)
        target = 28 / 4
        for part in parts[:-1]:
            acc = sum(c.size for c in part)
            assert acc > target                       # it closed because...
            assert acc - part[-1].size <= target      # ...of its last cluster

    def test_empty_cluster_list(self):
        assert greedy_parts([], 5) == [[]]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            greedy_parts(make_clusters([1]), 0)

    def test_more_parts_than_clusters(self):
        clusters = make_clusters([2, 2])
        parts = greedy_parts(clusters, 10)
        assert sum(len(p) for p in parts) == 2


class TestParallelRunner:
    def test_simulated_run(self):
        clusters = make_clusters([2, 3, 4])
        runner = ParallelRunner(parts=2, simulate=True)
        report = runner.run(clusters, lambda c: c.size)
        assert sorted(report.results) == [2, 3, 4]
        assert len(report.cluster_times) == 3
        assert report.max_part_time <= report.total_time + 1e-9

    def test_threaded_run(self):
        clusters = make_clusters([2, 3, 4, 5])
        runner = ParallelRunner(parts=2, simulate=False)
        report = runner.run(clusters, lambda c: c.size * 10)
        assert sorted(report.results) == [20, 30, 40, 50]

    def test_results_order_matches_clusters(self):
        clusters = make_clusters([1, 2, 3])
        runner = ParallelRunner(parts=3)
        report = runner.run(clusters, lambda c: c.size)
        assert report.results == [1, 2, 3]

    def test_integration_with_bootstrap(self):
        prog = figure5_program()
        boot = BootstrapAnalyzer(prog).run()
        report = boot.analyze_all(simulate=False)
        assert all(isinstance(r, dict) for r in report.results)


class TestGreedyProperties:
    @given(st.lists(st.integers(1, 40), min_size=1, max_size=40),
           st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_schedule_invariants(self, sizes, parts):
        clusters = make_clusters(sizes)
        schedule = greedy_parts(clusters, parts)
        # Order-preserving coverage, no duplication, part-count cap.
        flat = [c for p in schedule for c in p]
        assert [id(c) for c in flat] == [id(c) for c in clusters]
        assert 1 <= len(schedule) <= parts
        # The paper's closing rule: every non-final part exceeded the
        # target only because of its last cluster.
        target = sum(sizes) / parts
        for part in schedule[:-1]:
            acc = sum(c.size for c in part)
            assert acc - part[-1].size <= target

"""The greedy/LPT parallel schedules and runner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BootstrapAnalyzer,
    Cluster,
    ParallelRunner,
    RelevantSlice,
    cluster_cost,
    greedy_parts,
    lpt_parts,
    schedule_indices,
)
from repro.core.parallel import greedy_index_parts, lpt_index_parts
from repro.ir import Var

from .helpers import figure5_program


def make_clusters(sizes):
    out = []
    for i, s in enumerate(sizes):
        members = frozenset(Var(f"c{i}v{j}") for j in range(s))
        sl = RelevantSlice(cluster=members, vp=members,
                           statements=frozenset())
        out.append(Cluster(members=members, slice=sl,
                           origin="steensgaard", parent_size=s))
    return out


class TestGreedyParts:
    def test_every_cluster_scheduled_once(self):
        clusters = make_clusters([5, 3, 8, 1, 1, 4, 2])
        parts = greedy_parts(clusters, 3)
        flat = [c for p in parts for c in p]
        assert len(flat) == len(clusters)
        assert {id(c) for c in flat} == {id(c) for c in clusters}

    def test_at_most_requested_parts(self):
        clusters = make_clusters([1] * 20)
        assert len(greedy_parts(clusters, 5)) <= 5

    def test_single_part(self):
        clusters = make_clusters([3, 3, 3])
        parts = greedy_parts(clusters, 1)
        assert len(parts) == 1

    def test_part_closes_when_target_exceeded(self):
        """The paper's rule: close the part as soon as the accumulated
        pointer count strictly exceeds total/k."""
        clusters = make_clusters([7, 7, 7, 7])  # total 28, target 7
        parts = greedy_parts(clusters, 4)
        target = 28 / 4
        for part in parts[:-1]:
            acc = sum(c.size for c in part)
            assert acc > target                       # it closed because...
            assert acc - part[-1].size <= target      # ...of its last cluster

    def test_empty_cluster_list(self):
        assert greedy_parts([], 5) == [[]]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            greedy_parts(make_clusters([1]), 0)

    def test_more_parts_than_clusters(self):
        clusters = make_clusters([2, 2])
        parts = greedy_parts(clusters, 10)
        assert sum(len(p) for p in parts) == 2


class TestLptParts:
    def test_every_cluster_scheduled_once(self):
        clusters = make_clusters([5, 3, 8, 1, 1, 4, 2])
        parts = lpt_parts(clusters, 3)
        flat = [c for p in parts for c in p]
        assert len(flat) == len(clusters)
        assert {id(c) for c in flat} == {id(c) for c in clusters}

    def test_at_most_requested_parts(self):
        clusters = make_clusters([1] * 20)
        assert len(lpt_parts(clusters, 5)) <= 5

    def test_empty_cluster_list(self):
        assert lpt_parts([], 5) == [[]]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            lpt_parts(make_clusters([1]), 0)

    def test_balances_adversarial_input(self):
        """[5, 5, 4, 3, 3] on 2 parts separates the schedulers: the
        paper's sweep closes {5,5,4}=14, LPT lands at {5,4}/{5,3,3}=11."""
        costs = [5, 5, 4, 3, 3]
        greedy = greedy_index_parts(costs, 2)
        lpt = lpt_index_parts(costs, 2)

        def max_cost(schedule):
            return max(sum(costs[i] for i in p) for p in schedule)

        assert max_cost(greedy) == 14
        assert max_cost(lpt) == 11

    def test_cluster_cost_floors_at_one(self):
        (c,) = make_clusters([0])
        assert c.slice.size == 0
        assert cluster_cost(c) == 1

    def test_schedule_indices_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError):
            schedule_indices(make_clusters([1]), 2, scheduler="fifo")


class TestLptProperties:
    @given(st.lists(st.integers(1, 40), min_size=1, max_size=40),
           st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_schedule_invariants(self, costs, parts):
        schedule = lpt_index_parts(costs, parts)
        flat = sorted(i for p in schedule for i in p)
        # Coverage without drop or duplication, within the part cap.
        assert flat == list(range(len(costs)))
        assert 1 <= len(schedule) <= parts

    @given(st.lists(st.integers(1, 40), min_size=1, max_size=40),
           st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_never_worse_than_greedy(self, costs, parts):
        """The portfolio guarantee: LPT's max part cost never exceeds
        the paper's greedy sweep on the same costs."""
        def max_cost(schedule):
            return max((sum(costs[i] for i in p) for p in schedule),
                       default=0.0)

        lpt = max_cost(lpt_index_parts(costs, parts))
        greedy = max_cost(greedy_index_parts(costs, parts))
        assert lpt <= greedy


class TestParallelRunner:
    def test_simulated_run(self):
        clusters = make_clusters([2, 3, 4])
        runner = ParallelRunner(parts=2, simulate=True)
        report = runner.run(clusters, lambda c: c.size)
        assert sorted(report.results) == [2, 3, 4]
        assert len(report.cluster_times) == 3
        assert report.max_part_time <= report.total_time + 1e-9

    def test_threaded_run(self):
        clusters = make_clusters([2, 3, 4, 5])
        runner = ParallelRunner(parts=2, simulate=False)
        report = runner.run(clusters, lambda c: c.size * 10)
        assert sorted(report.results) == [20, 30, 40, 50]

    def test_results_order_matches_clusters(self):
        clusters = make_clusters([1, 2, 3])
        runner = ParallelRunner(parts=3)
        report = runner.run(clusters, lambda c: c.size)
        assert report.results == [1, 2, 3]

    def test_duplicate_clusters_keep_distinct_slots(self):
        """Regression: results/cluster_times were once keyed by
        ``id(cluster)``, so the same cluster listed twice collapsed to a
        single slot.  Index keying must run the task once per listing."""
        (c,) = make_clusters([3])
        calls = []

        def task(cluster):
            calls.append(cluster)
            return len(calls)

        runner = ParallelRunner(parts=2, simulate=True)
        report = runner.run([c, c], task)
        assert report.results == [1, 2]
        assert calls == [c, c]
        assert sorted(report.cluster_times) == [0, 1]
        assert sorted(i for p in report.schedule for i in p) == [0, 1]

    def test_lpt_runner_restores_input_order(self):
        """LPT visits clusters largest-first, but results still line up
        with the input sequence."""
        clusters = make_clusters([1, 5, 2, 4, 3])
        runner = ParallelRunner(parts=2, scheduler="lpt")
        report = runner.run(clusters, lambda c: c.size)
        assert report.results == [1, 5, 2, 4, 3]
        assert report.scheduler == "lpt"

    def test_run_rejects_processes_backend(self):
        runner = ParallelRunner(parts=2, backend="processes")
        with pytest.raises(ValueError):
            runner.run(make_clusters([1]), lambda c: c.size)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            ParallelRunner(backend="mpi")

    def test_integration_with_bootstrap(self):
        prog = figure5_program()
        boot = BootstrapAnalyzer(prog).run()
        report = boot.analyze_all(simulate=False)
        assert all(isinstance(r, dict) for r in report.results)


class TestGreedyProperties:
    @given(st.lists(st.integers(1, 40), min_size=1, max_size=40),
           st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_schedule_invariants(self, sizes, parts):
        clusters = make_clusters(sizes)
        schedule = greedy_parts(clusters, parts)
        # Order-preserving coverage, no duplication, part-count cap.
        flat = [c for p in schedule for c in p]
        assert [id(c) for c in flat] == [id(c) for c in clusters]
        assert 1 <= len(schedule) <= parts
        # The paper's closing rule: every non-final part exceeded the
        # target only because of its last cluster.
        target = sum(sizes) / parts
        for part in schedule[:-1]:
            acc = sum(c.size for c in part)
            assert acc - part[-1].size <= target

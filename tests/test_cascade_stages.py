"""Differential suite for the two new cascade stages.

Field-sensitive Steensgaard and the cut-shortcut rewrite enter the
pipeline in three places — the :class:`CascadeConfig` clustering knobs,
the Andersen refinement stage, and two new resilience-ladder rungs.
These tests pin the contracts corpus-wide:

* the field-sensitive partitioning *refines* the classic one (every FS
  class sits inside exactly one classic class, over the same universe),
  so clusters built from it still form a valid disjoint cover;
* both new ladder rungs produce sound outcomes — for every corpus
  program and cluster, the degraded points-to set covers the clean
  FSCS one;
* the cut-shortcut rewrite is bracketed by the concrete oracle below
  and baseline Andersen above (oracle ⊆ cut-shortcut ⊆ Andersen), on
  the corpus and on hypothesis-generated adversarial programs;
* per-pointer results are invariant across cascade configurations:
  merging the per-cluster FSCS outcomes by pointer gives bit-identical
  sets whether clustering is classic or field-sensitive with the
  rewrite on (the paper's slice-equivalence theorem, now for the new
  stages);
* the fp-heavy workload resolves every seeded indirect call site to
  exactly the generator's ground truth;
* digests are stable across ``PYTHONHASHSEED`` values and backends.
"""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings

from repro.analysis import (
    Andersen,
    CutShortcut,
    CutShortcutTransform,
    Steensgaard,
    SteensgaardFS,
    SteensgaardFSResult,
    execute,
)
from repro.bench import corpus_configs, generate
from repro.bench.corpus import fp_heavy
from repro.core import (
    BootstrapAnalyzer,
    BootstrapConfig,
    CascadeConfig,
    cascade_summary,
    degraded_outcome,
    is_degraded,
    percentile,
    run_cascade,
    size_summary,
    validate_outcome,
)
from repro.ir import ProgramBuilder, Var
from repro.ir.dot import cutshortcut_dot, steensgaard_dot

from .helpers import figure5_program
from .test_properties import COMMON, programs

#: Small enough that the twenty-program corpus stays CI-friendly.
SCALE = 0.004

CORPUS_NAMES = [cfg.name for cfg in corpus_configs(scale=SCALE)]

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

NEW_LEVELS = ("cutshortcut", "steensgaard_fs")


def _program(name):
    cfg = next(c for c in corpus_configs(scale=SCALE) if c.name == name)
    return generate(cfg).program


def _fresh(program, **cascade_kw):
    config = BootstrapConfig(
        cascade=CascadeConfig(andersen_threshold=6, **cascade_kw))
    return BootstrapAnalyzer(program, config).run()


def _assert_superset(clean_outcome, degraded):
    clean_pts = clean_outcome["points_to"]
    degr_pts = degraded["points_to"]
    assert set(degr_pts) == set(clean_pts)
    for name, objs in clean_pts.items():
        assert set(objs) <= set(degr_pts[name]), name


def _merged_points_to(program, **cascade_kw):
    """Per-pointer union of the per-cluster FSCS outcomes."""
    report = _fresh(program, **cascade_kw).analyze_all(backend="simulate")
    merged = {}
    for outcome in report.results:
        for name, objs in outcome["points_to"].items():
            merged.setdefault(name, set()).update(objs)
    return merged


# ----------------------------------------------------------------------
# field-sensitive partitioning refines the classic one
# ----------------------------------------------------------------------

class TestFieldSensitiveRefinesClassic:
    @pytest.mark.parametrize("name", CORPUS_NAMES)
    def test_refinement_and_cover(self, name):
        program = _program(name)
        classic = Steensgaard(program).run().partitions()
        fs = SteensgaardFS(program).run().partitions()
        owner = {}
        for i, part in enumerate(classic):
            for member in part:
                owner[member] = i
        for part in fs:
            owners = {owner[m] for m in part if m in owner}
            assert len(owners) <= 1, \
                f"FS class spans classic classes: {sorted(map(str, part))}"
        classic_universe = set().union(*classic) if classic else set()
        fs_universe = set().union(*fs) if fs else set()
        assert classic_universe == fs_universe
        # Refinement means at least as many classes, never fewer.
        assert len(fs) >= len(classic)


# ----------------------------------------------------------------------
# the two new ladder rungs are sound, corpus-wide
# ----------------------------------------------------------------------

class TestNewRungsCoverClean:
    @pytest.mark.parametrize("name", CORPUS_NAMES)
    def test_rungs_cover_clean_fscs(self, name):
        program = _program(name)
        result = _fresh(program)
        clean = result.analyze_all(backend="simulate").results
        for cluster, clean_outcome in zip(result.clusters, clean):
            names = sorted(clean_outcome["points_to"])
            for level in NEW_LEVELS:
                degr = degraded_outcome(
                    program, cluster, level,
                    steens=result.cascade.steensgaard,
                    callgraph=result.callgraph, error="test", attempts=1)
                assert is_degraded(degr)
                assert degr["precision"] == level
                assert validate_outcome(degr, names)
                _assert_superset(clean_outcome, degr)


class TestNewRungsOnExamples:
    EXAMPLES = sorted(f for f in os.listdir(EXAMPLES_DIR)
                      if f.endswith(".c"))

    @pytest.mark.parametrize("example", EXAMPLES)
    def test_rungs_and_configs_cover_clean(self, example):
        from repro.frontend import parse_program
        with open(os.path.join(EXAMPLES_DIR, example)) as handle:
            program = parse_program(handle.read(), path=example)
        result = _fresh(program)
        clean = result.analyze_all(backend="simulate").results
        for cluster, clean_outcome in zip(result.clusters, clean):
            for level in NEW_LEVELS:
                degr = degraded_outcome(
                    program, cluster, level,
                    steens=result.cascade.steensgaard,
                    callgraph=result.callgraph, error="test", attempts=1)
                _assert_superset(clean_outcome, degr)
        assert _merged_points_to(program) == _merged_points_to(
            program, clustering="steensgaard_fs", cutshortcut=True)


# ----------------------------------------------------------------------
# cut-shortcut is bracketed: oracle ⊆ cut-shortcut ⊆ Andersen
# ----------------------------------------------------------------------

class TestCutShortcutSoundness:
    @pytest.mark.parametrize("name", CORPUS_NAMES)
    def test_corpus_bracketed(self, name):
        program = _program(name)
        orc = execute(program, max_steps=200, max_paths=600)
        an = Andersen(program).run()
        cs = CutShortcut(program).run()
        for p in program.pointers:
            assert orc.points_to(p) <= cs.points_to(p), str(p)
            assert cs.points_to(p) <= an.points_to(p), str(p)

    @given(programs())
    @settings(**COMMON)
    def test_generated_bracketed(self, prog):
        orc = execute(prog, max_steps=200, max_paths=600)
        an = Andersen(prog).run()
        cs = CutShortcut(prog).run()
        for p in prog.pointers:
            assert orc.points_to(p) <= cs.points_to(p), str(p)
            assert cs.points_to(p) <= an.points_to(p), str(p)

    def test_transform_is_cached_per_program(self):
        program = _program("ctrace")
        first = CutShortcutTransform.of(program)
        assert CutShortcutTransform.of(program) is first

    def test_transform_cached_per_bound(self):
        """Alternating callers with different bounds (cascade vs. the
        resilience rung's default) each keep their own cache entry
        instead of rebuilding the whole-program transform per call."""
        program = _program("ctrace")
        default = CutShortcutTransform.of(program)
        narrow = CutShortcutTransform.of(program, source_bound=1)
        assert narrow is not default
        assert CutShortcutTransform.of(program) is default
        assert CutShortcutTransform.of(program, source_bound=1) is narrow


class TestSiteAssociationConservatism:
    """Hand-built IR outside the lowering shape must degrade to plain
    Andersen flow instead of losing it (the module's own contract)."""

    def _identity_program(self):
        from repro.ir import Copy
        from repro.ir.program import retval_var
        b = ProgramBuilder()
        with b.function("g", params=("gp",)) as f:
            f.ret("gp")
        with b.function("main") as f:
            f.addr("pa", "oa")
            f.addr("pb", "ob")
            f.call("g", ["pa"], ret="x")
            f.call("g", ["pb"], ret="y")
            f.skip()
            # Stray return copy, value-equal to the first (cut) site's
            # copy but NOT in a recognized call-site shape: it reads the
            # shared conduit, which holds {oa, ob}.
            f.emit(Copy(f.var("x"), retval_var("g")))
        return b.build()

    def test_stray_return_copy_keeps_conduit_flow(self):
        program = self._identity_program()
        transform = CutShortcutTransform.of(program)
        # Both real sites are cut; the stray site is not.
        assert len(transform.cut_edges) == 2
        an = Andersen(program).run()
        cs = CutShortcut(program).run()
        x = Var("x", "main")
        # The stray copy must keep the full conduit flow even though it
        # is value-equal to a cut statement at another location.
        assert cs.points_to(x) == an.points_to(x)
        assert len(an.points_to(x)) == 2
        # Precision at the genuinely cut second site is retained.
        assert len(cs.points_to(Var("y", "main"))) == 1

    def test_stray_param_copy_disables_other_callee(self):
        from repro.ir import Copy
        from repro.ir.program import param_var
        b = ProgramBuilder()
        with b.function("g", params=("gp",)) as f:
            f.ret("gp")
        with b.function("h", params=("hp",)) as f:
            f.ret("hp")
        with b.function("main") as f:
            f.addr("pa", "oa")
            f.addr("pb", "ob")
            # Stray copy binding h's parameter, sitting inside g's
            # param-copy chain: association for h is unreliable here.
            f.emit(Copy(param_var("h", 0), f.var("pb")))
            f.call("g", ["pa"], ret="x")
            f.call("h", ["pa"], ret="y")
        program = b.build()
        transform = CutShortcutTransform.of(program)
        cut_callees = {g for _, _, g in transform.cut_edges}
        assert "g" in cut_callees
        assert "h" not in cut_callees
        an = Andersen(program).run()
        cs = CutShortcut(program).run()
        y = Var("y", "main")
        assert cs.points_to(y) == an.points_to(y)
        assert len(an.points_to(y)) == 2


# ----------------------------------------------------------------------
# cascade configurations agree pointer by pointer
# ----------------------------------------------------------------------

class TestConfigDifferential:
    @pytest.mark.parametrize("name", CORPUS_NAMES)
    def test_merged_outcomes_identical(self, name):
        """Different clusterings slice differently, but the per-pointer
        union of cluster outcomes must be bit-identical — the sliced
        FSCS equals the whole-program one regardless of the cover."""
        program = _program(name)
        classic = _merged_points_to(program)
        fs = _merged_points_to(program, clustering="steensgaard_fs",
                               cutshortcut=True)
        assert classic == fs

    def test_unknown_clustering_rejected(self):
        program = figure5_program()
        with pytest.raises(ValueError):
            run_cascade(program,
                        CascadeConfig(clustering="flow-sensitive"))

    def test_fs_clustering_uses_fs_solver(self):
        program = figure5_program()
        cascade = run_cascade(
            program, CascadeConfig(clustering="steensgaard_fs"))
        assert isinstance(cascade.steensgaard, SteensgaardFSResult)


# ----------------------------------------------------------------------
# fp-heavy ground truth: every seeded site resolves exactly
# ----------------------------------------------------------------------

class TestFpResolution:
    @pytest.fixture(scope="class")
    def workload(self):
        return fp_heavy(scale=0.05)

    @pytest.mark.parametrize("analysis", [Andersen, CutShortcut])
    def test_sites_resolve_exactly(self, workload, analysis):
        assert workload.fp_truth, "generator seeded no fp sites"
        result = analysis(workload.program).run()
        for entry in workload.fp_truth:
            fp = Var(str(entry["site"]))
            resolved = {o.name for o in result.points_to(fp)
                        if isinstance(o, Var)}
            assert resolved == set(entry["targets"]), entry["site"]

    def test_cutshortcut_tightens_somewhere(self, workload):
        program = workload.program
        an = Andersen(program).run()
        cs = CutShortcut(program).run()
        shrunk = sum(1 for p in program.pointers
                     if cs.points_to(p) < an.points_to(p))
        assert shrunk >= 1


# ----------------------------------------------------------------------
# reporting: percentile summaries and the analyze --json payload
# ----------------------------------------------------------------------

class TestSizeSummaries:
    def test_percentile_nearest_rank(self):
        values = [1, 2, 3, 4, 10]
        assert percentile(values, 0.5) == 3
        assert percentile(values, 0.95) == 10
        assert percentile([7], 0.5) == 7
        assert percentile([], 0.5) == 0

    def test_size_summary_keys(self):
        summary = size_summary([3, 1, 2])
        assert summary == {"p50": 2, "p95": 3, "max": 3}

    def test_cascade_summary_has_distributions(self):
        result = _fresh(figure5_program())
        data = cascade_summary(result)
        clusters = data["clusters"]
        assert clusters["member_counts"] == \
            sorted(clusters["member_counts"], reverse=True)
        assert sum(clusters["member_counts"]) >= clusters["count"]
        assert set(clusters["size_summary"]) == {"p50", "p95", "max"}
        parts = data["partitions"]
        assert parts["count"] >= clusters["count"] or parts["count"] > 0
        assert set(parts["size_summary"]) == {"p50", "p95", "max"}
        json.dumps(data)  # stays serializable for analyze --json


# ----------------------------------------------------------------------
# dot exports for the new stages
# ----------------------------------------------------------------------

class TestDotExports:
    def test_cutshortcut_dot_draws_cut_and_shortcut_edges(self):
        program = fp_heavy(scale=0.05).program
        result = CutShortcut(program).run()
        assert result.transform.cut_edges, "workload produced no cuts"
        dot = cutshortcut_dot(result)
        assert dot.startswith("digraph cutshortcut {")
        assert "cut @" in dot and "shortcut" in dot

    def test_cutshortcut_dot_accepts_bare_transform(self):
        program = fp_heavy(scale=0.05).program
        transform = CutShortcutTransform.of(program)
        assert cutshortcut_dot(transform).startswith(
            "digraph cutshortcut {")

    def test_steensgaard_dot_renders_fs_result(self):
        dot = steensgaard_dot(SteensgaardFS(figure5_program()).run())
        assert dot.startswith("digraph steensgaard {")


# ----------------------------------------------------------------------
# CLI: new flags, dot choices, and the --json distributions
# ----------------------------------------------------------------------

def _run_cli(args, cwd, seed=0):
    env = dict(os.environ, PYTHONHASHSEED=str(seed),
               PYTHONPATH=os.path.join(os.path.dirname(__file__), "..",
                                       "src"))
    proc = subprocess.run([sys.executable, "-m", "repro"] + args,
                          capture_output=True, text=True, env=env,
                          cwd=cwd)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestCli:
    def test_analyze_json_reports_distributions(self, tmp_path):
        example = os.path.abspath(
            os.path.join(EXAMPLES_DIR, "server_demo.c"))
        out = _run_cli(["analyze", example, "--json",
                        "--clustering", "steensgaard_fs",
                        "--cutshortcut"], str(tmp_path))
        data = json.loads(out[out.index("{"):])
        assert data["clusters"]["member_counts"]
        assert set(data["clusters"]["size_summary"]) == \
            {"p50", "p95", "max"}
        assert data["partitions"]["count"] > 0
        assert set(data["partitions"]["size_summary"]) == \
            {"p50", "p95", "max"}

    @pytest.mark.parametrize("choice,header", [
        ("steensgaard-fs", "digraph steensgaard {"),
        ("cutshortcut", "digraph cutshortcut {"),
    ])
    def test_dot_choices(self, tmp_path, choice, header):
        example = os.path.abspath(
            os.path.join(EXAMPLES_DIR, "server_demo.c"))
        out = _run_cli(["analyze", example, "--dot", choice],
                       str(tmp_path))
        assert header in out


# ----------------------------------------------------------------------
# determinism: one digest across hash seeds and backends
# ----------------------------------------------------------------------

_DIGEST_SCRIPT = """
import hashlib, json
from repro.bench import corpus_configs, generate
from repro.core import BootstrapAnalyzer, BootstrapConfig, CascadeConfig

digest = hashlib.sha256()
for cfg in corpus_configs(scale=%r):
    program = generate(cfg).program
    config = BootstrapConfig(cascade=CascadeConfig(
        andersen_threshold=6, clustering="steensgaard_fs",
        cutshortcut=True))
    boot = BootstrapAnalyzer(program, config).run()
    backends = (("simulate", {}), ("threads", {"jobs": 2}),
                ("processes", {"jobs": 2})) \
        if cfg.name == "ctrace" else (("simulate", {}),)
    for backend, kw in backends:
        report = boot.analyze_all(backend=backend, **kw)
        blob = json.dumps([r["points_to"] for r in report.results],
                          sort_keys=True)
        digest.update(cfg.name.encode())
        digest.update(backend.encode())
        digest.update(blob.encode())
print(digest.hexdigest())
""" % SCALE


class TestHashSeedDeterminism:
    def test_fs_cutshortcut_digest_stable(self, tmp_path):
        outs = set()
        for seed in (0, 12345):
            env = dict(os.environ, PYTHONHASHSEED=str(seed),
                       PYTHONPATH=os.path.join(
                           os.path.dirname(__file__), "..", "src"))
            proc = subprocess.run(
                [sys.executable, "-c", _DIGEST_SCRIPT],
                capture_output=True, text=True, env=env,
                cwd=str(tmp_path))
            assert proc.returncode == 0, proc.stderr
            outs.add(proc.stdout.strip())
        assert len(outs) == 1 and outs.pop()

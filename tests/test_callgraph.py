"""Call graphs, SCCs, and function-pointer resolution."""

import pytest

from repro.analysis import Steensgaard
from repro.ir import (
    CallGraph,
    CallStmt,
    Copy,
    ProgramBuilder,
    Var,
    function_sentinel,
    resolve_indirect_calls,
)

from .helpers import call_chain_program, recursive_program


class TestCallGraph:
    def test_edges(self):
        prog = call_chain_program()
        cg = CallGraph(prog)
        assert cg.callees("main") == {"mid"}
        assert cg.callees("mid") == {"leaf"}
        assert cg.callers("leaf") == {"mid"}

    def test_call_sites(self):
        prog = call_chain_program()
        cg = CallGraph(prog)
        sites = cg.call_sites_of("main", "mid")
        assert len(sites) == 1
        assert isinstance(prog.stmt_at(sites[0]), CallStmt)

    def test_sccs_reverse_topological(self):
        prog = call_chain_program()
        cg = CallGraph(prog)
        order = cg.sccs()
        flat = [f for comp in order for f in comp]
        assert flat.index("leaf") < flat.index("mid") < flat.index("main")

    def test_recursive_scc(self):
        prog = recursive_program()
        cg = CallGraph(prog)
        comps = {frozenset(c) for c in cg.sccs()}
        assert frozenset({"even", "odd"}) in comps
        assert cg.is_recursive("even")
        assert not cg.is_recursive("main")

    def test_self_recursion(self):
        b = ProgramBuilder()
        with b.function("f") as fb:
            fb.call("f")
        with b.function("main") as fb:
            fb.call("f")
        cg = CallGraph(b.build())
        assert cg.is_recursive("f")

    def test_reachable_from(self):
        prog = call_chain_program()
        cg = CallGraph(prog)
        assert cg.reachable_from("mid") == {"mid", "leaf"}
        assert cg.reachable_from("main") == {"main", "mid", "leaf"}

    def test_ancestors_of(self):
        prog = call_chain_program()
        cg = CallGraph(prog)
        assert cg.ancestors_of({"leaf"}) == {"leaf", "mid", "main"}
        assert cg.ancestors_of({"main"}) == {"main"}
        assert cg.ancestors_of(set()) == set()

    def test_scc_of_map(self):
        prog = recursive_program()
        cg = CallGraph(prog)
        m = cg.scc_of()
        assert m["even"] == m["odd"]
        assert m["main"] == frozenset({"main"})


class TestIndirectResolution:
    def _fp_program(self):
        b = ProgramBuilder()
        b.global_var("result")
        with b.function("alpha") as f:
            f.addr(f.fn.retval, "ao")
        with b.function("beta") as f:
            f.addr(f.fn.retval, "bo")
        with b.function("main") as f:
            with f.branch() as br:
                with br.then():
                    f.addr("fp", function_sentinel("alpha"))
                with br.otherwise():
                    f.addr("fp", function_sentinel("beta"))
            f.call_indirect("fp", ret="result")
        return b.build()

    def test_targets_resolved(self):
        prog = self._fp_program()
        pts = Steensgaard(prog).run()
        resolved = resolve_indirect_calls(prog, pts.points_to)
        assert resolved == 1
        call = next(s for _, s in prog.statements()
                    if isinstance(s, CallStmt) and s.is_indirect)
        assert set(call.targets) == {"alpha", "beta"}

    def test_callgraph_includes_indirect_edges(self):
        prog = self._fp_program()
        pts = Steensgaard(prog).run()
        resolve_indirect_calls(prog, pts.points_to)
        cg = CallGraph(prog)
        assert cg.callees("main") >= {"alpha", "beta"}

    def test_return_plumbing_added_per_candidate(self):
        prog = self._fp_program()
        pts = Steensgaard(prog).run()
        resolve_indirect_calls(prog, pts.points_to)
        from repro.ir import retval_var
        copies = [s for _, s in prog.statements()
                  if isinstance(s, Copy) and s.lhs == Var("result")]
        assert {c.rhs for c in copies} == \
            {retval_var("alpha"), retval_var("beta")}

    def test_unresolvable_fp_keeps_no_targets(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.call_indirect("fp")
        prog = b.build()
        resolve_indirect_calls(prog, lambda v: set())
        call = next(s for _, s in prog.statements()
                    if isinstance(s, CallStmt))
        assert call.targets == ()

    def test_resolution_flows_through_analysis(self):
        """End to end: result gets both candidates' returned objects."""
        from repro.analysis import Andersen
        prog = self._fp_program()
        pts = Steensgaard(prog).run()
        resolve_indirect_calls(prog, pts.points_to)
        an = Andersen(prog).run()
        names = sorted(str(o) for o in an.points_to(Var("result")))
        assert names == ["alpha::ao", "beta::bo"]

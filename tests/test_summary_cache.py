"""The on-disk summary cache and its fingerprint-based invalidation."""

import json
import os
import time

from repro.core import (
    BootstrapAnalyzer,
    SummaryCache,
    build_payload,
    payload_fingerprint,
)
from repro.frontend import parse_program

#: Two pointer groups with no flow between them: Steensgaard keeps
#: ``ap/aq`` and ``bp/bq`` in separate partitions, so they land in
#: separate clusters with separate slices — the unit of invalidation.
SOURCE = """
int ax, ay;
int *ap, *aq;
int bx;
int *bp, *bq;

void fa(void) {
    ap = &ax;
    aq = ap;
}

void fb(void) {
    bp = &bx;
    bq = bp;
}

int main() {
    fa();
    fb();
    return 0;
}
"""

#: Same program with one extra pointer assignment inside ``fa`` — an
#: edit that must invalidate only the clusters sliced through ``fa``.
EDITED = SOURCE.replace("aq = ap;", "aq = ap;\n    aq = &ay;")


class TestSummaryCacheUnit:
    def test_put_get_roundtrip(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        outcome = {"stats": {"k": 1}, "points_to": {"p": ["x"]}}
        cache.put("ab" + "0" * 62, outcome)
        assert cache.get("ab" + "0" * 62) == outcome
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_returns_none_and_counts(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        assert cache.get("ff" + "0" * 62) is None
        assert cache.misses == 1

    def test_sharded_layout(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        key = "cd" + "1" * 62
        cache.put(key, {})
        assert os.path.exists(tmp_path / "cd" / (key + ".json"))
        assert key in cache
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        key = "ee" + "2" * 62
        cache.put(key, {"ok": True})
        path = tmp_path / "ee" / (key + ".json")
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_corrupt_entry_is_quarantined_not_retried(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        key = "ee" + "4" * 62
        cache.put(key, {"ok": True})
        path = tmp_path / "ee" / (key + ".json")
        path.write_text("{truncated")
        assert cache.get(key) is None
        # The bad file moved aside: it no longer shadows the key, so a
        # recomputed outcome can be stored and served again.
        assert not path.exists()
        assert (tmp_path / "quarantine" / (key + ".json")).exists()
        assert cache.corrupt == 1
        cache.put(key, {"ok": True})
        assert cache.get(key) == {"ok": True}

    def test_non_dict_json_is_quarantined(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        key = "ab" + "5" * 62
        cache.put(key, {"ok": True})
        (tmp_path / "ab" / (key + ".json")).write_text("[1, 2, 3]")
        assert cache.get(key) is None
        assert cache.corrupt == 1

    def test_quarantine_excluded_from_contents(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        good, bad = "aa" + "6" * 62, "bb" + "7" * 62
        cache.put(good, {})
        cache.put(bad, {})
        (tmp_path / "bb" / (bad + ".json")).write_text("?")
        cache.get(bad)
        assert len(cache) == 1
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["quarantined"] == 1
        assert stats["corrupt_this_session"] == 1
        # Pruning never touches the quarantine corner.
        stale = time.time() - 10 * 86400
        qpath = tmp_path / "quarantine" / (bad + ".json")
        os.utime(qpath, (stale, stale))
        assert cache.prune(max_age_days=5) == 0
        assert qpath.exists()

    def test_no_temp_file_debris(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        cache.put("aa" + "3" * 62, {"v": 1})
        leftovers = [f for _d, _s, fs in os.walk(tmp_path) for f in fs
                     if f.endswith(".tmp")]
        assert leftovers == []

    def test_prune_removes_only_old_entries(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        old_key, new_key = "01" + "a" * 62, "02" + "b" * 62
        cache.put(old_key, {})
        cache.put(new_key, {})
        stale = time.time() - 10 * 86400
        os.utime(cache._path(old_key), (stale, stale))
        assert cache.prune(max_age_days=5) == 1
        assert old_key not in cache
        assert new_key in cache

    def test_entries_are_plain_json(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        key = "09" + "c" * 62
        cache.put(key, {"points_to": {"p": []}, "stats": {}})
        with open(cache._path(key)) as handle:
            assert json.load(handle)["points_to"] == {"p": []}


def _fingerprints(source):
    """Cluster fingerprint per member set for one parsed program."""
    boot = BootstrapAnalyzer(parse_program(source)).run()
    out = {}
    for c in boot.clusters:
        payload = build_payload(boot.program, c, boot.callgraph)
        out[c.members] = payload_fingerprint(payload)
    return out


class TestInvalidation:
    def test_warm_run_hits_every_cluster(self, tmp_path):
        program = parse_program(SOURCE)
        cache = SummaryCache(str(tmp_path))
        cold = BootstrapAnalyzer(program).run().analyze_all(cache=cache)
        n = len(cold.results)
        assert n >= 2
        assert (cold.cache_hits, cold.cache_misses) == (0, n)
        warm = BootstrapAnalyzer(program).run().analyze_all(cache=cache)
        assert (warm.cache_hits, warm.cache_misses) == (n, 0)
        assert [r["points_to"] for r in warm.results] == \
            [r["points_to"] for r in cold.results]
        # Cached clusters report zero analysis time.
        assert all(t == 0.0 for t in warm.cluster_times.values())

    def test_cache_accepts_directory_path(self, tmp_path):
        program = parse_program(SOURCE)
        cdir = str(tmp_path / "summaries")
        cold = BootstrapAnalyzer(program).run().analyze_all(cache=cdir)
        warm = BootstrapAnalyzer(program).run().analyze_all(cache=cdir)
        assert warm.cache_hits == len(cold.results)

    def test_edit_invalidates_only_affected_clusters(self):
        before = _fingerprints(SOURCE)
        after = _fingerprints(EDITED)
        changed = {m for m in before.keys() & after.keys()
                   if before[m] != after[m]}
        assert changed, "the edited function's clusters must re-key"
        for members in changed:
            assert any("a" in str(v) for v in members)
        # The b-side clusters never slice through fa: same fingerprint,
        # so a warm cache still serves them after the edit.
        untouched = [m for m in before.keys() & after.keys()
                     if all(str(v).startswith("b") for v in m)]
        assert untouched
        for members in untouched:
            assert before[members] == after[members]

    def test_edited_program_reuses_untouched_entries(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        boot = BootstrapAnalyzer(parse_program(SOURCE)).run()
        boot.analyze_all(cache=cache)
        edited = BootstrapAnalyzer(parse_program(EDITED)).run()
        report = edited.analyze_all(cache=cache)
        assert report.cache_hits >= 1      # the fb-side clusters
        assert report.cache_misses >= 1    # the edited fa-side clusters


class TestCrashSafety:
    def test_sigkill_mid_write_never_leaves_a_torn_entry(self, tmp_path):
        """Kill a writer process at an arbitrary point and the cache
        must hold either nothing or complete entries — never garbage a
        reader would quarantine (put() fsyncs before the rename)."""
        import signal
        import subprocess
        import sys

        root = str(tmp_path / "cache")
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        outcome = {"points_to": {f"p{i}": [f"o{j}" for j in range(40)]
                                 for i in range(400)},
                   "stats": {"solver": "fscs"}}
        writer = (
            "import json, sys\n"
            "from repro.core.summary_cache import SummaryCache\n"
            "cache = SummaryCache(sys.argv[1])\n"
            "outcome = json.loads(sys.argv[2])\n"
            "i = 0\n"
            "while True:\n"
            "    cache.put('%032x' % i, outcome)\n"
            "    print(i, flush=True)\n"
            "    i += 1\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath(src)]
            + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
               if p])
        proc = subprocess.Popen(
            [sys.executable, "-c", writer, root, json.dumps(outcome)],
            stdout=subprocess.PIPE, env=env, text=True)
        try:
            assert proc.stdout.readline().strip() == "0"  # one write in
            proc.stdout.readline()           # mid-flight somewhere
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(30.0)

        cache = SummaryCache(root)
        entries = 0
        for dirpath, _dirs, files in os.walk(root):
            for name in files:
                if not name.endswith(".json"):
                    continue   # mkstemp leftovers are not entries
                key = name[:-len(".json")]
                assert cache.get(key) == outcome, key
                entries += 1
        assert entries >= 1                  # the first write landed
        assert cache.corrupt == 0            # nothing quarantined

"""The top-level BootstrapAnalyzer facade and demand-driven queries."""

import pytest

from repro.analysis import execute, whole_program_fscs
from repro.core import (
    BootstrapAnalyzer,
    BootstrapConfig,
    CascadeConfig,
    select_clusters,
)
from repro.ir import ProgramBuilder, Var

from .helpers import exit_loc, figure2_program, figure5_program, v


class TestQueries:
    def test_points_to_matches_whole_program(self):
        prog = figure2_program()
        boot = BootstrapAnalyzer(prog).run()
        whole = whole_program_fscs(prog)
        end = exit_loc(prog)
        for p in prog.pointers:
            assert boot.points_to(p, end) == whole.points_to(p, end), str(p)

    def test_partition_fast_path_rejects(self):
        prog = figure2_program()
        boot = BootstrapAnalyzer(prog).run()
        end = exit_loc(prog)
        # p and a are in different partitions: constant-time False.
        assert not boot.may_alias(v("p", "main"), v("a", "main"), end)
        assert boot.analyzed_cluster_count == 0  # no cluster touched

    def test_may_alias_within_cluster(self):
        prog = figure2_program()
        boot = BootstrapAnalyzer(prog).run()
        end = exit_loc(prog)
        assert boot.may_alias(v("q", "main"), v("r", "main"), end)
        assert not boot.may_alias(v("q", "main"), v("p", "main"), end)

    def test_alias_set(self):
        prog = figure2_program()
        boot = BootstrapAnalyzer(prog).run()
        end = exit_loc(prog)
        aliases = boot.alias_set(v("q", "main"), end)
        assert v("r", "main") in aliases

    def test_self_alias(self):
        prog = figure2_program()
        boot = BootstrapAnalyzer(prog).run()
        end = exit_loc(prog)
        assert boot.may_alias(v("p", "main"), v("p", "main"), end)

    def test_lazy_cluster_analysis(self):
        prog = figure5_program()
        boot = BootstrapAnalyzer(prog).run()
        assert boot.analyzed_cluster_count == 0
        end = exit_loc(prog)
        boot.points_to(Var("z"), end)
        assert 0 < boot.analyzed_cluster_count < len(boot.clusters)

    def test_soundness_vs_oracle(self):
        prog = figure5_program()
        boot = BootstrapAnalyzer(prog).run()
        orc = execute(prog)
        from repro.ir import Loc
        cfg = prog.cfg_of("main")
        end = exit_loc(prog)
        for p in prog.pointers:
            concrete = orc.pts_after(Loc("main", cfg.exit), p)
            assert concrete <= boot.points_to(p, end), str(p)


class TestAnalyzeAll:
    def test_parallel_report(self):
        prog = figure5_program()
        boot = BootstrapAnalyzer(prog, BootstrapConfig(parts=3)).run()
        report = boot.analyze_all()
        assert len(report.part_times) <= 3
        assert report.max_part_time <= report.total_time + 1e-9
        assert len(report.results) == len(boot.clusters)

    def test_subset_analysis(self):
        prog = figure5_program()
        boot = BootstrapAnalyzer(prog).run()
        subset = boot.cascade.clusters_containing([Var("x")])
        report = boot.analyze_all(clusters=subset)
        assert len(report.results) == len(subset)

    def test_fsci_shared_between_siblings(self):
        from .test_cascade import big_partition_program
        prog = big_partition_program(n_chains=6, chain_len=6)
        boot = BootstrapAnalyzer(
            prog,
            BootstrapConfig(cascade=CascadeConfig(andersen_threshold=5))).run()
        siblings = [c for c in boot.clusters if c.origin == "andersen"]
        assert len(siblings) >= 2
        a1 = boot.analysis_for(siblings[0])
        a2 = boot.analysis_for(siblings[1])
        assert a1.fsci is a2.fsci


class TestDemandSelection:
    def test_select_clusters(self):
        prog = figure5_program()
        boot = BootstrapAnalyzer(prog).run()
        sel = select_clusters(boot, [Var("x")])
        assert sel.selected
        assert all(Var("x") in c.members for c in sel.selected)
        assert 0 < sel.cluster_fraction <= 1
        assert 0 < sel.pointer_fraction <= 1

    def test_pure_selection(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("lock1", "lobj1")
            f.addr("lock2", "lobj2")
            f.copy("lock1", "lock2")
            f.addr("other", "x")
        prog = b.build()
        boot = BootstrapAnalyzer(prog).run()
        locks = [v("lock1", "main"), v("lock2", "main")]
        sel = select_clusters(boot, locks, pure=True)
        for c in sel.selected:
            assert c.pointer_members <= set(locks)

    def test_empty_selection(self):
        prog = figure2_program()
        boot = BootstrapAnalyzer(prog).run()
        sel = select_clusters(boot, [Var("nonexistent")])
        assert sel.selected == []
        assert sel.cluster_fraction == 0 or sel.selected == []

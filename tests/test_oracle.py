"""The bounded concrete executor used as a soundness oracle."""

import pytest

from repro.analysis import execute
from repro.ir import Loc, ProgramBuilder, Var

from .helpers import diamond_program, exit_loc, v


class TestSemantics:
    def test_addr_and_copy(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            f.copy("q", "p")
        orc = execute(b.build())
        assert orc.points_to(v("q", "main")) == frozenset({v("a", "main")})

    def test_store_and_load(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("pp", "x")
            f.addr("t", "a")
            f.store("pp", "t")
            f.load("y", "pp")
        orc = execute(b.build())
        assert orc.points_to(v("y", "main")) == frozenset({v("a", "main")})

    def test_store_through_uninitialized_is_noop(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("t", "a")
            f.store("pp", "t")   # pp uninitialized: UB, modeled as no-op
            f.load("y", "pp")
        orc = execute(b.build())
        assert orc.points_to(v("y", "main")) == frozenset()

    def test_null_clears(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            f.null("p")
        prog = b.build()
        orc = execute(prog)
        cfg = prog.cfg_of("main")
        assert orc.pts_after(Loc("main", cfg.exit), v("p", "main")) == \
            frozenset()

    def test_branches_explore_both(self):
        orc = execute(diamond_program())
        names = sorted(str(o) for o in orc.points_to(v("q", "main")))
        assert names == ["main::a", "main::b"]

    def test_flow_sensitive_recording(self):
        prog = diamond_program()
        orc = execute(prog)
        end = exit_loc(prog)
        assert orc.pts_after(end, v("p", "main")) == \
            frozenset({v("c", "main")})

    def test_call_and_return(self):
        from .helpers import call_chain_program
        prog = call_chain_program()
        orc = execute(prog)
        assert orc.points_to(v("q", "main")) == \
            frozenset({v("obj", "main")})

    def test_loop_bounded(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            with f.loop():
                f.addr("p", "a")
                f.copy("q", "p")
        orc = execute(b.build(), max_steps=50, max_paths=50)
        assert orc.truncated or orc.paths_explored > 0

    def test_recursion_truncates_not_crashes(self):
        b = ProgramBuilder()
        with b.function("f") as fb:
            fb.call("f")
        with b.function("main") as fb:
            fb.call("f")
        orc = execute(b.build(), max_steps=100, max_paths=10)
        assert orc.truncated

    def test_may_alias(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            f.copy("q", "p")
            f.addr("r", "b")
        orc = execute(b.build())
        assert orc.may_alias(v("p", "main"), v("q", "main"))
        assert not orc.may_alias(v("p", "main"), v("r", "main"))

    def test_aliased_at(self):
        prog = diamond_program()
        orc = execute(prog)
        end = exit_loc(prog)
        # p re-pointed to c at the end; q still points to a/b.
        assert not orc.aliased_at(end, v("p", "main"), v("q", "main"))

    def test_indirect_call_explores_all_targets(self):
        from repro.ir import function_sentinel, resolve_indirect_calls
        from repro.analysis import Steensgaard
        b = ProgramBuilder()
        b.global_var("out")
        with b.function("fa") as f:
            f.addr("out", "oa")
        with b.function("fb") as f:
            f.addr("out", "ob")
        with b.function("main") as f:
            with f.branch() as br:
                with br.then():
                    f.addr("fp", function_sentinel("fa"))
                with br.otherwise():
                    f.addr("fp", function_sentinel("fb"))
            f.call_indirect("fp")
        prog = b.build()
        resolve_indirect_calls(prog, Steensgaard(prog).run().points_to)
        orc = execute(prog)
        names = sorted(str(o) for o in orc.points_to(Var("out")))
        assert names == ["fa::oa", "fb::ob"]

    def test_paths_counted(self):
        orc = execute(diamond_program())
        assert orc.paths_explored >= 2

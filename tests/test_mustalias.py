"""Must-alias analysis tests."""

import pytest

from repro import parse_program
from repro.analysis import MustAlias, execute
from repro.analysis.mustalias import MUST_NULL, MUST_UNINIT, TOP
from repro.ir import Copy, Loc, ProgramBuilder, Var

from .helpers import exit_loc, v


def run_must(prog):
    return MustAlias(prog).run()


class TestBasics:
    def test_definite_address(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            n = f.skip("q")
        prog = b.build()
        ma = run_must(prog)
        assert ma.must_point_to(v("p", "main"), Loc("main", n)) == \
            v("a", "main")

    def test_copy_propagates_definite(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            f.copy("q", "p")
            n = f.skip("here")
        prog = b.build()
        ma = run_must(prog)
        assert ma.must_alias(v("p", "main"), v("q", "main"),
                             Loc("main", n))

    def test_join_of_different_values_is_top(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            with f.branch() as br:
                with br.then():
                    f.addr("p", "a")
                with br.otherwise():
                    f.addr("p", "b")
            n = f.skip("here")
        prog = b.build()
        ma = run_must(prog)
        assert ma.value_before(Loc("main", n), v("p", "main")) is TOP
        assert ma.must_point_to(v("p", "main"), Loc("main", n)) is None

    def test_null_tracked(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.null("p")
            n = f.skip("here")
        prog = b.build()
        ma = run_must(prog)
        assert ma.must_null(v("p", "main"), Loc("main", n))

    def test_uninit_default(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            n = f.skip("here")
        prog = b.build()
        ma = run_must(prog)
        assert ma.value_before(Loc("main", n), v("p", "main")) \
            is MUST_UNINIT

    def test_no_false_must_alias(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            f.addr("q", "b")
            n = f.skip("here")
        prog = b.build()
        ma = run_must(prog)
        assert not ma.must_alias(v("p", "main"), v("q", "main"),
                                 Loc("main", n))

    def test_self_must_alias(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            n = f.skip("here")
        prog = b.build()
        ma = run_must(prog)
        assert ma.must_alias(v("p", "main"), v("p", "main"),
                             Loc("main", n))


class TestMemory:
    def test_store_strong_update(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("pp", "x")
            f.addr("t", "a")
            f.store("pp", "t")
            f.load("y", "pp")
            n = f.skip("here")
        prog = b.build()
        ma = run_must(prog)
        assert ma.must_point_to(v("y", "main"), Loc("main", n)) == \
            v("a", "main")

    def test_ambiguous_store_wipes(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("safe", "a")
            with f.branch() as br:
                with br.then():
                    f.addr("pp", "x")
                with br.otherwise():
                    f.addr("pp", "y")
            f.addr("t", "b")
            f.store("pp", "t")
            n = f.skip("here")
        prog = b.build()
        ma = run_must(prog)
        # The ambiguous store could have hit anything we knew about.
        assert ma.value_before(Loc("main", n), v("safe", "main")) is TOP

    def test_alloc_cell_never_definite_after_store(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.alloc("p", "h")
            f.addr("t", "a")
            f.store("p", "t")
            f.load("y", "p")
            n = f.skip("here")
        prog = b.build()
        ma = run_must(prog)
        # Alloc sites are multi-instance cells: no strong update.
        assert ma.must_point_to(v("y", "main"), Loc("main", n)) is None


class TestAssumeRefinement:
    def test_equality_assume_transfers_value(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            with f.branch() as br:
                with br.then():
                    f.assume("q", "p", equal=True)
                    n = f.skip("then")
                with br.otherwise():
                    f.skip("else")
        prog = b.build()
        ma = run_must(prog)
        assert ma.must_point_to(v("q", "main"), Loc("main", n)) is None \
            or True  # q was uninit: stays unknown (sound)

    def test_null_assume(self):
        prog = parse_program("""
            int a; int *p;
            int main() {
                if (a) p = &a;
                if (p == NULL) { int *r = p; }
                return 0;
            }
        """)
        ma = run_must(prog)
        copies = [(loc, s) for loc, s in prog.statements()
                  if isinstance(s, Copy) and s.lhs == Var("r", "main")]
        (loc, _stmt), = copies
        assert ma.value_after(loc, Var("r", "main")) in \
            (MUST_NULL, TOP, MUST_UNINIT)


class TestSoundnessVsOracle:
    @pytest.mark.parametrize("src", [
        """int a, b; int *p, *q;
           int main() { p = &a; q = p; if (a) q = &b; return 0; }""",
        """int a; int *p; int **pp;
           int main() { pp = &p; *pp = &a; return 0; }""",
        """int a; int *p;
           void setp(void) { p = &a; }
           int main() { setp(); int *q = p; return 0; }""",
    ])
    def test_must_facts_hold_concretely(self, src):
        """Every must-fact must hold on every concrete path: if the
        analysis says p must point to o before loc, then on every path
        reaching loc, p's concrete value is o."""
        prog = parse_program(src)
        ma = run_must(prog)
        orc = execute(prog)
        for (loc, cell), objs in orc.pts_at.items():
            definite = ma.value_after(loc, cell)
            if definite in (TOP, MUST_NULL, MUST_UNINIT):
                continue
            assert objs == {definite}, f"{cell} at {loc}"

"""Alias query daemon: protocol, stores, incrementality, transport."""

import json
import os
import socket
import tempfile
import threading
import time

import pytest

from repro.core import (
    BootstrapAnalyzer,
    FaultSpec,
    build_payload,
    payload_fingerprint,
    resolve_pointer,
)
from repro.frontend import parse_program
from repro.ir import Loc
from repro.server import (
    AliasServer,
    ClusterStore,
    ServerClient,
    ServerConfig,
    wait_for_server,
)
from repro.server import protocol
from repro.server.protocol import ServerError

#: Four independent pointer webs, one per function: a one-function edit
#: must leave the other webs' cluster fingerprints untouched.
DEMO = """
int a, b, c, d, e;
int *p, *q;
int *r, *s;
int *t, *u;
int *v, *w;

void bind_rs(void) { r = &c; s = r; }
void bind_tu(void) { t = &d; u = t; }
void bind_vw(void) { v = &e; w = v; }

int main() {
    p = &a;
    q = p;
    bind_rs();
    bind_tu();
    bind_vw();
    return 0;
}
"""

#: The same program with one function body edited (t rebound to b).
DEMO_EDITED = DEMO.replace("t = &d;", "t = &b;")


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


@pytest.fixture()
def server():
    return AliasServer(ServerConfig())


def call(server, method, **params):
    """Dispatch one request and return the raw response dict."""
    return server.handle_request(
        {"id": 1, "method": method, "params": params})


def result_of(server, method, **params):
    response = call(server, method, **params)
    assert "error" not in response, response
    return response["result"]


def error_of(server, method, **params):
    response = call(server, method, **params)
    assert "result" not in response, response
    return response["error"]


def fresh_points_to(source, name):
    """What a one-shot run answers for ``name`` at the entry's exit."""
    program = parse_program(source, entry="main")
    result = BootstrapAnalyzer(program).run()
    p = resolve_pointer(program, name)
    loc = Loc(program.entry, program.cfg_of(program.entry).exit)
    return sorted(str(o) for o in result.points_to(p, loc))


def fingerprints_of(source):
    program = parse_program(source, entry="main")
    result = BootstrapAnalyzer(program).run()
    return {payload_fingerprint(build_payload(program, c, result.callgraph))
            for c in result.clusters}


# ----------------------------------------------------------------------
class TestClusterStore:
    def test_put_get_and_counters(self):
        store = ClusterStore(max_entries=8)
        assert store.get("k1") is None
        store.put("k1", {"points_to": {}})
        assert store.get("k1") == {"points_to": {}}
        assert store.hits == 1 and store.misses == 1
        assert "k1" in store and len(store) == 1

    def test_lru_eviction(self):
        store = ClusterStore(max_entries=2)
        store.put("a", {"n": 1})
        store.put("b", {"n": 2})
        store.get("a")                       # refresh a; b is now oldest
        store.put("c", {"n": 3})
        assert store.get("b") is None        # evicted
        assert store.get("a") is not None
        assert store.evictions == 1

    def test_disk_fallthrough_and_promotion(self, tmp_path):
        disk = str(tmp_path / "cache")
        first = ClusterStore(max_entries=8, disk=disk)
        first.put("k", {"n": 1})
        # A fresh store (daemon restart) warm-starts from disk.
        second = ClusterStore(max_entries=8, disk=disk)
        assert len(second) == 0
        assert second.get("k") == {"n": 1}
        assert second.hits == 1
        assert len(second) == 1              # promoted into memory

    def test_analyze_all_compatible(self, demo_file):
        store = ClusterStore(max_entries=64)
        program = parse_program(open(demo_file).read(), entry="main")
        result = BootstrapAnalyzer(program).run()
        cold = result.analyze_all(cache=store)
        assert cold.cache_misses == len(result.clusters)
        assert cold.fingerprints and len(cold.fingerprints) == \
            len(result.clusters)
        warm = BootstrapAnalyzer(program).run().analyze_all(cache=store)
        assert warm.cache_hits == len(result.clusters)
        assert warm.cache_misses == 0


# ----------------------------------------------------------------------
class TestProtocol:
    def test_ping(self, server):
        result = result_of(server, "ping")
        assert result["pong"] is True
        assert result["protocol"] == protocol.PROTOCOL_VERSION

    def test_unknown_method(self, server):
        error = error_of(server, "nope")
        assert error["code"] == protocol.METHOD_NOT_FOUND

    def test_missing_method(self, server):
        response = server.handle_request({"id": 7, "params": {}})
        assert response["error"]["code"] == protocol.INVALID_REQUEST
        assert response["id"] == 7

    def test_bad_json_line(self, server):
        response = json.loads(server.handle_line(b"{not json\n"))
        assert response["error"]["code"] == protocol.PARSE_ERROR

    def test_non_object_request(self, server):
        response = json.loads(server.handle_line(b"[1,2]\n"))
        assert response["error"]["code"] == protocol.INVALID_REQUEST

    def test_missing_param(self, server, demo_file):
        error = error_of(server, "points_to", file=demo_file)
        assert error["code"] == protocol.INVALID_PARAMS

    def test_unknown_pointer(self, server, demo_file):
        error = error_of(server, "points_to", file=demo_file, ptr="zz")
        assert error["code"] == protocol.INVALID_PARAMS
        assert "zz" in error["message"]

    def test_missing_file(self, server, tmp_path):
        error = error_of(server, "points_to",
                         file=str(tmp_path / "gone.c"), ptr="p")
        assert error["code"] == protocol.FILE_ERROR

    def test_unparsable_file(self, server, tmp_path):
        path = tmp_path / "broken.c"
        path.write_text("int main( {")
        error = error_of(server, "points_to", file=str(path), ptr="p")
        assert error["code"] == protocol.ANALYSIS_ERROR

    def test_budget_exceeded_is_structured(self, tmp_path):
        server = AliasServer(ServerConfig(fscs_budget=1))
        path = tmp_path / "demo.c"
        path.write_text(DEMO)
        error = error_of(server, "points_to", file=str(path), ptr="q")
        assert error["code"] == protocol.BUDGET_EXCEEDED
        assert error["data"]["analysis"] == "summary-engine"
        assert error["data"]["steps"] > 1

    def test_draining_rejects_new_queries(self, server, demo_file):
        result_of(server, "shutdown")
        error = error_of(server, "points_to", file=demo_file, ptr="q")
        assert error["code"] == protocol.SHUTTING_DOWN
        # stats stays reachable for observability while draining
        assert result_of(server, "stats")["draining"] is True


# ----------------------------------------------------------------------
class TestQueries:
    def test_points_to_matches_one_shot(self, server, demo_file):
        for name in ("p", "q", "r", "s", "t", "u", "v", "w"):
            result = result_of(server, "points_to", file=demo_file,
                               ptr=name)
            assert result["objects"] == fresh_points_to(DEMO, name), name

    def test_alias(self, server, demo_file):
        assert result_of(server, "alias", file=demo_file,
                         p="p", q="q")["may_alias"] is True
        assert result_of(server, "alias", file=demo_file,
                         p="p", q="t")["may_alias"] is False

    def test_must_alias(self, server, demo_file):
        assert result_of(server, "must_alias", file=demo_file,
                         p="r", q="s")["must_alias"] is True
        assert result_of(server, "must_alias", file=demo_file,
                         p="r", q="t")["must_alias"] is False

    def test_demand_selection_reported(self, server, demo_file):
        result = result_of(server, "points_to", file=demo_file, ptr="t")
        assert result["clusters"]["selected"] < result["clusters"]["total"]

    def test_diagnostics_match_one_shot(self, server):
        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples", "memsafe_buggy.c")
        result = result_of(server, "diagnostics", file=path)
        from repro.checkers import run_checkers
        from repro.core import diagnostics_to_dict
        program = parse_program(open(os.path.abspath(path)).read(),
                                entry="main", path=os.path.abspath(path))
        report = run_checkers(program)
        assert result["diagnostics"] == diagnostics_to_dict(
            report.diagnostics)
        assert {c["checker"] for c in result["checkers"]} \
            == {st.checker for st in report.stats}

    def test_diagnostics_unknown_checker(self, server, demo_file):
        error = error_of(server, "diagnostics", file=demo_file,
                         checkers=["nope"])
        assert error["code"] == protocol.INVALID_PARAMS

    def test_stats_counts_requests(self, server, demo_file):
        result_of(server, "points_to", file=demo_file, ptr="q")
        result_of(server, "points_to", file=demo_file, ptr="t")
        stats = result_of(server, "stats")
        assert stats["requests"]["points_to"]["count"] == 2
        assert stats["files"]["loaded"] == 1
        assert stats["clusters"]["entries"] > 0


#: The four pointer webs of DEMO plus a seeded taint flow: a one-web
#: edit must leave the taint diagnostics bit-identical while the
#: cluster store reuses every unchanged fingerprint.
TAINT_DEMO = DEMO.replace(
    "int main() {",
    """int getenv(int x);
int system(int cmd);

int slot;

void fill(int *out) {
    int raw;
    raw = getenv(1);
    *out = raw;
}

void drain(int cmd) {
    system(cmd);
}

int main() {
    fill(&slot);
    drain(slot);""")

TAINT_DEMO_EDITED = TAINT_DEMO.replace("t = &d;", "t = &b;")


@pytest.fixture()
def taint_file(tmp_path):
    path = tmp_path / "tainted.c"
    path.write_text(TAINT_DEMO)
    return str(path)


class TestTaintMethod:
    def test_matches_one_shot(self, server, taint_file):
        from repro.checkers import run_taint
        from repro.core import diagnostics_to_dict
        result = result_of(server, "taint", file=taint_file)
        program = parse_program(open(taint_file).read(), entry="main",
                                path=taint_file)
        run = run_taint(program)
        assert result["diagnostics"] == diagnostics_to_dict(
            run.diagnostics)
        assert result["diagnostics"]  # the getenv -> system flow
        assert result["rounds"] == run.rounds
        assert result["demanded"] == sorted(str(v) for v in run.demanded)

    def test_cached_by_spec_digest(self, server, taint_file):
        first = result_of(server, "taint", file=taint_file)
        second = result_of(server, "taint", file=taint_file)
        assert first == second
        from repro.analysis.taint import TaintSpec
        assert first["spec_digest"] == TaintSpec.default().digest()

    def test_custom_spec(self, server, taint_file):
        # A spec with no rules for this program's externs: no findings,
        # and a different digest (a separate cache slot).
        spec = {"sources": {"other_src": {"taints": ["return"]}},
                "sinks": {"other_sink": {"args": [0]}}}
        result = result_of(server, "taint", file=taint_file, spec=spec)
        assert result["diagnostics"] == []
        default = result_of(server, "taint", file=taint_file)
        assert result["spec_digest"] != default["spec_digest"]
        assert default["diagnostics"]

    def test_bad_spec_rejected(self, server, taint_file):
        error = error_of(server, "taint", file=taint_file, spec="nope")
        assert error["code"] == protocol.INVALID_PARAMS
        error = error_of(server, "taint", file=taint_file,
                         spec={"sinks": {"s": {"severity": "fatal"}}})
        assert error["code"] == protocol.INVALID_PARAMS

    def test_edit_reuses_unchanged_clusters(self, server, taint_file):
        before = result_of(server, "taint", file=taint_file)
        with open(taint_file, "w") as handle:
            handle.write(TAINT_DEMO_EDITED)
        result_of(server, "invalidate", file=taint_file)
        after = result_of(server, "taint", file=taint_file)
        # The one-web edit does not touch the taint chain: findings are
        # bit-identical, and the reload reused every cluster whose
        # payload fingerprint survived the edit.
        assert after["diagnostics"] == before["diagnostics"]
        refresh = after["refresh"]
        assert 0 < refresh["reanalyzed"] < refresh["clusters"]
        assert refresh["reused"] == refresh["clusters"] \
            - refresh["reanalyzed"]


# ----------------------------------------------------------------------
class TestIncrementality:
    def test_noop_invalidate_reuses_everything(self, server, demo_file):
        result_of(server, "points_to", file=demo_file, ptr="q")
        refresh = result_of(server, "invalidate", file=demo_file)
        assert refresh["reanalyzed"] == 0
        assert refresh["reused"] == refresh["clusters"]

    def test_one_function_edit_reanalyzes_only_changed_fingerprints(
            self, server, demo_file):
        result_of(server, "points_to", file=demo_file, ptr="u")
        with open(demo_file, "w") as handle:
            handle.write(DEMO_EDITED)
        refresh = result_of(server, "invalidate", file=demo_file)
        # Independently computed ground truth: the clusters whose
        # payload fingerprints changed between the two programs.
        changed = fingerprints_of(DEMO_EDITED) - fingerprints_of(DEMO)
        assert refresh["reanalyzed"] == len(changed)
        assert 0 < refresh["reanalyzed"] < refresh["clusters"]
        assert refresh["reused"] == refresh["clusters"] \
            - refresh["reanalyzed"]

    def test_answers_after_invalidate_match_fresh_run(self, server,
                                                      demo_file):
        assert result_of(server, "points_to", file=demo_file,
                         ptr="u")["objects"] == ["d"]
        with open(demo_file, "w") as handle:
            handle.write(DEMO_EDITED)
        result_of(server, "invalidate", file=demo_file)
        for name in ("p", "q", "r", "s", "t", "u", "v", "w"):
            server_objs = result_of(server, "points_to", file=demo_file,
                                    ptr=name)["objects"]
            assert server_objs == fresh_points_to(DEMO_EDITED, name)

    def test_watch_reloads_changed_file(self, server, demo_file):
        result_of(server, "points_to", file=demo_file, ptr="u")
        with open(demo_file, "w") as handle:
            handle.write(DEMO_EDITED)
        # Guarantee an observable stat change even on coarse mtime.
        future = time.time() + 10
        os.utime(demo_file, (future, future))
        result = result_of(server, "points_to", file=demo_file, ptr="t")
        assert result["objects"] == ["b"]

    def test_no_watch_keeps_stale_answers_until_invalidate(self,
                                                           demo_file):
        server = AliasServer(ServerConfig(watch=False))
        result_of(server, "points_to", file=demo_file, ptr="t")
        with open(demo_file, "w") as handle:
            handle.write(DEMO_EDITED)
        future = time.time() + 10
        os.utime(demo_file, (future, future))
        assert result_of(server, "points_to", file=demo_file,
                         ptr="t")["objects"] == ["d"]
        result_of(server, "invalidate", file=demo_file)
        assert result_of(server, "points_to", file=demo_file,
                         ptr="t")["objects"] == ["b"]

    def test_file_lru_eviction(self, tmp_path):
        server = AliasServer(ServerConfig(max_files=1))
        one = tmp_path / "one.c"
        two = tmp_path / "two.c"
        one.write_text(DEMO)
        two.write_text(DEMO_EDITED)
        result_of(server, "points_to", file=str(one), ptr="q")
        result_of(server, "points_to", file=str(two), ptr="q")
        assert server.files.paths() == [str(two)]
        # The evicted file still answers (reload), and its unchanged
        # clusters come back from the shared cluster store.
        result = result_of(server, "points_to", file=str(one), ptr="t")
        assert result["objects"] == ["d"]

    def test_restart_warm_starts_from_disk_cache(self, tmp_path,
                                                 demo_file):
        cache_dir = str(tmp_path / "cache")
        first = AliasServer(ServerConfig(cache_dir=cache_dir))
        result_of(first, "points_to", file=demo_file, ptr="q")
        # A brand-new daemon (fresh memory) over the same disk cache.
        second = AliasServer(ServerConfig(cache_dir=cache_dir))
        result_of(second, "points_to", file=demo_file, ptr="q")
        state = second.files.states()[0]
        assert state.refresh.reanalyzed == 0
        assert state.refresh.reused == state.refresh.clusters


# ----------------------------------------------------------------------
def _serve_in_thread(server):
    ready = threading.Event()
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"install_signal_handlers": False, "ready": ready},
        daemon=True)
    thread.start()
    assert ready.wait(30.0)
    return thread


@pytest.fixture()
def unix_daemon(demo_file):
    tmp = tempfile.mkdtemp(prefix="repro-srv-")
    sock = os.path.join(tmp, "repro.sock")
    server = AliasServer(ServerConfig(), socket_path=sock)
    thread = _serve_in_thread(server)
    yield server, sock
    server.request_shutdown()
    thread.join(30.0)
    assert not thread.is_alive()


class TestTransport:
    def test_unix_socket_round_trip(self, unix_daemon, demo_file):
        _server, sock = unix_daemon
        with ServerClient(socket_path=sock) as client:
            assert client.ping()["pong"] is True
            result = client.points_to(demo_file, "q")
            assert result["objects"] == ["a"]
            assert client.alias(demo_file, "p", "q")["may_alias"] is True

    def test_multiple_requests_per_connection(self, unix_daemon,
                                              demo_file):
        _server, sock = unix_daemon
        with ServerClient(socket_path=sock) as client:
            for _ in range(5):
                assert client.points_to(demo_file, "q")["objects"] == ["a"]

    def test_error_surfaces_as_server_error(self, unix_daemon, demo_file):
        _server, sock = unix_daemon
        with ServerClient(socket_path=sock) as client:
            with pytest.raises(ServerError) as exc:
                client.points_to(demo_file, "zz")
            assert exc.value.code == protocol.INVALID_PARAMS

    def test_concurrent_clients(self, unix_daemon, demo_file):
        _server, sock = unix_daemon
        answers, errors = [], []

        def worker(name):
            try:
                with ServerClient(socket_path=sock) as client:
                    for _ in range(3):
                        answers.append(
                            tuple(client.points_to(demo_file,
                                                   name)["objects"]))
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in ("q", "s", "u", "w")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not errors
        assert len(answers) == 12
        assert set(answers) == {("a",), ("c",), ("d",), ("e",)}

    def test_shutdown_request_stops_server(self, demo_file):
        tmp = tempfile.mkdtemp(prefix="repro-srv-")
        sock = os.path.join(tmp, "repro.sock")
        server = AliasServer(ServerConfig(), socket_path=sock)
        thread = _serve_in_thread(server)
        with ServerClient(socket_path=sock) as client:
            assert client.shutdown()["shutting_down"] is True
        thread.join(30.0)
        assert not thread.is_alive()
        assert not os.path.exists(sock)

    def test_tcp_round_trip(self, demo_file):
        server = AliasServer(ServerConfig(), port=0)
        server.bind()                       # resolves the ephemeral port
        thread = _serve_in_thread(server)
        try:
            wait_for_server(port=server.port, timeout=30.0)
            with ServerClient(port=server.port) as client:
                assert client.points_to(demo_file, "q")["objects"] == ["a"]
        finally:
            server.request_shutdown()
            thread.join(30.0)
        assert not thread.is_alive()


# ----------------------------------------------------------------------
def _read_response(sock_obj):
    """One newline-framed response off a raw socket."""
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = sock_obj.recv(65536)
        assert chunk, "connection closed mid-response"
        buf += chunk
    return json.loads(buf)


class TestConnectionRobustness:
    """A hostile or buggy client must not take its connection (let alone
    the daemon) down: malformed and oversized lines get structured
    errors, and the same connection keeps answering afterwards."""

    def test_malformed_line_then_normal_request(self, unix_daemon,
                                                demo_file):
        _server, sock = unix_daemon
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
            s.connect(sock)
            s.settimeout(30.0)
            s.sendall(b"{this is not json\n")
            err = _read_response(s)
            assert err["error"]["code"] == protocol.PARSE_ERROR
            s.sendall(protocol.encode(
                {"id": 7, "method": "ping", "params": {}}))
            assert _read_response(s)["result"]["pong"] is True

    def test_oversized_line_rejected_and_resynced(self, unix_daemon,
                                                  demo_file):
        _server, sock = unix_daemon
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
            s.connect(sock)
            s.settimeout(60.0)
            s.sendall(b"x" * (protocol.MAX_REQUEST_BYTES + 64))
            err = _read_response(s)
            assert err["error"]["code"] == protocol.REQUEST_TOO_LARGE
            # Finish the monster line; the daemon resyncs at its newline
            # and the connection answers normal requests again.
            s.sendall(b"yyy\n")
            s.sendall(protocol.encode(
                {"id": 8, "method": "ping", "params": {}}))
            assert _read_response(s)["result"]["pong"] is True


class TestRequestSizeLimit:
    """The oversized-request limit is per-daemon configuration, not a
    protocol constant: a small limit must reject lines the default
    accepts, and a raised limit must accept lines the default rejects —
    both on a live transport, where the enforcement lives."""

    @pytest.fixture()
    def tiny_limit_daemon(self):
        tmp = tempfile.mkdtemp(prefix="repro-srv-")
        sock = os.path.join(tmp, "repro.sock")
        server = AliasServer(ServerConfig(max_request_bytes=256),
                             socket_path=sock)
        thread = _serve_in_thread(server)
        yield sock
        server.request_shutdown()
        thread.join(30.0)

    def test_small_limit_rejects_below_default(self, tiny_limit_daemon):
        # 4 KiB is far under the 4 MiB default and under one recv chunk;
        # only the configured limit can reject it.
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
            s.connect(tiny_limit_daemon)
            s.settimeout(30.0)
            s.sendall(b"x" * 4096 + b"\n")
            err = _read_response(s)
            assert err["error"]["code"] == protocol.REQUEST_TOO_LARGE
            # The connection resyncs and keeps serving.
            s.sendall(protocol.encode(
                {"id": 2, "method": "ping", "params": {}}))
            assert _read_response(s)["result"]["pong"] is True

    def test_small_limit_still_accepts_normal_requests(
            self, tiny_limit_daemon):
        with ServerClient(socket_path=tiny_limit_daemon) as client:
            assert client.ping()["pong"] is True

    def test_raised_limit_accepts_above_default(self):
        tmp = tempfile.mkdtemp(prefix="repro-srv-")
        sock = os.path.join(tmp, "repro.sock")
        big = 16 * 1024 * 1024
        server = AliasServer(ServerConfig(max_request_bytes=big),
                             socket_path=sock)
        thread = _serve_in_thread(server)
        try:
            # A valid request bigger than the 4 MiB default: only the
            # raised per-daemon limit lets it through.
            pad = "x" * (protocol.MAX_REQUEST_BYTES + 1024)
            with socket.socket(socket.AF_UNIX,
                               socket.SOCK_STREAM) as s:
                s.connect(sock)
                s.settimeout(60.0)
                s.sendall(protocol.encode(
                    {"id": 3, "method": "ping",
                     "params": {"pad": pad}}))
                assert _read_response(s)["result"]["pong"] is True
        finally:
            server.request_shutdown()
            thread.join(30.0)

    def test_cli_flag_reaches_server_config(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["serve", "--port", "1", "--max-request-bytes", "512"])
        assert args.max_request_bytes == 512
        args = build_parser().parse_args(["serve", "--port", "1"])
        assert args.max_request_bytes == protocol.MAX_REQUEST_BYTES


class TestGracefulSigterm:
    def test_sigterm_drains_inflight_concurrent_queries(self, tmp_path):
        """SIGTERM mid-flight: every already-accepted query must still
        get its full answer, and the daemon must exit cleanly (code 0)
        rather than dropping connections on the floor."""
        from repro.fleet.worker import LocalWorker

        path = tmp_path / "demo.c"
        path.write_text(DEMO)
        worker = LocalWorker("drain-test")
        worker.spawn()
        try:
            wait_for_server(port=worker.port, timeout=60.0)
            # One ping round-trip per connection first: a bare connect
            # can still be sitting in the TCP backlog when SIGTERM
            # stops the accept loop (a dropped connection, not an
            # in-flight query); an answered ping proves a handler
            # thread owns the connection.
            conns = []
            for _ in range(4):
                s = socket.create_connection(
                    ("127.0.0.1", worker.port), timeout=60.0)
                s.sendall(protocol.encode({"id": 0, "method": "ping"}))
                assert _read_response(s)["result"]["pong"] is True
                conns.append(s)
            # The file is cold: the first query analyzes it under the
            # per-file lock and the other three block inside their
            # handlers, so the queries are genuinely in flight when
            # the signal lands.
            for s, name in zip(conns, ("q", "s", "u", "w")):
                s.sendall(protocol.encode(
                    {"id": 1, "method": "points_to",
                     "params": {"file": str(path), "ptr": name}}))
            time.sleep(0.15)                     # handlers enter handle_line
            worker.proc.terminate()              # SIGTERM

            answers, errors = [], []

            def read_answer(s):
                try:
                    answers.append(
                        _read_response(s)["result"]["objects"])
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=read_answer, args=(s,))
                       for s in conns]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60.0)
            for s in conns:
                s.close()
            assert not errors
            assert sorted(answers) == [["a"], ["c"], ["d"], ["e"]]
            assert worker.proc.wait(60.0) == 0   # clean drain
        finally:
            worker.terminate()


class TestClientReconnect:
    def test_reconnects_after_daemon_restart(self, demo_file):
        tmp = tempfile.mkdtemp(prefix="repro-srv-")
        sock = os.path.join(tmp, "repro.sock")
        first = AliasServer(ServerConfig(), socket_path=sock)
        thread = _serve_in_thread(first)
        client = ServerClient(socket_path=sock,
                              reconnect_backoff=0.05)
        try:
            assert client.points_to(demo_file, "q")["objects"] == ["a"]
            first.request_shutdown()
            thread.join(30.0)
            second = AliasServer(ServerConfig(), socket_path=sock)
            thread = _serve_in_thread(second)
            try:
                # Same client object: the dead connection is replaced
                # transparently and the query is resent.
                assert client.points_to(demo_file,
                                        "q")["objects"] == ["a"]
                assert client.reconnects >= 1
            finally:
                second.request_shutdown()
                thread.join(30.0)
        finally:
            client.close()

    def test_initial_connect_retries_with_backoff(self, demo_file):
        tmp = tempfile.mkdtemp(prefix="repro-srv-")
        sock = os.path.join(tmp, "repro.sock")
        server = AliasServer(ServerConfig(), socket_path=sock)
        holder = {}

        def late_start():
            time.sleep(0.3)
            holder["thread"] = _serve_in_thread(server)

        starter = threading.Thread(target=late_start)
        starter.start()
        try:
            # The daemon does not exist yet; the constructor's bounded
            # backoff must ride out the gap.
            with ServerClient(socket_path=sock, reconnect_attempts=20,
                              reconnect_backoff=0.05) as client:
                assert client.ping()["pong"] is True
        finally:
            starter.join(30.0)
            server.request_shutdown()
            holder["thread"].join(30.0)

    def test_no_retry_without_attempts(self, tmp_path):
        sock = str(tmp_path / "absent.sock")
        with pytest.raises(ServerError):
            ServerClient(socket_path=sock, reconnect_attempts=0)

    def test_timeout_is_never_retried(self, unix_daemon, tmp_path):
        _server, sock = unix_daemon
        big = tmp_path / "big.c"
        from repro.bench.synth import SynthConfig, generate_source
        big.write_text(generate_source(
            SynthConfig(name="slow", pointers=160)))
        client = ServerClient(socket_path=sock, timeout=0.05)
        try:
            with pytest.raises(socket.timeout):
                client.points_to(str(big), "w0p0")   # cold load >> 50ms
            assert client.reconnects == 0            # no resend
        finally:
            client.close()


class TestDegradedAnswers:
    """With faults injected and degradation on, the daemon returns
    partial (sound, coarser) results plus structured warnings instead of
    erroring out."""

    @pytest.fixture()
    def degraded_server(self):
        return AliasServer(ServerConfig(
            degrade=True, retries=0,
            inject_faults=[FaultSpec(kind="crash", match="*")]))

    def test_points_to_carries_warnings(self, degraded_server, demo_file):
        result = result_of(degraded_server, "points_to",
                           file=demo_file, ptr="q")
        warnings = result.get("warnings")
        assert warnings, result
        assert all(w["code"] == "degraded-precision" for w in warnings)
        assert all(w["precision"] in ("fsci", "andersen", "steensgaard")
                   for w in warnings)
        # Sound: the degraded answer covers the clean one.
        assert set(result["objects"]) >= set(
            fresh_points_to(DEMO, "q"))

    def test_summary_counts_degraded_clusters(self, degraded_server,
                                              demo_file):
        refresh = result_of(degraded_server, "invalidate", file=demo_file)
        assert refresh["degraded"] == refresh["clusters"] > 0
        summary = degraded_server.files.get(demo_file).summary()
        assert summary["degraded"] == summary["clusters"]
        assert summary["last_refresh"]["degraded"] == summary["clusters"]

    def test_clean_server_has_no_warnings(self, server, demo_file):
        result = result_of(server, "points_to", file=demo_file, ptr="q")
        assert "warnings" not in result

    def test_invalidate_after_edit_with_policy_no_faults(self, demo_file):
        """A policy-armed but healthy server must survive the partial
        reanalysis an edit + invalidate triggers (regression: the
        attempt-count remap used to IndexError whenever the pending
        clusters were a non-prefix subset)."""
        armed = AliasServer(ServerConfig(degrade=True, retries=0))
        result_of(armed, "points_to", file=demo_file, ptr="q")
        with open(demo_file, "w") as handle:
            handle.write(DEMO_EDITED)
        refresh = result_of(armed, "invalidate", file=demo_file)
        assert 0 < refresh["reanalyzed"] < refresh["clusters"]
        assert refresh["degraded"] == 0
        edited = result_of(armed, "points_to", file=demo_file, ptr="u")
        assert "warnings" not in edited
        assert edited["objects"] == fresh_points_to(DEMO_EDITED, "u")

    def test_healthy_reload_clears_warnings(self, demo_file):
        flaky = AliasServer(ServerConfig(
            degrade=True, retries=0,
            inject_faults=[FaultSpec(kind="crash", match="*")]))
        degraded = result_of(flaky, "points_to", file=demo_file, ptr="q")
        assert degraded.get("warnings")
        # Same store, faults gone: invalidate forces a clean reanalysis.
        flaky.files.config.inject_faults = None
        result_of(flaky, "invalidate", file=demo_file)
        clean = result_of(flaky, "points_to", file=demo_file, ptr="q")
        assert "warnings" not in clean
        assert clean["objects"] == fresh_points_to(DEMO, "q")


# ----------------------------------------------------------------------
class TestDeadlineProtocol:
    def test_request_deadline_parses_numbers(self):
        now = time.time()
        assert protocol.request_deadline({"deadline": now}) == now
        assert protocol.request_deadline({"deadline": 7}) == 7.0
        assert protocol.request_deadline({}) is None

    def test_request_deadline_rejects_garbage(self):
        for bad in (True, False, "soon", [1], {}):
            with pytest.raises(protocol.RequestError) as exc:
                protocol.request_deadline({"deadline": bad})
            assert exc.value.code == protocol.INVALID_REQUEST

    def test_remaining(self):
        assert protocol.remaining(None) is None
        assert protocol.remaining(time.time() + 100.0) > 99.0
        assert protocol.remaining(time.time() - 1.0) < 0

    def test_deadline_err_names_the_hop(self):
        response = protocol.deadline_err(7, time.time() - 2.0, "worker")
        error = response["error"]
        assert response["id"] == 7
        assert error["code"] == protocol.DEADLINE_EXCEEDED
        assert error["data"]["where"] == "worker"
        assert error["data"]["overdue_seconds"] > 1.0


class TestDeadlineAtWorker:
    """The daemon hop: expired requests shed before dispatch, and a
    request that expires mid-solve never gets a partial answer."""

    def _call(self, server, method, deadline, **params):
        return server.handle_request({"id": 1, "method": method,
                                      "params": params,
                                      "deadline": deadline})

    def test_expired_request_is_shed_before_dispatch(self, server,
                                                     demo_file):
        response = self._call(server, "points_to", time.time() - 1.0,
                              file=demo_file, ptr="q")
        assert response["error"]["code"] == protocol.DEADLINE_EXCEEDED
        assert response["error"]["data"]["where"] == "worker"
        # Shed before touching the store: nothing was loaded.
        assert server.files.states() == []

    def test_expiry_mid_solve_never_leaks_a_partial_answer(
            self, server, demo_file, monkeypatch):
        real_get = server.files.get

        def slow_get(path, deadline=None):
            state = real_get(path, deadline=deadline)
            time.sleep(0.15)          # the budget dies while we work
            return state

        monkeypatch.setattr(server.files, "get", slow_get)
        response = self._call(server, "points_to", time.time() + 0.05,
                              file=demo_file, ptr="q")
        assert "result" not in response
        assert response["error"]["code"] == protocol.DEADLINE_EXCEEDED
        assert response["error"]["data"]["where"] == "worker"

    def test_unexpired_deadline_is_transparent(self, server, demo_file):
        response = self._call(server, "points_to", time.time() + 60.0,
                              file=demo_file, ptr="q")
        assert response["result"]["objects"] == ["a"]

    def test_malformed_deadline_rejected(self, server, demo_file):
        response = self._call(server, "points_to", "yesterday",
                              file=demo_file, ptr="q")
        assert response["error"]["code"] == protocol.INVALID_REQUEST

    def test_deadline_clamps_run_policy(self, server, demo_file):
        state = server.files.get(demo_file, deadline=time.time() + 30.0)
        assert state.deadline_clamped is True
        # Un-deadlined load of the same (cached) file is not clamped.
        fresh = AliasServer(ServerConfig())
        assert fresh.files.get(demo_file).deadline_clamped is False

    def test_clamped_degraded_state_is_not_cached(self, demo_file):
        """A load whose precision was sacrificed to somebody's deadline
        must not be served to later unconstrained queries."""
        flaky = AliasServer(ServerConfig(
            degrade=True, retries=0,
            inject_faults=[FaultSpec(kind="crash", match="*")]))
        state = flaky.files.get(demo_file, deadline=time.time() + 30.0)
        assert state.deadline_clamped and state.refresh.degraded
        # The degraded-under-deadline state was served once, not kept.
        assert flaky.files.states() == []


class TestDeadlineAtClient:
    def test_expired_deadline_sheds_without_touching_the_wire(
            self, unix_daemon):
        server, sock = unix_daemon
        with ServerClient(socket_path=sock) as client:
            with pytest.raises(ServerError) as exc:
                client.call("ping", deadline=time.time() - 1.0)
        assert exc.value.code == protocol.DEADLINE_EXCEEDED
        assert exc.value.data["where"] == "client"
        with server._stats_lock:
            assert "ping" not in server._method_count

    def test_client_wide_deadline_applies_per_call(self, unix_daemon,
                                                   demo_file):
        _server, sock = unix_daemon
        with ServerClient(socket_path=sock, deadline=30.0) as client:
            # Generous budget: calls just work, each under its own
            # fresh 30s deadline.
            assert client.ping()["pong"] is True
            assert client.points_to(demo_file, "q")["objects"] == ["a"]

    def test_deadline_travels_to_the_daemon(self, unix_daemon,
                                            demo_file):
        server, sock = unix_daemon
        seen = {}
        real = server.files.get

        def spy(path, deadline=None):
            seen["deadline"] = deadline
            return real(path, deadline=deadline)

        server.files.get = spy
        try:
            with ServerClient(socket_path=sock) as client:
                client.call("points_to", deadline=time.time() + 45.0,
                            file=demo_file, ptr="q")
        finally:
            server.files.get = real
        assert seen["deadline"] is not None
        assert seen["deadline"] - time.time() > 30.0

"""Steensgaard analysis: partitions, hierarchy, depth, cyclic cases."""

import pytest

from repro.analysis import Steensgaard, execute
from repro.ir import AllocSite, ProgramBuilder, Var

from .helpers import (
    figure2_program,
    figure3_program,
    figure5_program,
    pts_names,
    v,
)


def parts(result, min_size=2):
    return sorted(sorted(str(m) for m in p)
                  for p in result.partitions() if len(p) >= min_size)


class TestPaperFigures:
    def test_figure2_partitions(self):
        st = Steensgaard(figure2_program()).run()
        assert parts(st) == [
            ["main::a", "main::b", "main::c"],
            ["main::p", "main::q", "main::r"],
        ]

    def test_figure2_points_to(self):
        st = Steensgaard(figure2_program()).run()
        # Unification smears: every top pointer may point to all of a,b,c.
        assert pts_names(st, v("q", "main")) == \
            ["main::a", "main::b", "main::c"]

    def test_figure3_partitions(self):
        """The paper: partitions are {a,b}, {y}, {p,x} (our temp t lands
        with a and b)."""
        st = Steensgaard(figure3_program()).run()
        assert ["main::a", "main::b", "main::t"] in parts(st)
        assert ["main::p", "main::x"] in parts(st)
        y_part = sorted(str(m) for m in st.partition_of(v("y", "main")))
        assert y_part == ["main::y"]

    def test_figure3_hierarchy(self):
        st = Steensgaard(figure3_program()).run()
        x, y, a, b = (v(n, "main") for n in "xyab")
        assert st.higher_than(x, a)
        assert st.higher_than(y, b)
        assert not st.higher_than(a, x)
        assert not st.higher_than(x, y)

    def test_figure3_depths(self):
        st = Steensgaard(figure3_program()).run()
        assert st.depth_of(v("x", "main")) == 0
        assert st.depth_of(v("y", "main")) == 0
        assert st.depth_of(v("a", "main")) == 1
        assert st.depth_of(v("b", "main")) == 1

    def test_figure5_partitions(self):
        st = Steensgaard(figure5_program()).run()
        p = parts(st)
        assert ["u", "w", "x", "z"] in p
        assert ["d", "main::bm", "main::c"] in p

    def test_figure5_hierarchy(self):
        st = Steensgaard(figure5_program()).run()
        assert st.higher_than(Var("x"), Var("d"))
        assert st.same_partition(Var("x"), Var("z"))


class TestInvariants:
    def test_out_degree_at_most_one(self):
        """The paper's headline structural claim about the class graph."""
        for prog in (figure2_program(), figure3_program(),
                     figure5_program()):
            st = Steensgaard(prog).run()
            sources = [tuple(sorted(map(str, src)))
                       for src, _ in st.class_graph()]
            assert len(sources) == len(set(sources))

    def test_partitions_are_disjoint_and_cover(self):
        prog = figure5_program()
        st = Steensgaard(prog).run()
        seen = set()
        for p in st.partitions():
            assert not (p & seen)
            seen |= p
        assert seen == prog.objects

    def test_partition_of_unknown_var_is_singleton(self):
        st = Steensgaard(figure2_program()).run()
        ghost = Var("ghost")
        assert st.partition_of(ghost) == frozenset({ghost})

    def test_may_alias_is_same_partition(self):
        st = Steensgaard(figure2_program()).run()
        assert st.may_alias(v("p", "main"), v("q", "main"))
        assert not st.may_alias(v("p", "main"), v("a", "main"))

    def test_self_alias(self):
        st = Steensgaard(figure2_program()).run()
        assert st.may_alias(v("p", "main"), v("p", "main"))


class TestCyclicCases:
    def test_store_self_creates_self_loop(self):
        """*p = p puts p and *p in one partition (paper's cyclic case)."""
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            f.store("p", "p")
        prog = b.build()
        st = Steensgaard(prog).run()
        p, a = v("p", "main"), v("a", "main")
        assert st.same_partition(p, a)
        assert st.is_cyclic_partition(p)
        assert st.pointee_partition(p) == st.partition_of(p)

    def test_mutual_address_cycle_collapsed(self):
        """x=&y; y=&x: the two-partition cycle is merged so that depth
        stays well-defined."""
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("x", "y")
            f.addr("y", "x")
        prog = b.build()
        st = Steensgaard(prog).run()
        x, y = v("x", "main"), v("y", "main")
        assert st.same_partition(x, y)
        assert st.is_cyclic_partition(x)
        # Depth is defined (no infinite walk).
        assert st.depth_of(x) == st.depth_of(y)

    def test_three_cycle_collapsed(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("x", "y")
            f.addr("y", "z")
            f.addr("z", "x")
        st = Steensgaard(b.build()).run()
        assert st.same_partition(v("x", "main"), v("z", "main"))

    def test_self_address(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("x", "x")
        st = Steensgaard(b.build()).run()
        assert st.is_cyclic_partition(v("x", "main"))


class TestMisc:
    def test_alloc_sites_partition_with_pointees(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.alloc("p", "h1")
            f.addr("q", "a")
            f.copy("p", "q")
        st = Steensgaard(b.build()).run()
        assert st.same_partition(AllocSite("h1"), v("a", "main"))

    def test_null_assign_no_effect(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            f.null("p")
            f.addr("q", "b")
        st = Steensgaard(b.build()).run()
        assert not st.same_partition(v("p", "main"), v("q", "main"))

    def test_statement_subset_mode(self):
        prog = figure2_program()
        stmts = [s for _, s in prog.statements()][:3]  # only p=&a; q=&b
        st = Steensgaard(prog, statements=stmts).run()
        # Without the q=p / q=r copies, p q r stay separate.
        assert not st.same_partition(v("p", "main"), v("q", "main"))

    def test_soundness_vs_oracle_figure2(self):
        prog = figure2_program()
        st = Steensgaard(prog).run()
        orc = execute(prog)
        for p in prog.pointers:
            assert orc.points_to(p) <= st.points_to(p) | {p}

    def test_max_partition_size(self):
        st = Steensgaard(figure2_program()).run()
        assert st.max_partition_size() == 3

    def test_interprocedural_unification(self):
        from .helpers import call_chain_program
        prog = call_chain_program()
        st = Steensgaard(prog).run()
        # p flows main -> mid -> leaf -> back: all carriers unified.
        assert st.same_partition(v("p", "main"), v("q", "main"))
        assert st.same_partition(v("p", "main"), v("lp", "leaf"))

"""CLI driver tests (python -m repro ...)."""

import pytest

from repro.cli import main

DRIVER = """
int a, b;
int *p, *q;
int lock_obj;
int *the_lock;

void lock(int *l) { }
void unlock(int *l) { }

void t1(void) {
    lock(the_lock);
    a = a + 1;
    unlock(the_lock);
    b = b + 1;
}

void t2(void) {
    lock(the_lock);
    a = a + 1;
    unlock(the_lock);
    b = b + 2;
}

int main() {
    the_lock = &lock_obj;
    p = &a;
    q = p;
    t1();
    t2();
    return 0;
}
"""


@pytest.fixture()
def driver_file(tmp_path):
    path = tmp_path / "driver.c"
    path.write_text(DRIVER)
    return str(path)


class TestAnalyze:
    def test_basic_report(self, driver_file, capsys):
        assert main(["analyze", driver_file]) == 0
        out = capsys.readouterr().out
        assert "functions" in out and "cascade:" in out

    def test_alias_query(self, driver_file, capsys):
        assert main(["analyze", driver_file, "--aliases", "p", "q"]) == 0
        out = capsys.readouterr().out
        assert "may_alias(p, q)" in out and "True" in out

    def test_points_to_query(self, driver_file, capsys):
        assert main(["analyze", driver_file, "--points-to", "q"]) == 0
        out = capsys.readouterr().out
        assert "points_to(q)" in out and "'a'" in out

    def test_summaries_flag(self, driver_file, capsys):
        assert main(["analyze", driver_file, "--summaries"]) == 0
        assert "summaries built" in capsys.readouterr().out

    def test_unknown_pointer_rejected(self, driver_file):
        with pytest.raises(SystemExit):
            main(["analyze", driver_file, "--points-to", "nope"])

    def test_qualified_name(self, driver_file, capsys):
        assert main(["analyze", driver_file, "--points-to", "p"]) == 0


class TestPartitions:
    def test_listing(self, driver_file, capsys):
        assert main(["partitions", driver_file]) == 0
        out = capsys.readouterr().out
        assert "Steensgaard partitions" in out

    def test_with_andersen(self, driver_file, capsys):
        assert main(["partitions", driver_file, "--andersen"]) == 0
        assert "Andersen clusters" in capsys.readouterr().out


class TestRaces:
    def test_race_report(self, driver_file, capsys):
        rc = main(["races", driver_file, "--threads", "t1,t2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "race warning" in out
        assert "b" in out  # the unlocked counter races

    def test_fail_on_race(self, driver_file):
        rc = main(["races", driver_file, "--threads", "t1,t2",
                   "--fail-on-race"])
        assert rc == 1

    def test_threads_required(self, driver_file):
        with pytest.raises(SystemExit):
            main(["races", driver_file])


class TestBenchCommands:
    def test_table1_tiny(self, capsys):
        rc = main(["table1", "--scale", "0.02", "--programs", "sock",
                   "--skip-nocluster"])
        assert rc == 0
        assert "sock" in capsys.readouterr().out

    def test_figure1_tiny(self, capsys):
        rc = main(["figure1", "--scale", "0.05", "--csv"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "steensgaard_freq" in out

"""CLI driver tests (python -m repro ...)."""

import pytest

from repro.cli import main

DRIVER = """
int a, b;
int *p, *q;
int lock_obj;
int *the_lock;

void lock(int *l) { }
void unlock(int *l) { }

void t1(void) {
    lock(the_lock);
    a = a + 1;
    unlock(the_lock);
    b = b + 1;
}

void t2(void) {
    lock(the_lock);
    a = a + 1;
    unlock(the_lock);
    b = b + 2;
}

int main() {
    the_lock = &lock_obj;
    p = &a;
    q = p;
    t1();
    t2();
    return 0;
}
"""


@pytest.fixture()
def driver_file(tmp_path):
    path = tmp_path / "driver.c"
    path.write_text(DRIVER)
    return str(path)


class TestAnalyze:
    def test_basic_report(self, driver_file, capsys):
        assert main(["analyze", driver_file]) == 0
        out = capsys.readouterr().out
        assert "functions" in out and "cascade:" in out

    def test_alias_query(self, driver_file, capsys):
        assert main(["analyze", driver_file, "--aliases", "p", "q"]) == 0
        out = capsys.readouterr().out
        assert "may_alias(p, q)" in out and "True" in out

    def test_points_to_query(self, driver_file, capsys):
        assert main(["analyze", driver_file, "--points-to", "q"]) == 0
        out = capsys.readouterr().out
        assert "points_to(q)" in out and "'a'" in out

    def test_summaries_flag(self, driver_file, capsys):
        assert main(["analyze", driver_file, "--summaries"]) == 0
        assert "summaries built" in capsys.readouterr().out

    def test_unknown_pointer_rejected(self, driver_file):
        with pytest.raises(SystemExit):
            main(["analyze", driver_file, "--points-to", "nope"])

    def test_qualified_name(self, driver_file, capsys):
        assert main(["analyze", driver_file, "--points-to", "p"]) == 0


class TestPartitions:
    def test_listing(self, driver_file, capsys):
        assert main(["partitions", driver_file]) == 0
        out = capsys.readouterr().out
        assert "Steensgaard partitions" in out

    def test_with_andersen(self, driver_file, capsys):
        assert main(["partitions", driver_file, "--andersen"]) == 0
        assert "Andersen clusters" in capsys.readouterr().out


class TestRaces:
    def test_race_report(self, driver_file, capsys):
        rc = main(["races", driver_file, "--threads", "t1,t2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "race warning" in out
        assert "b" in out  # the unlocked counter races

    def test_fail_on_race(self, driver_file):
        rc = main(["races", driver_file, "--threads", "t1,t2",
                   "--fail-on-race"])
        assert rc == 1

    def test_threads_required(self, driver_file):
        with pytest.raises(SystemExit):
            main(["races", driver_file])


class TestBenchCommands:
    def test_table1_tiny(self, capsys):
        rc = main(["table1", "--scale", "0.02", "--programs", "sock",
                   "--skip-nocluster"])
        assert rc == 0
        assert "sock" in capsys.readouterr().out

    def test_figure1_tiny(self, capsys):
        rc = main(["figure1", "--scale", "0.05", "--csv"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "steensgaard_freq" in out


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")


class TestDemand:
    def test_points_to(self, driver_file, capsys):
        assert main(["demand", driver_file, "--points-to", "q"]) == 0
        out = capsys.readouterr().out
        assert "points_to(q): ['a']" in out
        assert "demand-driven: touched" in out

    def test_json(self, driver_file, capsys):
        import json
        assert main(["demand", driver_file, "--points-to", "p", "q",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["points_to"]["q"] == ["a"]
        assert data["steps"] > 0

    def test_unknown_pointer(self, driver_file):
        with pytest.raises(SystemExit):
            main(["demand", driver_file, "--points-to", "zz"])


class TestBudgetExit:
    def test_demand_budget_exits_cleanly(self, driver_file, capsys):
        assert main(["demand", driver_file, "--points-to", "q",
                     "--budget", "1"]) == 3
        err = capsys.readouterr().err
        assert "demand-andersen" in err and "budget" in err
        assert "Traceback" not in err

    def test_summary_budget_exits_cleanly(self, driver_file, capsys):
        assert main(["analyze", driver_file, "--summaries",
                     "--fscs-budget", "1"]) == 3
        err = capsys.readouterr().err
        assert "summary-engine" in err and "budget" in err
        assert "Traceback" not in err


class TestCacheCommand:
    def test_stats_and_prune(self, driver_file, tmp_path, capsys):
        import json
        cache = str(tmp_path / "cache")
        assert main(["analyze", driver_file, "--cache", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", cache]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] > 0 and stats["bytes"] > 0
        assert main(["cache", "prune", cache,
                     "--max-age-days", "0"]) == 0
        assert "pruned" in capsys.readouterr().out
        assert main(["cache", "stats", cache]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_missing_dir(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "stats", str(tmp_path / "nope")])


class TestServeQuery:
    def test_query_requires_address(self, driver_file):
        with pytest.raises(SystemExit):
            main(["query", "ping"])

    def test_query_unknown_method(self):
        with pytest.raises(SystemExit):
            main(["query", "frobnicate", "--port", "1"])

    def test_query_missing_operands(self, driver_file):
        with pytest.raises(SystemExit):
            main(["query", "points-to", driver_file, "--port", "1"])

    def test_query_unreachable_daemon(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["query", "ping", "--socket",
                  str(tmp_path / "no.sock")])

    def test_serve_requires_one_address(self, driver_file):
        with pytest.raises(SystemExit):
            main(["serve", driver_file])

    def test_serve_and_query_round_trip(self, driver_file, capsys):
        import json
        import os
        import tempfile
        import threading

        from repro.server import wait_for_server
        sock = os.path.join(tempfile.mkdtemp(prefix="repro-cli-"),
                            "repro.sock")
        rc = {}
        thread = threading.Thread(
            target=lambda: rc.setdefault(
                "serve", main(["serve", driver_file, "--socket", sock])))
        thread.start()
        try:
            wait_for_server(socket_path=sock, timeout=30.0)
            assert main(["query", "--socket", sock, "points-to",
                         driver_file, "q"]) == 0
            out = capsys.readouterr().out
            payload = json.loads(out[out.index("{"):])
            assert payload["objects"] == ["a"]
            assert main(["query", "--socket", sock, "stats"]) == 0
            capsys.readouterr()
        finally:
            assert main(["query", "--socket", sock, "shutdown"]) == 0
            thread.join(30.0)
        assert not thread.is_alive()
        assert rc["serve"] == 0


class TestQueryDeadline:
    def test_expired_deadline_exits_with_budget_code(self, driver_file,
                                                     capsys):
        import os
        import tempfile
        import threading

        from repro.server import wait_for_server
        sock = os.path.join(tempfile.mkdtemp(prefix="repro-cli-"),
                            "repro.sock")
        rc = {}
        thread = threading.Thread(
            target=lambda: rc.setdefault(
                "serve", main(["serve", driver_file, "--socket", sock])))
        thread.start()
        try:
            wait_for_server(socket_path=sock, timeout=30.0)
            # An already-blown deadline is shed client-side with the
            # budget exit code — the daemon never sees the query.
            assert main(["query", "--socket", sock,
                         "--deadline", "0.000001",
                         "points-to", driver_file, "q"]) == 3
            err = capsys.readouterr().err
            assert "deadline" in err.lower()
            # A generous one sails through.
            assert main(["query", "--socket", sock, "--deadline", "60",
                         "points-to", driver_file, "q"]) == 0
            capsys.readouterr()
        finally:
            assert main(["query", "--socket", sock, "shutdown"]) == 0
            thread.join(30.0)
        assert rc["serve"] == 0

"""End-to-end reproduction of the paper's worked examples (Figures 2-5),
going through the real frontend (DESIGN.md experiments E3-E6)."""

import pytest

from repro import parse_program
from repro.analysis import (
    Andersen,
    ClusterFSCS,
    Steensgaard,
    format_constraint,
)
from repro.core import relevant_statements
from repro.ir import Loc, Var


FIGURE2 = """
int a, b, c;
int *p, *q, *r;
int main() {
    p = &a; q = &b; r = &c;
    q = p;  q = r;
    return 0;
}
"""

FIGURE3 = """
int a, b;
int *x, *y, *p;
int main() {
    x = &a; y = &b;
    p = x;
    *x = *y;
    return 0;
}
"""

FIGURE4 = """
int *a, *b, *c;
int **x, **y;
int main() {
    b = c;      /* 1a */
    x = &a;     /* 2a */
    y = &b;     /* 3a */
    *x = b;     /* 4a */
    return 0;
}
"""

FIGURE5 = """
int **x, **u, **w, **z;
int *d;
void foo(void)  { int *a, *b; *x = d; a = b; x = w; }
void bar(void)  { int *a, *b; *x = d; a = b; }
int main() {
    int *c;
    x = &c; w = u;
    foo();
    z = x; *z = d;
    bar();
    return 0;
}
"""


class TestFigure2:
    """E3: Steensgaard vs Andersen points-to graphs."""

    def test_steensgaard_partitions(self):
        prog = parse_program(FIGURE2)
        st = Steensgaard(prog).run()
        big = sorted(sorted(map(str, p)) for p in st.partitions()
                     if len(p) > 1)
        assert ["a", "b", "c"] in big
        assert ["p", "q", "r"] in big

    def test_andersen_out_degrees(self):
        prog = parse_program(FIGURE2)
        an = Andersen(prog).run()
        assert len(an.points_to(Var("q"))) == 3
        assert len(an.points_to(Var("p"))) == 1
        assert len(an.points_to(Var("r"))) == 1

    def test_steensgaard_class_graph_out_degree_one(self):
        prog = parse_program(FIGURE2)
        st = Steensgaard(prog).run()
        sources = [frozenset(src) for src, _ in st.class_graph()]
        assert len(sources) == len(set(sources))


class TestFigure3:
    """E4: relevant-statement slicing."""

    def test_partitions(self):
        prog = parse_program(FIGURE3)
        st = Steensgaard(prog).run()
        a, b = Var("a"), Var("b")
        x, p = Var("x"), Var("p")
        assert st.same_partition(a, b)
        assert st.same_partition(p, x)
        assert not st.same_partition(Var("y"), x)

    def test_slice_drops_p_equals_x(self):
        prog = parse_program(FIGURE3)
        st = Steensgaard(prog).run()
        sl = relevant_statements(prog, st, {Var("a"), Var("b")})
        texts = {str(prog.stmt_at(loc)) for loc in sl.statements}
        assert "p = x" not in texts
        assert "x = &a" in texts
        assert "y = &b" in texts

    def test_hierarchy(self):
        prog = parse_program(FIGURE3)
        st = Steensgaard(prog).run()
        assert st.higher_than(Var("x"), Var("a"))
        assert st.depth_of(Var("a")) == st.depth_of(Var("x")) + 1


class TestFigure4:
    """E5: complete vs maximally complete update sequences.

    At 4a, ``*x`` is semantically ``a`` (due to 2a); the maximal
    completion of [4a] is [1a, 4a], so ``a``'s value comes from ``c``."""

    def test_maximal_completion(self):
        prog = parse_program(FIGURE4)
        st = Steensgaard(prog).run()
        a = Var("a")
        part = st.partition_of(a)
        sl = relevant_statements(prog, st, part)
        ca = ClusterFSCS(prog,
                         cluster=[m for m in part if isinstance(m, Var)],
                         tracked=sl.vp, relevant=sl.statements)
        end = Loc("main", prog.cfg_of("main").exit)
        origins = {str(t) for t, _ in ca.origins(a, end)}
        assert origins == {"c"}

    def test_a_b_aliased_at_end(self):
        prog = parse_program(FIGURE4)
        st = Steensgaard(prog).run()
        part = st.partition_of(Var("a"))
        sl = relevant_statements(prog, st, part)
        ca = ClusterFSCS(prog,
                         cluster=[m for m in part if isinstance(m, Var)],
                         tracked=sl.vp, relevant=sl.statements)
        end = Loc("main", prog.cfg_of("main").exit)
        assert ca.may_alias(Var("a"), Var("b"), end)


class TestFigure5:
    """E6: summary tuples."""

    def setup_method(self):
        self.prog = parse_program(FIGURE5)
        self.steens = Steensgaard(self.prog).run()
        self.p1 = self.steens.partition_of(Var("x"))
        self.sl = relevant_statements(self.prog, self.steens, self.p1)
        self.ca = ClusterFSCS(
            self.prog,
            cluster=[m for m in self.p1 if isinstance(m, Var)],
            tracked=self.sl.vp, relevant=self.sl.statements)

    def test_p1_members(self):
        assert {str(m) for m in self.p1} >= {"x", "u", "w", "z"}

    def test_p2_members(self):
        p2 = self.steens.partition_of(Var("d"))
        assert {str(m) for m in p2} >= {"d", "main::c"}

    def test_bar_transparent_for_p1(self):
        assert self.ca.engine.is_transparent("bar")
        assert not self.ca.engine.is_transparent("foo")

    def test_sum_foo_tuple(self):
        tuples = self.ca.summary_tuples("foo")
        rendered = [str(t) for t in tuples]
        assert any(t.startswith("(x, ") and ", w, true)" in t
                   for t in rendered), rendered

    def test_z_maximal_sequence_reaches_u(self):
        end = Loc("main", self.prog.cfg_of("main").exit)
        origins = {str(t) for t, _ in self.ca.origins(Var("z"), end)}
        assert origins == {"u"}

    def test_constraint_tuples_in_bar_for_locals(self):
        """The paper's t1/t2 tuples live in bar's local cluster when the
        store target is ambiguous; with a precise FSCI the store through
        x cannot hit bar's locals, so the summary is unconditional."""
        prog = self.prog
        steens = self.steens
        a_bar = Var("a", "bar")
        part = steens.partition_of(a_bar)
        sl = relevant_statements(prog, steens, part)
        ca = ClusterFSCS(prog,
                         cluster=[m for m in part if isinstance(m, Var)],
                         tracked=sl.vp, relevant=sl.statements)
        tuples = ca.summary_tuples("bar")
        rendered = [str(t) for t in tuples]
        assert any("bar::a" in t and "bar::b" in t for t in rendered)

"""Das One-Flow: the optional middle cascade stage."""

import pytest

from repro.analysis import (
    Andersen,
    OneFlow,
    Steensgaard,
    execute,
    precision_refines,
)
from repro.ir import ProgramBuilder, Var

from .helpers import (
    call_chain_program,
    figure2_program,
    figure3_program,
    figure5_program,
    pts_names,
    v,
)

ALL_FIGURES = [figure2_program, figure3_program, figure5_program,
               call_chain_program]


class TestPrecisionSandwich:
    """Steensgaard ⊒ One-Flow ⊒ ... and One-Flow ⊒ is sound."""

    @pytest.mark.parametrize("make", ALL_FIGURES)
    def test_refines_steensgaard(self, make):
        prog = make()
        of = OneFlow(prog).run()
        st = Steensgaard(prog).run()
        assert precision_refines(of, st, prog.pointers)

    @pytest.mark.parametrize("make", ALL_FIGURES)
    def test_coarsens_andersen(self, make):
        prog = make()
        of = OneFlow(prog).run()
        an = Andersen(prog).run()
        assert precision_refines(an, of, prog.pointers)

    @pytest.mark.parametrize("make", ALL_FIGURES)
    def test_sound_vs_oracle(self, make):
        prog = make()
        of = OneFlow(prog).run()
        orc = execute(prog)
        for p in prog.pointers:
            assert orc.points_to(p) <= of.points_to(p), str(p)


class TestDirectionality:
    def test_top_level_flow_is_directional(self):
        """The defining improvement over Steensgaard: figure 2's p keeps
        a one-element points-to set."""
        of = OneFlow(figure2_program()).run()
        assert pts_names(of, v("p", "main")) == ["main::a"]
        assert pts_names(of, v("q", "main")) == \
            ["main::a", "main::b", "main::c"]

    def test_below_top_is_unified(self):
        """Store-level flow falls back to unification: coarser than
        Andersen on the stored values."""
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("x", "m")
            f.addr("y", "n")
            f.addr("a", "o1")
            f.addr("b", "o2")
            f.store("x", "a")   # m's content ⊇ {o1}
            f.store("y", "b")   # n's content ⊇ {o2}
            f.load("t", "x")
        prog = b.build()
        of = OneFlow(prog).run()
        an = Andersen(prog).run()
        # Andersen keeps the two cells apart.
        assert pts_names(an, v("t", "main")) == ["main::o1"]
        # One-Flow is sound (must include o1); may include o2.
        assert "main::o1" in pts_names(of, v("t", "main"))

    def test_statement_subset(self):
        prog = figure2_program()
        stmts = [s for _, s in prog.statements()][:4]
        of = OneFlow(prog, statements=stmts).run()
        assert pts_names(of, v("q", "main")) == ["main::b"]

    def test_empty_program(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.skip()
        of = OneFlow(b.build()).run()
        assert of.as_dict() == {}

"""Calling-context enumeration and per-context queries."""

import pytest

from repro import parse_program
from repro.core import (
    BootstrapAnalyzer,
    context_count,
    context_sensitivity_gain,
    enumerate_contexts,
    points_to_by_context,
)
from repro.ir import Loc, ProgramBuilder, Var

from .helpers import call_chain_program, recursive_program


def diamond_calls_program():
    """main calls a and b; both call shared: two contexts for shared."""
    b = ProgramBuilder()
    b.global_var("out")
    with b.function("shared", params=("sp",)) as f:
        f.copy("out", "sp")
    with b.function("a") as f:
        f.addr("ap", "oa")
        f.call("shared", ["ap"])
    with b.function("b") as f:
        f.addr("bp", "ob")
        f.call("shared", ["bp"])
    with b.function("main") as f:
        f.call("a")
        f.call("b")
    return b.build()


class TestEnumeration:
    def test_entry_has_one_context(self):
        prog = call_chain_program()
        assert enumerate_contexts(prog, "main") == [("main",)]

    def test_linear_chain(self):
        prog = call_chain_program()
        assert enumerate_contexts(prog, "leaf") == \
            [("main", "mid", "leaf")]

    def test_diamond_two_contexts(self):
        prog = diamond_calls_program()
        cons = enumerate_contexts(prog, "shared")
        assert sorted(cons) == [("main", "a", "shared"),
                                ("main", "b", "shared")]

    def test_recursion_truncated(self):
        prog = recursive_program()
        acyclic = enumerate_contexts(prog, "odd", max_unroll=1)
        assert acyclic == [("main", "even", "odd")]
        unrolled = enumerate_contexts(prog, "odd", max_unroll=2)
        assert ("main", "even", "odd", "even", "odd") in unrolled
        assert len(unrolled) > len(acyclic)

    def test_limit_enforced(self):
        prog = recursive_program()
        with pytest.raises(ValueError):
            enumerate_contexts(prog, "odd", max_unroll=6, limit=3)

    def test_context_count_map(self):
        prog = diamond_calls_program()
        counts = context_count(prog)
        assert counts["shared"] == 2
        assert counts["main"] == 1

    def test_exponential_growth_shape(self):
        """k diamond layers -> 2^k contexts: the paper's blow-up."""
        b = ProgramBuilder()
        depth = 5
        with b.function(f"l{depth}") as f:
            f.skip()
        for i in reversed(range(depth)):
            with b.function(f"l{i}a") as f:
                f.call(f"l{i+1}" if i + 1 == depth else f"l{i+1}a")
                if i + 1 < depth:
                    f.call(f"l{i+1}b")
            with b.function(f"l{i}b") as f:
                f.call(f"l{i+1}" if i + 1 == depth else f"l{i+1}a")
                if i + 1 < depth:
                    f.call(f"l{i+1}b")
        with b.function("main") as f:
            f.call("l0a")
            f.call("l0b")
        prog = b.build()
        counts = context_count(prog)
        assert counts[f"l{depth}"] >= 2 ** (depth - 1)


class TestPerContextQueries:
    def test_contexts_distinguish_values(self):
        prog = diamond_calls_program()
        boot = BootstrapAnalyzer(prog).run()
        loc = Loc("shared", prog.cfg_of("shared").exit)
        by_con = points_to_by_context(boot, Var("out"), loc)
        # Per-context sets are singletons; the CI union has both objects.
        sizes = sorted(len(v) for v in by_con.values())
        assert sizes == [1, 1]
        worst, ci = context_sensitivity_gain(boot, Var("out"), loc)
        assert worst == 1 and ci == 2

    def test_gain_zero_when_contexts_agree(self):
        prog = call_chain_program()
        boot = BootstrapAnalyzer(prog).run()
        loc = Loc("leaf", prog.cfg_of("leaf").exit)
        worst, ci = context_sensitivity_gain(boot, Var("lp", "leaf"), loc)
        assert worst == ci

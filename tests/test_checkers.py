"""Memory-safety checkers: null-deref, use-after-free, double-free.

Each checker gets true-positive and true-negative fixtures, plus the
cross-cutting machinery: inline suppression, demand-driven cluster
skipping, SARIF shape, and the ``repro check`` CLI.
"""

import json

import pytest

from repro import parse_program
from repro.checkers import CHECKER_REGISTRY, run_checkers
from repro.cli import main
from repro.core import diagnostics_to_sarif

BUGGY = """
int main() {
    int *p, *q, *d;
    p = 0;
    *p = 1;
    q = malloc(4);
    d = q;
    free(q);
    *d = 2;
    free(d);
    return 0;
}
"""

CLEAN = """
int *chain;
int slot;

void link(void) {
    chain = &slot;
}

int main() {
    int *h;
    link();
    *chain = 1;
    h = malloc(4);
    if (h) {
        *h = 5;
    }
    free(h);
    h = 0;
    return 0;
}
"""


def check(source, names=None):
    return run_checkers(parse_program(source), names=names)


def rules(report):
    return [d.rule_id for d in report.diagnostics]


class TestRegistry:
    def test_all_three_registered(self):
        assert {"null-deref", "use-after-free", "double-free"} \
            <= set(CHECKER_REGISTRY)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown checker"):
            check(CLEAN, names=["nope"])


class TestNullDeref:
    def test_must_null_is_error(self):
        report = check("""
            int main() {
                int *p;
                p = 0;
                *p = 1;
                return 0;
            }
        """, names=["null-deref"])
        (d,) = report.diagnostics
        assert d.severity == "error"
        assert "NULL" in d.message and d.subject == "p"
        assert d.span is not None and d.span.line == 5

    def test_guarded_deref_is_clean(self):
        report = check("""
            int main() {
                int *p;
                int x;
                p = 0;
                if (p) {
                    *p = 1;
                }
                p = &x;
                *p = 2;
                return 0;
            }
        """, names=["null-deref"])
        assert report.diagnostics == []

    def test_trace_points_at_null_assignment(self):
        report = check(BUGGY, names=["null-deref"])
        (d,) = report.diagnostics
        assert any("NULL" in step.note for step in d.trace)

    def test_freed_pointer_left_to_uaf_checker(self):
        # free() nulls its operand under the hood; that must not read
        # as a null-deref — the use-after-free checker owns it.
        src = """
            int main() {
                int *p;
                p = malloc(4);
                free(p);
                *p = 1;
                return 0;
            }
        """
        assert rules(check(src, names=["null-deref"])) == []
        assert rules(check(src, names=["use-after-free"])) \
            == ["repro-use-after-free"]


class TestUseAfterFree:
    def test_aliased_deref_after_free(self):
        report = check(BUGGY, names=["use-after-free"])
        (d,) = report.diagnostics
        assert d.severity == "error"
        assert "freed" in d.message and d.subject == "d"
        assert d.span is not None and d.span.line == 9

    def test_realloc_clears_the_fact(self):
        report = check("""
            int main() {
                int *p;
                p = malloc(4);
                free(p);
                p = malloc(4);
                *p = 1;
                return 0;
            }
        """, names=["use-after-free"])
        assert report.diagnostics == []

    def test_escaping_local_address(self):
        report = check("""
            int *leak(void) {
                int x;
                return &x;
            }
            int main() {
                int *p;
                p = leak();
                return 0;
            }
        """, names=["use-after-free"])
        assert any("escapes" in d.message and d.subject == "x"
                   for d in report.diagnostics)


class TestDoubleFree:
    def test_direct_double_free(self):
        report = check("""
            int main() {
                int *p;
                p = malloc(4);
                free(p);
                free(p);
                return 0;
            }
        """, names=["double-free"])
        (d,) = report.diagnostics
        assert d.severity == "error" and "double free" in d.message

    def test_aliased_double_free(self):
        report = check(BUGGY, names=["double-free"])
        (d,) = report.diagnostics
        assert "alloc@" in d.message and d.span.line == 10

    def test_single_free_is_clean(self):
        assert check(CLEAN, names=["double-free"]).diagnostics == []


class TestInterprocedural:
    SRC = """
        void sink(int *p) {
            *p = 1;
        }
        int main() {
            int y;
            sink(0);
            sink(&y);
            return 0;
        }
    """

    def test_null_flows_through_parameter(self):
        report = check(self.SRC, names=["null-deref"])
        (d,) = report.diagnostics
        # &y also reaches the parameter, so it is may- not must-null.
        assert d.severity == "warning"
        assert d.loc.function == "sink" and d.span.line == 3

    def test_only_null_callsite_is_must(self):
        report = check("""
            void sink(int *p) {
                *p = 1;
            }
            int main() {
                sink(0);
                return 0;
            }
        """, names=["null-deref"])
        (d,) = report.diagnostics
        assert d.severity == "error"

    def test_free_in_callee_seen_at_caller(self):
        report = check("""
            void release(int *p) {
                free(p);
            }
            int main() {
                int *q;
                q = malloc(4);
                release(q);
                *q = 1;
                return 0;
            }
        """, names=["use-after-free"])
        assert any(d.rule_id == "repro-use-after-free" and
                   d.loc.function == "main"
                   for d in report.diagnostics)


class TestSuppression:
    def test_ignore_marker_drops_finding(self):
        report = check("""
            int main() {
                int *p;
                p = 0;
                *p = 1;  // repro:ignore -- intentional for the test
                return 0;
            }
        """, names=["null-deref"])
        assert report.diagnostics == []
        (st,) = report.stats
        assert st.suppressed == 1 and st.findings == 0

    def test_comment_only_line_suppresses_next(self):
        report = check("""
            int main() {
                int *p;
                p = 0;
                // repro:ignore -- the next line is under test
                *p = 1;
                return 0;
            }
        """, names=["null-deref"])
        assert report.diagnostics == []

    def test_marker_elsewhere_changes_nothing(self):
        report = check("""
            int main() {
                int *p;
                p = 0;  // repro:ignore suppresses *this* line only
                *p = 1;
                return 0;
            }
        """, names=["null-deref"])
        assert len(report.diagnostics) == 1

    def test_rule_scoped_marker_suppresses_that_rule(self):
        report = check("""
            int main() {
                int *p;
                p = 0;
                *p = 1;  // repro:ignore[null-deref]
                return 0;
            }
        """, names=["null-deref"])
        assert report.diagnostics == []
        (st,) = report.stats
        assert st.suppressed == 1

    def test_rule_scoped_marker_keeps_other_rules(self):
        report = check("""
            int main() {
                int *p;
                p = 0;
                *p = 1;  // repro:ignore[use-after-free]
                return 0;
            }
        """, names=["null-deref"])
        assert rules(report) == ["repro-null-deref"]

    def test_scoped_marker_on_multi_rule_line(self):
        # Line 6 carries both a double free and a use after free; the
        # scoped marker silences only the named rule.
        report = check("""
            int main() {
                int *p;
                p = malloc(4);
                free(p);
                free(p); *p = 1;  // repro:ignore[double-free]
                return 0;
            }
        """, names=["double-free", "use-after-free"])
        assert rules(report) == ["repro-use-after-free"]

    def test_comma_list_and_comment_only_scoping(self):
        report = check("""
            int main() {
                int *p;
                p = malloc(4);
                free(p);
                // repro:ignore[double-free,use-after-free]
                free(p); *p = 1;
                return 0;
            }
        """, names=["double-free", "use-after-free"])
        assert report.diagnostics == []


class TestDemandDrivenStats:
    def test_clean_program_skips_clusters(self):
        report = check(CLEAN)
        assert len(report.stats) == 6
        for st in report.stats:
            assert st.clusters_skipped >= 1
            assert st.clusters_selected < st.clusters_total
            assert st.pointers_selected < st.pointers_total

    def test_no_frees_means_no_clusters_for_double_free(self):
        report = check("""
            int main() {
                int *p;
                int x;
                p = &x;
                *p = 1;
                return 0;
            }
        """, names=["double-free"])
        (st,) = report.stats
        assert st.clusters_selected == 0 and st.findings == 0


class TestSarif:
    @pytest.fixture(scope="class")
    def sarif(self):
        report = run_checkers(parse_program(BUGGY))
        return diagnostics_to_sarif(report.diagnostics)

    def test_top_level_shape(self, sarif):
        assert sarif["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in sarif["$schema"]

    def test_tool_driver(self, sarif):
        driver = sarif["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro"
        assert {r["id"] for r in driver["rules"]} == {
            "repro-null-deref", "repro-use-after-free",
            "repro-double-free"}

    def test_results(self, sarif):
        results = sarif["runs"][0]["results"]
        assert len(results) == 3
        for r in results:
            assert r["level"] == "error"
            assert r["message"]["text"]
            region = r["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] > 0

    def test_round_trips_through_json(self, sarif):
        assert json.loads(json.dumps(sarif)) == sarif


class TestCheckCLI:
    @pytest.fixture()
    def buggy_file(self, tmp_path):
        path = tmp_path / "buggy.c"
        path.write_text(BUGGY)
        return str(path)

    @pytest.fixture()
    def clean_file(self, tmp_path):
        path = tmp_path / "clean.c"
        path.write_text(CLEAN)
        return str(path)

    def test_text_report(self, buggy_file, capsys):
        assert main(["check", buggy_file]) == 0
        out = capsys.readouterr().out
        assert "3 finding(s)" in out
        assert "repro-null-deref" in out
        assert "skipped" in out

    def test_fail_on_finding(self, buggy_file, clean_file):
        assert main(["check", buggy_file, "--fail-on-finding"]) == 1
        assert main(["check", clean_file, "--fail-on-finding"]) == 0

    def test_filename_and_line_in_output(self, buggy_file, capsys):
        main(["check", buggy_file])
        out = capsys.readouterr().out
        assert f"{buggy_file}:5:6: error" in out

    def test_checker_subset(self, buggy_file, capsys):
        assert main(["check", buggy_file, "--checkers",
                     "double-free"]) == 0
        out = capsys.readouterr().out
        assert "1 finding(s)" in out and "null-deref" not in out

    def test_unknown_checker_rejected(self, buggy_file):
        with pytest.raises(SystemExit, match="unknown checker"):
            main(["check", buggy_file, "--checkers", "nope"])

    def test_json_output(self, buggy_file, capsys):
        assert main(["check", buggy_file, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert {d["rule"] for d in data} == {
            "repro-null-deref", "repro-use-after-free",
            "repro-double-free"}

    def test_sarif_file(self, buggy_file, tmp_path, capsys):
        out_path = tmp_path / "out.sarif"
        assert main(["check", buggy_file, "--sarif", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        assert data["version"] == "2.1.0"
        assert len(data["runs"][0]["results"]) == 3

    def test_races_json(self, tmp_path, capsys):
        path = tmp_path / "race.c"
        path.write_text("""
            int g;
            void t1(void) { g = g + 1; }
            void t2(void) { g = g + 2; }
            int main() { t1(); t2(); return 0; }
        """)
        assert main(["races", str(path), "--threads", "t1,t2",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data and all(d["rule"] == "repro-data-race" for d in data)

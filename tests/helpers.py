"""Shared fixtures: the paper's example programs and a small program zoo.

Each ``figureN_*`` helper returns the IR of the corresponding worked
example in the paper, built through the :class:`ProgramBuilder` (tests of
the frontend build the same programs from source and cross-check).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir import Loc, Program, ProgramBuilder, Var


def figure2_program() -> Program:
    """p=&a; q=&b; r=&c; q=p; q=r (paper Figure 2)."""
    b = ProgramBuilder()
    with b.function("main") as f:
        f.addr("p", "a")
        f.addr("q", "b")
        f.addr("r", "c")
        f.copy("q", "p")
        f.copy("q", "r")
    return b.build()


def figure3_program() -> Program:
    """x=&a; y=&b; p=x; *x=*y (paper Figure 3; the load/store pair is
    split through the temporary ``t``)."""
    b = ProgramBuilder()
    with b.function("main") as f:
        f.addr("x", "a")    # node 1
        f.addr("y", "b")    # node 2
        f.copy("p", "x")    # node 3
        f.load("t", "y")    # node 4 (first half of *x = *y)
        f.store("x", "t")   # node 5 (second half)
    return b.build()


def figure4_program() -> Program:
    """b=c; x=&a; y=&b; *x=b (paper Figure 4)."""
    b = ProgramBuilder()
    with b.function("main") as f:
        f.copy("b", "c")    # 1a
        f.addr("x", "a")    # 2a
        f.addr("y", "b")    # 3a
        f.store("x", "b")   # 4a
    return b.build()


def figure5_program() -> Program:
    """The interprocedural summary example (paper Figure 5)."""
    b = ProgramBuilder()
    for g in ("x", "u", "w", "z", "d"):
        b.global_var(g)
    with b.function("foo") as f:
        f.store("x", "d")       # 1b
        f.copy("fa", "fb")      # 2b (foo's local a = b)
        f.copy("x", "w")        # 3b
    with b.function("bar") as f:
        f.store("x", "d")       # 1c
        f.copy("ba", "bb")      # 2c (bar's local a = b)
    with b.function("main") as f:
        f.addr("x", "c")        # 1a
        f.copy("w", "u")        # 2a
        f.call("foo")           # 3a
        f.copy("z", "x")        # 4a
        f.store("z", "bm")      # 5a
        f.call("bar")           # 6a
    return b.build()


def diamond_program() -> Program:
    """p points to a or b depending on a branch; used for flow tests."""
    b = ProgramBuilder()
    with b.function("main") as f:
        with f.branch() as br:
            with br.then():
                f.addr("p", "a")
            with br.otherwise():
                f.addr("p", "b")
        f.copy("q", "p")
        f.addr("p", "c")   # strong update: p no longer aliases q
    return b.build()


def recursive_program() -> Program:
    """Mutual recursion rotating a pointer through two functions."""
    b = ProgramBuilder()
    b.global_var("g")
    with b.function("even") as f:
        f.copy("g", "g")
        f.call("odd")
    with b.function("odd") as f:
        f.addr("g", "o1")
        f.call("even")
    with b.function("main") as f:
        f.addr("g", "o0")
        f.call("even")
    return b.build()


def call_chain_program() -> Program:
    """main -> mid -> leaf, pointer passed down and back."""
    b = ProgramBuilder()
    with b.function("leaf", params=("lp",)) as f:
        f.ret("lp")
    with b.function("mid", params=("mp",)) as f:
        f.call("leaf", ["mp"], ret="mr")
        f.ret("mr")
    with b.function("main") as f:
        f.addr("p", "obj")
        f.call("mid", ["p"], ret="q")
    return b.build()


def exit_loc(program: Program, func: str = "main") -> Loc:
    return Loc(func, program.cfg_of(func).exit)


def v(name: str, func: str = None) -> Var:
    return Var(name, func)


def pts_names(result, var: Var) -> List[str]:
    """Points-to set of ``var`` as sorted qualified names."""
    return sorted(str(o) for o in result.points_to(var))

"""Cross-backend differential suite.

The processes backend rebuilds each cluster's sliced sub-program in a
worker with its own interpreter (and its own ``PYTHONHASHSEED``), so any
unsoundness in the slicing, serialization, or a hash-order dependence in
the analyses would show up as a points-to difference against the
in-process backends.  These tests pin the contract: for every corpus
program and example, all three backends produce bit-identical per-cluster
points-to sets, the diagnostic commands are deterministic across hash
seeds, and the report covers every cluster exactly once.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.bench import corpus_configs, generate
from repro.frontend import parse_program
from repro.core import BootstrapAnalyzer, BootstrapConfig, CascadeConfig

#: Small enough that all twenty corpus programs stay CI-friendly.
SCALE = 0.004

CORPUS_NAMES = [cfg.name for cfg in corpus_configs(scale=SCALE)]

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".c"))

RACY_SOURCE = """
int a, b;
int lock_obj;
int *the_lock;

void lock(int *l) { }
void unlock(int *l) { }

void t1(void) {
    lock(the_lock);
    a = a + 1;
    unlock(the_lock);
    b = b + 1;
}

void t2(void) {
    lock(the_lock);
    a = a + 1;
    unlock(the_lock);
    b = b + 2;
}

int main() {
    the_lock = &lock_obj;
    t1();
    t2();
    return 0;
}
"""

#: Two taint flows routed through memory and a call, plus a sanitized
#: path — exercises the demand-driven resolver end to end.
TAINTED_SOURCE = """
int getenv(int x);
int input(void);
int system(int cmd);
int exec(int cmd);
int sanitize(int v);

int slot_a, slot_b;

void fill(int *out) {
    int v;
    v = getenv(1);
    *out = v;
}

void drain(int c) {
    system(c);
}

int main() {
    int raw;
    int clean;
    fill(&slot_a);
    drain(slot_a);

    slot_b = input();
    exec(slot_b);

    clean = sanitize(getenv(2));
    system(clean);
    return 0;
}
"""


def _fresh(program, use_kernel=True):
    config = BootstrapConfig(
        cascade=CascadeConfig(andersen_threshold=6),
        use_kernel=use_kernel)
    return BootstrapAnalyzer(program, config).run()


def _outcomes(program, backend, use_kernel=True, **kw):
    """Per-cluster outcomes from a fresh analysis under one backend."""
    report = _fresh(program, use_kernel).analyze_all(backend=backend, **kw)
    return report


def _points_to(report):
    return [r["points_to"] for r in report.results]


def _assert_full_coverage(report, n_clusters):
    """Satellite contract: every cluster exactly once, by stable index."""
    assert len(report.results) == n_clusters
    assert all(r is not None for r in report.results)
    assert sorted(report.cluster_times) == list(range(n_clusters))
    flat = sorted(i for part in report.schedule for i in part)
    assert flat == list(range(n_clusters))


class TestCorpusDifferential:
    @pytest.mark.parametrize("name", CORPUS_NAMES)
    def test_backends_agree(self, name):
        cfg = next(c for c in corpus_configs(scale=SCALE)
                   if c.name == name)
        program = generate(cfg).program
        sim = _outcomes(program, "simulate")
        thr = _outcomes(program, "threads", jobs=2)
        prc = _outcomes(program, "processes", jobs=2, scheduler="lpt")
        assert _points_to(sim) == _points_to(thr) == _points_to(prc)
        # Non-timing stats must agree too: the workers run the same
        # summary construction on the same sliced programs.
        key = "summarized_functions"
        assert [r["stats"][key] for r in sim.results] == \
            [r["stats"][key] for r in prc.results]
        n = len(sim.results)
        for report in (sim, thr, prc):
            _assert_full_coverage(report, n)

    @pytest.mark.parametrize("name", CORPUS_NAMES)
    def test_kernel_on_off_agree(self, name):
        """The bitmask kernels are pure representation: switching them
        off (frozenset reference backends) must not change any cluster,
        any outcome, or any payload fingerprint."""
        cfg = next(c for c in corpus_configs(scale=SCALE)
                   if c.name == name)
        program = generate(cfg).program
        on = _outcomes(program, "simulate", use_kernel=True)
        off = _outcomes(program, "simulate", use_kernel=False)
        assert _points_to(on) == _points_to(off)
        assert [r["stats"] for r in on.results] == \
            [r["stats"] for r in off.results]
        assert len(on.results) == len(off.results)


class TestExamplesDifferential:
    @pytest.mark.parametrize("example", EXAMPLES)
    def test_backends_agree(self, example):
        with open(os.path.join(EXAMPLES_DIR, example)) as handle:
            program = parse_program(handle.read(), path=example)
        sim = _outcomes(program, "simulate")
        thr = _outcomes(program, "threads", jobs=2)
        prc = _outcomes(program, "processes", jobs=2)
        assert _points_to(sim) == _points_to(thr) == _points_to(prc)
        _assert_full_coverage(prc, len(sim.results))

    def test_schedulers_agree(self):
        """LPT reorders execution but must not change any outcome."""
        with open(os.path.join(EXAMPLES_DIR, EXAMPLES[0])) as handle:
            program = parse_program(handle.read(), path=EXAMPLES[0])
        greedy = _outcomes(program, "simulate", scheduler="greedy")
        lpt = _outcomes(program, "simulate", scheduler="lpt")
        assert _points_to(greedy) == _points_to(lpt)


#: Runs the whole corpus through the kernel solvers and digests every
#: per-cluster points-to set; three backends on one representative
#: program pin the worker path (workers inherit a fresh random
#: PYTHONHASHSEED of their own on top of the one we set).
_CORPUS_DIGEST_SCRIPT = """
import hashlib, json, sys
from repro.bench import corpus_configs, generate
from repro.core import BootstrapAnalyzer, BootstrapConfig, CascadeConfig

digest = hashlib.sha256()
for cfg in corpus_configs(scale=%r):
    program = generate(cfg).program
    config = BootstrapConfig(cascade=CascadeConfig(andersen_threshold=6))
    boot = BootstrapAnalyzer(program, config).run()
    backends = (("simulate", {}), ("threads", {"jobs": 2}),
                ("processes", {"jobs": 2})) \
        if cfg.name == "ctrace" else (("simulate", {}),)
    for backend, kw in backends:
        report = boot.analyze_all(backend=backend, **kw)
        blob = json.dumps([r["points_to"] for r in report.results],
                          sort_keys=True)
        digest.update(cfg.name.encode())
        digest.update(backend.encode())
        digest.update(blob.encode())
print(digest.hexdigest())
""" % SCALE


class TestCorpusHashSeedDeterminism:
    """Satellite 2: the twenty-program corpus through the kernel
    solvers produces one bit-identical digest under different
    PYTHONHASHSEED values."""

    def test_corpus_digest_stable_across_hash_seeds(self, tmp_path):
        outs = set()
        for seed in (0, 12345):
            env = dict(os.environ, PYTHONHASHSEED=str(seed),
                       PYTHONPATH=os.path.join(
                           os.path.dirname(__file__), "..", "src"))
            proc = subprocess.run(
                [sys.executable, "-c", _CORPUS_DIGEST_SCRIPT],
                capture_output=True, text=True, env=env,
                cwd=str(tmp_path))
            assert proc.returncode == 0, proc.stderr
            outs.add(proc.stdout.strip())
        assert len(outs) == 1 and outs.pop()


def _run_cli(args, seed, cwd):
    env = dict(os.environ, PYTHONHASHSEED=str(seed),
               PYTHONPATH=os.path.join(os.path.dirname(__file__), "..",
                                       "src"))
    proc = subprocess.run([sys.executable, "-m", "repro"] + args,
                          capture_output=True, text=True, env=env, cwd=cwd)
    assert proc.returncode in (0, 1), proc.stderr
    return proc.stdout


class TestDiagnosticsDeterministic:
    """`repro races` / `repro check` must not depend on hash order —
    the property that lets worker processes (each with a random
    PYTHONHASHSEED) reproduce the parent's diagnostics bit-for-bit."""

    def test_races_stable_across_hash_seeds(self, tmp_path):
        src = tmp_path / "racy.c"
        src.write_text(RACY_SOURCE)
        args = ["races", str(src), "--threads", "t1,t2", "--json"]
        outs = {_run_cli(args, seed, str(tmp_path)) for seed in (0, 12345)}
        assert len(outs) == 1
        diags = json.loads(outs.pop())
        assert diags  # the unlocked counter b does race

    def test_check_stable_across_hash_seeds(self, tmp_path):
        example = os.path.abspath(
            os.path.join(EXAMPLES_DIR, "memsafe_buggy.c"))
        args = ["check", example, "--json"]
        outs = {_run_cli(args, seed, str(tmp_path)) for seed in (0, 98765)}
        assert len(outs) == 1
        assert json.loads(outs.pop())

    def test_taint_stable_across_hash_seeds(self, tmp_path):
        example = os.path.abspath(
            os.path.join(EXAMPLES_DIR, "taint_demo.c"))
        args = ["taint", example, "--json"]
        outs = {_run_cli(args, seed, str(tmp_path)) for seed in (0, 54321)}
        assert len(outs) == 1
        diags = json.loads(outs.pop())
        assert any(d["rule"] == "taint-flow" for d in diags)

    def test_taint_memory_flow_stable_across_hash_seeds(self, tmp_path):
        src = tmp_path / "taint_mem.c"
        src.write_text(TAINTED_SOURCE)
        args = ["taint", str(src), "--json"]
        outs = {_run_cli(args, seed, str(tmp_path))
                for seed in (0, 31337, 424242)}
        assert len(outs) == 1
        diags = json.loads(outs.pop())
        # Both seeded flows survive, with their full witness traces.
        assert len([d for d in diags if d["rule"] == "taint-flow"]) == 2
        assert all(d.get("trace") for d in diags)

"""Constraint atoms, conjunction, and FSCI-backed satisfiability."""

import pytest

from repro.analysis import (
    FSCI,
    TRUE,
    SatOracle,
    conjoin,
    format_constraint,
    merge,
    points_to_atom,
    same_object_atom,
)
from repro.ir import Loc, ProgramBuilder, Var

L = Loc("main", 1)
R, S, T = Var("r", "main"), Var("s", "main"), Var("t", "main")


class TestConjunction:
    def test_true_is_empty(self):
        assert TRUE == frozenset()
        assert format_constraint(TRUE) == "true"

    def test_conjoin_adds_atom(self):
        a = points_to_atom(L, R, S)
        c = conjoin(TRUE, a)
        assert c == frozenset({a})

    def test_syntactic_contradiction_kept(self):
        """a and ¬a at the same static location can both hold — in
        different dynamic instances (loop iterations / repeated calls) —
        so conjunction must not prune them."""
        a = points_to_atom(L, R, S, True)
        c = conjoin(conjoin(TRUE, a), a.negated())
        assert c is not None and a in c and a.negated() in c

    def test_idempotent(self):
        a = same_object_atom(L, R, S)
        c = conjoin(conjoin(TRUE, a), a)
        assert len(c) == 1

    def test_negated_twice_is_identity(self):
        a = points_to_atom(L, R, S)
        assert a.negated().negated() == a

    def test_cap_keeps_newest_atom(self):
        atoms = [points_to_atom(Loc("main", i), R, S) for i in range(5)]
        c = TRUE
        for a in atoms:
            c = conjoin(c, a, max_atoms=3)
        assert len(c) <= 3
        assert atoms[-1] in c

    def test_merge_combines(self):
        c1 = conjoin(TRUE, points_to_atom(L, R, S))
        c2 = conjoin(TRUE, same_object_atom(L, R, T))
        merged = merge(c1, c2)
        assert len(merged) == 2

    def test_merge_keeps_both_polarities(self):
        a = points_to_atom(L, R, S)
        merged = merge(frozenset({a}), frozenset({a.negated()}))
        assert merged == frozenset({a, a.negated()})

    def test_format_renders_all_ops(self):
        c = merge(frozenset({points_to_atom(L, R, S)}),
                  frozenset({same_object_atom(L, R, T, False)}))
        text = format_constraint(c)
        assert "->" in text and "!=" in text


class TestSatOracle:
    def _fsci(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("r", "a")
            f.addr("s", "a")
            f.addr("t", "b")
            f.skip("query")
        prog = b.build()
        return prog, FSCI(prog).run()

    def test_without_fsci_everything_satisfiable(self):
        oracle = SatOracle(None)
        assert oracle.atom_satisfiable(points_to_atom(L, R, S))
        assert oracle.atom_satisfiable(points_to_atom(L, R, S, False))

    def test_positive_points_to(self):
        prog, fsci = self._fsci()
        oracle = SatOracle(fsci)
        cfg = prog.cfg_of("main")
        q = Loc("main", cfg.exit)
        r, a, b = (Var(n, "main") for n in ("r", "a", "b"))
        assert oracle.atom_satisfiable(points_to_atom(q, r, a))
        assert not oracle.atom_satisfiable(points_to_atom(q, r, b))

    def test_negative_points_to_needs_must(self):
        prog, fsci = self._fsci()
        oracle = SatOracle(fsci)
        q = Loc("main", prog.cfg_of("main").exit)
        r, a = Var("r", "main"), Var("a", "main")
        # r must point to a (singleton may set): r -/-> a unsatisfiable.
        assert not oracle.atom_satisfiable(points_to_atom(q, r, a, False))

    def test_same_object_positive(self):
        prog, fsci = self._fsci()
        oracle = SatOracle(fsci)
        q = Loc("main", prog.cfg_of("main").exit)
        r, s, t = (Var(n, "main") for n in "rst")
        assert oracle.atom_satisfiable(same_object_atom(q, r, s))
        assert not oracle.atom_satisfiable(same_object_atom(q, r, t))

    def test_same_object_negative(self):
        prog, fsci = self._fsci()
        oracle = SatOracle(fsci)
        q = Loc("main", prog.cfg_of("main").exit)
        r, s, t = (Var(n, "main") for n in "rst")
        # r and s must both point to a: r != s unsatisfiable.
        assert not oracle.atom_satisfiable(same_object_atom(q, r, s, False))
        assert oracle.atom_satisfiable(same_object_atom(q, r, t, False))

    def test_conjunction_satisfiability(self):
        prog, fsci = self._fsci()
        oracle = SatOracle(fsci)
        q = Loc("main", prog.cfg_of("main").exit)
        r, a, b = (Var(n, "main") for n in ("r", "a", "b"))
        good = frozenset({points_to_atom(q, r, a)})
        bad = frozenset({points_to_atom(q, r, a), points_to_atom(q, r, b)})
        assert oracle.satisfiable(good)
        assert not oracle.satisfiable(bad)

    def test_same_var_same_object(self):
        oracle = SatOracle(None)
        assert oracle.atom_satisfiable(same_object_atom(L, R, R))

"""Andersen's analysis: precision, clusters, cycle elimination."""

import pytest

from repro.analysis import Andersen, Steensgaard, execute, precision_refines
from repro.ir import AllocSite, ProgramBuilder, Var

from .helpers import (
    call_chain_program,
    figure2_program,
    figure3_program,
    figure5_program,
    pts_names,
    v,
)


class TestFigure2:
    def test_directional_points_to(self):
        an = Andersen(figure2_program()).run()
        assert pts_names(an, v("p", "main")) == ["main::a"]
        assert pts_names(an, v("r", "main")) == ["main::c"]
        # q receives from p and r and had &b: out-degree three.
        assert pts_names(an, v("q", "main")) == \
            ["main::a", "main::b", "main::c"]

    def test_refines_steensgaard(self):
        prog = figure2_program()
        an = Andersen(prog).run()
        st = Steensgaard(prog).run()
        assert precision_refines(an, st, prog.pointers)

    def test_clusters_cover_pointers(self):
        prog = figure2_program()
        an = Andersen(prog).run()
        clusters = an.clusters()
        covered = set().union(*clusters)
        assert covered == prog.pointers

    def test_cluster_of_b_is_just_q(self):
        an = Andersen(figure2_program()).run()
        clusters = an.clusters()
        assert frozenset({v("q", "main")}) in clusters


class TestCoreSemantics:
    def test_load(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("x", "a")
            f.addr("pp", "x")
            f.load("y", "pp")   # y = *pp -> y gets pts(x)
        an = Andersen(b.build()).run()
        assert pts_names(an, v("y", "main")) == ["main::a"]

    def test_store(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("pp", "x")
            f.addr("y", "a")
            f.store("pp", "y")  # *pp = y -> x gets pts(y)
        an = Andersen(b.build()).run()
        assert pts_names(an, v("x", "main")) == ["main::a"]

    def test_store_then_load_roundtrip(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("pp", "x")
            f.addr("y", "a")
            f.store("pp", "y")
            f.load("z", "pp")
        an = Andersen(b.build()).run()
        assert pts_names(an, v("z", "main")) == ["main::a"]

    def test_heap_content_flow(self):
        """Stores through pointers to an alloc site land in its cell."""
        b = ProgramBuilder()
        with b.function("main") as f:
            f.alloc("p", "h")
            f.addr("y", "a")
            f.store("p", "y")
            f.load("z", "p")
        an = Andersen(b.build()).run()
        assert pts_names(an, v("z", "main")) == ["main::a"]
        assert an.points_to_obj(AllocSite("h")) == \
            frozenset({v("a", "main")})

    def test_copy_chain_direction(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("a1", "o")
            f.copy("a2", "a1")
            f.copy("a3", "a2")
        an = Andersen(b.build()).run()
        assert pts_names(an, v("a3", "main")) == ["main::o"]
        # direction respected: a1 did not gain anything from a3
        assert pts_names(an, v("a1", "main")) == ["main::o"]

    def test_no_reverse_flow(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            f.addr("q", "b")
            f.copy("p", "q")  # p also points to b; q unchanged
        an = Andersen(b.build()).run()
        assert pts_names(an, v("q", "main")) == ["main::b"]
        assert pts_names(an, v("p", "main")) == ["main::a", "main::b"]

    def test_interprocedural_flow(self):
        prog = call_chain_program()
        an = Andersen(prog).run()
        assert pts_names(an, v("q", "main")) == ["main::obj"]


class TestCycleElimination:
    def _cyclic_program(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p1", "a")
            f.copy("p2", "p1")
            f.copy("p3", "p2")
            f.copy("p1", "p3")  # copy cycle
            f.addr("p2", "b")
        return b.build()

    def test_same_result_with_and_without(self):
        prog = self._cyclic_program()
        with_ce = Andersen(prog, cycle_elimination=True).run()
        without = Andersen(prog, cycle_elimination=False).run()
        for p in prog.pointers:
            assert with_ce.points_to(p) == without.points_to(p)

    def test_cycle_members_converge(self):
        an = Andersen(self._cyclic_program()).run()
        expected = ["main::a", "main::b"]
        for name in ("p1", "p2", "p3"):
            assert pts_names(an, v(name, "main")) == expected


class TestClusters:
    def test_clusters_are_disjunctive_cover(self):
        """Theorem 7: aliases of p are covered by p's clusters."""
        prog = figure2_program()
        an = Andersen(prog).run()
        clusters = an.clusters()
        for p in prog.pointers:
            for q in prog.pointers:
                if p != q and an.may_alias(p, q):
                    assert any(p in c and q in c for c in clusters), \
                        f"{p} ~ {q} not covered"

    def test_singletons_for_empty_pts(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.copy("p", "q")   # neither points anywhere
        an = Andersen(b.build()).run()
        clusters = an.clusters()
        assert frozenset({v("p", "main")}) in clusters

    def test_exclude_singletons_option(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.copy("p", "q")
        an = Andersen(b.build()).run()
        assert an.clusters(include_singletons=False) == []

    def test_restricted_pointer_set(self):
        prog = figure2_program()
        an = Andersen(prog).run()
        subset = {v("p", "main"), v("q", "main")}
        clusters = an.clusters(pointers=subset)
        assert set().union(*clusters) == subset

    def test_max_cluster_size(self):
        an = Andersen(figure2_program()).run()
        assert an.max_cluster_size() == 2  # {p, q} or {q, r}


class TestStatementSubset:
    def test_restricted_statements(self):
        prog = figure2_program()
        stmts = [s for _, s in prog.statements()][:4]  # drop q=p; q=r
        an = Andersen(prog, statements=stmts).run()
        assert pts_names(an, v("q", "main")) == ["main::b"]

    def test_soundness_vs_oracle(self):
        for prog in (figure2_program(), figure3_program(),
                     figure5_program(), call_chain_program()):
            an = Andersen(prog).run()
            orc = execute(prog)
            for p in prog.pointers:
                assert orc.points_to(p) <= an.points_to(p), str(p)

"""Tests for the IR layer: statements, CFG, builder, program indexes."""

import pytest

from repro.ir import (
    CFG,
    AddrOf,
    AllocSite,
    CallStmt,
    Copy,
    Load,
    Loc,
    NullAssign,
    Program,
    ProgramBuilder,
    ReturnStmt,
    Skip,
    Store,
    Var,
    format_cfg,
    format_program,
    is_canonical,
    param_var,
    retval_var,
    straight_line,
)

from .helpers import figure2_program


class TestStatements:
    def test_copy_roles(self):
        s = Copy(Var("x"), Var("y"))
        assert s.defined_var() == Var("x")
        assert s.used_vars() == (Var("y"),)
        assert is_canonical(s)

    def test_addrof_variable_target(self):
        s = AddrOf(Var("x"), Var("y"))
        assert s.defined_var() == Var("x")
        assert s.used_vars() == ()

    def test_addrof_alloc_target(self):
        site = AllocSite("main:3")
        s = AddrOf(Var("p"), site)
        assert str(site) == "alloc@main:3"
        assert s.target is site

    def test_store_defines_nothing(self):
        s = Store(Var("x"), Var("y"))
        assert s.defined_var() is None
        assert set(s.used_vars()) == {Var("x"), Var("y")}

    def test_load_uses_pointer(self):
        s = Load(Var("x"), Var("y"))
        assert s.used_vars() == (Var("y"),)

    def test_null_assign_is_canonical(self):
        assert is_canonical(NullAssign(Var("p")))

    def test_call_requires_exactly_one_target_kind(self):
        with pytest.raises(ValueError):
            CallStmt()
        with pytest.raises(ValueError):
            CallStmt(callee="f", fp=Var("fp"))

    def test_direct_call_targets(self):
        c = CallStmt(callee="f")
        assert c.targets == ("f",)
        assert not c.is_indirect

    def test_indirect_call(self):
        c = CallStmt(fp=Var("fp"))
        assert c.is_indirect
        assert c.targets == ()

    def test_skip_and_return_not_canonical(self):
        assert not is_canonical(Skip())
        assert not is_canonical(ReturnStmt())

    def test_var_qualified_names(self):
        assert Var("x").qualified == "x"
        assert Var("x", "f").qualified == "f::x"

    def test_statement_str_forms(self):
        assert str(Copy(Var("a"), Var("b"))) == "a = b"
        assert str(Load(Var("a"), Var("b"))) == "a = *b"
        assert str(Store(Var("a"), Var("b"))) == "*a = b"
        assert str(AddrOf(Var("a"), Var("b"))) == "a = &b"
        assert str(NullAssign(Var("a"))) == "a = NULL"


class TestCFG:
    def test_straight_line_structure(self):
        cfg = straight_line("f", [Copy(Var("a"), Var("b")),
                                  Copy(Var("c"), Var("a"))])
        cfg.validate()
        assert len(cfg) == 4  # entry + 2 + exit
        assert cfg.successors(cfg.entry) == (1,)
        assert cfg.successors(2) == (cfg.exit,)

    def test_seal_routes_dangling_to_exit(self):
        cfg = CFG("f")
        n = cfg.add_node(Skip("a"))
        cfg.add_edge(cfg.entry, n)
        cfg.seal()
        assert cfg.exit in cfg.successors(n)

    def test_reverse_postorder_starts_at_entry(self):
        cfg = straight_line("f", [Skip(), Skip()])
        order = cfg.reverse_postorder()
        assert order[0] == cfg.entry
        assert order[-1] == cfg.exit

    def test_reverse_postorder_handles_loops(self):
        cfg = CFG("f")
        a = cfg.add_node(Skip("a"))
        b = cfg.add_node(Skip("b"))
        cfg.add_edge(cfg.entry, a)
        cfg.add_edge(a, b)
        cfg.add_edge(b, a)  # loop
        cfg.seal()
        order = cfg.reverse_postorder()
        assert set(order) >= {cfg.entry, a, b}

    def test_deep_cfg_no_recursion_error(self):
        cfg = straight_line("f", [Skip() for _ in range(5000)])
        assert len(cfg.reverse_postorder()) == 5002

    def test_validate_rejects_exit_successors(self):
        cfg = straight_line("f", [Skip()])
        cfg._succs[cfg.exit].append(cfg.entry)
        cfg._preds[cfg.entry].append(cfg.exit)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_loc_ordering(self):
        assert Loc("a", 1) < Loc("a", 2) < Loc("b", 0)


class TestBuilder:
    def test_figure2_shape(self):
        prog = figure2_program()
        assert set(prog.functions) == {"main"}
        stmts = [s for _, s in prog.statements() if is_canonical(s)]
        assert len(stmts) == 5

    def test_branch_creates_two_paths(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            with f.branch() as br:
                with br.then():
                    f.addr("p", "a")
                with br.otherwise():
                    f.addr("p", "b")
            f.copy("q", "p")
        prog = b.build()
        cfg = prog.cfg_of("main")
        # The branch skip node has two successors.
        branch_nodes = [i for i in cfg.nodes()
                        if isinstance(cfg.stmt(i), Skip)
                        and cfg.stmt(i).note == "branch"]
        assert len(branch_nodes) == 1
        assert len(cfg.successors(branch_nodes[0])) == 2

    def test_if_without_else_falls_through(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            with f.branch() as br:
                with br.then():
                    f.addr("p", "a")
            f.copy("q", "p")
        prog = b.build()
        cfg = prog.cfg_of("main")
        copy_nodes = [i for i in cfg.nodes()
                      if isinstance(cfg.stmt(i), Copy)]
        assert len(cfg.predecessors(copy_nodes[0])) == 2

    def test_loop_back_edge(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            with f.loop():
                f.addr("p", "a")
        prog = b.build()
        cfg = prog.cfg_of("main")
        addr_nodes = [i for i in cfg.nodes()
                      if isinstance(cfg.stmt(i), AddrOf)]
        (succ,) = cfg.successors(addr_nodes[0])
        assert isinstance(cfg.stmt(succ), Skip)  # back to loop head

    def test_call_emits_conduit_copies(self):
        b = ProgramBuilder()
        with b.function("callee", params=("x",)) as f:
            f.ret("x")
        with b.function("main") as f:
            f.addr("p", "a")
            f.call("callee", ["p"], ret="q")
        prog = b.build()
        stmts = [s for _, s in prog.statements()]
        assert Copy(param_var("callee", 0), Var("p", "main")) in stmts
        assert Copy(Var("q", "main"), retval_var("callee")) in stmts

    def test_ret_copies_to_retval(self):
        b = ProgramBuilder()
        with b.function("f", params=("x",)) as fb:
            fb.ret("x")
        prog = b.build(entry="f")
        stmts = [s for _, s in prog.statements()]
        assert Copy(retval_var("f"), Var("x", "f")) in stmts

    def test_duplicate_function_rejected(self):
        b = ProgramBuilder()
        with b.function("f") as fb:
            fb.skip()
        with pytest.raises(ValueError):
            with b.function("f") as fb:
                pass

    def test_globals_resolve_before_locals(self):
        b = ProgramBuilder()
        b.global_var("g")
        with b.function("main") as f:
            f.addr("g", "a")
        prog = b.build()
        assert Var("g") in prog.pointers
        assert Var("g", "main") not in prog.pointers

    def test_alloc_creates_site(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.alloc("p", "site1")
        prog = b.build()
        assert AllocSite("site1") in prog.alloc_sites


class TestProgram:
    def test_entry_defaults_to_main(self):
        prog = figure2_program()
        assert prog.entry == "main"

    def test_missing_entry_raises(self):
        b = ProgramBuilder()
        with b.function("helper") as f:
            f.skip()
        with pytest.raises(ValueError):
            b.build(entry="nonexistent")

    def test_pointers_cover_all_roles(self):
        prog = figure2_program()
        names = {p.qualified for p in prog.pointers}
        assert {"main::p", "main::q", "main::r",
                "main::a", "main::b", "main::c"} <= names

    def test_objects_include_alloc_sites(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.alloc("p", "s")
        prog = b.build()
        assert AllocSite("s") in prog.objects

    def test_assignments_to(self):
        prog = figure2_program()
        q = Var("q", "main")
        locs = prog.assignments_to(q)
        assert len(locs) == 3  # q=&b, q=p, q=r

    def test_counts(self):
        prog = figure2_program()
        counts = prog.counts()
        assert counts["functions"] == 1
        assert counts["pointer_assignments"] == 5

    def test_stmt_at(self):
        prog = figure2_program()
        loc = Loc("main", 1)
        assert isinstance(prog.stmt_at(loc), AddrOf)

    def test_format_program_smoke(self):
        text = format_program(figure2_program())
        assert "main" in text and "= &" in text

    def test_format_cfg_marks_entry_exit(self):
        text = format_cfg(figure2_program().cfg_of("main"))
        assert "<entry>" in text and "<exit>" in text

"""End-to-end integration tests on realistic mini-C programs."""

import pytest

from repro import BootstrapAnalyzer, parse_program
from repro.analysis import Andersen, Steensgaard, execute, whole_program_fscs
from repro.applications import RaceDetector
from repro.core import BootstrapConfig, CascadeConfig, select_clusters
from repro.ir import Loc, Var


DEVICE_DRIVER = r"""
/* A miniature character-device driver. */
struct device {
    int *lock;
    int *buffer;
    int open_count;
};

int global_lock_obj;
struct device dev;

void lock(int *l) { }
void unlock(int *l) { }

void dev_init(void) {
    dev.lock = &global_lock_obj;
    dev.buffer = malloc(64);
    dev.open_count = 0;
}

int dev_open(void) {
    lock(dev.lock);
    dev.open_count = dev.open_count + 1;
    unlock(dev.lock);
    return 0;
}

void dev_write(int *data) {
    lock(dev.lock);
    *dev.buffer = *data;
    unlock(dev.lock);
}

int main() {
    int payload;
    dev_init();
    dev_open();
    dev_write(&payload);
    return 0;
}
"""


class TestDeviceDriver:
    @pytest.fixture(scope="class")
    def program(self):
        return parse_program(DEVICE_DRIVER)

    def test_parses_and_normalizes(self, program):
        counts = program.counts()
        assert counts["functions"] == 6
        assert counts["pointer_assignments"] > 10

    def test_buffer_points_to_heap(self, program):
        an = Andersen(program).run()
        pts = an.points_to(Var("dev__buffer"))
        assert len(pts) == 1
        assert "alloc@" in str(next(iter(pts)))

    def test_lock_points_to_lock_obj(self, program):
        an = Andersen(program).run()
        assert an.points_to(Var("dev__lock")) == \
            frozenset({Var("global_lock_obj")})

    def test_bootstrap_queries(self, program):
        boot = BootstrapAnalyzer(program).run()
        end = Loc("main", program.cfg_of("main").exit)
        pts = boot.points_to(Var("dev__lock"), end)
        assert pts == frozenset({Var("global_lock_obj")})

    def test_demand_driven_lock_cluster(self, program):
        boot = BootstrapAnalyzer(program).run()
        sel = select_clusters(boot, [Var("dev__lock")])
        assert sel.selected
        assert sel.pointer_fraction < 1.0

    def test_race_detector_runs_clean(self, program):
        warnings = RaceDetector(program,
                                ["dev_open", "dev_write"]).run()
        # open_count is touched only under the lock from both entries.
        assert not any("open_count" in str(w) for w in warnings)


FUNCTION_TABLE = r"""
/* Dispatch through a function-pointer table, driver-style fops. */
struct fops {
    int *(*get)(void);
    void (*put)(int *p);
};

int slot_a, slot_b;
int *stash;

int *get_a(void) { return &slot_a; }
int *get_b(void) { return &slot_b; }
void put_any(int *p) { stash = p; }

int main() {
    struct fops table;
    if (slot_a) {
        table.get = get_a;
    } else {
        table.get = &get_b;
    }
    table.put = put_any;
    int *v = table.get();
    table.put(v);
    return 0;
}
"""


class TestFunctionTable:
    @pytest.fixture(scope="class")
    def program(self):
        return parse_program(FUNCTION_TABLE)

    def test_indirect_call_resolved(self, program):
        from repro.ir import CallStmt
        indirect = [s for _, s in program.statements()
                    if isinstance(s, CallStmt) and s.is_indirect]
        assert indirect
        gets = [s for s in indirect if set(s.targets) >= {"get_a", "get_b"}]
        assert gets

    def test_value_flows_through_table(self, program):
        an = Andersen(program).run()
        assert an.points_to(Var("v", "main")) == \
            frozenset({Var("slot_a"), Var("slot_b")})

    def test_put_captures_into_stash(self, program):
        an = Andersen(program).run()
        assert an.points_to(Var("stash")) == \
            frozenset({Var("slot_a"), Var("slot_b")})

    def test_oracle_agrees(self, program):
        orc = execute(program)
        assert orc.points_to(Var("stash")) == \
            frozenset({Var("slot_a"), Var("slot_b")})


RECURSIVE_LIST = r"""
struct node { struct node *next; int *payload; };
int datum;

struct node *cons(struct node *tail) {
    struct node *n = (struct node *)malloc(16);
    n->next = tail;
    n->payload = &datum;
    return n;
}

int length(struct node *n) {
    if (n == 0) return 0;
    return 1 + length(n->next);
}

int main() {
    struct node *list = 0;
    int i;
    for (i = 0; i < 4; i++) {
        list = cons(list);
    }
    int len = length(list);
    int *p = list->payload;
    return 0;
}
"""


class TestRecursiveList:
    @pytest.fixture(scope="class")
    def program(self):
        return parse_program(RECURSIVE_LIST)

    def test_recursion_in_callgraph(self, program):
        from repro.ir import CallGraph
        cg = CallGraph(program)
        assert cg.is_recursive("length")

    def test_payload_flows(self, program):
        an = Andersen(program).run()
        assert Var("datum") in an.points_to(Var("p", "main"))

    def test_fscs_handles_recursion(self, program):
        ca = whole_program_fscs(program, budget=500_000)
        end = Loc("main", program.cfg_of("main").exit)
        assert Var("datum") in ca.points_to(Var("p", "main"), end)

    def test_oracle_soundness(self, program):
        orc = execute(program, max_steps=400, max_paths=2000)
        an = Andersen(program).run()
        for p in program.pointers:
            assert orc.points_to(p) <= an.points_to(p), str(p)


MULTI_LEVEL = r"""
/* Three levels of indirection and swapping, exercising the hierarchy. */
int obj1, obj2;
int *l1a, *l1b;
int **l2a, **l2b;
int ***l3;

void rotate(void) {
    int **tmp = l2a;
    l2a = l2b;
    l2b = tmp;
}

int main() {
    l1a = &obj1;
    l1b = &obj2;
    l2a = &l1a;
    l2b = &l1b;
    l3 = &l2a;
    rotate();
    **l3 = 0;        /* clears obj1 or obj2's slot... */
    *l2a = &obj2;    /* l1a or l1b points to obj2 */
    return 0;
}
"""


class TestMultiLevel:
    @pytest.fixture(scope="class")
    def program(self):
        return parse_program(MULTI_LEVEL)

    def test_hierarchy_depths(self, program):
        st = Steensgaard(program).run()
        assert st.depth_of(Var("obj1")) > st.depth_of(Var("l1a"))
        assert st.depth_of(Var("l1a")) > st.depth_of(Var("l2a"))
        assert st.depth_of(Var("l2a")) > st.depth_of(Var("l3"))

    def test_rotation_smears_level2(self, program):
        an = Andersen(program).run()
        assert an.points_to(Var("l2a")) >= \
            frozenset({Var("l1a"), Var("l1b")})

    def test_cascade_and_queries(self, program):
        boot = BootstrapAnalyzer(program).run()
        end = Loc("main", program.cfg_of("main").exit)
        pts = boot.points_to(Var("l1a"), end)
        assert Var("obj2") in pts or Var("obj1") in pts

    def test_oracle_soundness_all_analyses(self, program):
        from repro.analysis import FSCI, OneFlow
        orc = execute(program, max_steps=300, max_paths=1000)
        for analysis in (Steensgaard(program), Andersen(program),
                         OneFlow(program), FSCI(program)):
            result = analysis.run()
            for p in program.pointers:
                assert orc.points_to(p) <= result.points_to(p), \
                    f"{analysis.name}: {p}"


class TestSyntheticEndToEnd:
    def test_synth_program_full_pipeline(self):
        from repro.bench import SynthConfig, generate
        sp = generate(SynthConfig(name="e2e", pointers=120, functions=8,
                                  lock_count=2, fp_sites=1, seed=21))
        boot = BootstrapAnalyzer(
            sp.program,
            BootstrapConfig(cascade=CascadeConfig(andersen_threshold=8),
                            fscs_budget=500_000)).run()
        report = boot.analyze_all()
        assert report.max_part_time >= 0
        assert all(isinstance(r, dict) for r in report.results)

    def test_synth_oracle_soundness(self):
        from repro.bench import SynthConfig, generate
        sp = generate(SynthConfig(name="sound", pointers=60, functions=4,
                                  seed=33, recursion=False))
        orc = execute(sp.program, max_steps=300, max_paths=500)
        an = Andersen(sp.program).run()
        for p in sp.program.pointers:
            assert orc.points_to(p) <= an.points_to(p), str(p)

"""Fleet mode: hash ring, admission control, coordinator end to end."""

import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.core import BootstrapAnalyzer, build_payload, payload_fingerprint
from repro.frontend import parse_program
from repro.fleet import (
    AdmissionController,
    AdmissionError,
    FleetConfig,
    FleetCoordinator,
    HashRing,
    RoutingState,
    parse_worker_addr,
)
from repro.server import AliasServer, ServerClient, ServerConfig, protocol
from repro.server import wait_for_server
from repro.server.protocol import ServerError

from .test_server import DEMO, DEMO_EDITED, result_of


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


# ----------------------------------------------------------------------
class TestHashRing:
    def test_deterministic_and_stable(self):
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w0", "w1"])      # insertion order irrelevant
        keys = [f"key-{i}" for i in range(200)]
        assert [a.node_for(k) for k in keys] == \
            [b.node_for(k) for k in keys]

    def test_every_key_lands_on_a_member(self):
        ring = HashRing(["w0", "w1"])
        for i in range(100):
            assert ring.node_for(f"k{i}") in ("w0", "w1")

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.node_for("k") is None
        assert ring.preference("k") == []
        assert len(ring) == 0

    def test_preference_starts_at_home_and_covers_all(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        for i in range(50):
            pref = ring.preference(f"k{i}")
            assert pref[0] == ring.node_for(f"k{i}")
            assert sorted(pref) == ["w0", "w1", "w2", "w3"]

    def test_remove_moves_only_the_removed_nodes_keys(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"key-{i}" for i in range(500)]
        before = {k: ring.node_for(k) for k in keys}
        ring.remove("w1")
        for k in keys:
            after = ring.node_for(k)
            if before[k] != "w1":
                assert after == before[k]     # untouched arcs stay put
            else:
                assert after != "w1"

    def test_removed_keys_go_to_the_old_successor(self):
        # The reroute invariant: when a node dies, its keys land exactly
        # where preference() said they would.
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"key-{i}" for i in range(200)]
        succ = {k: ring.preference(k) for k in keys}
        ring.remove("w0")
        for k in keys:
            if succ[k][0] == "w0":
                assert ring.node_for(k) == succ[k][1]

    def test_add_is_idempotent_and_restores_mapping(self):
        ring = HashRing(["w0", "w1"])
        keys = [f"key-{i}" for i in range(200)]
        before = {k: ring.node_for(k) for k in keys}
        ring.add("w0")                        # no-op
        assert {k: ring.node_for(k) for k in keys} == before
        ring.remove("w0")
        ring.add("w0")                        # heal: mapping snaps home
        assert {k: ring.node_for(k) for k in keys} == before

    def test_shares_cover_all_keys(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"key-{i}" for i in range(300)]
        shares = ring.shares(keys)
        assert sum(shares.values()) == len(keys)
        # Virtual nodes keep the distribution roughly even.
        assert max(shares.values()) < 2 * min(shares.values())

    def test_bad_replicas(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)

    def test_assign_bounds_the_busiest_node(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        weights = {f"key-{i}": 1.0 + (i % 5) for i in range(300)}
        homes = ring.assign(weights, epsilon=0.05)
        assert set(homes) == set(weights)
        load = {n: 0.0 for n in ring.nodes()}
        for key, node in homes.items():
            load[node] += weights[key]
        total = sum(weights.values())
        # The bound: no node beyond (1+eps)/N of the total (plus one
        # key of slack for the fallback path).
        cap = 1.05 * total / 4 + max(weights.values())
        assert max(load.values()) <= cap

    def test_assign_is_deterministic_and_ring_aligned(self):
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w1", "w0"])
        weights = {f"key-{i}": float(1 + i % 7) for i in range(200)}
        homes = a.assign(weights, epsilon=0.05)
        assert homes == b.assign(weights, epsilon=0.05)
        # A displaced key still lands on a node from its own preference
        # list (reroutes walk the same successor order).
        for key, node in homes.items():
            assert node in a.preference(key)

    def test_assign_with_big_slack_is_pure_consistent_hashing(self):
        ring = HashRing(["w0", "w1", "w2"])
        weights = {f"key-{i}": 1.0 for i in range(100)}
        homes = ring.assign(weights, epsilon=100.0)
        assert homes == {k: ring.node_for(k) for k in weights}

    def test_assign_empty(self):
        assert HashRing().assign({"k": 1.0}) == {}
        assert HashRing(["w0"]).assign({}) == {}


# ----------------------------------------------------------------------
class TestAdmission:
    def test_global_bound(self):
        ctl = AdmissionController(max_inflight=2, max_per_shard=10)
        ctl.admit("w0")
        ctl.admit("w1")
        with pytest.raises(AdmissionError) as exc:
            ctl.admit("w0")
        assert exc.value.code == protocol.OVERLOADED
        ctl.release("w1")
        ctl.admit("w0")                       # freed slot readmits

    def test_per_shard_bound(self):
        ctl = AdmissionController(max_inflight=100, max_per_shard=1)
        ctl.admit("w0")
        with pytest.raises(AdmissionError):
            ctl.admit("w0")
        ctl.admit("w1")                       # other shards unaffected

    def test_stats(self):
        ctl = AdmissionController(max_inflight=2, max_per_shard=2)
        ctl.admit("w0")
        ctl.admit("w0")
        try:
            ctl.admit("w0")
        except AdmissionError:
            pass
        ctl.release("w0")
        stats = ctl.stats()
        assert stats["inflight"] == 1
        assert stats["peak_inflight"] == 2
        assert stats["admitted"] == 2
        assert stats["rejected"] == 1


# ----------------------------------------------------------------------
class TestWorkerAddr:
    def test_host_port(self):
        assert parse_worker_addr("10.0.0.5:7401") == ("10.0.0.5", 7401)

    def test_bare_port(self):
        assert parse_worker_addr("7401") == ("127.0.0.1", 7401)

    def test_bad(self):
        with pytest.raises(ValueError):
            parse_worker_addr("nope")


# ----------------------------------------------------------------------
class TestRoutingState:
    def test_keys_are_payload_fingerprints(self, demo_file):
        """The cache-locality invariant: the coordinator's routing keys
        must be exactly the fingerprints the workers' cluster stores key
        their entries by."""
        rs = RoutingState.build(demo_file, ServerConfig())
        program = parse_program(DEMO, entry="main")
        result = BootstrapAnalyzer(program).run()
        expected = {payload_fingerprint(
            build_payload(program, c, result.callgraph))
            for c in result.clusters}
        assert set(rs.fingerprints) == expected

    def test_pointers_of_one_web_share_a_key(self, demo_file):
        rs = RoutingState.build(demo_file, ServerConfig())
        assert rs.key_for_pointer("p") == rs.key_for_pointer("q")
        assert rs.key_for_pointer("t") == rs.key_for_pointer("u")
        assert rs.key_for_pointer("p") != rs.key_for_pointer("t")

    def test_stale_tracks_edits(self, demo_file):
        rs = RoutingState.build(demo_file, ServerConfig())
        assert not rs.stale()
        with open(demo_file, "w") as handle:
            handle.write(DEMO_EDITED)
        future = time.time() + 10
        os.utime(demo_file, (future, future))
        assert rs.stale()

    def test_serve_args_reproduce_server_config(self):
        config = FleetConfig(server=ServerConfig(
            max_request_bytes=123456, fscs_budget=77, watch=False))
        args = config.serve_args()
        assert "--max-request-bytes" in args
        assert args[args.index("--max-request-bytes") + 1] == "123456"
        assert args[args.index("--fscs-budget") + 1] == "77"
        assert "--no-watch" in args


# ----------------------------------------------------------------------
def _start_coordinator(config):
    coordinator = FleetCoordinator(config, port=0)
    ready = threading.Event()
    thread = threading.Thread(
        target=coordinator.serve_forever,
        kwargs={"install_signal_handlers": False, "ready": ready},
        daemon=True)
    thread.start()
    assert ready.wait(120.0), "coordinator did not come up"
    return coordinator, thread


def _stop_coordinator(coordinator, thread):
    coordinator.request_shutdown()
    thread.join(60.0)
    assert not thread.is_alive()


@pytest.fixture(scope="module")
def fleet():
    """One coordinator + two spawned workers, shared by the read-only
    routing tests (worker spawns dominate the suite's cost)."""
    config = FleetConfig(workers=2, probe_interval=0.1,
                        breaker_reset=0.5)
    coordinator, thread = _start_coordinator(config)
    yield coordinator
    _stop_coordinator(coordinator, thread)


@pytest.fixture(scope="module")
def fleet_demo(tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet") / "demo.c"
    path.write_text(DEMO)
    return str(path)


class TestCoordinatorRouting:
    def test_ping_identifies_coordinator(self, fleet):
        with ServerClient(port=fleet.port) as client:
            result = client.ping()
        assert result["pong"] is True
        assert result["role"] == "coordinator"
        assert result["workers"] == 2

    def test_answers_match_single_daemon(self, fleet, fleet_demo):
        single = AliasServer(ServerConfig())
        with ServerClient(port=fleet.port) as client:
            for name in ("p", "q", "r", "s", "t", "u", "v", "w"):
                routed = client.points_to(fleet_demo, name)
                direct = result_of(single, "points_to", file=fleet_demo,
                                   ptr=name)
                # Healthy answers are verbatim worker bytes: no fleet
                # envelope, and identical content to a lone daemon.
                assert "fleet" not in routed
                assert routed == direct, name

    def test_alias_and_whole_file_methods_route(self, fleet, fleet_demo):
        with ServerClient(port=fleet.port) as client:
            assert client.alias(fleet_demo, "p", "q")["may_alias"] is True
            assert client.call("leaks",
                               file=fleet_demo)["diagnostics"] == []

    def test_clusters_spread_across_workers(self, fleet, fleet_demo):
        with ServerClient(port=fleet.port) as client:
            client.points_to(fleet_demo, "p")
            status = client.fleet_status()
        shares = status["files"][fleet_demo]["shares"]
        assert sum(shares.values()) == \
            status["files"][fleet_demo]["clusters"]
        # DEMO's webs land on both workers (seed-stable split).
        assert all(n > 0 for n in shares.values()), shares

    def test_stats_aggregates_workers(self, fleet):
        with ServerClient(port=fleet.port) as client:
            stats = client.stats()
        assert set(stats["workers"]) == {"w0", "w1"}
        for worker_stats in stats["workers"].values():
            assert "requests" in worker_stats

    def test_version_mismatch_rejected(self, fleet):
        with socket.create_connection(("127.0.0.1", fleet.port)) as s:
            s.settimeout(30.0)
            s.sendall(protocol.encode(
                {"id": 1, "method": "ping", "params": {}, "v": 99}))
            buf = b""
            while not buf.endswith(b"\n"):
                buf += s.recv(65536)
        response = json.loads(buf)
        assert response["error"]["code"] == protocol.VERSION_MISMATCH
        assert response["error"]["data"]["expected"] == \
            protocol.PROTOCOL_VERSION

    def test_unknown_pointer_error_passes_through(self, fleet,
                                                  fleet_demo):
        with ServerClient(port=fleet.port) as client:
            with pytest.raises(ServerError) as exc:
                client.points_to(fleet_demo, "zz")
        assert exc.value.code == protocol.INVALID_PARAMS

    def test_envelope_names_worker_and_key(self, fleet_demo):
        config = FleetConfig(workers=1, envelope_all=True)
        coordinator, thread = _start_coordinator(config)
        try:
            with ServerClient(port=coordinator.port) as client:
                result = client.points_to(fleet_demo, "p")
            fleet_tag = result["fleet"]
            assert fleet_tag["worker"] == "w0"
            assert fleet_tag["rerouted"] is False
            assert fleet_tag["key"]
        finally:
            _stop_coordinator(coordinator, thread)


class TestCoordinatorBackpressure:
    def test_overloaded_is_structured(self, fleet_demo):
        config = FleetConfig(workers=1, max_inflight=0)
        coordinator, thread = _start_coordinator(config)
        try:
            with ServerClient(port=coordinator.port) as client:
                assert client.ping()["pong"] is True   # local: no admit
                with pytest.raises(ServerError) as exc:
                    client.points_to(fleet_demo, "p")
            assert exc.value.code == protocol.OVERLOADED
            assert coordinator.admission.stats()["rejected"] == 1
        finally:
            _stop_coordinator(coordinator, thread)


class TestCoordinatorFaults:
    def test_kill_reroute_heal(self, fleet_demo):
        """The full failure story on live processes: SIGKILL a worker,
        watch its key range reroute with tagged answers, then watch the
        probe loop respawn it and the tags disappear."""
        config = FleetConfig(workers=2, probe_interval=0.1,
                             breaker_threshold=1, breaker_reset=0.2)
        coordinator, thread = _start_coordinator(config)
        try:
            names = ("p", "q", "r", "s", "t", "u", "v", "w")
            with ServerClient(port=coordinator.port,
                              timeout=120.0) as client:
                baseline = {n: client.points_to(fleet_demo, n)
                            for n in names}
                assert all("fleet" not in r for r in baseline.values())

                status = client.fleet_status()
                victim = "w0"
                os.kill(status["workers"][victim]["pid"], signal.SIGKILL)

                rerouted = 0
                for name in names:
                    result = client.points_to(fleet_demo, name)
                    tag = result.pop("fleet", None)
                    assert result == baseline[name], name  # identical
                    if tag is not None:
                        assert tag["rerouted"] is True
                        assert tag["home"] == victim
                        assert tag["worker"] != victim
                        rerouted += 1
                assert rerouted > 0            # victim owned some keys

                deadline = time.monotonic() + 30.0
                healed = False
                while time.monotonic() < deadline and not healed:
                    time.sleep(0.2)
                    status = client.fleet_status()
                    healed = status["workers"][victim]["alive"] and \
                        status["workers"][victim]["state"] == "closed"
                assert healed, status["workers"][victim]

                after = {n: client.points_to(fleet_demo, n)
                         for n in names}
                assert all("fleet" not in r for r in after.values())
                assert after == baseline
                assert status["workers"][victim]["spawns"] >= 2
        finally:
            _stop_coordinator(coordinator, thread)

    def test_all_workers_down_is_shard_unavailable(self, fleet_demo):
        config = FleetConfig(workers=1, respawn=False,
                             breaker_threshold=1, breaker_reset=3600.0,
                             probe_interval=60.0)
        coordinator, thread = _start_coordinator(config)
        try:
            with ServerClient(port=coordinator.port) as client:
                client.points_to(fleet_demo, "p")      # warm + alive
                status = client.fleet_status()
                os.kill(status["workers"]["w0"]["pid"], signal.SIGKILL)
                time.sleep(0.2)
                with pytest.raises(ServerError) as exc:
                    client.points_to(fleet_demo, "p")
            assert exc.value.code == protocol.SHARD_UNAVAILABLE
            assert exc.value.data["tried"] == ["w0"]
        finally:
            _stop_coordinator(coordinator, thread)

    def test_draining_coordinator_rejects_queries(self, fleet_demo):
        config = FleetConfig(workers=1)
        coordinator, thread = _start_coordinator(config)
        port = coordinator.port
        _stop_coordinator(coordinator, thread)
        # After drain the socket is gone entirely.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=5.0)


class TestFleetCLI:
    def test_fleet_serve_and_status_subprocess(self, fleet_demo):
        """`repro fleet serve` + `repro fleet status` end to end."""
        import re
        import subprocess
        import sys
        env = dict(os.environ)
        src_root = os.path.join(os.path.dirname(__file__), os.pardir,
                                "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath(src_root)]
            + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
               if p])
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "fleet", "serve",
             "--port", "0", "--workers", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            env=env, text=True)
        try:
            line = ""
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if "listening on tcp:" in line or not line:
                    break
            match = re.search(r"tcp:[0-9.]+:(\d+)", line)
            assert match, f"no listen line: {line!r}"
            port = int(match.group(1))
            wait_for_server(port=port, timeout=60.0)
            status = subprocess.run(
                [sys.executable, "-m", "repro", "fleet", "status",
                 "--port", str(port)],
                env=env, capture_output=True, text=True, timeout=60.0)
            assert status.returncode == 0, status.stderr
            payload = json.loads(status.stdout)
            assert payload["role"] == "coordinator"
            assert list(payload["workers"]) == ["w0"]
            with ServerClient(port=port) as client:
                client.shutdown()
            assert proc.wait(60.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(30.0)


# ----------------------------------------------------------------------
class TestRespawnGovernor:
    def _governor(self, **kwargs):
        from repro.fleet.respawn import RespawnGovernor
        clock = {"now": 0.0}
        kwargs.setdefault("clock", lambda: clock["now"])
        return RespawnGovernor(**kwargs), clock

    def test_first_death_backs_off_then_allows(self):
        gov, clock = self._governor(backoff=0.5)
        assert gov.may_respawn("w0")            # never died: immediate
        gov.note_death("w0", generation=1)
        assert not gov.may_respawn("w0")
        clock["now"] = 0.5
        assert gov.may_respawn("w0")

    def test_backoff_doubles_per_consecutive_death(self):
        gov, clock = self._governor(backoff=0.5, factor=2.0,
                                    threshold=100)  # never parks
        for generation, expected in ((1, 0.5), (2, 1.0), (3, 2.0)):
            gov.note_death("w0", generation)
            status = gov.status("w0")
            assert status["next_respawn_in"] == pytest.approx(
                expected, abs=1e-6)

    def test_backoff_is_capped(self):
        gov, _clock = self._governor(backoff=0.5, factor=2.0,
                                     max_backoff=3.0, threshold=100)
        for generation in range(1, 10):
            gov.note_death("w0", generation)
        assert gov.status("w0")["next_respawn_in"] <= 3.0

    def test_note_death_is_idempotent_per_generation(self):
        gov, _clock = self._governor()
        assert gov.note_death("w0", generation=1) is True
        assert gov.note_death("w0", generation=1) is False
        assert gov.status("w0")["deaths"] == 1

    def test_settled_resets_the_streak(self):
        gov, clock = self._governor(backoff=0.5, factor=2.0,
                                    threshold=100)
        gov.note_death("w0", 1)
        gov.note_death("w0", 2)
        gov.note_settled("w0")
        clock["now"] = 100.0
        gov.note_death("w0", 3)
        # Streak restarted: back to the base backoff, not 2.0s.
        assert gov.status("w0")["next_respawn_in"] == pytest.approx(0.5)

    def test_crash_loop_parks_the_worker(self):
        gov, clock = self._governor(threshold=3, window=30.0)
        for generation in (1, 2, 3):
            clock["now"] += 1.0
            gov.note_death("w0", generation)
        assert gov.is_parked("w0")
        assert not gov.may_respawn("w0")
        status = gov.status("w0")
        assert status["parked"] is True
        assert "3 deaths" in status["parked_reason"]
        # Parking is forever this run; settling does not unpark.
        gov.note_settled("w0")
        assert gov.is_parked("w0")

    def test_slow_deaths_outside_window_never_park(self):
        gov, clock = self._governor(threshold=3, window=5.0,
                                    backoff=0.1)
        for generation in (1, 2, 3, 4, 5, 6):
            clock["now"] += 10.0                 # well spread out
            gov.note_death("w0", generation)
        assert not gov.is_parked("w0")

    def test_workers_are_independent(self):
        gov, _clock = self._governor(threshold=1)
        gov.note_death("w0", 1)
        assert gov.is_parked("w0")
        assert gov.may_respawn("w1")
        assert not gov.is_parked("w1")


# ----------------------------------------------------------------------
class TestCoordinatorDeadlines:
    def _raw(self, port, request):
        with socket.create_connection(("127.0.0.1", port)) as s:
            s.settimeout(60.0)
            s.sendall(protocol.encode(request))
            buf = b""
            while not buf.endswith(b"\n"):
                buf += s.recv(65536)
        return json.loads(buf)

    def test_expired_request_shed_at_coordinator(self, fleet,
                                                 fleet_demo):
        before = fleet.deadline_sheds
        response = self._raw(fleet.port, {
            "id": 9, "method": "points_to",
            "params": {"file": fleet_demo, "ptr": "p"},
            "deadline": time.time() - 1.0})
        error = response["error"]
        assert error["code"] == protocol.DEADLINE_EXCEEDED
        assert error["data"]["where"] == "coordinator"
        assert fleet.deadline_sheds == before + 1

    def test_generous_deadline_passes_through(self, fleet, fleet_demo):
        response = self._raw(fleet.port, {
            "id": 10, "method": "points_to",
            "params": {"file": fleet_demo, "ptr": "p"},
            "deadline": time.time() + 120.0})
        assert "error" not in response
        assert response["result"]["objects"]

    def test_malformed_deadline_rejected(self, fleet):
        response = self._raw(fleet.port, {
            "id": 11, "method": "ping", "params": {},
            "deadline": "tomorrow"})
        assert response["error"]["code"] == protocol.INVALID_REQUEST

    def test_sheds_show_in_fleet_status(self, fleet):
        self._raw(fleet.port, {
            "id": 12, "method": "ping", "params": {},
            "deadline": time.time() - 5.0})
        with ServerClient(port=fleet.port) as client:
            status = client.fleet_status()
        assert status["deadline_sheds"] >= 1


class TestHedgedQueries:
    def test_hedge_rescues_a_stalled_worker(self, fleet_demo):
        """SIGSTOP the home worker: the hedge fires after the p95
        delay, the ring successor answers, the envelope says hedged,
        and the answer is bit-identical to the healthy one."""
        config = FleetConfig(workers=2, envelope_all=True,
                             hedge=True, hedge_max_fraction=1.0,
                             hedge_min_delay=0.05,
                             hedge_min_observations=1,
                             probe_interval=60.0)
        coordinator, thread = _start_coordinator(config)
        stopped = None
        try:
            names = ("p", "q", "r", "s", "t", "u", "v", "w")
            with ServerClient(port=coordinator.port,
                              timeout=120.0) as client:
                warm = {n: client.points_to(fleet_demo, n)
                        for n in names}
                # Pick any pointer and stall its home worker.
                victim_name = "p"
                home = warm[victim_name]["fleet"]["worker"]
                status = client.fleet_status()
                os.kill(status["workers"][home]["pid"], signal.SIGSTOP)
                stopped = status["workers"][home]["pid"]

                hedged = client.points_to(fleet_demo, victim_name)
                tag = hedged.pop("fleet")
                reference = dict(warm[victim_name])
                reference.pop("fleet")
                assert hedged == reference       # bit-identical content
                assert tag["hedged"] is True
                assert tag["worker"] != home
                assert tag["home"] == home

                status = client.fleet_status()
                assert status["hedging"]["issued"] >= 1
                assert status["hedging"]["won"] >= 1
        finally:
            if stopped is not None:
                os.kill(stopped, signal.SIGCONT)
            _stop_coordinator(coordinator, thread)

    def test_no_hedge_before_enough_observations(self, fleet_demo):
        config = FleetConfig(workers=1, hedge=True,
                             hedge_min_observations=10_000)
        coordinator, thread = _start_coordinator(config)
        try:
            with ServerClient(port=coordinator.port) as client:
                client.points_to(fleet_demo, "p")
                status = client.fleet_status()
            assert status["hedging"]["issued"] == 0
            assert status["hedging"]["delay"] is None
        finally:
            _stop_coordinator(coordinator, thread)

    def test_hedge_rate_is_capped(self, fleet_demo):
        """With a zero budget, eligible traffic never hedges even when
        the delay knob would fire instantly."""
        config = FleetConfig(workers=2, hedge=True,
                             hedge_max_fraction=0.0,
                             hedge_min_delay=0.0,
                             hedge_min_observations=1)
        coordinator, thread = _start_coordinator(config)
        try:
            with ServerClient(port=coordinator.port,
                              timeout=120.0) as client:
                for name in ("p", "q", "r", "s"):
                    client.points_to(fleet_demo, name)
                status = client.fleet_status()
            assert status["hedging"]["eligible"] >= 4
            assert status["hedging"]["issued"] == 0
        finally:
            _stop_coordinator(coordinator, thread)


class TestCoordinatorJournalRecovery:
    def test_warm_restart_recovers_files_and_weights(self, fleet_demo,
                                                     tmp_path):
        journal_dir = str(tmp_path / "journal")
        config = FleetConfig(workers=1, journal_dir=journal_dir,
                             weights_flush_every=8)
        first, thread = _start_coordinator(config)
        try:
            with ServerClient(port=first.port, timeout=120.0) as client:
                for _ in range(3):
                    for name in ("p", "q", "r", "s", "t", "u"):
                        baseline = client.points_to(fleet_demo, name)
                status = client.fleet_status()
            assert status["journal"]["files"] == 1
            assert status["journal"]["records"] >= 1
        finally:
            _stop_coordinator(first, thread)

        second, thread = _start_coordinator(config)
        try:
            # The restarted coordinator rebuilt its routing state from
            # the journal before opening the front door.
            assert second.recovered["files"] == 1
            assert second.recovered["rebuilt"] == 1
            assert second.recovered["weighted_keys"] >= 1
            assert fleet_demo in second._query_counts
            with ServerClient(port=second.port,
                              timeout=120.0) as client:
                after = client.points_to(fleet_demo, "u")
                status = client.fleet_status()
            assert after == baseline
            assert "fleet" not in after
            assert status["journal"]["recovered"]["files"] == 1
        finally:
            _stop_coordinator(second, thread)

    def test_no_journal_config_keeps_memory_only(self, fleet):
        with ServerClient(port=fleet.port) as client:
            status = client.fleet_status()
        assert "journal" not in status


class TestDisconnectReleasesAdmission:
    def test_client_vanishing_mid_request_frees_the_slot(self,
                                                         fleet_demo):
        config = FleetConfig(workers=1, max_inflight=1)
        coordinator, thread = _start_coordinator(config)
        try:
            # Connect, fire a query at a cold file, vanish immediately:
            # the dispatch is cancelled and its admission token MUST
            # come back (a leak would wedge this 1-slot coordinator).
            for _ in range(3):
                s = socket.create_connection(
                    ("127.0.0.1", coordinator.port))
                s.sendall(protocol.encode({
                    "id": 1, "method": "points_to",
                    "params": {"file": fleet_demo, "ptr": "p"}}))
                s.close()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if coordinator.admission.stats()["inflight"] == 0:
                    break
                time.sleep(0.05)
            assert coordinator.admission.stats()["inflight"] == 0
            with ServerClient(port=coordinator.port,
                              timeout=120.0) as client:
                assert client.points_to(fleet_demo, "p")["objects"]
            assert coordinator.admission.stats()["rejected"] == 0
        finally:
            _stop_coordinator(coordinator, thread)

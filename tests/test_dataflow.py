"""The generic dataflow framework and supergraph construction."""

import pytest

from repro.analysis.dataflow import ForwardDataflow, Supergraph
from repro.ir import CallStmt, Loc, ProgramBuilder, Skip

from .helpers import call_chain_program, recursive_program


class TestSupergraph:
    def test_intraprocedural_edges(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            f.addr("q", "b")
        prog = b.build()
        g = Supergraph(prog)
        cfg = prog.cfg_of("main")
        assert Loc("main", 1) in g.successors(Loc("main", cfg.entry))

    def test_call_and_return_edges(self):
        prog = call_chain_program()
        g = Supergraph(prog)
        call_loc = next(loc for loc, s in prog.statements()
                        if isinstance(s, CallStmt) and s.callee == "mid")
        mid_cfg = prog.cfg_of("mid")
        assert Loc("mid", mid_cfg.entry) in g.successors(call_loc)
        exit_succs = g.successors(Loc("mid", mid_cfg.exit))
        assert any(l.function == "main" for l in exit_succs)

    def test_excluded_function_falls_through(self):
        prog = call_chain_program()
        g = Supergraph(prog, functions={"main", "mid"})
        call_loc = next(loc for loc, s in prog.statements()
                        if isinstance(s, CallStmt) and s.callee == "leaf")
        succs = g.successors(call_loc)
        assert all(l.function == "mid" for l in succs)

    def test_entry(self):
        prog = call_chain_program()
        g = Supergraph(prog)
        assert g.entry.function == "main"

    def test_predecessors_inverse_of_successors(self):
        prog = call_chain_program()
        g = Supergraph(prog)
        for node in g.nodes():
            for succ in g.successors(node):
                assert node in g.predecessors(succ)


class TestForwardDataflow:
    def _counting_engine(self, prog):
        """Counts reachable canonical statements along paths (set union
        join): a simple monotone client."""
        def transfer(loc, stmt, state):
            if stmt.is_pointer_assign:
                return state | {loc}
            return state

        return ForwardDataflow(Supergraph(prog), transfer,
                               lambda a, b: a | b,
                               initial=frozenset(), bottom=frozenset())

    def test_reaches_fixpoint(self):
        prog = call_chain_program()
        engine = self._counting_engine(prog)
        engine.run()
        exit_loc = Loc("main", prog.cfg_of("main").exit)
        assert len(engine.state_before(exit_loc)) >= 3

    def test_recursion_terminates(self):
        prog = recursive_program()
        engine = self._counting_engine(prog)
        engine.run()
        assert engine.iterations > 0

    def test_max_iterations(self):
        prog = recursive_program()
        engine = self._counting_engine(prog)
        with pytest.raises(TimeoutError):
            engine.run(max_iterations=1)

    def test_unreachable_nodes_stay_bottom(self):
        b = ProgramBuilder()
        with b.function("dead") as f:
            f.addr("p", "a")
        with b.function("main") as f:
            f.skip()
        prog = b.build()
        engine = self._counting_engine(prog)
        engine.run()
        assert engine.state_before(Loc("dead", 1)) == frozenset()

"""The mini-C type system and struct flattening."""

import pytest

from repro.errors import NormalizationError
from repro.frontend.types import (
    INT,
    VOID,
    ArrayType,
    FloatType,
    FuncType,
    IntType,
    PointerType,
    StructTable,
    StructType,
    element_type,
    is_pointerish,
    pointee,
)


class TestBasics:
    def test_int_not_pointerish(self):
        assert not is_pointerish(INT)

    def test_pointer_is_pointerish(self):
        assert is_pointerish(PointerType(INT))

    def test_function_type_pointerish(self):
        assert is_pointerish(FuncType(INT))

    def test_array_of_pointers_pointerish(self):
        assert is_pointerish(ArrayType(PointerType(INT), 4))

    def test_array_of_ints_not(self):
        assert not is_pointerish(ArrayType(INT, 4))

    def test_pointee(self):
        assert pointee(PointerType(INT)) == INT

    def test_pointee_of_array(self):
        assert pointee(ArrayType(PointerType(INT))) == PointerType(INT)

    def test_pointee_of_int_raises(self):
        with pytest.raises(NormalizationError):
            pointee(INT)

    def test_element_type_nested(self):
        assert element_type(ArrayType(ArrayType(INT, 2), 3)) == INT

    def test_structural_equality(self):
        assert PointerType(INT) == PointerType(IntType("int"))
        assert PointerType(INT) != PointerType(VOID)

    def test_str_forms(self):
        assert str(PointerType(PointerType(INT))) == "int**"
        assert str(StructType("S")) == "struct S"
        assert "int" in str(FuncType(INT, (PointerType(INT),)))


class TestStructTable:
    def make(self):
        t = StructTable()
        t.declare("In", [("x", PointerType(INT)), ("y", INT)])
        t.declare("Out", [("i", StructType("In")), ("z", INT)])
        return t

    def test_declare_and_lookup(self):
        t = self.make()
        assert t.is_defined("In")
        assert t.field_type(StructType("In"), "y") == INT

    def test_missing_field(self):
        t = self.make()
        with pytest.raises(NormalizationError):
            t.field_type(StructType("In"), "nope")

    def test_undefined_struct(self):
        t = StructTable()
        with pytest.raises(NormalizationError):
            t.fields_of(StructType("Ghost"))

    def test_flatten_simple(self):
        t = self.make()
        flat = t.flatten(StructType("In"), "s")
        assert flat == [("s__x", PointerType(INT)), ("s__y", INT)]

    def test_flatten_nested(self):
        t = self.make()
        flat = t.flatten(StructType("Out"), "o")
        assert [f[0] for f in flat] == ["o__i__x", "o__i__y", "o__z"]

    def test_flatten_array_field_collapses(self):
        t = StructTable()
        t.declare("A", [("buf", ArrayType(PointerType(INT), 8))])
        flat = t.flatten(StructType("A"), "a")
        assert flat == [("a__buf", PointerType(INT))]

    def test_flatten_rejects_by_value_recursion(self):
        t = StructTable()
        t.declare("R", [("self", StructType("R"))])
        with pytest.raises(NormalizationError):
            t.flatten(StructType("R"), "r")

    def test_pointer_recursion_fine(self):
        t = StructTable()
        t.declare("node", [("next", PointerType(StructType("node"))),
                           ("v", INT)])
        flat = t.flatten(StructType("node"), "n")
        assert [f[0] for f in flat] == ["n__next", "n__v"]


class TestShadowLeaves:
    def test_shadow_types_scale_with_depth(self):
        from repro.frontend.normalize import base_struct, shadow_leaves
        t = StructTable()
        t.declare("S", [("f", PointerType(INT)), ("g", INT)])
        one = shadow_leaves(PointerType(StructType("S")), t)
        assert dict(one)["f"] == PointerType(PointerType(INT))
        assert dict(one)["g"] == PointerType(INT)
        two = shadow_leaves(PointerType(PointerType(StructType("S"))), t)
        assert dict(two)["g"] == PointerType(PointerType(INT))

    def test_non_struct_has_no_shadows(self):
        from repro.frontend.normalize import shadow_leaves
        t = StructTable()
        assert shadow_leaves(PointerType(INT), t) == []

    def test_base_struct_detection(self):
        from repro.frontend.normalize import base_struct
        t = StructTable()
        t.declare("S", [("f", INT)])
        assert base_struct(PointerType(StructType("S")), t) == \
            (1, StructType("S"))
        assert base_struct(PointerType(INT), t) is None
        assert base_struct(StructType("S"), t) == (0, StructType("S"))
        # Undeclared struct: treated as opaque.
        assert base_struct(PointerType(StructType("Ghost")), t) is None

"""IR JSON round-tripping."""

import json

import pytest
from hypothesis import HealthCheck, given, settings

from repro import parse_program
from repro.analysis import Andersen, execute
from repro.bench import sources
from repro.core import BootstrapAnalyzer, Cluster, RelevantSlice
from repro.ir import (
    format_program,
    load_program,
    program_from_dict,
    program_to_dict,
    save_program,
)
from repro.ir.cfg import Loc
from repro.ir.serialize import (
    cluster_from_dict,
    cluster_to_dict,
    slice_from_dict,
    slice_to_dict,
)
from repro.ir.statements import AllocSite, Var

from .helpers import (
    call_chain_program,
    diamond_program,
    figure2_program,
    figure5_program,
    recursive_program,
)
from .test_properties import programs


ALL = [figure2_program, figure5_program, diamond_program,
       call_chain_program, recursive_program]


class TestRoundTrip:
    @pytest.mark.parametrize("make", ALL)
    def test_text_identical(self, make):
        prog = make()
        again = program_from_dict(program_to_dict(prog))
        assert format_program(again) == format_program(prog)

    @pytest.mark.parametrize("make", ALL)
    def test_analysis_identical(self, make):
        prog = make()
        again = program_from_dict(program_to_dict(prog))
        a1, a2 = Andersen(prog).run(), Andersen(again).run()
        for p in prog.pointers:
            assert a1.points_to(p) == a2.points_to(p), str(p)

    def test_json_serializable(self):
        data = program_to_dict(figure5_program())
        json.loads(json.dumps(data))

    def test_file_round_trip(self, tmp_path):
        prog = figure2_program()
        path = str(tmp_path / "prog.json")
        save_program(prog, path)
        again = load_program(path)
        assert format_program(again) == format_program(prog)

    def test_frontend_program_round_trips(self):
        prog = sources.load("char_device")
        again = program_from_dict(program_to_dict(prog))
        assert format_program(again) == format_program(prog)

    def test_indirect_targets_preserved(self):
        prog = sources.load("fops_dispatch")
        again = program_from_dict(program_to_dict(prog))
        from repro.ir import CallStmt
        t1 = sorted(tuple(s.targets) for _, s in prog.statements()
                    if isinstance(s, CallStmt))
        t2 = sorted(tuple(s.targets) for _, s in again.statements()
                    if isinstance(s, CallStmt))
        assert t1 == t2

    def test_version_checked(self):
        data = program_to_dict(figure2_program())
        data["version"] = 999
        with pytest.raises(ValueError):
            program_from_dict(data)

    @given(programs())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_random_programs_round_trip(self, prog):
        again = program_from_dict(program_to_dict(prog))
        assert format_program(again) == format_program(prog)
        orc1 = execute(prog, max_steps=150, max_paths=200)
        orc2 = execute(again, max_steps=150, max_paths=200)
        for p in prog.pointers:
            assert orc1.points_to(p) == orc2.points_to(p)


SPAN_SOURCE = """
int x;
int *p;

int main() {
    p = &x;
    return 0;
}
"""


class TestSpanRoundTrip:
    def test_frontend_spans_survive(self):
        """Spans (format version 2+): parsed programs carry source spans
        and a dict round-trip preserves every one, position for
        position."""
        prog = parse_program(SPAN_SOURCE)
        data = program_to_dict(prog)
        assert data["version"] == 3
        assert any("spans" in fd for fd in data["functions"].values())
        again = program_from_dict(data)
        for name, fn in prog.functions.items():
            cfg, cfg2 = fn.cfg, again.functions[name].cfg
            for idx in cfg.nodes():
                assert cfg2.span(idx) == cfg.span(idx)

    def test_span_encoding_shape(self):
        prog = parse_program(SPAN_SOURCE)
        data = program_to_dict(prog)
        for fd in data["functions"].values():
            for span in fd.get("spans", []):
                if span is not None:
                    assert len(span) == 4  # line, col, end_line, end_col
                    assert all(isinstance(n, int) for n in span[:2])
                    assert all(n is None or isinstance(n, int)
                               for n in span[2:])

    def test_version1_dump_without_spans_loads(self):
        data = program_to_dict(parse_program(SPAN_SOURCE))
        for fd in data["functions"].values():
            fd.pop("spans", None)
        data["version"] = 1
        again = program_from_dict(data)
        assert all(again.cfg_of(f).span(i) is None
                   for f in again.functions
                   for i in again.cfg_of(f).nodes())


def _sample_slice(reverse=False):
    """One slice built from differently-ordered collections, to pin the
    canonical-order guarantee."""
    members = [Var("p"), Var("q", "f"), AllocSite("A1")]
    locs = [Loc("main", 2), Loc("f", 0), Loc("main", 1)]
    if reverse:
        members = list(reversed(members))
        locs = list(reversed(locs))
    return RelevantSlice(cluster=frozenset(members),
                         vp=frozenset(members + [Var("r")]),
                         statements=frozenset(locs))


class TestClusterRoundTrip:
    def test_slice_round_trips(self):
        sl = _sample_slice()
        assert slice_from_dict(slice_to_dict(sl)) == sl

    def test_cluster_round_trips(self):
        sl = _sample_slice()
        cluster = Cluster(members=sl.cluster, slice=sl, origin="andersen",
                          parent_size=7, parent_slice=_sample_slice())
        again = cluster_from_dict(cluster_to_dict(cluster))
        assert again == cluster
        assert again.parent_slice == cluster.parent_slice

    def test_cluster_without_parent_round_trips(self):
        sl = _sample_slice()
        cluster = Cluster(members=sl.cluster, slice=sl,
                          origin="steensgaard", parent_size=3)
        again = cluster_from_dict(cluster_to_dict(cluster))
        assert again == cluster
        assert again.parent_slice is None

    def test_equal_values_serialize_byte_identically(self):
        """The summary cache hashes these dicts: set-iteration order must
        never leak into the JSON."""
        a, b = _sample_slice(), _sample_slice(reverse=True)
        assert a == b
        blob_a = json.dumps(slice_to_dict(a), sort_keys=True)
        blob_b = json.dumps(slice_to_dict(b), sort_keys=True)
        assert blob_a == blob_b

    def test_cascade_clusters_round_trip(self):
        """Every cluster the real cascade produces survives shipment."""
        boot = BootstrapAnalyzer(parse_program(SPAN_SOURCE)).run()
        for cluster in boot.clusters:
            data = json.loads(json.dumps(cluster_to_dict(cluster)))
            assert cluster_from_dict(data) == cluster


class TestWireFormat:
    """Version-2 interned payloads: round-trip identity and the
    size-regression contract against the legacy inline format."""

    def _table(self):
        from repro.ir import SymbolTable
        return SymbolTable()

    @pytest.mark.parametrize("factory", ALL,
                             ids=[f.__name__ for f in ALL])
    def test_program_round_trips(self, factory):
        from repro.ir import decode_symbols, program_from_wire, program_to_wire
        program = factory()
        table = self._table()
        wire = json.loads(json.dumps(program_to_wire(program, table)))
        objs = decode_symbols(table.syms, table.fnames)
        again = program_from_wire(wire, objs, table.fnames)
        assert format_program(again) == format_program(program)

    @given(program=programs())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_programs_round_trip(self, program):
        from repro.ir import decode_symbols, program_from_wire, program_to_wire
        table = self._table()
        wire = json.loads(json.dumps(program_to_wire(program, table)))
        objs = decode_symbols(table.syms, table.fnames)
        again = program_from_wire(wire, objs, table.fnames)
        assert format_program(again) == format_program(program)

    def test_cluster_round_trips(self):
        from repro.ir import cluster_from_wire, cluster_to_wire, decode_symbols
        sl = _sample_slice()
        cluster = Cluster(members=sl.cluster, slice=sl, origin="andersen",
                          parent_size=7, parent_slice=_sample_slice())
        table = self._table()
        wire = json.loads(json.dumps(cluster_to_wire(cluster, table)))
        objs = decode_symbols(table.syms, table.fnames)
        again = cluster_from_wire(wire, objs, table.fnames)
        assert again == cluster
        assert again.parent_slice == cluster.parent_slice

    def test_symbol_table_is_order_deterministic(self):
        from repro.ir import slice_to_wire
        a, b = _sample_slice(), _sample_slice(reverse=True)
        ta, tb = self._table(), self._table()
        wa = json.dumps(slice_to_wire(a, ta), sort_keys=True)
        wb = json.dumps(slice_to_wire(b, tb), sort_keys=True)
        assert wa == wb
        assert ta.syms == tb.syms and ta.fnames == tb.fnames

    def test_clone_isolates_tails(self):
        table = self._table()
        table.ref(Var("p"))
        clone = table.clone()
        clone.ref(Var("q", "f"))
        clone.fref("g")
        assert len(table) == 1 and len(clone) == 2
        assert table.fnames == [] and clone.fnames == ["f", "g"]


class TestPayloadSizeRegression:
    """Satellite: the interned sendmail payload must be *strictly
    smaller* than the PR-2 inline format, and decode node-for-node
    identical."""

    def _payloads(self):
        from repro.bench import build
        from repro.core import BootstrapConfig, CascadeConfig
        from repro.core.shipping import build_payload
        from repro.ir import CallGraph
        program = build("sendmail", scale=0.004).program
        config = BootstrapConfig(
            cascade=CascadeConfig(andersen_threshold=6))
        boot = BootstrapAnalyzer(program, config).run()
        callgraph = CallGraph(program)
        cache = {}
        pairs = []
        for cluster in boot.clusters:
            v1 = build_payload(program, cluster, callgraph=callgraph,
                               subprogram_cache=cache, compact=False)
            v2 = build_payload(program, cluster, callgraph=callgraph,
                               subprogram_cache=cache)
            pairs.append((v1, v2))
        return pairs

    @staticmethod
    def _size(payload):
        return len(json.dumps(payload, sort_keys=True,
                              separators=(",", ":")).encode("utf-8"))

    def test_interned_payloads_strictly_smaller_and_identical(self):
        from repro.core.shipping import (
            _fsci_fingerprint,
            payload_cluster,
            payload_program,
        )
        pairs = self._payloads()
        assert pairs
        groups_v1, groups_v2 = {}, {}
        for i, (v1, v2) in enumerate(pairs):
            assert v2["version"] == 2 and v1["version"] == 1
            assert self._size(v2) < self._size(v1), f"cluster {i}"
            # Node-for-node identical decode through a real JSON hop.
            hop = json.loads(json.dumps(v2))
            assert format_program(payload_program(hop)) == \
                format_program(payload_program(v1))
            assert payload_cluster(hop) == payload_cluster(v1)
            assert v2["config"] == v1["config"]
            groups_v1.setdefault(_fsci_fingerprint(v1), []).append(i)
            groups_v2.setdefault(_fsci_fingerprint(v2), []).append(i)
        # Sibling sub-clusters share worker-side FSCI runs; the interned
        # format must preserve exactly that grouping.
        assert sorted(groups_v1.values()) == sorted(groups_v2.values())

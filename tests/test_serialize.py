"""IR JSON round-tripping."""

import json

import pytest
from hypothesis import HealthCheck, given, settings

from repro import parse_program
from repro.analysis import Andersen, execute
from repro.bench import sources
from repro.ir import (
    format_program,
    load_program,
    program_from_dict,
    program_to_dict,
    save_program,
)

from .helpers import (
    call_chain_program,
    diamond_program,
    figure2_program,
    figure5_program,
    recursive_program,
)
from .test_properties import programs


ALL = [figure2_program, figure5_program, diamond_program,
       call_chain_program, recursive_program]


class TestRoundTrip:
    @pytest.mark.parametrize("make", ALL)
    def test_text_identical(self, make):
        prog = make()
        again = program_from_dict(program_to_dict(prog))
        assert format_program(again) == format_program(prog)

    @pytest.mark.parametrize("make", ALL)
    def test_analysis_identical(self, make):
        prog = make()
        again = program_from_dict(program_to_dict(prog))
        a1, a2 = Andersen(prog).run(), Andersen(again).run()
        for p in prog.pointers:
            assert a1.points_to(p) == a2.points_to(p), str(p)

    def test_json_serializable(self):
        data = program_to_dict(figure5_program())
        json.loads(json.dumps(data))

    def test_file_round_trip(self, tmp_path):
        prog = figure2_program()
        path = str(tmp_path / "prog.json")
        save_program(prog, path)
        again = load_program(path)
        assert format_program(again) == format_program(prog)

    def test_frontend_program_round_trips(self):
        prog = sources.load("char_device")
        again = program_from_dict(program_to_dict(prog))
        assert format_program(again) == format_program(prog)

    def test_indirect_targets_preserved(self):
        prog = sources.load("fops_dispatch")
        again = program_from_dict(program_to_dict(prog))
        from repro.ir import CallStmt
        t1 = sorted(tuple(s.targets) for _, s in prog.statements()
                    if isinstance(s, CallStmt))
        t2 = sorted(tuple(s.targets) for _, s in again.statements()
                    if isinstance(s, CallStmt))
        assert t1 == t2

    def test_version_checked(self):
        data = program_to_dict(figure2_program())
        data["version"] = 999
        with pytest.raises(ValueError):
            program_from_dict(data)

    @given(programs())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_random_programs_round_trip(self, prog):
        again = program_from_dict(program_to_dict(prog))
        assert format_program(again) == format_program(prog)
        orc1 = execute(prog, max_steps=150, max_paths=200)
        orc2 = execute(again, max_steps=150, max_paths=200)
        for p in prog.pointers:
            assert orc1.points_to(p) == orc2.points_to(p)

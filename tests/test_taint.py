"""Taint analysis: spec, engine, demand loop, oracle soundness, SARIF."""

import json
import os

import pytest

from repro.analysis import execute_taint
from repro.analysis.taint import (
    SinkRule,
    SourceRule,
    TaintEngine,
    TaintSpec,
    source_argument_pointers,
)
from repro.bench import SynthConfig, generate
from repro.checkers import run_taint
from repro.core import diagnostics_to_sarif
from repro.frontend import parse_program
from repro.ir import Loc, ProgramBuilder
from repro.ir.serialize import program_from_dict, program_to_dict


def _no_alias_resolver(loc, ptr):
    return None


def flow_keys(flows):
    return {(f.source_fn, f.source_loc, f.sink_fn, f.sink_loc, f.sink_arg)
            for f in flows}


# ---------------------------------------------------------------------------
# spec
# ---------------------------------------------------------------------------
class TestTaintSpec:
    def test_default_covers_toy_corpus(self):
        spec = TaintSpec.default()
        assert "input" in spec.sources
        assert "system" in spec.sinks
        assert "sanitize" in spec.sanitizers
        assert spec.sinks["printf"].severity == "warning"

    def test_round_trip(self):
        spec = TaintSpec.default()
        again = TaintSpec.from_dict(spec.to_dict())
        assert again.to_dict() == spec.to_dict()
        assert again.digest() == spec.digest()

    def test_digest_changes_with_rules(self):
        spec = TaintSpec.default()
        other = TaintSpec.from_dict(
            {"sources": {"my_src": {"taints": ["return"]}},
             "sinks": {"my_sink": {"args": [0]}}})
        assert other.digest() != spec.digest()

    def test_arg_effect_spellings(self):
        spec = TaintSpec.from_dict(
            {"sources": {"s": {"taints": ["arg:1", 0]}}})
        assert spec.sources["s"].taints == (1, 0)

    def test_bad_effect_rejected(self):
        with pytest.raises(ValueError):
            TaintSpec.from_dict({"sources": {"s": {"taints": ["argh"]}}})

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError):
            TaintSpec.from_dict(
                {"sinks": {"s": {"severity": "fatal"}}})


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------
def _engine_flows(program, spec=None):
    spec = spec or TaintSpec.default()
    engine = TaintEngine(program, spec, _no_alias_resolver)
    return engine.run().flows


class TestEngineBasics:
    def test_direct_source_to_sink(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.extern_call("input", [], ret="x")
            f.extern_call("system", ["x"])
        flows = _engine_flows(b.build())
        assert len(flows) == 1
        assert flows[0].source_fn == "input"
        assert flows[0].sink_fn == "system"
        assert flows[0].severity == "error"

    def test_copy_chain_propagates(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.extern_call("input", [], ret="x")
            f.copy("y", "x")
            f.copy("z", "y")
            f.extern_call("system", ["z"])
        assert len(_engine_flows(b.build())) == 1

    def test_untainted_is_silent(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.copy("y", "x")
            f.extern_call("system", ["y"])
        assert _engine_flows(b.build()) == []

    def test_sanitizer_clears_return(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.extern_call("input", [], ret="x")
            f.extern_call("sanitize", ["x"], ret="clean")
            f.extern_call("system", ["clean"])
        assert _engine_flows(b.build()) == []

    def test_sink_severity_from_rule(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.extern_call("input", [], ret="x")
            f.extern_call("printf", ["x", "y"])
        flows = _engine_flows(b.build())
        assert [f.severity for f in flows] == ["warning"]

    def test_sink_checked_before_sanitize_of_same_call(self):
        # system() is not a sanitizer, but a call that is BOTH sink and
        # source must check the sink on the pre-call state.
        spec = TaintSpec(
            sources={"both": SourceRule("both")},
            sinks={"both": SinkRule("both")},
            sanitizers={})
        b = ProgramBuilder()
        with b.function("main") as f:
            f.extern_call("both", [], ret="x")
            f.extern_call("both", ["x"], ret="y")
        flows = _engine_flows(b.build(), spec)
        assert len(flows) == 1

    def test_interprocedural_summary_flow(self):
        b = ProgramBuilder()
        for g in ("g1", "g2"):
            b.global_var(g)
        with b.function("produce") as f:
            f.extern_call("getenv", [], ret="raw")
            f.copy("g1", "raw")
        with b.function("relay") as f:
            f.copy("g2", "g1")
        with b.function("consume") as f:
            f.extern_call("exec", ["g2"])
        with b.function("main") as f:
            f.call("produce")
            f.call("relay")
            f.call("consume")
        flows = _engine_flows(b.build())
        assert len(flows) == 1
        flow = flows[0]
        assert flow.source_loc.function == "produce"
        assert flow.sink_loc.function == "consume"
        # The witness walks through the relay call.
        notes = [note for _, note in flow.steps]
        assert any("call" in n for n in notes)

    def test_trace_starts_at_source(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.extern_call("input", [], ret="x")
            f.copy("y", "x")
            f.extern_call("system", ["y"])
        flow = _engine_flows(b.build())[0]
        assert flow.steps
        first_loc, first_note = flow.steps[0]
        assert first_loc == flow.source_loc
        assert "input" in first_note

    def test_memory_hops_recorded_in_trace(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.extern_call("input", [], ret="x")
            f.addr("p", "cell")
            f.store("p", "x")
            f.load("y", "p")
            f.extern_call("system", ["y"])
        flow = run_taint(b.build()).flows[0]
        notes = [note for _, note in flow.steps]
        assert any("stored" in n for n in notes)
        assert any("loaded" in n for n in notes)


class TestMemoryFlows:
    def _memory_program(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.extern_call("input", [], ret="x")
            f.addr("p", "cell")
            f.store("p", "x")
            f.load("y", "p")
            f.extern_call("system", ["y"])
        return b.build()

    def test_resolver_none_demands_pointer(self):
        program = self._memory_program()
        engine = TaintEngine(program, TaintSpec.default(),
                             _no_alias_resolver)
        report = engine.run()
        assert any(v.name == "p" for v in report.demanded)

    def test_demand_loop_resolves_memory_hop(self):
        run = run_taint(self._memory_program())
        assert len(run.flows) == 1
        # The sink-argument pointer seeds the demand; its alias-closed
        # cluster already covers p, so one round suffices.
        assert run.rounds >= 1
        assert run.demanded

    def test_pointer_argument_sink(self):
        # The sink argument itself is a pointer to a tainted cell.
        b = ProgramBuilder()
        with b.function("main") as f:
            f.extern_call("input", [], ret="x")
            f.addr("p", "cell")
            f.store("p", "x")
            f.extern_call("system", ["p"])
        run = run_taint(b.build())
        assert len(run.flows) == 1

    def test_arg_taints_pointee(self):
        # recv(fd, buf_ptr) taints what the second argument points to.
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "buf")
            f.extern_call("recv", ["fd", "p"], ret="n")
            f.load("y", "p")
            f.extern_call("system", ["y"])
        run = run_taint(b.build())
        assert len(run.flows) == 1
        assert run.flows[0].source_fn == "recv"


class TestDemandSelection:
    def test_selects_fraction_of_clusters(self):
        sp = generate(SynthConfig(name="t", pointers=200, taint_webs=6,
                                  seed=5))
        run = run_taint(sp.program)
        stats = run.stats
        assert 0 < stats.clusters_selected < stats.clusters_total

    def test_source_argument_pointers_seed(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "buf")
            f.extern_call("recv", ["fd", "p"], ret="n")
        seeds = source_argument_pointers(b.build(), TaintSpec.default())
        assert any(v.name == "p" for v in seeds)


# ---------------------------------------------------------------------------
# ground truth on the synthetic corpus
# ---------------------------------------------------------------------------
class TestSynthGroundTruth:
    @pytest.mark.parametrize("seed", [7, 42])
    def test_all_webs_detected_no_sanitized_leaks(self, seed):
        sp = generate(SynthConfig(name="t", pointers=200, taint_webs=9,
                                  seed=seed))
        expected = {t["sink_function"] for t in sp.taint_truth
                    if not t["sanitized"]}
        sanitized = {t["sink_function"] for t in sp.taint_truth
                     if t["sanitized"]}
        run = run_taint(sp.program)
        found = {f.sink_loc.function for f in run.flows}
        assert expected <= found
        assert not (found & sanitized)

    def test_demand_equals_whole_program(self):
        from repro.bench.taint import _whole_program_run
        from repro.core import BootstrapAnalyzer
        sp = generate(SynthConfig(name="t", pointers=160, taint_webs=6,
                                  seed=13))
        result = BootstrapAnalyzer(sp.program).run()
        spec = TaintSpec.default()
        demand = run_taint(sp.program, spec=spec, result=result)
        whole, _ = _whole_program_run(sp.program, spec, result)
        assert sorted(f.key() for f in demand.flows) \
            == sorted(f.key() for f in whole.flows)


# ---------------------------------------------------------------------------
# concrete oracle: realized flows must be reported
# ---------------------------------------------------------------------------
class TestOracleSoundness:
    def assert_sound(self, program, **oracle_kw):
        _, realized = execute_taint(program, **oracle_kw)
        reported = flow_keys(run_taint(program).flows)
        missed = realized - reported
        assert not missed, f"concrete flows missed: {missed}"
        return realized

    def test_example_file(self):
        here = os.path.dirname(__file__)
        path = os.path.join(here, os.pardir, "examples", "taint_demo.c")
        program = parse_program(open(path).read(), entry="main")
        realized = self.assert_sound(program)
        assert len(realized) == 2  # and the sanitized path stays silent

    def test_branchy_program(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.extern_call("input", [], ret="x")
            with f.branch() as br:
                with br.then():
                    f.copy("y", "x")
                with br.otherwise():
                    f.copy("y", "safe")
            f.extern_call("system", ["y"])
        realized = self.assert_sound(b.build())
        assert len(realized) == 1

    @pytest.mark.parametrize("seed", [3, 21])
    def test_synth_webs(self, seed):
        # Keep the non-web scaffolding tiny (no hub web, two worker
        # functions, no recursion) so the oracle's bounded DFS reaches
        # the seeded webs at the end of main within its path budget.
        sp = generate(SynthConfig(name="t", pointers=24, functions=2,
                                  hub_fractions=(), taint_webs=4,
                                  recursion=False, seed=seed))
        realized = self.assert_sound(sp.program, max_steps=900,
                                     max_paths=3000)
        assert realized  # the oracle actually reached some seeded web


# ---------------------------------------------------------------------------
# serialization and SARIF
# ---------------------------------------------------------------------------
class TestExternCallSerialize:
    def test_round_trip_preserves_taint_flows(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.extern_call("input", [], ret="x")
            f.extern_call("sanitize", ["x"], ret="clean")
            f.extern_call("system", ["x"])
        program = b.build()
        again = program_from_dict(program_to_dict(program))
        assert flow_keys(_engine_flows(again)) \
            == flow_keys(_engine_flows(program))


class TestSarifCodeFlows:
    def test_witness_round_trips_through_codeflows(self):
        src = """
        int getenv(int x);
        int system(int c);
        int main() {
            int v;
            int w;
            v = getenv(1);
            w = v;
            system(w);
            return 0;
        }
        """
        program = parse_program(src, entry="main")
        run = run_taint(program)
        assert len(run.diagnostics) == 1
        diag = run.diagnostics[0]
        assert len(diag.trace) >= 1
        sarif = diagnostics_to_sarif(run.diagnostics)
        json.dumps(sarif)  # must be JSON-serializable
        results = sarif["runs"][0]["results"]
        taint = [r for r in results if r["ruleId"] == "taint-flow"]
        assert len(taint) == 1
        flows = taint[0]["codeFlows"]
        locations = flows[0]["threadFlows"][0]["locations"]
        # every trace step plus the summary location at the sink
        assert len(locations) == len(diag.trace) + 1
        lines = [loc["location"]["physicalLocation"].get(
            "region", {}).get("startLine") for loc in locations]
        # first step is the source call, last is the sink line
        assert lines[0] < lines[-1]
        notes = [loc["location"].get("message", {}).get("text", "")
                 for loc in locations]
        assert any("getenv" in n for n in notes)

"""Property and differential tests for the bitmask solver kernels.

The kernels (:mod:`repro.analysis.kernel`) are pure representation: an
int bitmask stands in for a frozenset of interned symbols.  These tests
pin that claim three ways — random operation sequences against a plain
``set`` reference model (hypothesis), kernel-vs-reference differentials
over the Andersen and FSCI solvers on both hand-built and random
programs, and hash-seed determinism for cluster emission.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from typing import Dict, List, Set

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import FSCI, Andersen
from repro.analysis.kernel import BitSet, IntUnionFind, NodeTable, iter_bits, popcount
from repro.bench.profile_solvers import check_gate, render, run_kernel_bench
from repro.ir import AllocSite, Loc, Var

from .helpers import (
    call_chain_program,
    diamond_program,
    figure2_program,
    figure3_program,
    figure4_program,
    figure5_program,
    recursive_program,
)
from .test_properties import programs

#: Crosses the 64-bit machine-word boundary so multi-word masks are
#: exercised, not just the fast single-word path.
UNIVERSE = 70

_elements = st.integers(0, UNIVERSE - 1)

#: Initial contents, weighted toward the edge cases the issue calls out:
#: empty, singleton, and full universe.
_initial = st.one_of(
    st.just(frozenset()),
    st.builds(lambda i: frozenset({i}), _elements),
    st.just(frozenset(range(UNIVERSE))),
    st.frozensets(_elements),
)

_masks = st.frozensets(_elements).map(
    lambda s: sum(1 << i for i in s))

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), _elements),
        st.tuples(st.just("discard"), _elements),
        st.tuples(st.just("or_into"), _masks),
        st.tuples(st.just("difference_mask"), _masks),
    ),
    max_size=30,
)


def _mask_of(model: Set[int]) -> int:
    return sum(1 << i for i in model)


class TestBitSetModel:
    @given(initial=_initial, ops=_ops)
    @settings(max_examples=200, deadline=None)
    def test_operation_sequences_match_set_model(self, initial, ops):
        bs = BitSet()
        model: Set[int] = set()
        delta = bs.or_into(_mask_of(initial))
        assert delta == _mask_of(initial)
        model |= initial
        for op, arg in ops:
            if op == "add":
                bs.add(arg)
                model.add(arg)
            elif op == "discard":
                bs.discard(arg)
                model.discard(arg)
            elif op == "or_into":
                delta = bs.or_into(arg)
                new = {i for i in range(UNIVERSE) if arg >> i & 1} - model
                assert delta == _mask_of(new)
                model |= new
            else:
                assert bs.difference_mask(arg) == \
                    _mask_of(model - {i for i in range(UNIVERSE)
                                      if arg >> i & 1})
            # Full invariant sweep after every operation.
            assert bs.bits == _mask_of(model)
            assert len(bs) == len(model)
            assert bool(bs) == bool(model)
            assert sorted(bs) == sorted(model)
            assert all((i in bs) == (i in model)
                       for i in range(UNIVERSE))

    @given(a=_initial, b=_initial)
    @settings(max_examples=100, deadline=None)
    def test_pairwise_semantics(self, a, b):
        ba, bb = BitSet(), BitSet()
        ba.or_into(_mask_of(a))
        bb.or_into(_mask_of(b))
        assert ba.isdisjoint(bb.bits) == a.isdisjoint(b)
        assert (ba == bb) == (a == b)
        if a == b:
            assert hash(ba) == hash(bb)
        # or_into reports exactly the new bits, and is idempotent.
        cp = ba.copy()
        delta = cp.or_into(bb.bits)
        assert delta == _mask_of(b - a)
        assert cp.bits == _mask_of(a | b)
        assert cp.or_into(bb.bits) == 0
        # copy() is independent of the original.
        assert ba.bits == _mask_of(a)

    @given(mask=st.integers(min_value=0, max_value=(1 << 130) - 1))
    @settings(max_examples=200, deadline=None)
    def test_popcount_and_iter_bits(self, mask):
        positions = list(iter_bits(mask))
        assert positions == [i for i in range(mask.bit_length())
                             if mask >> i & 1]
        assert popcount(mask) == len(positions)

    def test_word_boundary_edges(self):
        for mask in (0, 1, 1 << 63, 1 << 64, (1 << 64) - 1, (1 << 127) | 1):
            assert popcount(mask) == bin(mask).count("1")
            assert list(iter_bits(mask)) == \
                [i for i in range(130) if mask >> i & 1]


class TestNodeTable:
    def test_intern_round_trip_with_reserved_bits(self):
        table = NodeTable(reserved=2)
        objs = [Var("p", None), Var("q", "f"), AllocSite("h1"),
                Var("p", "f")]
        ids = [table.intern(o) for o in objs]
        assert ids == [0, 1, 2, 3]
        assert [table.intern(o) for o in objs] == ids  # stable
        assert [table.obj_of(i) for i in ids] == objs
        assert [table.id_of(o) for o in objs] == ids
        # bit/mask_of respect the reserved low bits.
        assert table.bit(objs[0]) == 1 << 2
        mask = table.mask_of([objs[0], objs[2]])
        assert mask == (1 << 2) | (1 << 4)
        # objects_of ignores the reserved sentinel bits.
        assert table.objects_of(mask | 0b11) == frozenset({objs[0], objs[2]})
        assert table.objects_of(0b11) == frozenset()

    @given(subset=st.frozensets(st.integers(0, 19)))
    @settings(max_examples=100, deadline=None)
    def test_objects_of_inverts_mask_of(self, subset):
        table = NodeTable(reserved=2)
        objs = [AllocSite(f"o{i}") for i in range(20)]
        for o in objs:
            table.intern(o)
        chosen = frozenset(objs[i] for i in subset)
        assert table.objects_of(table.mask_of(chosen)) == chosen


class TestIntUnionFind:
    @given(unions=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40))
    @settings(max_examples=150, deadline=None)
    def test_matches_partition_model(self, unions):
        uf = IntUnionFind(16)
        groups: List[Set[int]] = [{i} for i in range(16)]
        member: Dict[int, int] = {i: i for i in range(16)}
        for a, b in unions:
            uf.union(a, b)
            ga, gb = member[a], member[b]
            if ga != gb:
                groups[ga] |= groups[gb]
                for x in groups[gb]:
                    member[x] = ga
                groups[gb] = set()
        for i in range(16):
            for j in range(16):
                assert (uf.find(i) == uf.find(j)) == \
                    (member[i] == member[j])


ZOO = [figure2_program, figure3_program, figure4_program,
       figure5_program, diamond_program, recursive_program,
       call_chain_program]


def _andersen_state(program, **kw):
    result = Andersen(program, **kw).run()
    return ({p: result.points_to(p) for p in program.pointers},
            result.clusters(include_singletons=True))


class TestAndersenDifferential:
    @pytest.mark.parametrize("factory", ZOO,
                             ids=[f.__name__ for f in ZOO])
    def test_zoo_bit_identical(self, factory):
        program = factory()
        assert _andersen_state(program, use_kernel=True) == \
            _andersen_state(program, use_kernel=False)
        # Cycle elimination off exercises the no-collapse code path.
        assert _andersen_state(program, use_kernel=True,
                               cycle_elimination=False) == \
            _andersen_state(program, use_kernel=False,
                            cycle_elimination=False)

    @given(program=programs())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_programs_bit_identical(self, program):
        assert _andersen_state(program, use_kernel=True) == \
            _andersen_state(program, use_kernel=False)


def _fsci_state(program, use_kernel):
    result = FSCI(program, use_kernel=use_kernel).run()
    state = {"iterations": result.iterations,
             "summary": {p: result.points_to(p)
                         for p in program.pointers}}
    for fname, fn in program.functions.items():
        for idx in fn.cfg.nodes():
            loc = Loc(fname, idx)
            for p in program.pointers:
                key = (fname, idx, p)
                state[key] = (
                    result.pts_before(loc, p),
                    result.pts_after(loc, p),
                    result.maybe_uninit_before(loc, p),
                    result.may_null_before(loc, p),
                    result.must_null_before(loc, p),
                    result.explicit_null_before(loc, p),
                    result.maybe_uninit_only_before(loc, p),
                )
    return state


class TestFSCIDifferential:
    @pytest.mark.parametrize("factory", ZOO,
                             ids=[f.__name__ for f in ZOO])
    def test_zoo_bit_identical(self, factory):
        program = factory()
        assert _fsci_state(program, True) == _fsci_state(program, False)

    @pytest.mark.parametrize("factory", ZOO[:3],
                             ids=[f.__name__ for f in ZOO[:3]])
    def test_pairwise_accessors_agree(self, factory):
        program = factory()
        kern = FSCI(program, use_kernel=True).run()
        ref = FSCI(program, use_kernel=False).run()
        ptrs = sorted(program.pointers, key=str)
        for fname, fn in program.functions.items():
            for idx in fn.cfg.nodes():
                loc = Loc(fname, idx)
                for p in ptrs:
                    for obj in sorted(program.objects, key=str):
                        assert kern.must_point_to(p, obj, loc) == \
                            ref.must_point_to(p, obj, loc), (loc, p, obj)
                    for q in ptrs:
                        assert kern.may_values_equal(p, q, loc) == \
                            ref.may_values_equal(p, q, loc), (loc, p, q)
                        assert kern.must_values_equal(p, q, loc) == \
                            ref.must_values_equal(p, q, loc), (loc, p, q)

    @given(program=programs())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_programs_bit_identical(self, program):
        assert _fsci_state(program, True) == _fsci_state(program, False)


_CLUSTER_SCRIPT = """
import json, sys
from repro.bench import corpus_configs, generate
from repro.analysis import Andersen

cfg = next(c for c in corpus_configs(scale=0.004) if c.name == "ctrace")
program = generate(cfg).program
result = Andersen(program).run()
clusters = result.clusters(include_singletons=True)
print(json.dumps([sorted(map(str, c)) for c in clusters]))
"""


class TestClusterDeterminism:
    """Satellite 4: ``clusters(include_singletons=True)`` iterates in a
    deterministic (interned-id) order, never raw set order."""

    def test_stable_across_hash_seeds(self, tmp_path):
        outs = set()
        for seed in (0, 12345):
            env = dict(os.environ, PYTHONHASHSEED=str(seed),
                       PYTHONPATH=os.path.join(
                           os.path.dirname(__file__), "..", "src"))
            proc = subprocess.run(
                [sys.executable, "-c", _CLUSTER_SCRIPT],
                capture_output=True, text=True, env=env,
                cwd=str(tmp_path))
            assert proc.returncode == 0, proc.stderr
            outs.add(proc.stdout)
        assert len(outs) == 1
        assert json.loads(outs.pop())  # non-trivial cluster list

    def test_kernel_and_reference_emit_same_clusters(self):
        program = figure5_program()
        kern = Andersen(program, use_kernel=True).run()
        ref = Andersen(program, use_kernel=False).run()
        assert kern.clusters(include_singletons=True) == \
            ref.clusters(include_singletons=True)
        assert kern.clusters(include_singletons=False) == \
            ref.clusters(include_singletons=False)


class TestBenchHarness:
    def test_smoke_records_identical_stages(self):
        data = run_kernel_bench(name="ctrace", scale=0.004,
                                skip_payload=True)
        assert data["stages"]["andersen"]["identical"]
        assert data["stages"]["fsci"]["identical"]
        assert data["cold"]["kernel_time"] > 0
        assert "payload" in data and data["payload"]["skipped"]
        assert render(data)  # renders without the payload block

    def _result(self, kernel, reference):
        return {
            "stages": {
                "andersen": {"identical": True},
                "fsci": {"identical": True},
            },
            "cold": {"kernel_time": kernel, "reference_time": reference,
                     "speedup": reference / kernel},
        }

    def test_gate_passes_within_tolerance(self):
        base = self._result(1.0, 6.0)
        cur = self._result(1.1, 6.0)  # ratio +10% < 20% tolerance
        assert not check_gate(cur, base)

    def test_gate_fails_on_ratio_regression(self):
        base = self._result(1.0, 6.0)
        cur = self._result(1.6, 6.0)  # ratio +60%, speedup still < floor
        failures = check_gate(cur, base)
        assert any("regressed" in f for f in failures)

    def test_gate_fails_below_speedup_floor(self):
        base = self._result(1.0, 6.0)
        cur = self._result(1.5, 6.0)  # 4x < 5x floor, ratio within 2x...
        failures = check_gate(cur, base, tolerance=0.6)
        assert any("below" in f for f in failures)

    def test_gate_fails_on_divergence(self):
        base = self._result(1.0, 6.0)
        cur = self._result(1.0, 6.0)
        cur["stages"]["fsci"]["identical"] = False
        assert any("differ" in f for f in check_gate(cur, base))

"""DOT exports and the analysis report generator."""

import json

import pytest

from repro import parse_program
from repro.analysis import Andersen, Steensgaard
from repro.cli import main
from repro.core import BootstrapAnalyzer, cascade_summary, render_report
from repro.ir import andersen_dot, callgraph_dot, cfg_dot, steensgaard_dot

from .helpers import figure2_program, figure5_program

SRC = """
int a, b;
int *p, *q;
void helper(void) { q = p; }
int main() { p = &a; helper(); q = &b; return 0; }
"""


class TestDot:
    def test_steensgaard_dot(self):
        prog = figure2_program()
        text = steensgaard_dot(Steensgaard(prog).run())
        assert text.startswith("digraph steensgaard")
        assert "->" in text
        assert "main::p" in text and "main::a" in text

    def test_steensgaard_out_degree_one(self):
        prog = figure2_program()
        text = steensgaard_dot(Steensgaard(prog).run())
        edges = [l for l in text.splitlines() if "->" in l]
        sources = [e.split("->")[0].strip() for e in edges]
        assert len(sources) == len(set(sources))

    def test_andersen_dot(self):
        prog = figure2_program()
        text = andersen_dot(Andersen(prog).run())
        assert text.startswith("digraph andersen")
        # q points to three objects: three edges from q.
        q_edges = [l for l in text.splitlines()
                   if l.strip().startswith('"main::q" ->')]
        assert len(q_edges) == 3

    def test_cfg_dot(self):
        prog = figure2_program()
        text = cfg_dot(prog.cfg_of("main"))
        assert "digraph main" in text
        assert "peripheries=2" in text  # the exit node

    def test_callgraph_dot_marks_indirect(self):
        prog = parse_program("""
            int g;
            int *fa(void) { return &g; }
            int main() {
                int *(*fp)(void) = fa;
                int *r = fp();
                return 0;
            }
        """)
        text = callgraph_dot(prog)
        assert '"main" -> "fa" [style=dashed]' in text

    def test_quote_escaping(self):
        prog = figure5_program()
        text = steensgaard_dot(Steensgaard(prog).run())
        assert '"' in text  # labels quoted


class TestReport:
    def test_summary_shape(self):
        prog = parse_program(SRC)
        result = BootstrapAnalyzer(prog).run()
        summary = cascade_summary(result)
        assert summary["program"]["functions"] == 2
        assert summary["clusters"]["count"] >= 1
        assert summary["clusters"]["max_size"] >= 2
        json.dumps(summary)  # must be JSON-serializable

    def test_render_report(self):
        prog = parse_program(SRC)
        result = BootstrapAnalyzer(prog).run()
        text = render_report(result)
        assert "## Bootstrapped alias analysis report" in text
        assert "Largest" in text
        assert "| size" in text

    def test_histogram_consistent(self):
        prog = parse_program(SRC)
        result = BootstrapAnalyzer(prog).run()
        summary = cascade_summary(result)
        hist = summary["clusters"]["size_histogram"]
        assert sum(hist.values()) == summary["clusters"]["count"]


class TestCliIntegration:
    @pytest.fixture()
    def src_file(self, tmp_path):
        path = tmp_path / "prog.c"
        path.write_text(SRC)
        return str(path)

    def test_report_flag(self, src_file, capsys):
        assert main(["analyze", src_file, "--report"]) == 0
        assert "alias analysis report" in capsys.readouterr().out

    def test_json_flag_parses(self, src_file, capsys):
        main(["analyze", src_file, "--json"])
        out = capsys.readouterr().out
        start = out.index("{")
        data = json.loads(out[start:])
        assert data["program"]["functions"] == 2

    def test_dot_flag(self, src_file, capsys):
        assert main(["analyze", src_file, "--dot", "steensgaard"]) == 0
        assert "digraph steensgaard" in capsys.readouterr().out

    def test_dot_callgraph(self, src_file, capsys):
        assert main(["analyze", src_file, "--dot", "callgraph"]) == 0
        assert '"main" -> "helper"' in capsys.readouterr().out

"""The bootstrapping cascade: clustering, thresholds, covers."""

import pytest

from repro.analysis import Steensgaard
from repro.core import (
    CascadeConfig,
    Cluster,
    Partitioning,
    PartitionStats,
    andersen_refine,
    oneflow_refine,
    run_cascade,
)
from repro.ir import ProgramBuilder, Var

from .helpers import figure2_program, figure5_program, v


def big_partition_program(n_chains=4, chain_len=5):
    """Several chains bridged into one large Steensgaard partition."""
    b = ProgramBuilder()
    with b.function("main") as f:
        heads = []
        for c in range(n_chains):
            f.addr(f"c{c}v0", f"o{c}")
            heads.append(f"c{c}v0")
            for i in range(1, chain_len):
                f.copy(f"c{c}v{i}", f"c{c}v{i - 1}")
        for c in range(1, n_chains):
            f.copy(f"b{c}", heads[c - 1])
            f.copy(f"b{c}", heads[c])
    return b.build()


class TestPartitioning:
    def test_stats(self):
        prog = figure2_program()
        part = Partitioning(prog)
        stats = part.stats()
        assert stats.max_size == 3
        assert stats.total_members == len(prog.objects)

    def test_histogram(self):
        part = Partitioning(figure2_program())
        hist = part.size_histogram()
        assert hist.get(3) == 2

    def test_pointer_partitions_drop_pure_heap_classes(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.alloc("p", "h")
        part = Partitioning(b.build())
        for p in part.pointer_partitions():
            assert any(isinstance(m, Var) for m in p)

    def test_partition_stats_of_empty(self):
        stats = PartitionStats.of([])
        assert stats.count == 0 and stats.max_size == 0


class TestRefinement:
    def test_andersen_refine_covers_partition(self):
        prog = big_partition_program()
        steens = Steensgaard(prog).run()
        part = steens.partition_of(v("c0v0", "main"))
        groups = andersen_refine(prog, steens, part)
        assert set().union(*groups) == part

    def test_andersen_refine_shrinks_chains(self):
        prog = big_partition_program(n_chains=4, chain_len=5)
        steens = Steensgaard(prog).run()
        part = steens.partition_of(v("c0v0", "main"))
        assert len(part) >= 20
        groups = andersen_refine(prog, steens, part)
        assert max(len(g) for g in groups) < len(part)

    def test_oneflow_refine_covers(self):
        prog = big_partition_program()
        steens = Steensgaard(prog).run()
        part = steens.partition_of(v("c0v0", "main"))
        groups = oneflow_refine(prog, steens, part)
        assert set().union(*groups) == part


class TestCascade:
    def test_clusters_cover_all_pointers(self):
        prog = figure5_program()
        result = run_cascade(prog)
        covered = set()
        for c in result.clusters:
            covered |= c.members
        assert covered >= prog.pointers

    def test_threshold_controls_refinement(self):
        prog = big_partition_program(n_chains=6, chain_len=6)
        low = run_cascade(prog, CascadeConfig(andersen_threshold=5))
        high = run_cascade(prog, CascadeConfig(andersen_threshold=10 ** 6))
        assert low.max_cluster_size() < high.max_cluster_size()
        assert low.refined_partitions >= 1
        assert high.refined_partitions == 0

    def test_no_andersen_stage(self):
        prog = big_partition_program()
        result = run_cascade(prog, CascadeConfig(refine_with_andersen=False))
        assert all(c.origin == "steensgaard" for c in result.clusters)
        assert result.refined_partitions == 0

    def test_origins_recorded(self):
        prog = big_partition_program(n_chains=6, chain_len=6)
        # Threshold 10: the 41-member chain partition is refined, the
        # 6-member object partition is kept as-is.
        result = run_cascade(prog, CascadeConfig(andersen_threshold=10))
        origins = {c.origin for c in result.clusters}
        assert "andersen" in origins and "steensgaard" in origins

    def test_oneflow_stage(self):
        prog = big_partition_program(n_chains=6, chain_len=6)
        result = run_cascade(prog, CascadeConfig(use_oneflow=True,
                                                 oneflow_threshold=5,
                                                 andersen_threshold=5))
        assert result.clusters  # pipeline completes

    def test_timings_recorded(self):
        result = run_cascade(figure2_program())
        assert result.partition_time >= 0
        assert result.clustering_time >= 0

    def test_clusters_containing(self):
        prog = figure2_program()
        result = run_cascade(prog)
        q = v("q", "main")
        found = result.clusters_containing([q])
        assert found and all(q in c.members for c in found)

    def test_stats_by_origin(self):
        prog = big_partition_program(n_chains=6, chain_len=6)
        result = run_cascade(prog, CascadeConfig(andersen_threshold=5))
        assert result.stats("andersen").count >= 1

    def test_cluster_parent_size(self):
        prog = big_partition_program(n_chains=6, chain_len=6)
        result = run_cascade(prog, CascadeConfig(andersen_threshold=5))
        for c in result.clusters:
            if c.origin == "andersen":
                assert c.parent_size >= c.size

    def test_subclusters_carry_parent_slice(self):
        prog = big_partition_program(n_chains=6, chain_len=6)
        result = run_cascade(prog, CascadeConfig(andersen_threshold=5))
        for c in result.clusters:
            if c.origin == "andersen":
                assert c.parent_slice is not None
                assert c.slice.statements <= c.parent_slice.statements


class TestClusterDataclass:
    def test_pointer_members(self):
        prog = figure2_program()
        result = run_cascade(prog)
        for c in result.clusters:
            assert all(isinstance(m, Var) for m in c.pointer_members)

    def test_len(self):
        prog = figure2_program()
        c = run_cascade(prog).clusters[0]
        assert len(c) == c.size

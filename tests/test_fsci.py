"""FSCI: flow-sensitive, context-insensitive points-to analysis."""

import pytest

from repro.analysis import FSCI, Andersen, execute, precision_refines
from repro.ir import Loc, ProgramBuilder, Var

from .helpers import (
    call_chain_program,
    diamond_program,
    figure2_program,
    figure5_program,
    pts_names,
    recursive_program,
    v,
)


class TestFlowSensitivity:
    def test_strong_update_kills_old_target(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            last = f.addr("p", "b")
        prog = b.build()
        fsci = FSCI(prog).run()
        assert fsci.pts_after(Loc("main", last), v("p", "main")) == \
            frozenset({v("b", "main")})

    def test_state_before_vs_after(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            n = f.addr("p", "b")
        prog = b.build()
        fsci = FSCI(prog).run()
        loc = Loc("main", n)
        assert fsci.pts_before(loc, v("p", "main")) == \
            frozenset({v("a", "main")})

    def test_branch_join_unions(self):
        prog = diamond_program()
        fsci = FSCI(prog).run()
        q = v("q", "main")
        assert pts_names(fsci, q) == ["main::a", "main::b"]

    def test_strong_update_after_join(self):
        """After p = &c, p's old targets are gone at that point."""
        prog = diamond_program()
        fsci = FSCI(prog).run()
        cfg = prog.cfg_of("main")
        final = Loc("main", cfg.exit)
        assert fsci.pts_before(final, v("p", "main")) == \
            frozenset({v("c", "main")})

    def test_null_assign_clears(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            n = f.null("p")
        fsci = FSCI(b.build()).run()
        assert fsci.pts_after(Loc("main", n), v("p", "main")) == frozenset()

    def test_weak_update_on_ambiguous_store(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            with f.branch() as br:
                with br.then():
                    f.addr("pp", "x")
                with br.otherwise():
                    f.addr("pp", "y")
            f.addr("x", "a")
            f.addr("y", "b")
            f.addr("t", "c")
            n = f.store("pp", "t")   # may write x or y: weak
        prog = b.build()
        fsci = FSCI(prog).run()
        loc = Loc("main", n)
        # x keeps &a and may have gained &c.
        assert v("a", "main") in fsci.pts_after(loc, v("x", "main"))
        assert v("c", "main") in fsci.pts_after(loc, v("x", "main"))

    def test_strong_update_on_unique_store(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("pp", "x")
            f.addr("x", "a")
            f.addr("t", "c")
            n = f.store("pp", "t")   # pp definitely points to x
        fsci = FSCI(b.build()).run()
        assert fsci.pts_after(Loc("main", n), v("x", "main")) == \
            frozenset({v("c", "main")})

    def test_no_strong_update_on_alloc_cells(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.alloc("p", "h")   # one abstract cell for many objects
            f.addr("t1", "a")
            f.store("p", "t1")
            f.addr("t2", "b")
            n = f.store("p", "t2")
            f.load("out", "p")
        fsci = FSCI(b.build()).run()
        out = pts_names(fsci, v("out", "main"))
        assert out == ["main::a", "main::b"]   # weak: both survive

    def test_loop_reaches_fixpoint(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            with f.loop():
                f.copy("q", "p")
                f.addr("p", "b")
        prog = b.build()
        fsci = FSCI(prog).run()
        assert pts_names(fsci, v("q", "main")) == ["main::a", "main::b"]


class TestInterprocedural:
    def test_param_and_return_flow(self):
        prog = call_chain_program()
        fsci = FSCI(prog).run()
        assert pts_names(fsci, v("q", "main")) == ["main::obj"]

    def test_recursion_terminates(self):
        prog = recursive_program()
        fsci = FSCI(prog).run()
        g = Var("g")
        assert set(pts_names(fsci, g)) == {"main::o0", "odd::o1"}

    def test_recursive_locals_not_strong_updated(self):
        """Locals of recursive functions are multi-instance cells."""
        b = ProgramBuilder()
        b.global_var("g")
        with b.function("rec") as f:
            f.copy("local", "g")
            f.addr("g", "b")
            f.call("rec")
        with b.function("main") as f:
            f.addr("g", "a")
            f.call("rec")
        prog = b.build()
        fsci = FSCI(prog).run()
        assert set(pts_names(fsci, v("local", "rec"))) == \
            {"main::a", "rec::b"}


class TestSlicing:
    def test_relevant_restriction_skips_other_statements(self):
        prog = figure2_program()
        # Keep only the first two statements live.
        keep = {Loc("main", 1), Loc("main", 2)}
        fsci = FSCI(prog, relevant=keep).run()
        assert pts_names(fsci, v("q", "main")) == ["main::b"]

    def test_tracked_restriction(self):
        prog = figure2_program()
        fsci = FSCI(prog, tracked={v("p", "main"), v("a", "main")}).run()
        assert pts_names(fsci, v("p", "main")) == ["main::a"]
        assert fsci.points_to(v("q", "main")) == frozenset()

    def test_function_restriction(self):
        prog = figure5_program()
        fsci = FSCI(prog, functions={"main", "foo"}).run()
        # bar excluded; x still flows from w through foo.
        assert "u" in pts_names(fsci, Var("z")) or \
            pts_names(fsci, Var("z")) == []

    def test_max_iterations_raises(self):
        prog = figure5_program()
        with pytest.raises(TimeoutError):
            FSCI(prog, max_iterations=2).run()


class TestPrecisionAndSoundness:
    @pytest.mark.parametrize("make", [figure2_program, diamond_program,
                                      call_chain_program,
                                      recursive_program])
    def test_sound_vs_oracle_flow_insensitive(self, make):
        prog = make()
        fsci = FSCI(prog).run()
        orc = execute(prog)
        for p in prog.pointers:
            assert orc.points_to(p) <= fsci.points_to(p), str(p)

    @pytest.mark.parametrize("make", [figure2_program, diamond_program,
                                      call_chain_program])
    def test_sound_vs_oracle_per_location(self, make):
        prog = make()
        fsci = FSCI(prog).run()
        orc = execute(prog)
        for (loc, cell), objs in orc.pts_at.items():
            assert frozenset(objs) <= fsci.pts_after(loc, cell), \
                f"{cell} at {loc}"

    def test_refines_andersen_on_queries(self):
        """Flow-sensitivity only removes facts relative to Andersen."""
        prog = diamond_program()
        fsci = FSCI(prog).run()
        an = Andersen(prog).run()
        assert precision_refines(fsci, an, prog.pointers)

    def test_may_alias_at_location(self):
        prog = diamond_program()
        fsci = FSCI(prog).run()
        cfg = prog.cfg_of("main")
        end = Loc("main", cfg.exit)
        p, q = v("p", "main"), v("q", "main")
        assert not fsci.may_alias_at(p, q, end)  # p was re-pointed to c


class TestUndefinedBehaviourModel:
    def test_load_through_null_yields_garbage(self):
        """Regression (fuzz seed 31337): *p with p definitely NULL is UB;
        the value read must be modeled as garbage (may-uninit), not as
        the empty set — an empty set is a definite fact that the
        assume-refinement would then trust."""
        from repro.ir import ProgramBuilder
        b = ProgramBuilder()
        with b.function("main") as f:
            f.null("p")
            f.load("x", "p")
            n = f.skip("q")
        prog = b.build()
        fsci = FSCI(prog).run()
        assert fsci.maybe_uninit_before(Loc("main", n), v("x", "main"))

    def test_refine_does_not_trust_ub_value(self):
        """The full seed-31337 pattern: v4 == (load through NULL) must
        not erase v4's targets."""
        from repro.ir import ProgramBuilder
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("v4", "o0")
            f.null("v3")
            f.load("v0", "v3")
            f.assume("v4", "v0", equal=True)
            n = f.skip("q")
        prog = b.build()
        fsci = FSCI(prog).run()
        assert v("o0", "main") in \
            fsci.pts_before(Loc("main", n), v("v4", "main"))

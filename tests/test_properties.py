"""Property-based tests: random programs vs. the concrete oracle.

The generator builds small but adversarial IR programs (multi-function,
branches, loops, all four canonical forms, heap allocation, NULL); the
oracle enumerates their concrete executions.  Every analysis must
over-approximate every observed fact, and the structural theorems from
the paper (disjoint/disjunctive alias covers, precision ordering) must
hold on every sample.
"""

from __future__ import annotations

from typing import List

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    FSCI,
    Andersen,
    OneFlow,
    Steensgaard,
    execute,
    whole_program_fscs,
)
from repro.core import relevant_statements, run_cascade
from repro.ir import Loc, ProgramBuilder, Var

VARS = [f"v{i}" for i in range(8)]
OBJS = [f"o{i}" for i in range(4)]

# One random action inside a function body.
_action = st.one_of(
    st.tuples(st.just("addr"), st.sampled_from(VARS), st.sampled_from(OBJS)),
    st.tuples(st.just("copy"), st.sampled_from(VARS), st.sampled_from(VARS)),
    st.tuples(st.just("load"), st.sampled_from(VARS), st.sampled_from(VARS)),
    st.tuples(st.just("store"), st.sampled_from(VARS), st.sampled_from(VARS)),
    st.tuples(st.just("addrv"), st.sampled_from(VARS), st.sampled_from(VARS)),
    st.tuples(st.just("null"), st.sampled_from(VARS), st.just("")),
    st.tuples(st.just("alloc"), st.sampled_from(VARS), st.just("")),
    st.tuples(st.just("assume_n"), st.sampled_from(VARS),
              st.sampled_from(["==", "!="])),
    st.tuples(st.just("assume_v"), st.sampled_from(VARS),
              st.sampled_from(VARS)),
)


@st.composite
def programs(draw):
    """A random program: main + up to 2 helpers, all vars global so the
    pieces interact."""
    n_helpers = draw(st.integers(0, 2))
    helper_bodies = [draw(st.lists(_action, min_size=1, max_size=6))
                     for _ in range(n_helpers)]
    main_parts = draw(st.lists(
        st.one_of(
            st.tuples(st.just("stmt"), _action),
            st.tuples(st.just("call"),
                      st.integers(0, max(0, n_helpers - 1))),
            st.tuples(st.just("branch"),
                      st.tuples(st.lists(_action, max_size=3),
                                st.lists(_action, max_size=3))),
        ),
        min_size=1, max_size=8))

    b = ProgramBuilder()
    for v in VARS + OBJS:
        b.global_var(v)

    def emit(f, action):
        kind, x, y = action
        if kind == "addr":
            f.addr(x, y)
        elif kind == "addrv":
            f.addr(x, y)
        elif kind == "copy":
            f.copy(x, y)
        elif kind == "load":
            f.load(x, y)
        elif kind == "store":
            f.store(x, y)
        elif kind == "null":
            f.null(x)
        elif kind == "alloc":
            f.alloc(x)
        elif kind == "assume_n":
            f.assume(x, equal=(y == "=="))
        elif kind == "assume_v":
            f.assume(x, y, equal=True)

    for i, body in enumerate(helper_bodies):
        with b.function(f"h{i}") as f:
            for action in body:
                emit(f, action)
    with b.function("main") as f:
        for part in main_parts:
            if part[0] == "stmt":
                emit(f, part[1])
            elif part[0] == "call":
                if n_helpers:
                    f.call(f"h{part[1]}")
            else:
                arm1, arm2 = part[1]
                with f.branch() as br:
                    with br.then():
                        for action in arm1:
                            emit(f, action)
                    with br.otherwise():
                        for action in arm2:
                            emit(f, action)
    return b.build()


COMMON = dict(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])


class TestSoundness:
    """oracle ⊆ analysis, for every analysis in the cascade."""

    @given(programs())
    @settings(**COMMON)
    def test_steensgaard_sound(self, prog):
        st_ = Steensgaard(prog).run()
        orc = execute(prog, max_steps=200, max_paths=600)
        for p in prog.pointers:
            assert orc.points_to(p) <= st_.points_to(p), str(p)

    @given(programs())
    @settings(**COMMON)
    def test_andersen_sound(self, prog):
        an = Andersen(prog).run()
        orc = execute(prog, max_steps=200, max_paths=600)
        for p in prog.pointers:
            assert orc.points_to(p) <= an.points_to(p), str(p)

    @given(programs())
    @settings(**COMMON)
    def test_oneflow_sound(self, prog):
        of = OneFlow(prog).run()
        orc = execute(prog, max_steps=200, max_paths=600)
        for p in prog.pointers:
            assert orc.points_to(p) <= of.points_to(p), str(p)

    @given(programs())
    @settings(**COMMON)
    def test_fsci_sound_per_location(self, prog):
        fsci = FSCI(prog).run()
        orc = execute(prog, max_steps=200, max_paths=600)
        for (loc, cell), objs in orc.pts_at.items():
            assert frozenset(objs) <= fsci.pts_after(loc, cell), \
                f"{cell} at {loc}"

    @given(programs())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_fscs_sound_at_main_exit(self, prog):
        orc = execute(prog, max_steps=200, max_paths=600)
        ca = whole_program_fscs(prog)
        cfg = prog.cfg_of("main")
        end = Loc("main", cfg.exit)
        for p in sorted(prog.pointers, key=str)[:6]:
            concrete = orc.pts_after(end, p)
            assert concrete <= ca.points_to(p, end), str(p)


class TestPrecisionOrdering:
    """Each cascade stage refines the previous one."""

    @given(programs())
    @settings(**COMMON)
    def test_andersen_refines_oneflow_refines_steensgaard(self, prog):
        st_ = Steensgaard(prog).run()
        of = OneFlow(prog).run()
        an = Andersen(prog).run()
        for p in prog.pointers:
            assert an.points_to(p) <= of.points_to(p), str(p)
            assert of.points_to(p) <= st_.points_to(p), str(p)

    @given(programs())
    @settings(**COMMON)
    def test_fsci_refines_andersen(self, prog):
        an = Andersen(prog).run()
        fsci = FSCI(prog).run()
        for p in prog.pointers:
            assert fsci.points_to(p) <= an.points_to(p), str(p)


class TestCoverTheorems:
    @given(programs())
    @settings(**COMMON)
    def test_partitions_are_disjoint_cover(self, prog):
        """Theorem 6 prerequisite: Steensgaard partitions are disjoint
        and confine aliasing (checked against the concrete oracle)."""
        st_ = Steensgaard(prog).run()
        seen = set()
        for part in st_.partitions():
            assert not (part & seen)
            seen |= part
        orc = execute(prog, max_steps=200, max_paths=600)
        ptrs = sorted(prog.pointers, key=str)
        for i, p in enumerate(ptrs):
            for q in ptrs[i + 1:]:
                if orc.may_alias(p, q):
                    assert st_.same_partition(p, q), f"{p} ~ {q}"

    @given(programs())
    @settings(**COMMON)
    def test_andersen_clusters_disjunctive_cover(self, prog):
        """Theorem 7: concrete aliases share an Andersen cluster."""
        an = Andersen(prog).run()
        clusters = an.clusters()
        orc = execute(prog, max_steps=200, max_paths=600)
        ptrs = sorted(prog.pointers, key=str)
        for i, p in enumerate(ptrs):
            for q in ptrs[i + 1:]:
                if orc.may_alias(p, q):
                    assert any(p in c and q in c for c in clusters), \
                        f"{p} ~ {q}"

    @given(programs())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_slicing_preserves_cluster_facts(self, prog):
        """Theorem 6, dynamically: FSCI restricted to a partition's slice
        computes the same points-to sets for partition members."""
        st_ = Steensgaard(prog).run()
        full = FSCI(prog).run()
        for part in st_.partitions()[:4]:
            members = [m for m in part if isinstance(m, Var)]
            if not members:
                continue
            slice_ = relevant_statements(prog, st_, part)
            sliced = FSCI(prog, tracked=slice_.vp,
                          relevant=slice_.statements).run()
            for m in members:
                assert full.points_to(m) == sliced.points_to(m), str(m)

    @given(programs())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_cascade_clusters_cover_pointers(self, prog):
        result = run_cascade(prog)
        covered = set()
        for c in result.clusters:
            covered |= c.members
        assert covered >= prog.pointers


class TestMustAliasProperty:
    @given(programs())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_must_facts_hold_on_every_path(self, prog):
        """Must-points-to is an *under*-approximation: every definite
        value must match every concrete observation at that point."""
        from repro.analysis import MustAlias
        from repro.analysis.mustalias import MUST_NULL, MUST_UNINIT, TOP
        ma = MustAlias(prog).run()
        orc = execute(prog, max_steps=200, max_paths=600)
        for (loc, cell), objs in orc.pts_at.items():
            definite = ma.value_after(loc, cell)
            if definite in (TOP, MUST_UNINIT):
                continue
            if definite is MUST_NULL:
                assert not objs, f"{cell} at {loc}: must-null but {objs}"
            else:
                assert objs <= {definite}, f"{cell} at {loc}"

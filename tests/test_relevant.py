"""Algorithm 1: relevant pointers and statements (slicing)."""

import pytest

from repro.analysis import FSCI, Steensgaard, execute
from repro.core import relevant_statements
from repro.ir import Copy, Load, Loc, ProgramBuilder, Store, Var

from .helpers import figure3_program, figure5_program, v


def stmt_strs(prog, slice_):
    return sorted(str(prog.stmt_at(loc)) for loc in slice_.statements)


class TestFigure3:
    """The paper's worked slicing example."""

    def setup_method(self):
        self.prog = figure3_program()
        self.steens = Steensgaard(self.prog).run()
        self.a, self.b = v("a", "main"), v("b", "main")
        self.slice = relevant_statements(self.prog, self.steens,
                                         {self.a, self.b})

    def test_p_x_copy_excluded(self):
        """3a (p = x) does not affect aliases of a, b."""
        assert "main::p = main::x" not in stmt_strs(self.prog, self.slice)

    def test_addr_statements_included(self):
        strs = stmt_strs(self.prog, self.slice)
        assert "main::x = &main::a" in strs
        assert "main::y = &main::b" in strs

    def test_store_and_load_included(self):
        strs = stmt_strs(self.prog, self.slice)
        assert "*main::x = main::t" in strs
        assert "main::t = *main::y" in strs

    def test_vp_contents(self):
        names = {str(m) for m in self.slice.vp}
        assert {"main::a", "main::b", "main::x", "main::y",
                "main::t"} <= names
        assert "main::p" not in names

    def test_slice_size(self):
        assert self.slice.size == 4


class TestFigure5:
    def test_bar_has_no_relevant_statements_for_p1(self):
        prog = figure5_program()
        steens = Steensgaard(prog).run()
        p1 = steens.partition_of(Var("x"))
        slice_ = relevant_statements(prog, steens, p1)
        assert slice_.functions() == frozenset({"main", "foo"})

    def test_p2_includes_stores_through_x(self):
        prog = figure5_program()
        steens = Steensgaard(prog).run()
        p2 = steens.partition_of(Var("d"))
        slice_ = relevant_statements(prog, steens, p2)
        assert "bar" in slice_.functions()  # *x = d in bar matters for P2


class TestClosureProperties:
    def test_cluster_always_in_vp(self):
        prog = figure5_program()
        steens = Steensgaard(prog).run()
        for part in steens.partitions():
            slice_ = relevant_statements(prog, steens, part)
            assert part <= slice_.vp

    def test_copy_closure(self):
        """If a statement p = q is in St_P then q is in V_P."""
        prog = figure5_program()
        steens = Steensgaard(prog).run()
        for part in steens.partitions():
            slice_ = relevant_statements(prog, steens, part)
            for loc in slice_.statements:
                stmt = prog.stmt_at(loc)
                if isinstance(stmt, Copy):
                    assert stmt.rhs in slice_.vp

    def test_store_closure(self):
        prog = figure5_program()
        steens = Steensgaard(prog).run()
        for part in steens.partitions():
            slice_ = relevant_statements(prog, steens, part)
            for loc in slice_.statements:
                stmt = prog.stmt_at(loc)
                if isinstance(stmt, Store):
                    assert stmt.lhs in slice_.vp
                    assert stmt.rhs in slice_.vp

    def test_monotone_in_cluster(self):
        """Bigger clusters produce bigger (or equal) slices."""
        prog = figure5_program()
        steens = Steensgaard(prog).run()
        x, z = Var("x"), Var("z")
        s1 = relevant_statements(prog, steens, {x})
        s2 = relevant_statements(prog, steens, {x, z})
        assert s1.statements <= s2.statements
        assert s1.vp <= s2.vp

    def test_empty_cluster(self):
        prog = figure3_program()
        steens = Steensgaard(prog).run()
        slice_ = relevant_statements(prog, steens, set())
        assert slice_.statements == frozenset()

    def test_deep_hierarchy_transitive(self):
        """Stores through higher-level pointers are pulled in across
        multiple depth levels (q > p over 2 levels)."""
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("pp", "p")    # pp -> p
            f.addr("p", "a")     # p -> a
            f.addr("t", "b")
            f.store("pp", "t")   # may change p
            f.load("u", "p")     # reads a's level
        prog = b.build()
        steens = Steensgaard(prog).run()
        a = v("a", "main")
        slice_ = relevant_statements(prog, steens,
                                     steens.partition_of(a))
        strs = stmt_strs(prog, slice_)
        # The store through pp changes p, which changes what *p denotes:
        # p's own assignments must be tracked.
        assert "main::p = &main::a" in strs
        assert "*main::pp = main::t" in strs


class TestSliceEquivalence:
    """The theorem-6 style guarantee, checked dynamically: analyzing the
    sliced program gives the same facts for cluster members as analyzing
    the full program."""

    @pytest.mark.parametrize("make", [figure3_program, figure5_program])
    def test_fsci_on_slice_matches_full(self, make):
        prog = make()
        steens = Steensgaard(prog).run()
        full = FSCI(prog).run()
        for part in steens.partitions():
            members = [m for m in part if isinstance(m, Var)]
            if not members:
                continue
            slice_ = relevant_statements(prog, steens, part)
            sliced = FSCI(prog, tracked=slice_.vp,
                          relevant=slice_.statements).run()
            for m in members:
                assert full.points_to(m) == sliced.points_to(m), str(m)

    def test_oracle_on_reduced_program(self):
        """Concrete executions of the reduced program preserve cluster
        facts: replace non-relevant statements by skips and compare."""
        from repro.ir import Skip
        prog = figure3_program()
        steens = Steensgaard(prog).run()
        a, b = v("a", "main"), v("b", "main")
        slice_ = relevant_statements(prog, steens, {a, b})
        full = execute(prog)
        # Build the reduced program in place on a fresh copy.
        reduced = figure3_program()
        for loc, stmt in list(reduced.statements()):
            if stmt.is_pointer_assign and loc not in slice_.statements:
                reduced.functions[loc.function].cfg.set_stmt(
                    loc.index, Skip("sliced"))
        reduced.invalidate_caches()
        red = execute(reduced)
        for m in (a, b):
            assert full.points_to(m) == red.points_to(m)


class TestDovetailSchedule:
    """Algorithm 2's depth-ordered processing of V_P."""

    def test_depths_non_decreasing(self):
        from repro.core import dovetail_schedule
        prog = figure3_program()
        steens = Steensgaard(prog).run()
        a, b = v("a", "main"), v("b", "main")
        sl = relevant_statements(prog, steens, {a, b})
        schedule = dovetail_schedule(steens, sl.vp)
        depths = [steens.depth_of(next(iter(group[0])))
                  for group in schedule]
        assert depths == sorted(depths)

    def test_groups_are_partitions(self):
        from repro.core import dovetail_schedule
        prog = figure3_program()
        steens = Steensgaard(prog).run()
        a, b = v("a", "main"), v("b", "main")
        sl = relevant_statements(prog, steens, {a, b})
        schedule = dovetail_schedule(steens, sl.vp)
        for level in schedule:
            for group in level:
                first = next(iter(group))
                assert all(steens.same_partition(first, m) for m in group)

    def test_covers_vp(self):
        from repro.core import dovetail_schedule
        prog = figure5_program()
        steens = Steensgaard(prog).run()
        from repro.ir import Var
        p1 = steens.partition_of(Var("x"))
        sl = relevant_statements(prog, steens, p1)
        schedule = dovetail_schedule(steens, sl.vp)
        covered = set()
        for level in schedule:
            for group in level:
                covered |= group
        assert covered == sl.vp

    def test_figure3_order(self):
        """Pointers of {p,x}-depth (0) come before {a,b,t} (depth 1)."""
        from repro.core import dovetail_schedule
        prog = figure3_program()
        steens = Steensgaard(prog).run()
        a, b = v("a", "main"), v("b", "main")
        sl = relevant_statements(prog, steens, {a, b})
        schedule = dovetail_schedule(steens, sl.vp)
        first_level = set().union(*schedule[0])
        assert v("x", "main") in first_level or v("y", "main") in first_level
        last_level = set().union(*schedule[-1])
        assert a in last_level

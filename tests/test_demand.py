"""Demand-driven Andersen queries: equality with the exhaustive solver."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import Andersen, DemandAndersen, demand_points_to
from repro.errors import AnalysisBudgetExceeded
from repro.ir import ProgramBuilder, Var

from .helpers import (
    call_chain_program,
    figure2_program,
    figure3_program,
    figure5_program,
    v,
)
from .test_properties import programs


class TestBasics:
    def test_addr_query(self):
        engine = DemandAndersen(figure2_program())
        assert engine.points_to(v("p", "main")) == \
            frozenset({v("a", "main")})

    def test_copy_chain(self):
        engine = DemandAndersen(figure2_program())
        assert engine.points_to(v("q", "main")) == frozenset(
            {v("a", "main"), v("b", "main"), v("c", "main")})

    def test_load_store_feedback(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("pp", "x")
            f.addr("t", "a")
            f.store("pp", "t")
            f.load("y", "pp")
        engine = DemandAndersen(b.build())
        assert engine.points_to(v("y", "main")) == \
            frozenset({v("a", "main")})

    def test_copy_cycle_converges(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p1", "a")
            f.copy("p2", "p1")
            f.copy("p1", "p2")
            f.addr("p2", "b")
        engine = DemandAndersen(b.build())
        expected = frozenset({v("a", "main"), v("b", "main")})
        assert engine.points_to(v("p1", "main")) == expected
        assert engine.points_to(v("p2", "main")) == expected

    def test_unrelated_pointer_untouched(self):
        """The demand-driven point: querying p must not evaluate webs p
        cannot reach."""
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            # A completely separate web.
            for i in range(20):
                f.addr(f"w{i}", f"o{i}")
                if i:
                    f.copy(f"w{i}", f"w{i-1}")
        prog = b.build()
        engine = DemandAndersen(prog)
        engine.points_to(v("p", "main"))
        assert engine.queries_touched() < 5

    def test_budget(self):
        engine = DemandAndersen(figure5_program(), budget=2)
        with pytest.raises(AnalysisBudgetExceeded):
            engine.points_to(Var("z"))

    def test_multi_query_helper(self):
        prog = figure2_program()
        out = demand_points_to(prog, [v("p", "main"), v("r", "main")])
        assert out[v("p", "main")] == frozenset({v("a", "main")})
        assert out[v("r", "main")] == frozenset({v("c", "main")})


class TestEquivalence:
    @pytest.mark.parametrize("make", [figure2_program, figure3_program,
                                      figure5_program,
                                      call_chain_program])
    def test_matches_exhaustive_on_figures(self, make):
        prog = make()
        exhaustive = Andersen(prog).run()
        engine = DemandAndersen(prog)
        for p in sorted(prog.pointers, key=str):
            assert engine.points_to(p) == exhaustive.points_to(p), str(p)

    @given(programs())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_matches_exhaustive_on_random_programs(self, prog):
        exhaustive = Andersen(prog).run()
        engine = DemandAndersen(prog)
        for p in sorted(prog.pointers, key=str)[:5]:
            assert engine.points_to(p) == exhaustive.points_to(p), str(p)

"""The summary engine: Definitions 3-8, Algorithms 4 and 5."""

import pytest

from repro.analysis import (
    FSCI,
    AddrTerm,
    ClusterFSCS,
    DerefTerm,
    NullTerm,
    ObjTerm,
    Steensgaard,
    SummaryEngine,
    format_constraint,
)
from repro.core import relevant_statements
from repro.errors import AnalysisBudgetExceeded
from repro.ir import Loc, ProgramBuilder, Var

from .helpers import figure4_program, figure5_program, v


def summary_strs(entries):
    return sorted(f"{t} | {format_constraint(c)}" for t, c in entries)


class TestFigure5:
    def setup_method(self):
        self.prog = figure5_program()
        self.steens = Steensgaard(self.prog).run()
        p1 = self.steens.partition_of(Var("x"))
        self.slice = relevant_statements(self.prog, self.steens, p1)
        self.analysis = ClusterFSCS(
            self.prog, cluster=[m for m in p1 if isinstance(m, Var)],
            tracked=self.slice.vp, relevant=self.slice.statements)

    def test_sum_foo_is_x_from_w(self):
        """The paper's tuple (x, 3b, w, true)."""
        tuples = self.analysis.summary_tuples("foo")
        assert [str(t) for t in tuples] == ["(x, foo:4, w, true)"]

    def test_bar_is_transparent_for_p1(self):
        assert self.analysis.engine.is_transparent("bar")

    def test_sum_main_z_from_u(self):
        """The paper's tuple (z, 6a, u, true)."""
        entries = self.analysis.engine.exit_summary("main", ObjTerm(Var("z")))
        assert summary_strs(entries) == ["u | true"]

    def test_transparent_function_identity_summary(self):
        entries = self.analysis.engine.exit_summary("bar", ObjTerm(Var("z")))
        assert entries == frozenset({(ObjTerm(Var("z")), frozenset())})

    def test_terminal_term_summary(self):
        t = AddrTerm(Var("c", "main"))
        assert self.analysis.engine.exit_summary("foo", t) == \
            frozenset({(t, frozenset())})


class TestFigure4:
    """Complete vs maximally complete update sequences: at 4a, *x is
    semantically a, and the maximal completion of [4a] is [1a, 4a] — so
    a's value at the end comes from c."""

    def test_a_sources_from_c(self):
        prog = figure4_program()
        steens = Steensgaard(prog).run()
        a = v("a", "main")
        part = steens.partition_of(a)
        slice_ = relevant_statements(prog, steens, part)
        analysis = ClusterFSCS(prog,
                               cluster=[m for m in part
                                        if isinstance(m, Var)],
                               tracked=slice_.vp,
                               relevant=slice_.statements)
        exit_loc = Loc("main", prog.cfg_of("main").exit)
        origins = analysis.origins(a, exit_loc)
        names = sorted(str(t) for t, _ in origins)
        assert names == ["main::c"]


class TestConstraintGeneration:
    """Algorithm 4's case split on ambiguous stores."""

    def _ambiguous_store_program(self):
        b = ProgramBuilder()
        b.global_var("x")
        b.global_var("d")
        with b.function("main") as f:
            with f.branch() as br:
                with br.then():
                    f.addr("x", "bb")
                with br.otherwise():
                    f.addr("x", "cc")
            f.store("x", "d")
            f.copy("aa", "bb")
        return b.build()

    def test_both_branches_generated(self):
        prog = self._ambiguous_store_program()
        steens = Steensgaard(prog).run()
        aa = v("aa", "main")
        part = steens.partition_of(aa)
        slice_ = relevant_statements(prog, steens, part)
        analysis = ClusterFSCS(prog,
                               cluster=[m for m in part
                                        if isinstance(m, Var)],
                               tracked=slice_.vp,
                               relevant=slice_.statements)
        entries = analysis.engine.exit_summary("main", ObjTerm(aa))
        strs = summary_strs(entries)
        assert any("d |" in s and "-> main::bb" in s for s in strs), strs
        assert any("bb |" in s and "-/-> main::bb" in s for s in strs), strs

    def test_unambiguous_store_no_branching(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("x", "bb")
            f.store("x", "d")
            f.copy("aa", "bb")
        prog = b.build()
        engine = SummaryEngine(prog, fsci=FSCI(prog).run())
        entries = engine.exit_summary("main", ObjTerm(v("aa", "main")))
        # x must point to bb, so the not-overwritten branch (aa from bb)
        # is pruned as unsatisfiable; only the d tuple survives.
        names = {str(t) for t, _ in entries}
        assert names == {"main::d"}

    def test_without_fsci_branches_on_syntax(self):
        """No oracle: the paper's 'in isolation' scenario generates both
        constrained tuples."""
        prog = self._ambiguous_store_program()
        engine = SummaryEngine(prog, fsci=None)
        entries = engine.exit_summary("main", ObjTerm(v("aa", "main")))
        assert len(entries) >= 2


class TestInverseTransfer:
    def _engine(self, build):
        b = ProgramBuilder()
        with b.function("main") as f:
            build(f)
        prog = b.build()
        return prog, SummaryEngine(prog, fsci=FSCI(prog).run())

    def test_addrof_terminates_tracking(self):
        prog, eng = self._engine(lambda f: f.addr("p", "a"))
        entries = eng.exit_summary("main", ObjTerm(v("p", "main")))
        assert summary_strs(entries) == ["&main::a | true"]

    def test_null_terminates_tracking(self):
        prog, eng = self._engine(lambda f: f.null("p"))
        entries = eng.exit_summary("main", ObjTerm(v("p", "main")))
        assert summary_strs(entries) == ["NULL | true"]

    def test_copy_renames(self):
        prog, eng = self._engine(lambda f: f.copy("p", "q"))
        entries = eng.exit_summary("main", ObjTerm(v("p", "main")))
        assert summary_strs(entries) == ["main::q | true"]

    def test_load_becomes_deref(self):
        prog, eng = self._engine(lambda f: f.load("p", "q"))
        entries = eng.exit_summary("main", ObjTerm(v("p", "main")))
        assert summary_strs(entries) == ["*main::q | true"]

    def test_untouched_var_identity(self):
        prog, eng = self._engine(lambda f: f.copy("p", "q"))
        entries = eng.exit_summary("main", ObjTerm(v("z", "main")))
        assert summary_strs(entries) == ["main::z | true"]

    def test_deref_through_resolved_store(self):
        def build(f):
            f.addr("q", "cell")
            f.addr("t", "a")
            f.store("q", "t")   # cell = &a
            f.load("p", "q")    # p = *q
        prog, eng = self._engine(build)
        entries = eng.exit_summary("main", ObjTerm(v("p", "main")))
        assert summary_strs(entries) == ["&main::a | true"]

    def test_deref_identity_change_resolved_via_fsci(self):
        """Tracking *s across an assignment to s re-targets the cell."""
        def build(f):
            f.addr("s", "c1")
            f.addr("t", "a")
            f.store("s", "t")    # c1 = &a
            f.addr("s", "c2")    # s re-pointed; *s now c2
            f.load("p", "s")     # p = *s  (== c2's content: nothing)
        prog, eng = self._engine(build)
        entries = eng.exit_summary("main", ObjTerm(v("p", "main")))
        # p's value is c2's (uninitialized) content.
        assert summary_strs(entries) == ["main::c2 | true"]


class TestRecursion:
    def test_recursive_summary_fixpoint(self):
        b = ProgramBuilder()
        b.global_var("g")
        with b.function("rec") as f:
            f.copy("g", "h")
            with f.branch() as br:
                with br.then():
                    f.call("rec")
                with br.otherwise():
                    f.skip()
        with b.function("main") as f:
            f.call("rec")
        prog = b.build()
        eng = SummaryEngine(prog, fsci=FSCI(prog).run())
        entries = eng.exit_summary("main", ObjTerm(Var("g")))
        # g comes from h (one or more recursive rounds) — never from g.
        assert summary_strs(entries) == ["rec::h | true"]

    def test_nonterminating_recursion_has_empty_summary(self):
        """A function that always recurses never reaches its exit: the
        empty summary is precise, not a bug."""
        b = ProgramBuilder()
        b.global_var("g")
        with b.function("spin") as f:
            f.copy("g", "h")
            f.call("spin")
        with b.function("main") as f:
            f.call("spin")
        prog = b.build()
        eng = SummaryEngine(prog, fsci=FSCI(prog).run())
        assert eng.exit_summary("main", ObjTerm(Var("g"))) == frozenset()

    def test_mutual_recursion(self):
        b = ProgramBuilder()
        b.global_var("g")
        with b.function("even") as f:
            f.copy("g", "ge")
            with f.branch() as br:
                with br.then():
                    f.call("odd")
                with br.otherwise():
                    f.skip()
        with b.function("odd") as f:
            f.copy("g", "go")
            with f.branch() as br:
                with br.then():
                    f.call("even")
                with br.otherwise():
                    f.skip()
        with b.function("main") as f:
            f.call("even")
        prog = b.build()
        eng = SummaryEngine(prog, fsci=FSCI(prog).run())
        entries = eng.exit_summary("main", ObjTerm(Var("g")))
        names = {str(t) for t, _ in entries}
        assert names == {"even::ge", "odd::go"}

    def test_self_recursive_rotation(self):
        """f rotates a := b, b := c each call; at any depth a's exit value
        is b's or c's entry value (never a's)."""
        b = ProgramBuilder()
        for g in "abc":
            b.global_var(g)
        with b.function("f") as fb:
            fb.copy("a", "b")
            fb.copy("b", "c")
            with fb.branch() as br:
                with br.then():
                    fb.call("f")
                with br.otherwise():
                    fb.skip()
        with b.function("main") as fb:
            fb.call("f")
        prog = b.build()
        eng = SummaryEngine(prog, fsci=FSCI(prog).run())
        entries = eng.exit_summary("main", ObjTerm(Var("a")))
        names = {str(t) for t, _ in entries}
        assert names == {"b", "c"}


class TestBudget:
    def test_budget_exceeded_raises(self):
        prog = figure5_program()
        eng = SummaryEngine(prog, fsci=None, budget=3)
        with pytest.raises(AnalysisBudgetExceeded):
            eng.exit_summary("main", ObjTerm(Var("z")))

    def test_steps_counted(self):
        prog = figure5_program()
        eng = SummaryEngine(prog, fsci=None)
        eng.exit_summary("main", ObjTerm(Var("z")))
        assert eng.steps > 0


class TestBackwardFrom:
    def test_interior_location(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("p", "a")
            mid = f.copy("q", "p")
            f.addr("p", "b")
        prog = b.build()
        eng = SummaryEngine(prog, fsci=FSCI(prog).run())
        entries = eng.backward_from(Loc("main", mid), ObjTerm(v("q", "main")))
        assert summary_strs(entries) == ["&main::a | true"]

    def test_after_false_excludes_statement(self):
        b = ProgramBuilder()
        with b.function("main") as f:
            f.addr("q", "a")
            n = f.addr("q", "b")
        prog = b.build()
        eng = SummaryEngine(prog, fsci=FSCI(prog).run())
        before = eng.backward_from(Loc("main", n), ObjTerm(v("q", "main")),
                                   after=False)
        assert summary_strs(before) == ["&main::a | true"]

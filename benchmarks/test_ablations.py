"""Ablation benchmarks (experiment E9): the design choices the paper
discusses qualitatively.

* Andersen-threshold sweep (the paper picked 60 empirically);
* the optional One-Flow middle stage;
* simulated parallelism with 1 vs 5 parts (the paper's 5 machines);
* demand-driven cluster selection (lock pointers only) vs analyzing
  everything.
"""

import pytest

from repro.applications import lock_pointers
from repro.core import (
    BootstrapConfig,
    BootstrapResult,
    CascadeConfig,
    greedy_parts,
    run_cascade,
    select_clusters,
)


def analyze_with(program, cascade_config, parts=5):
    cascade = run_cascade(program, cascade_config)
    result = BootstrapResult(program, cascade, BootstrapConfig(parts=parts))
    return result, result.analyze_all()


class TestThresholdSweep:
    @pytest.mark.parametrize("threshold", [2, 6, 60, 10 ** 9])
    def test_bench_threshold(self, benchmark, autofs_small, threshold):
        _, report = benchmark.pedantic(
            lambda: analyze_with(
                autofs_small.program,
                CascadeConfig(andersen_threshold=threshold)),
            rounds=1, iterations=1)
        assert report.max_part_time >= 0

    def test_threshold_monotone_max_cluster(self, autofs_small):
        maxima = []
        for threshold in (2, 6, 60, 10 ** 9):
            cascade = run_cascade(
                autofs_small.program,
                CascadeConfig(andersen_threshold=threshold))
            maxima.append(cascade.max_cluster_size())
        assert maxima == sorted(maxima)


class TestOneFlowStage:
    def test_bench_with_oneflow(self, benchmark, autofs_small):
        _, report = benchmark.pedantic(
            lambda: analyze_with(autofs_small.program,
                                 CascadeConfig(use_oneflow=True,
                                               oneflow_threshold=6,
                                               andersen_threshold=6)),
            rounds=1, iterations=1)
        assert report.max_part_time >= 0

    def test_oneflow_stage_never_coarsens(self, autofs_small):
        plain = run_cascade(autofs_small.program,
                            CascadeConfig(andersen_threshold=6))
        with_of = run_cascade(autofs_small.program,
                              CascadeConfig(use_oneflow=True,
                                            oneflow_threshold=6,
                                            andersen_threshold=6))
        assert with_of.max_cluster_size() <= plain.max_cluster_size() * 1.5


class TestParallelism:
    @pytest.mark.parametrize("parts", [1, 5])
    def test_bench_parts(self, benchmark, autofs_small, parts):
        _, report = benchmark.pedantic(
            lambda: analyze_with(autofs_small.program, CascadeConfig(),
                                 parts=parts),
            rounds=1, iterations=1)
        assert len(report.part_times) <= parts

    def test_five_way_beats_sequential(self, autofs_small):
        """The whole point of the simulated 5 machines: max part time is
        well below the sequential sum."""
        _, seq = analyze_with(autofs_small.program, CascadeConfig(),
                              parts=1)
        result, par = analyze_with(autofs_small.program, CascadeConfig(),
                                   parts=5)
        assert par.max_part_time < seq.max_part_time
        schedule = greedy_parts(result.clusters, 5)
        assert 1 < len(schedule) <= 5


class TestDemandDriven:
    def test_bench_lock_clusters_only(self, benchmark, autofs_small):
        """The race-detection workload: analyze only clusters with lock
        pointers."""
        program = autofs_small.program
        locks = lock_pointers(program)
        assert locks

        def run():
            cascade = run_cascade(program, CascadeConfig())
            result = BootstrapResult(program, cascade, BootstrapConfig())
            sel = select_clusters(result, locks)
            return result.analyze_all(clusters=sel.selected), sel

        report, sel = benchmark.pedantic(run, rounds=1, iterations=1)
        assert sel.cluster_fraction < 0.2
        assert report.total_time >= 0

    def test_demand_fraction_is_small(self, autofs_small):
        program = autofs_small.program
        cascade = run_cascade(program, CascadeConfig())
        result = BootstrapResult(program, cascade, BootstrapConfig())
        sel = select_clusters(result, lock_pointers(program))
        assert 0 < len(sel.selected) <= 4


class TestPathSensitivity:
    """The Section-3 extension's cost/benefit, measured."""

    def test_bench_path_sensitive_summaries(self, benchmark, autofs_small):
        from repro.analysis import FSCI
        from repro.analysis.summaries import ObjTerm, SummaryEngine
        program = autofs_small.program
        fsci = FSCI(program).run()
        targets = sorted(program.pointers, key=str)[:10]

        def run():
            engine = SummaryEngine(program, fsci=fsci, path_sensitive=True)
            for p in targets:
                engine.exit_summary("main", ObjTerm(p))
            return engine.steps

        steps = benchmark.pedantic(run, rounds=1, iterations=1)
        assert steps > 0

    def test_bench_path_insensitive_summaries(self, benchmark,
                                              autofs_small):
        from repro.analysis import FSCI
        from repro.analysis.summaries import ObjTerm, SummaryEngine
        program = autofs_small.program
        fsci = FSCI(program).run()
        targets = sorted(program.pointers, key=str)[:10]

        def run():
            engine = SummaryEngine(program, fsci=fsci,
                                   path_sensitive=False)
            for p in targets:
                engine.exit_summary("main", ObjTerm(p))
            return engine.steps

        steps = benchmark.pedantic(run, rounds=1, iterations=1)
        assert steps > 0

    def test_path_sensitivity_never_adds_origins(self):
        """Branch constraints only prune: the path-sensitive origin set
        is a subset of the insensitive one (modulo conditions)."""
        from repro import parse_program
        from repro.analysis import whole_program_fscs
        from repro.ir import Loc, Var
        prog = parse_program("""
            int a, b; int *p; int *g;
            int main() {
                p = &a;
                if (p == NULL) { g = &a; } else { g = &b; }
                return 0;
            }
        """)
        sensitive = whole_program_fscs(prog)
        end = Loc("main", prog.cfg_of("main").exit)
        pts = sensitive.points_to(Var("g"), end)
        assert pts == frozenset({Var("b")})


class TestConstraintCap:
    @pytest.mark.parametrize("cap", [1, 4, 16])
    def test_bench_cond_atom_cap(self, benchmark, autofs_small, cap):
        from repro.core import BootstrapConfig, BootstrapResult
        from repro.core import run_cascade as rc
        program = autofs_small.program

        def run():
            cascade = rc(program, CascadeConfig())
            result = BootstrapResult(
                program, cascade, BootstrapConfig(max_cond_atoms=cap))
            return result.analyze_all().max_part_time

        t = benchmark.pedantic(run, rounds=1, iterations=1)
        assert t >= 0

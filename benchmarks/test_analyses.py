"""Micro-benchmarks of the individual analyses on one mid-size program.

Not a paper artifact per se, but the cost ordering they document —
Steensgaard < One-Flow < Andersen << whole-program FSCS — is the premise
of the whole bootstrapping cascade.
"""

import pytest

from repro.analysis import FSCI, Andersen, OneFlow, Steensgaard
from repro.core import relevant_statements, run_cascade


class TestAnalysisCosts:
    def test_bench_steensgaard(self, benchmark, midsize_program):
        result = benchmark(lambda: Steensgaard(midsize_program).run())
        assert result.max_partition_size() > 0

    def test_bench_andersen(self, benchmark, midsize_program):
        result = benchmark(lambda: Andersen(midsize_program).run())
        assert result.clusters()

    def test_bench_andersen_no_cycle_elim(self, benchmark, midsize_program):
        result = benchmark(
            lambda: Andersen(midsize_program,
                             cycle_elimination=False).run())
        assert result.clusters()

    def test_bench_oneflow(self, benchmark, midsize_program):
        result = benchmark(lambda: OneFlow(midsize_program).run())
        assert result is not None

    def test_bench_fsci_whole_program(self, benchmark, midsize_program):
        result = benchmark.pedantic(
            lambda: FSCI(midsize_program, max_iterations=3_000_000).run(),
            rounds=1, iterations=1)
        assert result.iterations > 0


class TestSlicingCosts:
    def test_bench_algorithm1_all_partitions(self, benchmark,
                                             midsize_program):
        steens = Steensgaard(midsize_program).run()
        parts = steens.partitions()

        def run():
            return [relevant_statements(midsize_program, steens, p)
                    for p in parts]

        slices = benchmark(run)
        assert all(s.vp >= s.cluster for s in slices)

    def test_bench_cascade_end_to_end(self, benchmark, midsize_program):
        result = benchmark(
            lambda: run_cascade(midsize_program))
        assert result.clusters

"""Figure 1 benchmark (experiment E2): cluster-size frequency series.

Regenerates both series for the autofs-calibrated program and asserts the
paper's two observations; the benchmark measures the cost of producing
the figure's data.  CLI: ``python -m repro.bench.figure1``.
"""

import pytest

from repro.bench import compute_figure1, run_figure1


class TestFigure1:
    def test_bench_series_computation(self, benchmark, autofs_small):
        data = benchmark.pedantic(
            lambda: compute_figure1(autofs_small.program,
                                    andersen_threshold=6),
            rounds=1, iterations=1)
        assert data.steensgaard and data.andersen

    def test_observation_small_size_density(self, autofs_small):
        """Paper: 'high density of both white and black squares for low
        values of cluster size'."""
        data = compute_figure1(autofs_small.program, andersen_threshold=6)
        sd, ad = data.small_density(cutoff=8)
        assert sd > 0.7
        assert ad > 0.7

    def test_observation_max_partition_gap(self, autofs_small):
        """Paper: 'stark difference in maximum size of Steensgaard
        partitions (isolated white square to the far right) and Andersen
        clusters'."""
        data = compute_figure1(autofs_small.program, andersen_threshold=6)
        assert data.andersen_max < data.steens_max

    def test_cli_entry_point(self):
        data = run_figure1("autofs", scale=0.04)
        assert data.program == "autofs"

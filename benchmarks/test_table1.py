"""Table 1 benchmarks (experiment E1, plus E7/E8 narratives).

Each benchmark regenerates one configuration of the paper's headline
table on scaled-down corpus programs:

* FSCS with no clustering (the baseline that stops scaling),
* FSCS on Steensgaard partitions (columns 7-9),
* FSCS on Andersen clusters (columns 10-12),

and asserts the paper's qualitative claims: clustering beats
no-clustering; on sendmail-shaped programs Andersen clustering shrinks
the max cluster sharply, on mt-daapd-shaped ones it cannot.

Full-table CLI: ``python -m repro.bench.table1``.
"""

import pytest

from repro.analysis import Steensgaard, whole_program_fscs
from repro.bench import build, measure_program
from repro.core import BootstrapConfig, BootstrapResult, CascadeConfig, \
    run_cascade
from repro.errors import AnalysisBudgetExceeded


def fscs_clustered(program, *, andersen: bool, threshold: int = 6,
                   parts: int = 5) -> float:
    config = CascadeConfig(andersen_threshold=threshold) if andersen \
        else CascadeConfig(refine_with_andersen=False)
    cascade = run_cascade(program, config)
    result = BootstrapResult(program, cascade,
                             BootstrapConfig(parts=parts))
    return result.analyze_all().max_part_time


class TestColumnConfigurations:
    def test_bench_partitioning(self, benchmark, autofs_small):
        """Column 4: Steensgaard partitioning time."""
        result = benchmark(lambda: Steensgaard(autofs_small.program).run())
        assert result.partitions()

    def test_bench_clustering(self, benchmark, autofs_small):
        """Column 5: Andersen clustering of large partitions."""
        out = benchmark(lambda: run_cascade(
            autofs_small.program, CascadeConfig(andersen_threshold=6)))
        assert out.clusters

    def test_bench_nocluster_fscs(self, benchmark, autofs_small):
        """Column 6 on a small program (it still finishes here)."""
        def run():
            return whole_program_fscs(autofs_small.program,
                                      budget=2_000_000).analyze()
        stats = benchmark.pedantic(run, rounds=1, iterations=1)
        assert stats["engine_steps"] > 0

    def test_bench_steensgaard_clustered_fscs(self, benchmark, autofs_small):
        t = benchmark.pedantic(
            lambda: fscs_clustered(autofs_small.program, andersen=False),
            rounds=1, iterations=1)
        assert t >= 0

    def test_bench_andersen_clustered_fscs(self, benchmark, autofs_small):
        t = benchmark.pedantic(
            lambda: fscs_clustered(autofs_small.program, andersen=True),
            rounds=1, iterations=1)
        assert t >= 0


class TestPaperShapeClaims:
    def test_clustering_beats_nocluster(self, autofs_small):
        """The central Table 1 comparison (cols 6 vs 9/12)."""
        row = measure_program(autofs_small.program, "autofs", 8.3,
                              andersen_threshold=6,
                              nocluster_budget=2_000_000)
        assert row.t_nocluster is None or \
            row.t_nocluster > row.t_steens, \
            f"no-clustering {row.t_nocluster} vs clustered {row.t_steens}"

    def test_nocluster_times_out_on_large(self, sendmail_tiny):
        """The paper's '> 15min' rows: the unclustered baseline exhausts
        its budget on sendmail-shaped input while clustered FSCS (same
        budget per cluster) completes."""
        with pytest.raises(AnalysisBudgetExceeded):
            whole_program_fscs(sendmail_tiny.program,
                               budget=100_000,
                               max_fsci_iterations=100_000).analyze()
        t = fscs_clustered(sendmail_tiny.program, andersen=True)
        assert t >= 0  # completed

    def test_sendmail_andersen_shrinks_max_cluster(self, sendmail_tiny):
        """E7: 596 -> 193 in the paper; the ratio (~1/3) is the claim."""
        program = sendmail_tiny.program
        steens_max = run_cascade(
            program,
            CascadeConfig(refine_with_andersen=False)).max_cluster_size()
        andersen_max = run_cascade(
            program, CascadeConfig(andersen_threshold=6)).max_cluster_size()
        assert andersen_max < 0.6 * steens_max

    def test_mtdaapd_andersen_cannot_refine(self, mtdaapd_small):
        """E8: 89 -> 83 in the paper; refinement is marginal, so Andersen
        clustering is pure overhead on this shape."""
        program = mtdaapd_small.program
        steens_max = run_cascade(
            program,
            CascadeConfig(refine_with_andersen=False)).max_cluster_size()
        andersen_max = run_cascade(
            program, CascadeConfig(andersen_threshold=6)).max_cluster_size()
        assert andersen_max > 0.75 * steens_max

"""Shared fixtures for the benchmark harness."""

import pytest

from repro.bench import SynthConfig, build, generate


@pytest.fixture(scope="session")
def autofs_small():
    return build("autofs", scale=0.05)


@pytest.fixture(scope="session")
def sendmail_tiny():
    return build("sendmail", scale=0.01)


@pytest.fixture(scope="session")
def mtdaapd_small():
    return build("mt_daapd", scale=0.05)


@pytest.fixture(scope="session")
def midsize_program():
    return generate(SynthConfig(name="midsize", pointers=400, functions=16,
                                hub_fractions=(0.25,), overlap=0.3,
                                lock_count=2, seed=1234)).program

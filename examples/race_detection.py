#!/usr/bin/env python3
"""The paper's motivating application: data race detection via locksets.

A driver-flavoured program with two "threads" (an ioctl path and an
interrupt handler).  One shared counter is consistently protected by a
lock; another is written unlocked from the interrupt path — a race.

The alias work is demand-driven: only clusters containing lock pointers
need must-alias analysis, which the demand-selection report shows.

Run:  python examples/race_detection.py
"""

from repro import BootstrapAnalyzer, parse_program
from repro.applications import (
    LocksetAnalysis,
    RaceDetector,
    find_lock_sites,
    lock_pointers,
)
from repro.core import select_clusters

SOURCE = r"""
int dev_lock_obj;
int counter_safe;
int counter_racy;

int *the_lock;

void lock(int *l) { }
void unlock(int *l) { }

void ioctl_handler(void) {
    lock(the_lock);
    counter_safe = counter_safe + 1;
    counter_racy = counter_racy + 1;   /* locked here... */
    unlock(the_lock);
}

void irq_handler(void) {
    lock(the_lock);
    counter_safe = counter_safe + 2;
    unlock(the_lock);
    counter_racy = counter_racy + 2;   /* ...but not here: race! */
}

int main() {
    the_lock = &dev_lock_obj;
    ioctl_handler();
    irq_handler();
    return 0;
}
"""


def main() -> None:
    program = parse_program(SOURCE)

    sites = find_lock_sites(program)
    print(f"Found {len(sites)} lock/unlock sites; lock pointers:",
          sorted(map(str, lock_pointers(program))))

    # Demand-driven cluster selection: the paper's flexibility story.
    result = BootstrapAnalyzer(program).run()
    selection = select_clusters(result, lock_pointers(program))
    print(f"Demand-driven: {len(selection.selected)} of "
          f"{selection.total_clusters} clusters contain lock pointers "
          f"({selection.pointer_fraction:.1%} of all pointers).")

    locksets = LocksetAnalysis(program).run()
    for site in locksets.sites:
        held = sorted(map(str, locksets.held_after(site.loc)))
        print(f"   after {site.primitive} at {site.loc}: held = {held}")

    detector = RaceDetector(program,
                            thread_entries=["ioctl_handler", "irq_handler"])
    warnings = detector.run()
    print(f"\n{len(warnings)} race warning(s):")
    for w in warnings:
        print("   ", w)
    racy = [w for w in warnings if "counter_racy" in str(w)]
    safe = [w for w in warnings if "counter_safe" in str(w)]
    print(f"\ncounter_racy flagged: {bool(racy)} (expected: True)")
    print(f"counter_safe flagged: {bool(safe)} (expected: False)")


if __name__ == "__main__":
    main()

// Three memory-safety bugs in one file, one per checker:
// a null dereference, a use-after-free through an alias, and a
// double free.  `python -m repro check examples/memsafe_buggy.c`
// should report exactly three findings.

int main() {
    int *p, *q, *d;
    p = 0;
    *p = 1;
    q = malloc(4);
    d = q;
    free(q);
    *d = 2;
    free(d);
    return 0;
}

#!/usr/bin/env python3
"""Walk through every worked example in the paper (Figures 2-5).

Run:  python examples/paper_figures.py
"""

from repro import parse_program
from repro.analysis import (
    Andersen,
    ClusterFSCS,
    Steensgaard,
    format_constraint,
)
from repro.core import relevant_statements
from repro.ir import Loc, Var

FIGURE2 = r"""
int a, b, c;
int *p, *q, *r;
int main() {
    p = &a;   /* 1a */
    q = &b;   /* 2a */
    r = &c;   /* 3a */
    q = p;    /* 4a */
    q = r;    /* 5a */
    return 0;
}
"""

FIGURE3 = r"""
int a, b;
int *x, *y, *p;
int main() {
    x = &a;    /* 1a */
    y = &b;    /* 2a */
    p = x;     /* 3a */
    *x = *y;   /* 4a */
    return 0;
}
"""

FIGURE5 = r"""
int **x, **u, **w, **z;
int *d;

void foo(void) {
    int *a, *b;
    *x = d;    /* 1b */
    a = b;     /* 2b */
    x = w;     /* 3b */
}

void bar(void) {
    int *a, *b;
    *x = d;    /* 1c */
    a = b;     /* 2c */
}

int main() {
    int *c;
    x = &c;    /* 1a */
    w = u;     /* 2a */
    foo();     /* 3a */
    z = x;     /* 4a */
    *z = d;    /* 5a */
    bar();     /* 6a */
    return 0;
}
"""


def figure2() -> None:
    print("=" * 64)
    print("Figure 2: Steensgaard vs Andersen points-to graphs")
    prog = parse_program(FIGURE2)
    steens = Steensgaard(prog).run()
    print("Steensgaard partitions:",
          [sorted(map(str, p)) for p in steens.partitions() if len(p) > 1])
    print("Class points-to graph:")
    for src, dst in steens.class_graph():
        print(f"   {sorted(map(str, src))} -> {sorted(map(str, dst))}")
    andersen = Andersen(prog).run()
    for name in ("p", "q", "r"):
        v = Var(name)
        print(f"Andersen pts({name}) =",
              sorted(map(str, andersen.points_to(v))))
    print("-> q's Andersen points-to set has out-degree 3; every "
          "Steensgaard node has out-degree <= 1.")


def figure3() -> None:
    print("=" * 64)
    print("Figure 3: identifying relevant statements (Algorithm 1)")
    prog = parse_program(FIGURE3)
    steens = Steensgaard(prog).run()
    a, b = Var("a"), Var("b")
    print("Partition of a:", sorted(map(str, steens.partition_of(a))))
    sl = relevant_statements(prog, steens, {a, b})
    print("St_P for {a, b}:")
    for loc in sorted(sl.statements):
        print(f"   {loc}: {prog.stmt_at(loc)}")
    print("-> the slice keeps 1a, 2a and 4a but drops `p = x` (3a), "
          "exactly as the paper argues.")


def figure5() -> None:
    print("=" * 64)
    print("Figure 5: summary tuples")
    prog = parse_program(FIGURE5)
    steens = Steensgaard(prog).run()
    x = Var("x")
    p1 = steens.partition_of(x)
    print("P1 =", sorted(map(str, p1)))
    sl = relevant_statements(prog, steens, p1)
    print("Functions with relevant statements:", sorted(sl.functions()),
          "(bar needs no summaries for P1)")
    analysis = ClusterFSCS(prog, cluster=[m for m in p1
                                          if isinstance(m, Var)],
                           tracked=sl.vp, relevant=sl.statements)
    print("Sum_foo:")
    for t in analysis.summary_tuples("foo"):
        print("   ", t)
    exit_loc = Loc("main", prog.cfg_of("main").exit)
    z = Var("z")
    origins = analysis.origins(z, exit_loc)
    print("Maximally complete update sequence for z at main's exit "
          "comes from:",
          sorted(f"{t} [{format_constraint(c)}]" for t, c in origins))
    print("-> matches the paper's (z, 6a, u, true) tuple.")


if __name__ == "__main__":
    figure2()
    figure3()
    figure5()

// Demo for `repro deadlocks`: two spawned threads acquire the same two
// locks in opposite orders (the classic ABBA deadlock).  A third thread
// agrees with t1's order — it never deadlocks against t1, but its
// opposite order against t2 makes a second reported cycle.
//
//   PYTHONPATH=src python -m repro deadlocks examples/deadlock_demo.c
//
// Threads are the functions handed to spawn(); the direct calls below
// keep their bodies on main's supergraph so the sliced FSCI reaches
// them (the generator's convention too).

int obj_a;
int obj_b;
int *pa;
int *pb;

void lock(int *l) { }
void unlock(int *l) { }

void t1(void) {
    lock(pa);
    lock(pb);
    unlock(pb);
    unlock(pa);
}

void t2(void) {
    lock(pb);
    lock(pa);
    unlock(pa);
    unlock(pb);
}

void t3(void) {
    lock(pa);
    lock(pb);
    unlock(pb);
    unlock(pa);
}

int main() {
    pa = &obj_a;
    pb = &obj_b;
    spawn(t1);
    spawn(t2);
    spawn(t3);
    t1();
    t2();
    t3();
    return 0;
}

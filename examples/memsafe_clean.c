// Memory-safe counterpart to memsafe_buggy.c: every dereference is
// guarded, every allocation is freed exactly once, and nothing
// escapes its scope.  `python -m repro check` reports zero findings
// here while still skipping clusters the checkers never asked for.

int *chain, *chain2;
int slot, slot2;

void link(void) {
    chain = &slot;
    chain2 = &slot2;
}

int main() {
    int *h;
    link();
    *chain = 1;
    *chain2 = 2;
    h = malloc(4);
    if (h) {
        *h = 5;
    }
    free(h);
    h = 0;
    return 0;
}

/* Four independent pointer webs, one per function: the query daemon's
 * demo file.  Each web lands in its own cluster(s), so editing one
 * bind_* function re-analyzes only that web's clusters — watch the
 * "reanalyzed" count from:
 *
 *   python -m repro serve examples/server_demo.c --socket /tmp/r.sock &
 *   python -m repro query --socket /tmp/r.sock points-to \
 *       examples/server_demo.c u
 *   sed -i 's/t = \&d;/t = \&b;/' examples/server_demo.c
 *   python -m repro query --socket /tmp/r.sock invalidate \
 *       examples/server_demo.c
 */

int a, b, c, d, e;
int *p, *q;
int *r, *s;
int *t, *u;
int *v, *w;

void bind_rs(void) { r = &c; s = r; }
void bind_tu(void) { t = &d; u = t; }
void bind_vw(void) { v = &e; w = v; }

int main() {
    p = &a;
    q = p;
    bind_rs();
    bind_tu();
    bind_vw();
    return 0;
}

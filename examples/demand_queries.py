#!/usr/bin/env python3
"""Demand-driven queries at two levels of the framework.

The paper's flexibility argument is that you rarely need aliases for
*all* pointers.  This example asks one question — "what can the slab
allocator hand out?" — against the embedded `slab_cache` program and
shows how little work each layer does:

1. the bootstrapped facade analyzes only the clusters containing the
   queried pointer;
2. the demand-driven Andersen engine answers the same flow-insensitive
   question by touching only the constraint-graph nodes the query
   reaches.

Run:  python examples/demand_queries.py
"""

from repro.analysis import Andersen, DemandAndersen
from repro.bench import sources
from repro.core import BootstrapAnalyzer
from repro.ir import Loc, Var


def main() -> None:
    program = sources.load("slab_cache")
    print("Program:", program.counts())
    target = Var("data", "main")

    # --- demand-driven Andersen ---------------------------------------
    engine = DemandAndersen(program)
    pts = engine.points_to(target)
    exhaustive = Andersen(program).run()
    total_nodes = len(program.pointers)
    print(f"\nDemand Andersen: pts({target}) = "
          f"{sorted(map(str, pts))}")
    print(f"  touched {engine.queries_touched()} of ~{total_nodes} "
          f"graph nodes; exhaustive answer identical: "
          f"{pts == exhaustive.points_to(target)}")

    # --- bootstrapped FSCS, lazily ------------------------------------
    boot = BootstrapAnalyzer(program).run()
    end = Loc("main", program.cfg_of("main").exit)
    fscs_pts = boot.points_to(target, end)
    print(f"\nBootstrapped FSCS: pts({target}) at main's exit = "
          f"{sorted(map(str, fscs_pts))}")
    print(f"  analyzed {boot.analyzed_cluster_count} of "
          f"{len(boot.clusters)} clusters")

    # A second, unrelated query shows incremental cost.
    lock = Var("slab_lock")
    print(f"\npts({lock}) =",
          sorted(map(str, boot.points_to(lock, end))))
    print(f"  clusters analyzed so far: {boot.analyzed_cluster_count}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Explore the cascade's tuning knobs on a synthetic benchmark.

Reproduces, at small scale, the paper's engineering discussion:

* the Andersen-threshold trade-off (Section 2: "This threshold can be
  determined empirically.  For our benchmark suite it turned out to be
  60.");
* the optional One-Flow middle stage;
* the simulated 5-way parallel schedule (Figure 1 / Table 1 setup).

Run:  python examples/cascade_tuning.py
"""

import time

from repro.bench import build
from repro.core import (
    BootstrapConfig,
    BootstrapResult,
    CascadeConfig,
    greedy_parts,
    run_cascade,
)

SCALE = 0.03


def measure(name: str, config: CascadeConfig, parts: int = 5):
    sp = build(name, scale=SCALE)
    t0 = time.perf_counter()
    cascade = run_cascade(sp.program, config)
    result = BootstrapResult(sp.program, cascade, BootstrapConfig(parts=parts))
    report = result.analyze_all()
    elapsed = time.perf_counter() - t0
    return cascade, report, elapsed


def main() -> None:
    print("Benchmark: sendmail-like synthetic program "
          f"(scale={SCALE})\n")

    print(f"{'threshold':>10} {'clusters':>9} {'max':>5} "
          f"{'par t(s)':>9} {'total(s)':>9}")
    for threshold in (2, 6, 20, 60, 10 ** 9):
        cascade, report, elapsed = measure(
            "sendmail", CascadeConfig(andersen_threshold=threshold))
        label = "inf" if threshold >= 10 ** 9 else str(threshold)
        print(f"{label:>10} {len(cascade.clusters):>9} "
              f"{cascade.max_cluster_size():>5} "
              f"{report.max_part_time:>9.3f} {elapsed:>9.3f}")
    print("-> very low thresholds over-fragment (overlapping clusters "
          "repeat work); very high ones leave the big partition intact.")

    print("\nWith the One-Flow middle stage (Das 2000):")
    cascade, report, elapsed = measure(
        "sendmail", CascadeConfig(use_oneflow=True))
    print(f"   clusters={len(cascade.clusters)} "
          f"max={cascade.max_cluster_size()} "
          f"par_t={report.max_part_time:.3f}s total={elapsed:.3f}s")

    print("\nSimulated parallelization (the paper's 5 machines):")
    for parts in (1, 2, 5, 10):
        cascade, report, elapsed = measure(
            "sendmail", CascadeConfig(), parts=parts)
        schedule = greedy_parts(cascade.clusters, parts)
        print(f"   parts={parts:>2}: schedule sizes="
              f"{[len(p) for p in schedule]}, "
              f"max part time={report.max_part_time:.3f}s "
              f"(sum {report.total_time:.3f}s)")


if __name__ == "__main__":
    main()

// Demo for `repro leaks`: one allocation whose only reference dies
// with the helper's frame (flagged), one freed on the way out and one
// published into a global (both silent).
//
//   PYTHONPATH=src python -m repro leaks examples/leak_demo.c

int *keep;

void lost(void) {
    int *p;
    p = malloc(4);
}

void tidy(void) {
    int *q;
    q = malloc(4);
    free(q);
}

void publish(void) {
    int *r;
    r = malloc(4);
    keep = r;
}

int main() {
    lost();
    tidy();
    publish();
    return 0;
}

#!/usr/bin/env python3
"""Quickstart: parse a C-like program and ask alias questions.

Run:  python examples/quickstart.py
"""

from repro import BootstrapAnalyzer, parse_program
from repro.analysis import Andersen, Steensgaard
from repro.ir import Loc, Var

SOURCE = r"""
/* A tiny driver-flavoured program. */
int shared_a, shared_b;
int *alias_of_a;

void setup(int **slot) {
    *slot = &shared_a;
}

int *pick(int which) {
    if (which)
        return &shared_a;
    return &shared_b;
}

int main() {
    int *p;
    int *q;
    setup(&alias_of_a);
    p = alias_of_a;        /* p -> shared_a */
    q = pick(1);           /* q -> shared_a or shared_b */
    return 0;
}
"""


def main() -> None:
    program = parse_program(SOURCE)
    print("Parsed:", program.counts())

    # --- Stage 1: Steensgaard partitions (the coarse alias cover) -----
    steens = Steensgaard(program).run()
    print("\nSteensgaard partitions (size > 1):")
    for part in steens.partitions():
        if len(part) > 1:
            print("  ", sorted(str(m) for m in part))

    # --- Stage 2: Andersen points-to (finer, directional) -------------
    andersen = Andersen(program).run()
    p, q = Var("p", "main"), Var("q", "main")
    print("\nAndersen points-to:")
    for v in (p, q):
        print(f"   {v} -> {sorted(str(o) for o in andersen.points_to(v))}")

    # --- The full bootstrapped flow/context-sensitive analysis --------
    result = BootstrapAnalyzer(program).run()
    print(f"\nCascade produced {len(result.clusters)} clusters "
          f"(max size {result.cascade.max_cluster_size()})")

    exit_loc = Loc("main", program.cfg_of("main").exit)
    print("\nFSCS queries at the end of main:")
    print("   points-to(p) =",
          sorted(str(o) for o in result.points_to(p, exit_loc)))
    print("   points-to(q) =",
          sorted(str(o) for o in result.points_to(q, exit_loc)))
    print("   may_alias(p, q) =", result.may_alias(p, q, exit_loc))
    print(f"\nOnly {result.analyzed_cluster_count} of "
          f"{len(result.clusters)} clusters were analyzed (demand-driven).")


if __name__ == "__main__":
    main()

/* Taint-analysis demo: untrusted data reaching sensitive sinks.
 *
 *   python -m repro taint examples/taint_demo.c
 *
 * Two seeded flows:
 *   - getenv() -> fill() stores through a pointer -> system()   [error]
 *   - input()  -> printf() format argument                      [warning]
 * One clean path: the sanitized command never reports.
 */

int getenv(int x);
int system(int cmd);
int printf(int fmt, int arg);
int sanitize(int v);
int input(void);

int cmd_slot;

void fill(int *out) {
    int v;
    v = getenv(7);
    *out = v;          /* taint flows through the pointer */
}

void run(int c) {
    system(c);         /* sink: reached from getenv() via fill() */
}

int main() {
    int n;
    int safe;
    fill(&cmd_slot);
    run(cmd_slot);

    n = input();
    printf(n, 0);      /* sink: format string from input() */

    safe = sanitize(getenv(3));
    system(safe);      /* sanitized: no finding */
    return 0;
}

"""Flow-sensitive, context-insensitive (FSCI) points-to analysis.

Paper Section 3 computes FSCI points-to sets demand-style (Algorithm 3, by
splicing maximally complete update sequences through all callers).  The
same information is the fixpoint of a forward may-points-to dataflow over
the interprocedural supergraph; we implement that fixpoint directly — it
is simpler to make industrial-strength, and on bootstrapped slices the
state is tiny.  The summary engine (Algorithms 4/5) consumes this result
as its oracle for

* the points-to set of ``s`` at location ``m`` (``PT_s^m`` in Algorithm 4),
* constraint satisfiability (Definition 8 atoms), and
* "can function ``g`` semantically modify pointer ``q``".

The analysis can be *sliced*: given a cluster's tracked pointer set
``V_P`` and relevant statement set ``St_P`` (paper Algorithm 1), every
other statement is treated as a skip, exactly like the paper's reduced
program ``Prog_P``.

The abstract domain tracks *uninitializedness* explicitly (the
:data:`UNINIT` sentinel; a missing key means ``{UNINIT}``).  This is what
makes strong updates sound: a store through a pointer whose may-set is a
singleton **and** contains no ``UNINIT`` definitely writes that one cell
— without the sentinel, a path on which the pointer was never assigned
would silently disappear in the join and the "singleton" would not be a
must-fact (a bug our property-based fuzzing actually caught).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set

from ..ir import (
    AddrOf,
    AllocSite,
    Assume,
    CallGraph,
    Copy,
    Load,
    Loc,
    MemObject,
    NullAssign,
    Program,
    Statement,
    Store,
    Var,
)
from .base import PointerAnalysis, PointsToResult
from .dataflow import ForwardDataflow, Supergraph
from .kernel import NodeTable, popcount


class _Uninit:
    """Sentinel 'value': the cell may still hold its original garbage."""

    _instance: Optional["_Uninit"] = None

    def __new__(cls) -> "_Uninit":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<uninit>"


UNINIT = _Uninit()
UNINIT_SET: FrozenSet[object] = frozenset({UNINIT})


class _Null:
    """Sentinel 'value': the cell holds NULL (defined, points nowhere).

    NULL must be explicit for the same reason UNINIT must: an empty set
    would vanish in joins and turn "v4 or NULL" into a fake must-fact,
    enabling an unsound strong update on a path where the store is a
    concrete no-op."""

    _instance: Optional["_Null"] = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<null>"


NULL_VALUE = _Null()
NULL_SET: FrozenSet[object] = frozenset({NULL_VALUE})

_SENTINELS = (UNINIT, NULL_VALUE)

PtsState = Dict[MemObject, FrozenSet[object]]

EMPTY: FrozenSet[MemObject] = frozenset()

#: Lattice bottom for unreached nodes (distinct from {} == "all uninit").
BOTTOM = None

# -- kernel (mask) encoding of the same domain ----------------------------
#
# A kernel state is ``Dict[int, int]``: dense cell id -> value mask.  The
# two reserved low bits carry the sentinels, object ``i`` sits at bit
# ``_RESERVED + i``, and a missing key means {UNINIT} — exactly mirroring
# the frozenset domain above, bijectively, so the fixpoint trajectory
# (state equality, join results, iteration counts) is identical.

UNINIT_BIT = 1
NULL_BIT = 2
_SENT_MASK = UNINIT_BIT | NULL_BIT
_RESERVED = 2

#: A kernel state (mask-valued); ``None`` is still lattice bottom.
MaskState = Dict[int, int]


def _value(state: PtsState, cell: object) -> FrozenSet[object]:
    """The abstract value of ``cell``: missing key means uninitialized."""
    v = state.get(cell)
    return v if v is not None else UNINIT_SET


def _join(a: Optional[PtsState], b: Optional[PtsState]) -> Optional[PtsState]:
    if a is None:
        return b
    if b is None:
        return a
    if a is b:
        return a
    out: PtsState = {}
    for k, v in a.items():
        w = b.get(k)
        out[k] = v | (w if w is not None else UNINIT_SET)
    for k, w in b.items():
        if k not in a:
            out[k] = w | UNINIT_SET
    return out


def _join_kernel(a: Optional[MaskState],
                 b: Optional[MaskState]) -> Optional[MaskState]:
    """Mask-space twin of :func:`_join`: missing keys join as UNINIT."""
    if a is None:
        return b
    if b is None:
        return a
    if a is b:
        return a
    out: MaskState = {}
    bget = b.get
    for k, v in a.items():
        w = bget(k)
        out[k] = (v | w) if w is not None else (v | UNINIT_BIT)
    for k, w in b.items():
        if k not in a:
            out[k] = w | UNINIT_BIT
    return out


def _strip(objs: FrozenSet[object]) -> FrozenSet[MemObject]:
    """Drop the UNINIT/NULL sentinels for clients wanting real objects."""
    if UNINIT in objs or NULL_VALUE in objs:
        return frozenset(o for o in objs if o not in _SENTINELS)
    return objs  # type: ignore[return-value]


class FSCIResult(PointsToResult):
    """Location-indexed points-to facts."""

    def __init__(self, engine: ForwardDataflow, universe: Set[Var]) -> None:
        self._engine = engine
        self.universe = universe
        self._summary: Optional[Dict[MemObject, FrozenSet[MemObject]]] = None

    def _state_before(self, loc: Loc) -> PtsState:
        state = self._engine.state_before(loc)
        return state if state is not None else {}

    def _state_after(self, loc: Loc) -> PtsState:
        state = self._engine.state_after(loc)
        return state if state is not None else {}

    def pts_before(self, loc: Loc, p: MemObject) -> FrozenSet[MemObject]:
        """Objects ``p`` may point to just before ``loc`` executes."""
        return _strip(_value(self._state_before(loc), p))

    def pts_after(self, loc: Loc, p: MemObject) -> FrozenSet[MemObject]:
        return _strip(_value(self._state_after(loc), p))

    def reached_before(self, loc: Loc) -> bool:
        """Was ``loc`` visited by the fixpoint?  Unreached locations sit
        at lattice bottom: no execution of the analyzed supergraph gets
        there, so their facts never flow anywhere."""
        return self._engine.state_before(loc) is not None

    def maybe_uninit_before(self, loc: Loc, p: MemObject) -> bool:
        """May ``p`` still be uninitialized just before ``loc``?

        The must-fact gate for clients like the constraint oracle: a
        singleton may-set is only a must-fact when this is False."""
        return UNINIT in _value(self._state_before(loc), p)

    def must_point_to(self, p: MemObject, obj: MemObject, loc: Loc) -> bool:
        value = _value(self._state_before(loc), p)
        return value == frozenset({obj})

    def may_null_before(self, loc: Loc, p: MemObject) -> bool:
        """May ``p`` be NULL (or uninitialized garbage) before ``loc``?"""
        value = _value(self._state_before(loc), p)
        return NULL_VALUE in value or UNINIT in value

    def must_null_before(self, loc: Loc, p: MemObject) -> bool:
        return _value(self._state_before(loc), p) == NULL_SET

    def explicit_null_before(self, loc: Loc, p: MemObject) -> bool:
        """May ``p`` hold an explicitly-assigned NULL before ``loc``?

        Unlike :meth:`may_null_before` this ignores UNINIT: a pointer
        that was merely never initialized on some path does not count.
        Checkers use this to separate "dereference of NULL" from
        "dereference of garbage"."""
        return NULL_VALUE in _value(self._state_before(loc), p)

    def maybe_uninit_only_before(self, loc: Loc, p: MemObject) -> bool:
        """Is ``p`` *definitely* uninitialized garbage before ``loc``?"""
        return _value(self._state_before(loc), p) == UNINIT_SET

    def cells_after(self, loc: Loc) -> Dict[MemObject, FrozenSet[MemObject]]:
        """Every tracked cell's (sentinel-stripped) value after ``loc``.

        Used by escape checks: scanning the state at a function's exit
        reveals which outliving cells still hold addresses of locals."""
        return {k: _strip(v) for k, v in self._state_after(loc).items()}

    def may_point_to(self, p: MemObject, obj: MemObject, loc: Loc) -> bool:
        return obj in self.pts_before(loc, p)

    def may_values_equal(self, p: MemObject, q: MemObject, loc: Loc) -> bool:
        """May ``p`` and ``q`` hold the same value before ``loc``?

        Unlike :meth:`may_alias_at` this includes the non-object cases:
        uninitialized garbage may equal anything, and two NULLs are
        equal."""
        if p == q:
            return True
        vp = _value(self._state_before(loc), p)
        vq = _value(self._state_before(loc), q)
        if UNINIT in vp or UNINIT in vq:
            return True
        if NULL_VALUE in vp and NULL_VALUE in vq:
            return True
        return bool(_strip(vp) & _strip(vq))

    def must_values_equal(self, p: MemObject, q: MemObject, loc: Loc) -> bool:
        """Do ``p`` and ``q`` definitely hold the same value?"""
        if p == q:
            return True
        vp = _value(self._state_before(loc), p)
        vq = _value(self._state_before(loc), q)
        if vp == NULL_SET and vq == NULL_SET:
            return True
        return (len(vp) == 1 and vp == vq and UNINIT not in vp
                and NULL_VALUE not in vp)

    def may_alias_at(self, p: Var, q: Var, loc: Loc) -> bool:
        if p == q:
            return True
        return bool(self.pts_before(loc, p) & self.pts_before(loc, q))

    # -- PointsToResult (flow-insensitive projection) ---------------------
    def points_to(self, p: Var) -> FrozenSet[MemObject]:
        if self._summary is None:
            summary: Dict[MemObject, Set[MemObject]] = {}
            for state in self._engine._out.values():
                if state is None:
                    continue
                for k, v in state.items():
                    summary.setdefault(k, set()).update(_strip(v))
            self._summary = {k: frozenset(v) for k, v in summary.items()}
        return self._summary.get(p, EMPTY)

    @property
    def iterations(self) -> int:
        return self._engine.iterations


class KernelFSCIResult(FSCIResult):
    """:class:`FSCIResult` over mask-valued states.

    The engine's states are ``Dict[int, int]`` (see the kernel encoding
    notes above); every accessor decodes through the :class:`NodeTable`
    at the API boundary and returns the exact frozensets / booleans the
    frozenset backend produces — the differential suite compares the two
    result objects accessor by accessor.
    """

    def __init__(self, engine: ForwardDataflow, universe: Set[Var],
                 table: NodeTable) -> None:
        super().__init__(engine, universe)
        self._table = table

    # -- mask plumbing ---------------------------------------------------
    def _mask_before(self, loc: Loc, p: MemObject) -> int:
        state = self._engine.state_before(loc)
        if state is None:
            return UNINIT_BIT
        idx = self._table.id_of(p)
        if idx is None:
            return UNINIT_BIT
        return state.get(idx, UNINIT_BIT)

    def _mask_after(self, loc: Loc, p: MemObject) -> int:
        state = self._engine.state_after(loc)
        if state is None:
            return UNINIT_BIT
        idx = self._table.id_of(p)
        if idx is None:
            return UNINIT_BIT
        return state.get(idx, UNINIT_BIT)

    # -- decoded accessors ----------------------------------------------
    def pts_before(self, loc: Loc, p: MemObject) -> FrozenSet[MemObject]:
        return self._table.objects_of(self._mask_before(loc, p))

    def pts_after(self, loc: Loc, p: MemObject) -> FrozenSet[MemObject]:
        return self._table.objects_of(self._mask_after(loc, p))

    def maybe_uninit_before(self, loc: Loc, p: MemObject) -> bool:
        return bool(self._mask_before(loc, p) & UNINIT_BIT)

    def must_point_to(self, p: MemObject, obj: MemObject, loc: Loc) -> bool:
        idx = self._table.id_of(obj)
        if idx is None:
            return False
        return self._mask_before(loc, p) == 1 << (_RESERVED + idx)

    def may_null_before(self, loc: Loc, p: MemObject) -> bool:
        return bool(self._mask_before(loc, p) & _SENT_MASK)

    def must_null_before(self, loc: Loc, p: MemObject) -> bool:
        return self._mask_before(loc, p) == NULL_BIT

    def explicit_null_before(self, loc: Loc, p: MemObject) -> bool:
        return bool(self._mask_before(loc, p) & NULL_BIT)

    def maybe_uninit_only_before(self, loc: Loc, p: MemObject) -> bool:
        return self._mask_before(loc, p) == UNINIT_BIT

    def cells_after(self, loc: Loc) -> Dict[MemObject, FrozenSet[MemObject]]:
        state = self._engine.state_after(loc)
        if state is None:
            return {}
        table = self._table
        return {table.obj_of(k): table.objects_of(v)
                for k, v in state.items()}

    def may_values_equal(self, p: MemObject, q: MemObject, loc: Loc) -> bool:
        if p == q:
            return True
        vp = self._mask_before(loc, p)
        vq = self._mask_before(loc, q)
        if (vp | vq) & UNINIT_BIT:
            return True
        if vp & vq & NULL_BIT:
            return True
        return bool(vp & vq & ~_SENT_MASK)

    def must_values_equal(self, p: MemObject, q: MemObject, loc: Loc) -> bool:
        if p == q:
            return True
        vp = self._mask_before(loc, p)
        vq = self._mask_before(loc, q)
        if vp == NULL_BIT and vq == NULL_BIT:
            return True
        return vp == vq and not vp & _SENT_MASK and popcount(vp) == 1

    def points_to(self, p: Var) -> FrozenSet[MemObject]:
        if self._summary is None:
            acc: Dict[int, int] = {}
            for state in self._engine._out.values():
                if state is None:
                    continue
                for k, v in state.items():
                    acc[k] = acc.get(k, 0) | v
            table = self._table
            self._summary = {table.obj_of(k): table.objects_of(v)
                             for k, v in acc.items()}
        return self._summary.get(p, EMPTY)


class FSCI(PointerAnalysis):
    """Forward interprocedural may-points-to fixpoint.

    Parameters
    ----------
    tracked:
        Restrict the state to these objects (the cluster's ``V_P``);
        ``None`` tracks everything.
    relevant:
        Set of locations whose statements are executed; all others act as
        skips (the paper's ``St_P`` slicing).  ``None`` keeps everything.
    functions:
        Restrict the supergraph to these functions (calls to others fall
        through); used to confine a cluster's FSCI to the functions that
        can influence it.
    max_iterations:
        Abort knob for the deliberately-unscalable unclustered baseline.
    use_kernel:
        Run the dataflow over mask states (default).  ``False`` selects
        the frozenset reference backend; both produce identical results
        through every :class:`FSCIResult` accessor.
    """

    name = "fsci"

    def __init__(self, program: Program,
                 tracked: Optional[Iterable[MemObject]] = None,
                 relevant: Optional[Set[Loc]] = None,
                 functions: Optional[Iterable[str]] = None,
                 max_iterations: Optional[int] = None,
                 callgraph: Optional[CallGraph] = None,
                 deadline: Optional[float] = None,
                 use_kernel: bool = True) -> None:
        super().__init__(program)
        self._use_kernel = use_kernel
        self._tracked: Optional[FrozenSet[MemObject]] = (
            frozenset(tracked) if tracked is not None else None)
        self._relevant = relevant
        self._functions = set(functions) if functions is not None else None
        self._max_iterations = max_iterations
        self._deadline = deadline
        # Strong updates are only safe for single-instance cells: globals
        # and locals of non-recursive functions, never allocation sites.
        cg = callgraph or CallGraph(program)
        scc_of = cg.scc_of()
        self._recursive = {f for f in program.functions
                           if len(scc_of[f]) > 1 or f in cg.callees(f)}

    # ------------------------------------------------------------------
    def _is_tracked(self, obj: MemObject) -> bool:
        return self._tracked is None or obj in self._tracked

    def _strong_updatable(self, obj: object) -> bool:
        if not isinstance(obj, Var):
            return False
        return obj.function is None or obj.function not in self._recursive

    def _transfer(self, loc: Loc, stmt: Statement, state: PtsState) -> PtsState:
        if self._relevant is not None and loc not in self._relevant \
                and stmt.is_pointer_assign:
            return state
        if isinstance(stmt, Copy):
            if not self._is_tracked(stmt.lhs):
                return state
            out = dict(state)
            out[stmt.lhs] = _value(state, stmt.rhs)
            return out
        if isinstance(stmt, AddrOf):
            if not self._is_tracked(stmt.lhs):
                return state
            out = dict(state)
            out[stmt.lhs] = frozenset({stmt.target})
            return out
        if isinstance(stmt, Load):
            if not self._is_tracked(stmt.lhs):
                return state
            gathered: Set[object] = set()
            targets = _value(state, stmt.rhs)
            if UNINIT in targets or NULL_VALUE in targets:
                # Loading through garbage or NULL is UB; the value read
                # is garbage (matches the concrete oracle's model).
                gathered.add(UNINIT)
            for obj in targets:
                if obj not in _SENTINELS:
                    gathered.update(_value(state, obj))
            out = dict(state)
            out[stmt.lhs] = frozenset(gathered)
            return out
        if isinstance(stmt, Store):
            targets = _value(state, stmt.lhs)
            real = [o for o in targets if o not in _SENTINELS]
            if not real:
                return state
            rhs_value = _value(state, stmt.rhs)
            out = dict(state)
            if len(real) == 1 and len(targets) == 1:
                (only,) = real
                if self._is_tracked(only) and self._strong_updatable(only):
                    out[only] = rhs_value
                    return out
            for obj in real:
                if self._is_tracked(obj):
                    out[obj] = _value(state, obj) | rhs_value
            return out
        if isinstance(stmt, NullAssign):
            if not self._is_tracked(stmt.lhs):
                return state
            out = dict(state)
            out[stmt.lhs] = NULL_SET
            return out
        if isinstance(stmt, Assume):
            return self._refine(state, stmt)
        return state

    def _refine(self, state: PtsState, stmt: Assume) -> PtsState:
        """Path-sensitive refinement (paper Section 3): an assume only
        restricts executions, so intersecting values is sound.  UNINIT
        blocks refinement — garbage can compare equal to anything."""
        lv = _value(state, stmt.lhs)
        if stmt.rhs is None:
            if UNINIT in lv:
                return state
            keep = (lv & NULL_SET) if stmt.equal else (lv - NULL_SET)
            if keep == lv or not self._is_tracked(stmt.lhs):
                return state
            out = dict(state)
            out[stmt.lhs] = keep
            return out
        rv = _value(state, stmt.rhs)
        if not stmt.equal or UNINIT in lv or UNINIT in rv:
            return state  # != refines nothing set-wise, in general
        common = lv & rv
        out = dict(state)
        if self._is_tracked(stmt.lhs):
            out[stmt.lhs] = common
        if self._is_tracked(stmt.rhs):
            out[stmt.rhs] = common
        return out

    def run(self) -> FSCIResult:
        graph = Supergraph(self.program, functions=self._functions)
        if self._use_kernel:
            return self._run_kernel(graph)
        engine: ForwardDataflow[Optional[PtsState]] = ForwardDataflow(
            graph, self._transfer, _join, initial={}, bottom=BOTTOM)
        engine.run(max_iterations=self._max_iterations,
                   deadline=self._deadline)
        return FSCIResult(engine, set(self.program.pointers))

    # ------------------------------------------------------------------
    # kernel backend: per-location transfer closures over mask states
    # ------------------------------------------------------------------
    def _run_kernel(self, graph: Supergraph) -> FSCIResult:
        table = NodeTable(reserved=_RESERVED)
        ops = self._compile_kernel(graph, table)

        def transfer(loc: Loc, stmt: Statement,
                     state: MaskState) -> MaskState:
            f = ops.get(loc)
            return f(state) if f is not None else state

        engine: ForwardDataflow[Optional[MaskState]] = ForwardDataflow(
            graph, transfer, _join_kernel, initial={}, bottom=BOTTOM)
        engine.run(max_iterations=self._max_iterations,
                   deadline=self._deadline)
        return KernelFSCIResult(engine, set(self.program.pointers), table)

    def _compile_kernel(self, graph: Supergraph, table: NodeTable
                        ) -> Dict[Loc, Callable[[MaskState], MaskState]]:
        """Intern every operand of the graph's statements (statement
        order, hence hash-seed independent) and compile each location's
        transfer function to a closure over mask states.  Locations with
        no entry are skips — sliced-out assigns, calls, frees."""
        stmts = []
        for name in graph.names:
            cfg = self.program.cfg_of(name)
            for idx, stmt in cfg.statements():
                stmts.append((Loc(name, idx), stmt))
        intern = table.intern
        for _loc, stmt in stmts:
            if isinstance(stmt, (Copy, Load, Store)):
                intern(stmt.lhs)
                intern(stmt.rhs)
            elif isinstance(stmt, AddrOf):
                intern(stmt.lhs)
                intern(stmt.target)
            elif isinstance(stmt, NullAssign):
                intern(stmt.lhs)
            elif isinstance(stmt, Assume):
                intern(stmt.lhs)
                if stmt.rhs is not None:
                    intern(stmt.rhs)
        # Per-id gates (every id a mask can ever hold was interned above,
        # so these arrays are complete).
        tracked_arr = [self._is_tracked(table.obj_of(i))
                       for i in range(len(table))]
        strong_arr = [tracked_arr[i] and self._strong_updatable(table.obj_of(i))
                      for i in range(len(table))]
        ops: Dict[Loc, Callable[[MaskState], MaskState]] = {}
        relevant = self._relevant
        for loc, stmt in stmts:
            if relevant is not None and loc not in relevant \
                    and stmt.is_pointer_assign:
                continue
            op = self._compile_stmt(stmt, table, tracked_arr, strong_arr)
            if op is not None:
                ops[loc] = op
        return ops

    def _compile_stmt(self, stmt: Statement, table: NodeTable,
                      tracked_arr: List[bool], strong_arr: List[bool]
                      ) -> Optional[Callable[[MaskState], MaskState]]:
        """One statement's mask transfer, mirroring :meth:`_transfer`
        case by case; ``None`` means "behaves as a skip"."""
        intern = table.intern
        if isinstance(stmt, Copy):
            if not self._is_tracked(stmt.lhs):
                return None
            li, ri = intern(stmt.lhs), intern(stmt.rhs)

            def op_copy(state: MaskState, li: int = li,
                        ri: int = ri) -> MaskState:
                out = dict(state)
                out[li] = state.get(ri, UNINIT_BIT)
                return out
            return op_copy
        if isinstance(stmt, AddrOf):
            if not self._is_tracked(stmt.lhs):
                return None
            li = intern(stmt.lhs)
            tbit = 1 << (_RESERVED + intern(stmt.target))

            def op_addr(state: MaskState, li: int = li,
                        tbit: int = tbit) -> MaskState:
                out = dict(state)
                out[li] = tbit
                return out
            return op_addr
        if isinstance(stmt, Load):
            if not self._is_tracked(stmt.lhs):
                return None
            li, ri = intern(stmt.lhs), intern(stmt.rhs)

            def op_load(state: MaskState, li: int = li,
                        ri: int = ri) -> MaskState:
                targets = state.get(ri, UNINIT_BIT)
                # Garbage or NULL targets read garbage; real targets
                # contribute their cells' values.
                gathered = UNINIT_BIT if targets & _SENT_MASK else 0
                real = targets >> _RESERVED
                while real:
                    low = real & -real
                    gathered |= state.get(low.bit_length() - 1, UNINIT_BIT)
                    real ^= low
                out = dict(state)
                out[li] = gathered
                return out
            return op_load
        if isinstance(stmt, Store):
            li, ri = intern(stmt.lhs), intern(stmt.rhs)

            def op_store(state: MaskState, li: int = li,
                         ri: int = ri) -> MaskState:
                targets = state.get(li, UNINIT_BIT)
                real = targets & ~_SENT_MASK
                if not real:
                    return state
                rhs_value = state.get(ri, UNINIT_BIT)
                out = dict(state)
                if targets == real and not real & (real - 1):
                    # Exactly one target, no sentinels: strong update if
                    # the cell is tracked and single-instance.
                    only = real.bit_length() - 1 - _RESERVED
                    if strong_arr[only]:
                        out[only] = rhs_value
                        return out
                bits = real >> _RESERVED
                while bits:
                    low = bits & -bits
                    oid = low.bit_length() - 1
                    if tracked_arr[oid]:
                        out[oid] = state.get(oid, UNINIT_BIT) | rhs_value
                    bits ^= low
                return out
            return op_store
        if isinstance(stmt, NullAssign):
            if not self._is_tracked(stmt.lhs):
                return None
            li = intern(stmt.lhs)

            def op_null(state: MaskState, li: int = li) -> MaskState:
                out = dict(state)
                out[li] = NULL_BIT
                return out
            return op_null
        if isinstance(stmt, Assume):
            li = intern(stmt.lhs)
            lt = self._is_tracked(stmt.lhs)
            if stmt.rhs is None:
                if not lt:
                    return None
                eq = stmt.equal

                def op_assume_null(state: MaskState, li: int = li,
                                   eq: bool = eq) -> MaskState:
                    lv = state.get(li, UNINIT_BIT)
                    if lv & UNINIT_BIT:
                        return state
                    keep = (lv & NULL_BIT) if eq else (lv & ~NULL_BIT)
                    if keep == lv:
                        return state
                    out = dict(state)
                    out[li] = keep
                    return out
                return op_assume_null
            ri = intern(stmt.rhs)
            rt = self._is_tracked(stmt.rhs)
            if not stmt.equal or not (lt or rt):
                return None  # != refines nothing set-wise, in general

            def op_assume(state: MaskState, li: int = li, ri: int = ri,
                          lt: bool = lt, rt: bool = rt) -> MaskState:
                lv = state.get(li, UNINIT_BIT)
                rv = state.get(ri, UNINIT_BIT)
                if (lv | rv) & UNINIT_BIT:
                    return state
                common = lv & rv
                out = dict(state)
                if lt:
                    out[li] = common
                if rt:
                    out[ri] = common
                return out
            return op_assume
        return None

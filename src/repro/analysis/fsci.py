"""Flow-sensitive, context-insensitive (FSCI) points-to analysis.

Paper Section 3 computes FSCI points-to sets demand-style (Algorithm 3, by
splicing maximally complete update sequences through all callers).  The
same information is the fixpoint of a forward may-points-to dataflow over
the interprocedural supergraph; we implement that fixpoint directly — it
is simpler to make industrial-strength, and on bootstrapped slices the
state is tiny.  The summary engine (Algorithms 4/5) consumes this result
as its oracle for

* the points-to set of ``s`` at location ``m`` (``PT_s^m`` in Algorithm 4),
* constraint satisfiability (Definition 8 atoms), and
* "can function ``g`` semantically modify pointer ``q``".

The analysis can be *sliced*: given a cluster's tracked pointer set
``V_P`` and relevant statement set ``St_P`` (paper Algorithm 1), every
other statement is treated as a skip, exactly like the paper's reduced
program ``Prog_P``.

The abstract domain tracks *uninitializedness* explicitly (the
:data:`UNINIT` sentinel; a missing key means ``{UNINIT}``).  This is what
makes strong updates sound: a store through a pointer whose may-set is a
singleton **and** contains no ``UNINIT`` definitely writes that one cell
— without the sentinel, a path on which the pointer was never assigned
would silently disappear in the join and the "singleton" would not be a
must-fact (a bug our property-based fuzzing actually caught).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Optional, Set

from ..ir import (
    AddrOf,
    AllocSite,
    Assume,
    CallGraph,
    Copy,
    Load,
    Loc,
    MemObject,
    NullAssign,
    Program,
    Statement,
    Store,
    Var,
)
from .base import PointerAnalysis, PointsToResult
from .dataflow import ForwardDataflow, Supergraph


class _Uninit:
    """Sentinel 'value': the cell may still hold its original garbage."""

    _instance: Optional["_Uninit"] = None

    def __new__(cls) -> "_Uninit":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<uninit>"


UNINIT = _Uninit()
UNINIT_SET: FrozenSet[object] = frozenset({UNINIT})


class _Null:
    """Sentinel 'value': the cell holds NULL (defined, points nowhere).

    NULL must be explicit for the same reason UNINIT must: an empty set
    would vanish in joins and turn "v4 or NULL" into a fake must-fact,
    enabling an unsound strong update on a path where the store is a
    concrete no-op."""

    _instance: Optional["_Null"] = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<null>"


NULL_VALUE = _Null()
NULL_SET: FrozenSet[object] = frozenset({NULL_VALUE})

_SENTINELS = (UNINIT, NULL_VALUE)

PtsState = Dict[MemObject, FrozenSet[object]]

EMPTY: FrozenSet[MemObject] = frozenset()

#: Lattice bottom for unreached nodes (distinct from {} == "all uninit").
BOTTOM = None


def _value(state: PtsState, cell: object) -> FrozenSet[object]:
    """The abstract value of ``cell``: missing key means uninitialized."""
    v = state.get(cell)
    return v if v is not None else UNINIT_SET


def _join(a: Optional[PtsState], b: Optional[PtsState]) -> Optional[PtsState]:
    if a is None:
        return b
    if b is None:
        return a
    if a is b:
        return a
    out: PtsState = {}
    for k, v in a.items():
        w = b.get(k)
        out[k] = v | (w if w is not None else UNINIT_SET)
    for k, w in b.items():
        if k not in a:
            out[k] = w | UNINIT_SET
    return out


def _strip(objs: FrozenSet[object]) -> FrozenSet[MemObject]:
    """Drop the UNINIT/NULL sentinels for clients wanting real objects."""
    if UNINIT in objs or NULL_VALUE in objs:
        return frozenset(o for o in objs if o not in _SENTINELS)
    return objs  # type: ignore[return-value]


class FSCIResult(PointsToResult):
    """Location-indexed points-to facts."""

    def __init__(self, engine: ForwardDataflow, universe: Set[Var]) -> None:
        self._engine = engine
        self.universe = universe
        self._summary: Optional[Dict[MemObject, FrozenSet[MemObject]]] = None

    def _state_before(self, loc: Loc) -> PtsState:
        state = self._engine.state_before(loc)
        return state if state is not None else {}

    def _state_after(self, loc: Loc) -> PtsState:
        state = self._engine.state_after(loc)
        return state if state is not None else {}

    def pts_before(self, loc: Loc, p: MemObject) -> FrozenSet[MemObject]:
        """Objects ``p`` may point to just before ``loc`` executes."""
        return _strip(_value(self._state_before(loc), p))

    def pts_after(self, loc: Loc, p: MemObject) -> FrozenSet[MemObject]:
        return _strip(_value(self._state_after(loc), p))

    def reached_before(self, loc: Loc) -> bool:
        """Was ``loc`` visited by the fixpoint?  Unreached locations sit
        at lattice bottom: no execution of the analyzed supergraph gets
        there, so their facts never flow anywhere."""
        return self._engine.state_before(loc) is not None

    def maybe_uninit_before(self, loc: Loc, p: MemObject) -> bool:
        """May ``p`` still be uninitialized just before ``loc``?

        The must-fact gate for clients like the constraint oracle: a
        singleton may-set is only a must-fact when this is False."""
        return UNINIT in _value(self._state_before(loc), p)

    def must_point_to(self, p: MemObject, obj: MemObject, loc: Loc) -> bool:
        value = _value(self._state_before(loc), p)
        return value == frozenset({obj})

    def may_null_before(self, loc: Loc, p: MemObject) -> bool:
        """May ``p`` be NULL (or uninitialized garbage) before ``loc``?"""
        value = _value(self._state_before(loc), p)
        return NULL_VALUE in value or UNINIT in value

    def must_null_before(self, loc: Loc, p: MemObject) -> bool:
        return _value(self._state_before(loc), p) == NULL_SET

    def explicit_null_before(self, loc: Loc, p: MemObject) -> bool:
        """May ``p`` hold an explicitly-assigned NULL before ``loc``?

        Unlike :meth:`may_null_before` this ignores UNINIT: a pointer
        that was merely never initialized on some path does not count.
        Checkers use this to separate "dereference of NULL" from
        "dereference of garbage"."""
        return NULL_VALUE in _value(self._state_before(loc), p)

    def maybe_uninit_only_before(self, loc: Loc, p: MemObject) -> bool:
        """Is ``p`` *definitely* uninitialized garbage before ``loc``?"""
        return _value(self._state_before(loc), p) == UNINIT_SET

    def cells_after(self, loc: Loc) -> Dict[MemObject, FrozenSet[MemObject]]:
        """Every tracked cell's (sentinel-stripped) value after ``loc``.

        Used by escape checks: scanning the state at a function's exit
        reveals which outliving cells still hold addresses of locals."""
        return {k: _strip(v) for k, v in self._state_after(loc).items()}

    def may_point_to(self, p: MemObject, obj: MemObject, loc: Loc) -> bool:
        return obj in self.pts_before(loc, p)

    def may_values_equal(self, p: MemObject, q: MemObject, loc: Loc) -> bool:
        """May ``p`` and ``q`` hold the same value before ``loc``?

        Unlike :meth:`may_alias_at` this includes the non-object cases:
        uninitialized garbage may equal anything, and two NULLs are
        equal."""
        if p == q:
            return True
        vp = _value(self._state_before(loc), p)
        vq = _value(self._state_before(loc), q)
        if UNINIT in vp or UNINIT in vq:
            return True
        if NULL_VALUE in vp and NULL_VALUE in vq:
            return True
        return bool(_strip(vp) & _strip(vq))

    def must_values_equal(self, p: MemObject, q: MemObject, loc: Loc) -> bool:
        """Do ``p`` and ``q`` definitely hold the same value?"""
        if p == q:
            return True
        vp = _value(self._state_before(loc), p)
        vq = _value(self._state_before(loc), q)
        if vp == NULL_SET and vq == NULL_SET:
            return True
        return (len(vp) == 1 and vp == vq and UNINIT not in vp
                and NULL_VALUE not in vp)

    def may_alias_at(self, p: Var, q: Var, loc: Loc) -> bool:
        if p == q:
            return True
        return bool(self.pts_before(loc, p) & self.pts_before(loc, q))

    # -- PointsToResult (flow-insensitive projection) ---------------------
    def points_to(self, p: Var) -> FrozenSet[MemObject]:
        if self._summary is None:
            summary: Dict[MemObject, Set[MemObject]] = {}
            for state in self._engine._out.values():
                if state is None:
                    continue
                for k, v in state.items():
                    summary.setdefault(k, set()).update(_strip(v))
            self._summary = {k: frozenset(v) for k, v in summary.items()}
        return self._summary.get(p, EMPTY)

    @property
    def iterations(self) -> int:
        return self._engine.iterations


class FSCI(PointerAnalysis):
    """Forward interprocedural may-points-to fixpoint.

    Parameters
    ----------
    tracked:
        Restrict the state to these objects (the cluster's ``V_P``);
        ``None`` tracks everything.
    relevant:
        Set of locations whose statements are executed; all others act as
        skips (the paper's ``St_P`` slicing).  ``None`` keeps everything.
    functions:
        Restrict the supergraph to these functions (calls to others fall
        through); used to confine a cluster's FSCI to the functions that
        can influence it.
    max_iterations:
        Abort knob for the deliberately-unscalable unclustered baseline.
    """

    name = "fsci"

    def __init__(self, program: Program,
                 tracked: Optional[Iterable[MemObject]] = None,
                 relevant: Optional[Set[Loc]] = None,
                 functions: Optional[Iterable[str]] = None,
                 max_iterations: Optional[int] = None,
                 callgraph: Optional[CallGraph] = None,
                 deadline: Optional[float] = None) -> None:
        super().__init__(program)
        self._tracked: Optional[FrozenSet[MemObject]] = (
            frozenset(tracked) if tracked is not None else None)
        self._relevant = relevant
        self._functions = set(functions) if functions is not None else None
        self._max_iterations = max_iterations
        self._deadline = deadline
        # Strong updates are only safe for single-instance cells: globals
        # and locals of non-recursive functions, never allocation sites.
        cg = callgraph or CallGraph(program)
        scc_of = cg.scc_of()
        self._recursive = {f for f in program.functions
                           if len(scc_of[f]) > 1 or f in cg.callees(f)}

    # ------------------------------------------------------------------
    def _is_tracked(self, obj: MemObject) -> bool:
        return self._tracked is None or obj in self._tracked

    def _strong_updatable(self, obj: object) -> bool:
        if not isinstance(obj, Var):
            return False
        return obj.function is None or obj.function not in self._recursive

    def _transfer(self, loc: Loc, stmt: Statement, state: PtsState) -> PtsState:
        if self._relevant is not None and loc not in self._relevant \
                and stmt.is_pointer_assign:
            return state
        if isinstance(stmt, Copy):
            if not self._is_tracked(stmt.lhs):
                return state
            out = dict(state)
            out[stmt.lhs] = _value(state, stmt.rhs)
            return out
        if isinstance(stmt, AddrOf):
            if not self._is_tracked(stmt.lhs):
                return state
            out = dict(state)
            out[stmt.lhs] = frozenset({stmt.target})
            return out
        if isinstance(stmt, Load):
            if not self._is_tracked(stmt.lhs):
                return state
            gathered: Set[object] = set()
            targets = _value(state, stmt.rhs)
            if UNINIT in targets or NULL_VALUE in targets:
                # Loading through garbage or NULL is UB; the value read
                # is garbage (matches the concrete oracle's model).
                gathered.add(UNINIT)
            for obj in targets:
                if obj not in _SENTINELS:
                    gathered.update(_value(state, obj))
            out = dict(state)
            out[stmt.lhs] = frozenset(gathered)
            return out
        if isinstance(stmt, Store):
            targets = _value(state, stmt.lhs)
            real = [o for o in targets if o not in _SENTINELS]
            if not real:
                return state
            rhs_value = _value(state, stmt.rhs)
            out = dict(state)
            if len(real) == 1 and len(targets) == 1:
                (only,) = real
                if self._is_tracked(only) and self._strong_updatable(only):
                    out[only] = rhs_value
                    return out
            for obj in real:
                if self._is_tracked(obj):
                    out[obj] = _value(state, obj) | rhs_value
            return out
        if isinstance(stmt, NullAssign):
            if not self._is_tracked(stmt.lhs):
                return state
            out = dict(state)
            out[stmt.lhs] = NULL_SET
            return out
        if isinstance(stmt, Assume):
            return self._refine(state, stmt)
        return state

    def _refine(self, state: PtsState, stmt: Assume) -> PtsState:
        """Path-sensitive refinement (paper Section 3): an assume only
        restricts executions, so intersecting values is sound.  UNINIT
        blocks refinement — garbage can compare equal to anything."""
        lv = _value(state, stmt.lhs)
        if stmt.rhs is None:
            if UNINIT in lv:
                return state
            keep = (lv & NULL_SET) if stmt.equal else (lv - NULL_SET)
            if keep == lv or not self._is_tracked(stmt.lhs):
                return state
            out = dict(state)
            out[stmt.lhs] = keep
            return out
        rv = _value(state, stmt.rhs)
        if not stmt.equal or UNINIT in lv or UNINIT in rv:
            return state  # != refines nothing set-wise, in general
        common = lv & rv
        out = dict(state)
        if self._is_tracked(stmt.lhs):
            out[stmt.lhs] = common
        if self._is_tracked(stmt.rhs):
            out[stmt.rhs] = common
        return out

    def run(self) -> FSCIResult:
        graph = Supergraph(self.program, functions=self._functions)
        engine: ForwardDataflow[Optional[PtsState]] = ForwardDataflow(
            graph, self._transfer, _join, initial={}, bottom=BOTTOM)
        engine.run(max_iterations=self._max_iterations,
                   deadline=self._deadline)
        return FSCIResult(engine, set(self.program.pointers))

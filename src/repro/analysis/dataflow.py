"""A small interprocedural dataflow framework.

The FSCI stage (paper Algorithm 3 computes the same information
demand-style) is a forward may analysis over the *supergraph*: each
function's CFG plus call edges (call node -> callee entry) and return
edges (callee exit -> call-node successors).  Running it over a cluster's
sliced statement set keeps the state tiny; the unclustered baseline runs
it over everything and is exactly the slow configuration Table 1 reports.

The framework is deliberately minimal: clients provide transfer and join
over an opaque state type.
"""

from __future__ import annotations

import time
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from ..ir import CallStmt, Loc, Program, Statement

State = TypeVar("State")

#: A supergraph node is simply a global location.
Node = Loc


class Supergraph:
    """Interprocedural CFG: intra edges + call/return edges.

    Only functions reachable from the entry are included.  Calls to
    unknown targets (unresolved function pointers with no candidates)
    fall through to the call node's intraprocedural successors, which is
    sound under our convention that argument copies are explicit caller
    statements.
    """

    def __init__(self, program: Program,
                 functions: Optional[Iterable[str]] = None) -> None:
        self.program = program
        names = set(functions) if functions is not None else set(program.functions)
        #: The included functions, sorted — the canonical deterministic
        #: iteration order for clients walking the graph's statements.
        self.names: List[str] = sorted(names)
        self._succs: Dict[Loc, List[Loc]] = {}
        self._preds: Dict[Loc, List[Loc]] = {}
        self.entry = Loc(program.entry, program.cfg_of(program.entry).entry)
        # Sorted for determinism: node order must not depend on the set's
        # hash-seeded iteration order, or worker processes (with their own
        # PYTHONHASHSEED) would traverse the supergraph differently than
        # the parent.
        for name in self.names:
            cfg = program.cfg_of(name)
            for idx, stmt in cfg.statements():
                loc = Loc(name, idx)
                succs: List[Loc] = []
                if isinstance(stmt, CallStmt):
                    targets = [t for t in stmt.targets
                               if t in program.functions and t in names]
                    for t in targets:
                        callee_cfg = program.cfg_of(t)
                        succs.append(Loc(t, callee_cfg.entry))
                        # Return edge: callee exit -> call's successors.
                        exit_loc = Loc(t, callee_cfg.exit)
                        rets = self._succs.setdefault(exit_loc, [])
                        for s in cfg.successors(idx):
                            ret = Loc(name, s)
                            if ret not in rets:
                                rets.append(ret)
                    if not targets:
                        succs.extend(Loc(name, s) for s in cfg.successors(idx))
                else:
                    succs.extend(Loc(name, s) for s in cfg.successors(idx))
                existing = self._succs.setdefault(loc, [])
                for s in succs:
                    if s not in existing:
                        existing.append(s)
        for src, dsts in self._succs.items():
            for d in dsts:
                self._preds.setdefault(d, []).append(src)

    def successors(self, loc: Loc) -> List[Loc]:
        return self._succs.get(loc, [])

    def predecessors(self, loc: Loc) -> List[Loc]:
        return self._preds.get(loc, [])

    def nodes(self) -> List[Loc]:
        seen: Set[Loc] = set()
        out: List[Loc] = []
        for loc in self._succs:
            if loc not in seen:
                seen.add(loc)
                out.append(loc)
        for loc in self._preds:
            if loc not in seen:
                seen.add(loc)
                out.append(loc)
        return out


class ForwardDataflow(Generic[State]):
    """Worklist forward fixpoint over a supergraph.

    ``transfer(loc, stmt, state)`` must return a *new* state (states are
    treated as immutable); ``join`` combines predecessor outputs;
    ``initial`` is the entry fact; states compare with ``==``.
    """

    def __init__(
        self,
        graph: Supergraph,
        transfer: Callable[[Loc, Statement, State], State],
        join: Callable[[State, State], State],
        initial: State,
        bottom: State,
    ) -> None:
        self.graph = graph
        self.transfer = transfer
        self.join = join
        self.initial = initial
        self.bottom = bottom
        self._in: Dict[Loc, State] = {}
        self._out: Dict[Loc, State] = {}
        self.iterations = 0

    def run(self, max_iterations: Optional[int] = None,
            deadline: Optional[float] = None) -> None:
        """Run to fixpoint; ``deadline`` is an absolute time.monotonic()
        value standing in for the paper's wall-clock timeout."""
        program = self.graph.program
        self._in[self.graph.entry] = self.initial
        worklist: List[Loc] = [self.graph.entry]
        queued: Set[Loc] = {self.graph.entry}
        while worklist:
            loc = worklist.pop()
            queued.discard(loc)
            self.iterations += 1
            if max_iterations is not None and self.iterations > max_iterations:
                raise TimeoutError(
                    f"dataflow exceeded {max_iterations} iterations")
            if deadline is not None and self.iterations % 256 == 0 \
                    and time.monotonic() > deadline:
                raise TimeoutError("dataflow exceeded its deadline")
            in_state = self._in.get(loc, self.bottom)
            stmt = program.stmt_at(loc)
            out_state = self.transfer(loc, stmt, in_state)
            if loc in self._out and self._out[loc] == out_state:
                continue
            self._out[loc] = out_state
            for succ in self.graph.successors(loc):
                old = self._in.get(succ, self.bottom)
                new = self.join(old, out_state)
                if succ not in self._in or new != old:
                    self._in[succ] = new
                    if succ not in queued:
                        queued.add(succ)
                        worklist.append(succ)

    def state_before(self, loc: Loc) -> State:
        return self._in.get(loc, self.bottom)

    def state_after(self, loc: Loc) -> State:
        return self._out.get(loc, self.bottom)

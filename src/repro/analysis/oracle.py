"""Bounded concrete executor — the soundness oracle for the test suite.

Enumerates execution paths of a program up to configurable step/path
bounds, interpreting the normalized statements *exactly* (nondeterministic
branches, proper call/return, loop unrolling).  Every points-to or alias
fact it observes is a genuine concrete behaviour, so each analysis must
report a superset: the property tests check

    oracle.points_to(p)  ⊆  analysis.points_to(p)          (all analyses)
    oracle.pts_at(loc,p) ⊆  fsci.pts_after(loc, p)         (flow-sensitive)

Variables are modelled as single static cells (no stack frames), matching
the abstraction of the paper and of our analyses, so recursive programs
compare apples to apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..ir import (
    AddrOf,
    Assume,
    CallStmt,
    Copy,
    Load,
    Loc,
    MemObject,
    NullAssign,
    Program,
    ReturnStmt,
    Store,
    Var,
)

#: Concrete value of a cell: an object address, NULL, or uninitialized.
NULL = "<null>"
UNINIT = "<uninit>"
Value = object  # MemObject | NULL | UNINIT


@dataclass
class OracleResult:
    """Observed concrete facts."""

    pts: Dict[MemObject, Set[MemObject]]
    pts_at: Dict[Tuple[Loc, MemObject], Set[MemObject]]
    paths_explored: int
    truncated: bool

    def points_to(self, p: MemObject) -> FrozenSet[MemObject]:
        return frozenset(self.pts.get(p, ()))

    def pts_after(self, loc: Loc, p: MemObject) -> FrozenSet[MemObject]:
        return frozenset(self.pts_at.get((loc, p), ()))

    def may_alias(self, p: Var, q: Var) -> bool:
        if p == q:
            return True
        return bool(self.points_to(p) & self.points_to(q))

    def aliased_at(self, loc: Loc, p: Var, q: Var) -> bool:
        return bool(self.pts_after(loc, p) & self.pts_after(loc, q))


class ConcreteExecutor:
    """Depth-first bounded path enumeration."""

    def __init__(self, program: Program, max_steps: int = 300,
                 max_paths: int = 4000) -> None:
        self.program = program
        self.max_steps = max_steps
        self.max_paths = max_paths

    def run(self, entry: Optional[str] = None) -> OracleResult:
        result = OracleResult(pts={}, pts_at={}, paths_explored=0,
                              truncated=False)
        entry_fn = entry if entry is not None else self.program.entry
        self._entry = entry_fn
        entry_cfg = self.program.cfg_of(entry_fn)
        # A frame: (function, node). The stack models call/return; value
        # memory is global (single cell per variable).
        initial_state: Dict[MemObject, Value] = {}
        self._explore(entry_fn, entry_cfg.entry, [], initial_state, 0, result)
        return result

    # ------------------------------------------------------------------
    def _record(self, loc: Loc, state: Dict[MemObject, Value],
                result: OracleResult) -> None:
        for cell, value in state.items():
            if isinstance(cell, tuple):  # event entry, not a memory cell
                continue
            if value in (NULL, UNINIT):
                continue
            result.pts.setdefault(cell, set()).add(value)  # type: ignore[arg-type]
            result.pts_at.setdefault((loc, cell), set()).add(value)  # type: ignore[arg-type]

    # -- subclass hooks ----------------------------------------------------
    def _on_call(self, loc: Loc, stmt: CallStmt,
                 state: Dict[MemObject, Value]) -> Dict[MemObject, Value]:
        """Called at every direct call site before descending into the
        callee; event-stamping executors override this."""
        return state

    def _on_path_end(self, state: Dict[MemObject, Value],
                     result: OracleResult) -> None:
        """Called once per genuinely completed path (not truncations or
        infeasible branches) with the final state."""

    def _assume_holds(self, stmt: Assume,
                      state: Dict[MemObject, Value]) -> bool:
        """May this concrete state satisfy the assume?  UNINIT garbage
        can compare either way against *other* values, so it rarely
        blocks a path — but a variable always equals itself, garbage or
        not."""
        if stmt.rhs is not None and stmt.lhs == stmt.rhs:
            return stmt.equal
        lv = state.get(stmt.lhs, UNINIT)
        if lv is UNINIT:
            return True
        if stmt.rhs is None:
            is_null = lv == NULL
            return is_null if stmt.equal else not is_null
        rv = state.get(stmt.rhs, UNINIT)
        if rv is UNINIT:
            return True
        return (lv == rv) if stmt.equal else (lv != rv)

    def _step(self, loc: Loc, state: Dict[MemObject, Value]
              ) -> Dict[MemObject, Value]:
        stmt = self.program.stmt_at(loc)
        if isinstance(stmt, Copy):
            state = dict(state)
            state[stmt.lhs] = state.get(stmt.rhs, UNINIT)
        elif isinstance(stmt, AddrOf):
            state = dict(state)
            state[stmt.lhs] = stmt.target
        elif isinstance(stmt, Load):
            state = dict(state)
            target = state.get(stmt.rhs, UNINIT)
            if target in (NULL, UNINIT):
                state[stmt.lhs] = UNINIT
            else:
                state[stmt.lhs] = state.get(target, UNINIT)  # type: ignore[arg-type]
        elif isinstance(stmt, Store):
            target = state.get(stmt.lhs, UNINIT)
            if target not in (NULL, UNINIT):
                state = dict(state)
                state[target] = state.get(stmt.rhs, UNINIT)  # type: ignore[index]
        elif isinstance(stmt, NullAssign):
            state = dict(state)
            state[stmt.lhs] = NULL
        return state

    def _explore(self, func: str, node: int,
                 stack: List[Tuple[str, int]],
                 state: Dict[MemObject, Value],
                 steps: int, result: OracleResult) -> None:
        """DFS from (func, node) with ``state`` holding cell values."""
        while True:
            if result.paths_explored >= self.max_paths:
                result.truncated = True
                return
            if steps >= self.max_steps:
                result.truncated = True
                result.paths_explored += 1
                return
            steps += 1
            cfg = self.program.cfg_of(func)
            loc = Loc(func, node)
            stmt = cfg.stmt(node)

            if isinstance(stmt, CallStmt):
                self._record(loc, state, result)
                state = self._on_call(loc, stmt, state)
                succs = cfg.successors(node)
                targets = [t for t in stmt.targets
                           if t in self.program.functions]
                if not targets:
                    pass  # fall through like a skip
                else:
                    for t in targets:
                        callee = self.program.cfg_of(t)
                        for succ in succs:
                            self._explore(
                                t, callee.entry,
                                stack + [(func, succ)],
                                dict(state), steps, result)
                    return
            elif isinstance(stmt, Assume):
                if not self._assume_holds(stmt, state):
                    result.paths_explored += 1
                    return  # infeasible path: abandon it
                self._record(loc, state, result)
            elif isinstance(stmt, ReturnStmt):
                state = self._step(loc, state)
                self._record(loc, state, result)
                node = cfg.exit
                continue
            else:
                state = self._step(loc, state)
                self._record(loc, state, result)

            if node == cfg.exit:
                if stack:
                    (ret_func, ret_node) = stack[-1]
                    self._explore(ret_func, ret_node, stack[:-1],
                                  state, steps, result)
                else:
                    result.paths_explored += 1
                    self._on_path_end(state, result)
                return

            succs = cfg.successors(node)
            if not succs:
                result.paths_explored += 1
                self._on_path_end(state, result)
                return
            if len(succs) == 1:
                node = succs[0]
                continue
            for succ in succs:
                self._explore(func, succ, stack, dict(state), steps, result)
            return


def execute(program: Program, max_steps: int = 300,
            max_paths: int = 4000) -> OracleResult:
    """Convenience wrapper: run the bounded concrete executor."""
    return ConcreteExecutor(program, max_steps, max_paths).run()


# ---------------------------------------------------------------------------
# taint oracle
# ---------------------------------------------------------------------------

#: One concretely-realized flow: (source fn, source loc, sink fn,
#: sink loc, sink argument index).
RealizedFlow = Tuple[str, Loc, str, Loc, int]


class ConcreteTaintExecutor(ConcreteExecutor):
    """The concrete executor with library-call taint semantics layered on.

    Taint rides in the same state dict under ``("taint", cell)`` keys
    (value: frozenset of ``(source_fn, source_loc)`` events), so path
    enumeration, call/return and branch handling are inherited verbatim.
    Every sink hit observed on a concrete path is a *genuine* flow, so
    the static engine must report a superset:

        oracle.flows  ⊆  {flow.key() projections of run_taint(...)}
    """

    def __init__(self, program: Program, spec: Optional[object] = None,
                 max_steps: int = 300, max_paths: int = 4000) -> None:
        super().__init__(program, max_steps, max_paths)
        from .taint import TaintSpec
        self.spec = spec if spec is not None else TaintSpec.default()
        self.flows: Set[RealizedFlow] = set()

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _taint(state: Dict[MemObject, Value],
               cell: Value) -> FrozenSet[Tuple[str, Loc]]:
        return state.get(("taint", cell), frozenset())  # type: ignore[arg-type,return-value]

    # -- semantics ---------------------------------------------------------
    def _step(self, loc: Loc, state: Dict[MemObject, Value]
              ) -> Dict[MemObject, Value]:
        from ..ir import ExternCall
        stmt = self.program.stmt_at(loc)
        if isinstance(stmt, ExternCall):
            return self._extern(loc, stmt, state)
        pre = state
        state = dict(super()._step(loc, state))
        if isinstance(stmt, Copy):
            state[("taint", stmt.lhs)] = self._taint(pre, stmt.rhs)  # type: ignore[index]
        elif isinstance(stmt, (AddrOf, NullAssign)):
            state[("taint", stmt.lhs)] = frozenset()  # type: ignore[index]
        elif isinstance(stmt, Load):
            target = pre.get(stmt.rhs, UNINIT)
            state[("taint", stmt.lhs)] = (  # type: ignore[index]
                frozenset() if target in (NULL, UNINIT)
                else self._taint(pre, target))
        elif isinstance(stmt, Store):
            target = pre.get(stmt.lhs, UNINIT)
            if target not in (NULL, UNINIT):
                state[("taint", target)] = self._taint(pre, stmt.rhs)  # type: ignore[index]
        return state

    def _extern(self, loc: Loc, stmt: "object",
                state: Dict[MemObject, Value]) -> Dict[MemObject, Value]:
        """Mirror the engine's extern-call order: sink check on the
        pre-call state, then result kill, sanitizer, source gen."""
        state = dict(state)
        name, args, ret = stmt.name, stmt.args, stmt.result  # type: ignore[attr-defined]
        sink = self.spec.sinks.get(name)
        if sink is not None:
            for idx in sink.args:
                if idx >= len(args):
                    continue
                events = set(self._taint(state, args[idx]))
                pointee = state.get(args[idx], UNINIT)
                if pointee not in (NULL, UNINIT):
                    events |= self._taint(state, pointee)
                for src_fn, src_loc in events:
                    self.flows.add((src_fn, src_loc, name, loc, idx))
        if ret is not None:
            state[ret] = UNINIT
            state[("taint", ret)] = frozenset()  # type: ignore[index]
        sanitizer = self.spec.sanitizers.get(name)
        if sanitizer is not None:
            for effect in sanitizer.cleans:
                if effect == "return":
                    if ret is not None:
                        state[("taint", ret)] = frozenset()  # type: ignore[index]
                elif effect < len(args):
                    state[("taint", args[effect])] = frozenset()  # type: ignore[index]
                    pointee = state.get(args[effect], UNINIT)
                    if pointee not in (NULL, UNINIT):
                        state[("taint", pointee)] = frozenset()  # type: ignore[index]
        source = self.spec.sources.get(name)
        if source is not None:
            event = frozenset({(name, loc)})
            for effect in source.taints:
                if effect == "return":
                    if ret is not None:
                        state[("taint", ret)] = event  # type: ignore[index]
                elif effect < len(args):
                    pointee = state.get(args[effect], UNINIT)
                    if pointee not in (NULL, UNINIT):
                        state[("taint", pointee)] = event  # type: ignore[index]
        return state


def execute_taint(program: Program, spec: Optional[object] = None,
                  max_steps: int = 300, max_paths: int = 4000
                  ) -> Tuple[OracleResult, Set[RealizedFlow]]:
    """Run the taint oracle; returns (points-to facts, realized flows)."""
    executor = ConcreteTaintExecutor(program, spec, max_steps, max_paths)
    result = executor.run()
    return result, executor.flows


# ---------------------------------------------------------------------------
# heap-lifetime oracle (memory leaks)
# ---------------------------------------------------------------------------


class ConcreteHeapExecutor(ConcreteExecutor):
    """The concrete executor with allocation-lifetime events layered on.

    Each allocation site's lifecycle rides in the state under
    ``("heap", site)`` keys (``"live"`` / ``"freed"``).  At every genuine
    path completion the executor walks the concrete reference chain from
    the exit roots (globals plus the entry function's frame) and tallies,
    per site: paths where it was allocated, freed, and left live but
    unreachable.  :attr:`must_leaked` is then the set of sites leaked on
    *every* path that allocated them and freed on none — exactly the
    must-fact ``checkers/leak.py`` claims, so its findings must cover it
    (0 false negatives) on oracle-sized programs.
    """

    def __init__(self, program: Program, max_steps: int = 300,
                 max_paths: int = 4000) -> None:
        super().__init__(program, max_steps, max_paths)
        self.alloc_paths: Dict[MemObject, int] = {}
        self.freed_paths: Dict[MemObject, int] = {}
        self.leaked_paths: Dict[MemObject, int] = {}

    def _step(self, loc: Loc, state: Dict[MemObject, Value]
              ) -> Dict[MemObject, Value]:
        from ..ir import AllocSite
        stmt = self.program.stmt_at(loc)
        pre = state
        state = super()._step(loc, state)
        if isinstance(stmt, AddrOf) and isinstance(stmt.target, AllocSite):
            state = dict(state)
            state[("heap", stmt.target)] = "live"  # type: ignore[index]
        elif isinstance(stmt, NullAssign) and stmt.is_free:
            victim = pre.get(stmt.lhs, UNINIT)
            if isinstance(victim, AllocSite):
                state = dict(state)
                state[("heap", victim)] = "freed"  # type: ignore[index]
        return state

    def _on_path_end(self, state: Dict[MemObject, Value],
                     result: OracleResult) -> None:
        reachable: Set[MemObject] = set()
        frontier = [cell for cell in state
                    if isinstance(cell, Var)
                    and cell.function in (None, self._entry)]
        while frontier:
            value = state.get(frontier.pop(), UNINIT)
            if value in (NULL, UNINIT) or value in reachable \
                    or isinstance(value, tuple):
                continue
            reachable.add(value)  # type: ignore[arg-type]
            frontier.append(value)
        for cell, value in state.items():
            if not (isinstance(cell, tuple) and cell[0] == "heap"):
                continue
            site = cell[1]
            self.alloc_paths[site] = self.alloc_paths.get(site, 0) + 1
            if value == "freed":
                self.freed_paths[site] = self.freed_paths.get(site, 0) + 1
            elif site not in reachable:
                self.leaked_paths[site] = \
                    self.leaked_paths.get(site, 0) + 1

    @property
    def must_leaked(self) -> Set[MemObject]:
        """Sites leaked on every completed path that allocated them and
        freed on none — the concrete ground truth for must-leaks."""
        return {site for site, n in self.alloc_paths.items()
                if self.leaked_paths.get(site, 0) == n
                and self.freed_paths.get(site, 0) == 0}


def execute_heap(program: Program, max_steps: int = 300,
                 max_paths: int = 4000
                 ) -> Tuple[OracleResult, "ConcreteHeapExecutor"]:
    """Run the heap-lifetime oracle; returns (facts, executor)."""
    executor = ConcreteHeapExecutor(program, max_steps, max_paths)
    result = executor.run()
    return result, executor


# ---------------------------------------------------------------------------
# lock-order oracle (deadlocks)
# ---------------------------------------------------------------------------

#: One concretely-observed acquisition order: lock ``wanted`` was taken
#: at ``site`` while ``held`` was already held.
RealizedOrder = Tuple[MemObject, MemObject, Loc]


class ConcreteLockExecutor(ConcreteExecutor):
    """The concrete executor with lock-acquisition events layered on.

    The held-lock stack rides in the state under the ``("held",)`` key
    (a tuple, so dict copies share it immutably).  Every ``A`` held →
    ``B`` acquired observation on a concrete path is recorded in
    :attr:`orders`; :func:`execute_lock_orders` then attributes each
    order to the threads that can execute its site and reports the
    cross-thread inverse pairs — each one a concretely-realizable
    deadlock schedule the static checker must cover.
    """

    def __init__(self, program: Program, max_steps: int = 300,
                 max_paths: int = 4000) -> None:
        super().__init__(program, max_steps, max_paths)
        self.orders: Set[RealizedOrder] = set()

    def _on_call(self, loc: Loc, stmt: CallStmt,
                 state: Dict[MemObject, Value]) -> Dict[MemObject, Value]:
        from ..applications.lockset import LOCK_FUNCTIONS, UNLOCK_FUNCTIONS
        from ..ir.program import param_var
        callee = stmt.callee
        if callee is None:
            return state
        if callee in LOCK_FUNCTIONS:
            obj = state.get(param_var(callee, 0), UNINIT)
            if obj in (NULL, UNINIT) or isinstance(obj, tuple):
                return state
            held = state.get(("held",), ())  # type: ignore[arg-type]
            for prior in held:  # type: ignore[union-attr]
                if prior != obj:
                    self.orders.add((prior, obj, loc))
            state = dict(state)
            state[("held",)] = tuple(held) + (obj,)  # type: ignore[index]
        elif callee in UNLOCK_FUNCTIONS:
            obj = state.get(param_var(callee, 0), UNINIT)
            held = state.get(("held",), ())  # type: ignore[arg-type]
            if obj in held:  # type: ignore[operator]
                state = dict(state)
                state[("held",)] = tuple(  # type: ignore[index]
                    h for h in held if h != obj)  # type: ignore[union-attr]
        return state


def execute_lock_orders(program: Program, entries: List[str],
                        max_steps: int = 300, max_paths: int = 4000
                        ) -> Tuple[Set[RealizedOrder],
                                   Set[FrozenSet[MemObject]]]:
    """Run the lock oracle from the program entry and derive the
    concretely-realizable two-lock deadlock cycles.

    Returns ``(orders, cycles)`` where each cycle is the ``{A, B}`` of
    an inverse acquisition pair driveable by two distinct threads.
    """
    from ..applications.races import thread_assignment
    executor = ConcreteLockExecutor(program, max_steps, max_paths)
    executor.run()
    threads = thread_assignment(program, entries)
    cycles: Set[FrozenSet[MemObject]] = set()
    for a, b, site_ab in executor.orders:
        t_ab = threads.get(site_ab.function, frozenset())
        for held2, wanted2, site_ba in executor.orders:
            if (held2, wanted2) != (b, a):
                continue
            t_ba = threads.get(site_ba.function, frozenset())
            # Two distinct threads can drive the inverse pair iff both
            # sites run in some thread and the union names two threads.
            if t_ab and t_ba and len(t_ab | t_ba) >= 2:
                cycles.add(frozenset({a, b}))
    return executor.orders, cycles

"""Field-sensitive Steensgaard without oversharing (Kuderski et al.).

Classic Steensgaard keeps **one** pointee cell per union-find class, so
two independent facts get conflated the moment objects share a class:

* every field of every object in the class shares one contents cell, and
* every value ever *stored* through a pointer into the class is unified
  with that cell — and therefore with every other stored value — even
  when no load ever reads the cell back.

The second point is what makes ``frontend/normalize.py``'s struct
flattening overshare: the normalizer mirrors each pointer-typed struct
field write into a per-``(struct, field)`` summary cell
(``Store($fld$S$f, src)`` aimed at ``AllocSite("field:S.f")``).  Summary
cells are write-mostly by construction, yet classic unification merges
the pointee classes of *all* the stored sources into one giant
partition, inflating every downstream cost (slice sizes, FSCS solve
time, payload bytes, fleet routing weight).

This module keeps unification's near-linear cost while splitting both
axes, following "Unification-based Pointer Analysis without Oversharing"
(see PAPERS.md):

* **cells are ``(class, field key)`` pairs** — each union-find class
  carries one contents cell per *field key* (derived from the
  normalizer's naming conventions, see :func:`field_key`), and class
  joins merge cell tables pointwise by key, never across keys.  A class
  that accumulates more than ``sharing_bound`` distinct keys collapses
  back to a single shared cell (the classic fallback), bounding the
  per-class cost exactly like the paper's type-based sharing limit.
* **store unification is deferred on heap-only classes.**  A store into
  a class containing only allocation sites (no variable — i.e. contents
  that can only ever be read back through a ``Load``) records the stored
  value in a class-wide pending *inflow* list instead of unifying.  The
  first load observing the class flushes every pending inflow (so
  anything a program can read is fully unified — classic behaviour), but
  classes that are written and never read keep their sources in separate
  partitions.  Classes containing a variable store eagerly from birth,
  because a variable's value can be read by a plain ``Copy`` without any
  ``Load``; this keeps ``may_alias``/``same_partition`` an alias cover
  over the pointer universe (see the soundness note below).  Observation
  and deferral are *class*-granular: a load reads through a single value
  cell, so it necessarily conflates every field slot of the class it
  reads — the per-field split only pays off on classes no load touches,
  which is exactly the write-mostly registry shape the normalizer emits.

Because every difference from the classic solver only *removes* or
*splits* unifications, the resulting partitions refine classic
Steensgaard's (every field-sensitive partition is contained in exactly
one classic partition — the cover check in ``tests``), and Theorem 2's
"partitions cover clusters" invariant continues to hold, so the cascade
can use this result everywhere a :class:`SteensgaardResult` is accepted.

Soundness
---------

For any pointer variable ``p``, ``points_to(p)`` and partition
membership are computed from eagerly-unified state only — a variable's
value cell is observed from birth, and every ``Load`` observes the cells
it reads — so the classic argument applies unchanged: any value flow
between variables joins their cells, hence two variables that may alias
share a partition.  Deferred (never-observed) inflows exist only on
heap-only cells; they are folded into :meth:`points_to` for allocation
sites as a set *union* (no unification), so points-to facts remain
over-approximations while the partitions stay finer.

Unlike the classic result the partition-level points-to graph here has
out-degree greater than one (one partition's members can keep per-field
pointees apart), so the hierarchy helpers (`depth_of`, ``higher_than``,
cycle collapse) run over a multigraph, and ``pointee_keys`` exposes the
full successor set — ``core/relevant.py`` indexes stores under every
key.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..ir import (
    AddrOf,
    AllocSite,
    Copy,
    Load,
    MemObject,
    Program,
    Statement,
    Store,
    Var,
)
from .steensgaard import Steensgaard, SteensgaardResult, _Key
from .unionfind import UnionFind

#: Collapse a class's per-field cell table past this many distinct keys.
DEFAULT_SHARING_BOUND = 8

#: The cell key a collapsed (over-bound) class keeps.
COLLAPSED_KEY = "*"


def field_key(obj: object) -> str:
    """The field key an abstract object carries, from the normalizer's
    naming conventions.

    * ``AllocSite("field:S.f")`` — a per-(struct, field) summary cell —
      keys as ``"S.f"``;
    * ``Var("$fld$S$f")`` — the matching summary pointer — also
      ``"S.f"``;
    * flattened struct locals ``base__leaf`` key as ``"leaf"`` (their
      struct tag is not recoverable after flattening);
    * everything else (plain variables, heap sites, fresh cells) keys as
      ``""``.

    Objects with different keys are "type-incompatible" in the sense of
    the sharing bound: their contents cells are never unified while
    their class stays under the bound.
    """
    if isinstance(obj, AllocSite):
        label = obj.label
        if label.startswith("field:"):
            return label[len("field:"):]
        return ""
    if isinstance(obj, Var):
        name = obj.name
        if name.startswith("$fld$"):
            return ".".join(name[len("$fld$"):].split("$"))
        if not name.startswith("$") and "__" in name:
            return name.split("__", 1)[1].replace("__", ".")
    return ""


class _FSSolver:
    """One field-sensitive unification pass over a statement sequence.

    All bookkeeping is keyed by union-find root and maintained under
    three class-level invariants (restored after every merge):

    * an **observed** class (some ``Load`` read through it) holds one
      shared contents class across all of its field slots and carries no
      deferred inflows.  A load's left-hand side has a single value
      cell, so unification necessarily conflates every slot the load may
      read; making the conflation a class invariant keeps later joins
      sound when they introduce *new* field keys into the class.
    * an unobserved class **containing a variable** stores eagerly:
      every stored value joins every field slot (a variable's value is
      readable by a plain ``Copy``, so deferring would break the alias
      cover), and the stored values are remembered as *writers* so slots
      a later join introduces can be replayed.
    * an unobserved **heap-only** class defers: stored values accumulate
      in a class-wide pending list and only unify when a load observes
      the class (or a merge adds a variable) — the oversharing fix.
    """

    def __init__(self, sharing_bound: int = DEFAULT_SHARING_BOUND) -> None:
        self.bound = max(1, sharing_bound)
        self.uf: UnionFind[object] = UnionFind()
        # Per-class cell table: root -> {field key -> cell member}.
        # Cell members are arbitrary members of the contents class,
        # re-canonicalized through find on access (same convention as
        # the classic solver's single-cell table).
        self._cells: Dict[object, Dict[str, object]] = {}
        # Field keys of a class's registered program objects (fresh
        # cell markers never contribute a key).
        self._fks: Dict[object, Set[str]] = {}
        # True when the class contains at least one Var.
        self._has_var: Dict[object, bool] = {}
        # Classes some Load has read through.
        self._observed: Set[object] = set()
        # Class-wide deferred stores (heap-only, unobserved classes).
        self._inflows: Dict[object, List[Var]] = {}
        # Values stored eagerly while the class was unobserved —
        # replayed onto field slots a later join introduces.
        self._writers: Dict[object, List[Var]] = {}
        # Classes whose cell table hit the sharing bound and collapsed.
        self._collapsed: Set[object] = set()
        self._fresh = 0

    # -- class-level accessors ------------------------------------------
    def _root(self, item: object) -> object:
        return self.uf.find(item)

    def _fresh_cell(self) -> object:
        self._fresh += 1
        return ("$cell", self._fresh)

    def register(self, obj: MemObject) -> object:
        """Record a program object's field key / var-ness on its class."""
        known = obj in self.uf
        root = self._root(obj)
        if not known:
            self._fks.setdefault(root, set()).add(field_key(obj))
            if isinstance(obj, Var) and not self._has_var.get(root):
                self._set_has_var(root)
        return root

    def _set_has_var(self, root: object) -> None:
        """Mark a class as containing a variable, converting any
        deferred inflows to eager stores — variable values are readable
        without a Load."""
        self._has_var[root] = True
        pending = self._inflows.pop(root, None)
        for v in pending or ():
            self._eager_store(self._root(root), v)

    # -- cells ----------------------------------------------------------
    def _slot_key(self, root: object, fk: str) -> str:
        if root in self._collapsed:
            return COLLAPSED_KEY
        return fk

    def cell(self, item: object, fk: str = "") -> object:
        """The contents class of ``item``'s class under field key
        ``fk``, created on demand."""
        root = self._root(item)
        fk = self._slot_key(root, fk)
        table = self._cells.setdefault(root, {})
        member = table.get(fk)
        if member is None:
            member = self._fresh_cell()
            self.uf.add(member)
            table[fk] = member
            self._on_new_slot(root, fk)
            # The invariant fixups may have collapsed the table or
            # merged the owner class — re-read the slot.
            root = self._root(item)
            member = self._cells[root][self._slot_key(root, fk)]
        return self._root(member)

    def _on_new_slot(self, root: object, fk: str) -> None:
        """Restore class invariants after a slot creation: observed
        classes share one contents class across slots, unobserved
        var-holding classes have every writer in every slot."""
        if root in self._observed:
            table = self._cells[root]
            others = [m for k, m in table.items() if k != fk]
            if others:
                self.join(table[fk], others[0])
            return
        for v in list(self._writers.get(root, ())):
            r = self._root(root)
            self.join(self.cell(r, fk), self.var_cell(v))
        self._check_bound(self._root(root))

    def var_cell(self, v: MemObject) -> object:
        """The value cell of ``v`` itself: slot ``(class(v), fk(v))``."""
        self.register(v)
        return self.cell(v, field_key(v))

    def access_fks(self, root: object) -> List[str]:
        """Every field key a load/store through a pointer into this
        class must touch: keys of registered members plus keys of
        already-created cells (unions may have added either first)."""
        if root in self._collapsed:
            return [COLLAPSED_KEY]
        fks = set(self._fks.get(root, ()))
        fks.update(self._cells.get(root, {}).keys())
        if not fks:
            fks.add("")
        return sorted(fks)

    def _check_bound(self, root: object) -> None:
        """Collapse the class's cell table once it exceeds the sharing
        bound — the classic single-cell fallback."""
        root = self._root(root)
        if root in self._collapsed:
            return
        table = self._cells.get(root, {})
        if len(table) <= self.bound:
            return
        # Mark collapsed *before* joining: a slot's contents class can
        # be the owner itself (the cyclic case), in which case the joins
        # below re-enter the owner's bookkeeping and must already see
        # the collapsed layout.
        items = sorted(table.items())
        base = items[0][1]
        self._collapsed.add(root)
        self._cells[root] = {COLLAPSED_KEY: base}
        for _fk, member in items[1:]:
            self.join(base, member)

    def _merge_slots(self, root: object) -> None:
        """Join every existing slot of the class into one contents
        class (the observed-class invariant)."""
        while True:
            root = self._root(root)
            table = self._cells.get(root, {})
            roots = sorted({self._root(m) for m in table.values()},
                           key=str)
            if len(roots) <= 1:
                return
            self.join(roots[0], roots[1])

    def _any_slot(self, root: object) -> object:
        """Some slot of an observed class — they all share one contents
        class, so any field key works."""
        root = self._root(root)
        return self.cell(root, self.access_fks(root)[0])

    def _observe_class(self, root: object) -> object:
        """A Load read through the class: merge its slots, flush every
        deferred inflow, and keep stores eager from now on."""
        root = self._root(root)
        if root in self._observed:
            return root
        self._observed.add(root)
        self._writers.pop(root, None)  # moot once the slots are one
        self._merge_slots(root)
        pending = self._inflows.pop(self._root(root), None)
        for v in pending or ():
            self.join(self._any_slot(root), self.var_cell(v))
        return self._root(root)

    def _eager_store(self, root: object, value: Var) -> None:
        """Join ``value`` into every field slot of the class, recording
        it for replay onto slots a later join introduces."""
        root = self._root(root)
        self._writers.setdefault(root, []).append(value)
        for fk in self.access_fks(root):
            r = self._root(root)
            self.join(self.cell(r, fk), self.var_cell(value))

    # -- join ------------------------------------------------------------
    def join(self, a: object, b: object) -> object:
        """Unify the classes of ``a`` and ``b``, merging their cell
        tables pointwise by field key (Steensgaard's join, split per
        field), then restore the class invariants."""
        ra, rb = self._root(a), self._root(b)
        if ra == rb:
            return ra
        cells_a = self._cells.pop(ra, None) or {}
        cells_b = self._cells.pop(rb, None) or {}
        fks_a = self._fks.pop(ra, None) or set()
        fks_b = self._fks.pop(rb, None) or set()
        in_a = self._inflows.pop(ra, None) or []
        in_b = self._inflows.pop(rb, None) or []
        wr_a = self._writers.pop(ra, None) or []
        wr_b = self._writers.pop(rb, None) or []
        observed = ra in self._observed or rb in self._observed
        self._observed.discard(ra)
        self._observed.discard(rb)
        var_a = self._has_var.pop(ra, False)
        var_b = self._has_var.pop(rb, False)
        collapsed = ra in self._collapsed or rb in self._collapsed
        self._collapsed.discard(ra)
        self._collapsed.discard(rb)
        # Access sets before the merge: a side's writers have reached
        # exactly its own slots, so the other side's contribution is
        # what needs replaying below.
        acc_a = fks_a | set(cells_a)
        acc_b = fks_b | set(cells_b)

        root = self.uf.union(ra, rb)

        fks = fks_a | fks_b
        if fks:
            self._fks[root] = fks
        if var_a or var_b:
            self._has_var[root] = True
        if collapsed:
            self._collapsed.add(root)
        if observed:
            self._observed.add(root)

        merged: Dict[str, object] = dict(cells_a)
        deferred_joins: List[Tuple[object, object]] = []
        for fk, member in cells_b.items():
            existing = merged.get(fk)
            if existing is None:
                merged[fk] = member
            else:
                deferred_joins.append((existing, member))
        if collapsed and len(merged) > 1:
            items = sorted(merged.items())
            base = items[0][1]
            for _fk, member in items[1:]:
                deferred_joins.append((base, member))
            merged = {COLLAPSED_KEY: base}
        if merged:
            self._cells[root] = merged
        if in_a or in_b:
            self._inflows[root] = in_a + in_b
        if wr_a or wr_b:
            self._writers[root] = wr_a + wr_b

        # Resolve pointwise cell joins after the tables are in place so
        # recursive joins see consistent state.
        for x, y in deferred_joins:
            self.join(x, y)

        root = self._root(root)
        self._check_bound(root)
        root = self._root(root)

        # Restore the class invariants the merge may have broken.
        if root in self._observed:
            self._merge_slots(root)
            root = self._root(root)
            self._writers.pop(root, None)
            pending = self._inflows.pop(root, None)
            for v in pending or ():
                self.join(self._any_slot(root), self.var_cell(v))
        elif self._has_var.get(root):
            # A var-free side's pendings become eager, and each side's
            # writers replay onto the field slots only the other side
            # knew about.
            pending = self._inflows.pop(root, None)
            for v in pending or ():
                self._eager_store(self._root(root), v)
            for writers, missing in ((wr_a, acc_b - acc_a),
                                     (wr_b, acc_a - acc_b)):
                for fk in sorted(missing):
                    for v in writers:
                        r = self._root(root)
                        self.join(self.cell(r, self._slot_key(r, fk)),
                                  self.var_cell(v))
        return self._root(root)

    # -- statement transfer ---------------------------------------------
    def process(self, stmt: Statement) -> None:
        if isinstance(stmt, Copy):
            # x = y : unify value cells of x and y.
            self.join(self.var_cell(stmt.lhs), self.var_cell(stmt.rhs))
        elif isinstance(stmt, AddrOf):
            # x = &t : t joins x's value cell.
            self.register(stmt.target)
            self.join(self.var_cell(stmt.lhs), stmt.target)
        elif isinstance(stmt, Load):
            # x = *y : y's pointee class is observed (slots merge,
            # pending stores flush) and its contents join x's value
            # cell.
            self.register(stmt.lhs)
            self.register(stmt.rhs)
            target = self._observe_class(self.var_cell(stmt.rhs))
            self.join(self.var_cell(stmt.lhs), self._any_slot(target))
        elif isinstance(stmt, Store):
            # *x = y : y's value flows into every field cell of x's
            # targets; unobserved heap-only classes record the inflow
            # instead of unifying (the deferred-store rule).
            self.register(stmt.lhs)
            self.register(stmt.rhs)
            target = self._root(self.var_cell(stmt.lhs))
            if target in self._observed:
                self.join(self._any_slot(target), self.var_cell(stmt.rhs))
            elif self._has_var.get(target):
                self._eager_store(target, stmt.rhs)
            else:
                self._inflows.setdefault(target, []).append(stmt.rhs)
        # NullAssign / calls / skip have no unification effect.

    # -- result-time helpers --------------------------------------------
    def pending_inflows(self, root: object) -> List[Var]:
        return self._inflows.get(self._root(root), [])


class SteensgaardFSResult(SteensgaardResult):
    """Field-sensitive partitions with the classic result's API.

    The partition graph is a multigraph (``_succ`` maps a partition key
    to a *set* of successor keys), so every hierarchy method is
    reimplemented; the classic single-successor ``_edges`` table is never
    populated.
    """

    def __init__(self, program: Program, solver: _FSSolver,
                 universe: Set[Var]) -> None:
        self.program = program
        self._fs = solver
        self.universe = universe
        # Materialize every program object's value slot: slot creation
        # runs the invariant fixups (observed classes merge the new slot
        # in, writers replay onto it), so after this loop every object's
        # partition key resolves through its cell table entry.
        for obj in sorted(program.objects, key=str):
            solver.var_cell(obj)
        self._derive_fs()
        self._collapse_cycles_fs()
        self._build_depths_fs()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _partition_key(self, obj: MemObject, root: object) -> _Key:
        solver = self._fs
        table = solver._cells.get(root)
        fk = solver._slot_key(root, field_key(obj))
        if table is not None and fk in table:
            return ("c", solver._root(table[fk]))
        return ("t", (root, fk))

    def _derive_fs(self) -> None:
        solver = self._fs
        self._node_members: Dict[object, Set[MemObject]] = {}
        for obj in sorted(self.program.objects, key=str):
            self._node_members.setdefault(solver._root(obj), set()).add(obj)
        self._part_of: Dict[MemObject, _Key] = {}
        parts: Dict[_Key, Set[MemObject]] = {}
        for root, members in self._node_members.items():
            for m in members:
                key = self._partition_key(m, root)
                parts.setdefault(key, set()).add(m)
                self._part_of[m] = key
        self._parts: Dict[_Key, FrozenSet[MemObject]] = {
            k: frozenset(v) for k, v in parts.items()}
        # Partition-level points-to edges.  Partition P keyed by cell
        # class c points to the partitions of the objects living in c —
        # out-degree can exceed one because c's members can carry
        # different field keys (their own value cells differ).
        self._succ: Dict[_Key, Set[_Key]] = {}
        self._selfloops: Set[_Key] = set()
        for key in self._parts:
            if key[0] != "c":
                continue
            targets = self._node_members.get(key[1])
            if not targets:
                continue
            for m in targets:
                tkey = self._part_of[m]
                if tkey == key:
                    self._selfloops.add(key)
                else:
                    self._succ.setdefault(key, set()).add(tkey)

    def _collapse_cycles_fs(self) -> None:
        while True:
            sccs = self._cyclic_sccs()
            if not sccs:
                return
            for comp in sccs:
                cells = sorted((k[1] for k in comp if k[0] == "c"), key=str)
                if len(cells) > 1:
                    base = cells[0]
                    for other in cells[1:]:
                        self._fs.join(base, other)
            self._derive_fs()

    def _cyclic_sccs(self) -> List[List[_Key]]:
        """Tarjan over the partition multigraph; returns the non-trivial
        strongly connected components (self-loops excluded — they are
        the paper's legal cyclic case)."""
        index: Dict[_Key, int] = {}
        low: Dict[_Key, int] = {}
        on_stack: Set[_Key] = set()
        stack: List[_Key] = []
        counter = [0]
        out: List[List[_Key]] = []
        keys = sorted(self._parts, key=str)

        for start in keys:
            if start in index:
                continue
            work: List[Tuple[_Key, List[_Key], int]] = [
                (start, sorted(self._succ.get(start, ()), key=str), 0)]
            index[start] = low[start] = counter[0]
            counter[0] += 1
            stack.append(start)
            on_stack.add(start)
            while work:
                node, succs, i = work[-1]
                if i < len(succs):
                    work[-1] = (node, succs, i + 1)
                    nxt = succs[i]
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append(
                            (nxt, sorted(self._succ.get(nxt, ()), key=str), 0))
                    elif nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    comp: List[_Key] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    if len(comp) > 1:
                        out.append(comp)
        return out

    def _build_depths_fs(self) -> None:
        indeg: Dict[_Key, int] = {k: 0 for k in self._parts}
        for _src, dsts in self._succ.items():
            for dst in dsts:
                indeg[dst] += 1
        order: List[_Key] = sorted(
            (k for k, d in indeg.items() if d == 0), key=str)
        depth: Dict[_Key, int] = {k: 0 for k in order}
        i = 0
        while i < len(order):
            node = order[i]
            i += 1
            for dst in sorted(self._succ.get(node, ()), key=str):
                depth[dst] = max(depth.get(dst, 0), depth[node] + 1)
                indeg[dst] -= 1
                if indeg[dst] == 0:
                    order.append(dst)
        self._depth = depth

    # ------------------------------------------------------------------
    # PointsToResult interface
    # ------------------------------------------------------------------
    def points_to(self, p: Var) -> FrozenSet[MemObject]:
        key = self._part_of.get(p)
        if key is None or key[0] != "c":
            return frozenset(self._pending_targets(p))
        objs: Set[MemObject] = set(self._node_members.get(key[1], ()))
        objs |= self._pending_targets(p)
        return frozenset(objs)

    def _pending_targets(self, obj: MemObject) -> Set[MemObject]:
        """Targets held via deferred (never-observed) stores into
        ``obj``'s value slot — folded in as a set union, not a
        unification, so the partitions stay finer while points-to stays
        a sound over-approximation.  Stored values are always variables,
        whose own cells are observed from birth, so one level suffices.
        Variables never carry pending inflows themselves (their classes
        are eager), making this a no-op on the pointer universe."""
        solver = self._fs
        if obj not in solver.uf:
            return set()
        values = solver.pending_inflows(solver._root(obj))
        if not values:
            return set()
        out: Set[MemObject] = set()
        for v in values:
            vkey = self._part_of.get(v)
            if vkey is not None and vkey[0] == "c":
                out |= self._node_members.get(vkey[1], set())
        return out

    # ------------------------------------------------------------------
    # partitions / hierarchy API used by the bootstrap core
    # ------------------------------------------------------------------
    def higher_than(self, p: MemObject, q: MemObject) -> bool:
        kp, kq = self._part_of.get(p), self._part_of.get(q)
        if kp is None or kq is None or kp == kq:
            return False
        seen: Set[_Key] = set()
        frontier = [kp]
        while frontier:
            node = frontier.pop()
            for nxt in self._succ.get(node, ()):
                if nxt == kq:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def pointee_partition(self, p: MemObject) -> Optional[FrozenSet[MemObject]]:
        """The union of the partitions holding the cells ``*p`` may
        denote.  Classic results return exactly one partition; here a
        pointee class can span several (one per field key), and the
        union is the sound cover ``core/relevant.py`` needs."""
        key = self._part_of.get(p)
        if key is None:
            return None
        members: Set[MemObject] = set()
        if key in self._selfloops:
            members |= self._parts[key]
        for succ in self._succ.get(key, ()):
            members |= self._parts[succ]
        return frozenset(members) if members else None

    def pointee_keys(self, p: MemObject) -> Tuple[_Key, ...]:
        """All partition keys ``*p`` may denote — the multi-successor
        counterpart of following the classic single edge."""
        key = self._part_of.get(p)
        if key is None:
            return ()
        keys: Set[_Key] = set()
        if key in self._selfloops:
            keys.add(key)
        keys.update(self._succ.get(key, ()))
        return tuple(sorted(keys, key=str))

    def is_cyclic_partition(self, p: MemObject) -> bool:
        key = self._part_of.get(p)
        return key is not None and key in self._selfloops

    def class_graph(self) -> List[Tuple[FrozenSet[MemObject], FrozenSet[MemObject]]]:
        pairs = []
        for src in sorted(self._succ, key=str):
            for dst in sorted(self._succ[src], key=str):
                pairs.append((self._parts[src], self._parts[dst]))
        return pairs

    # Diagnostics -------------------------------------------------------
    def sharing_stats(self) -> Dict[str, int]:
        """How much oversharing the field split avoided: counts of
        multi-key cell tables, collapsed classes, and cells whose
        deferred stores never unified."""
        solver = self._fs
        multi = sum(1 for t in solver._cells.values() if len(t) > 1)
        deferred = sum(len(vs) for vs in solver._inflows.values())
        return {
            "multi_field_classes": multi,
            "collapsed_classes": len(solver._collapsed),
            "deferred_stores": deferred,
        }


class SteensgaardFS(Steensgaard):
    """Run the field-sensitive Steensgaard variant.

    Drop-in for :class:`Steensgaard`: same constructor shape plus the
    ``sharing_bound`` knob, and the result subclasses
    :class:`SteensgaardResult` so every cascade consumer accepts it.
    """

    name = "steensgaard_fs"

    def __init__(self, program: Program,
                 statements: Optional[Iterable[Statement]] = None,
                 sharing_bound: int = DEFAULT_SHARING_BOUND) -> None:
        super().__init__(program, statements)
        self._sharing_bound = sharing_bound

    def run(self) -> SteensgaardFSResult:
        solver = _FSSolver(sharing_bound=self._sharing_bound)
        stmts = self._statements
        if stmts is None:
            stmts = (s for _, s in self.program.statements())
        for stmt in stmts:
            solver.process(stmt)
        for obj in sorted(self.program.objects, key=str):
            solver.register(obj)
        return SteensgaardFSResult(self.program, solver,
                                   set(self.program.pointers))

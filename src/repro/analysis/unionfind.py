"""Union-find with member tracking.

Steensgaard's analysis is essentially a clever use of this structure; we
also track the concrete member set of every class so that Steensgaard
*partitions* (the paper's clusters of the first cascade stage) can be
enumerated without a separate pass.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Set, TypeVar

T = TypeVar("T", bound=Hashable)


class UnionFind(Generic[T]):
    """Disjoint sets over hashable items, union by size + path compression.

    Items are added lazily on first use; ``find`` of an unseen item makes
    it a singleton class.
    """

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: Dict[T, T] = {}
        self._size: Dict[T, int] = {}
        self._members: Dict[T, List[T]] = {}
        for item in items:
            self.add(item)

    def add(self, item: T) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1
            self._members[item] = [item]

    def __contains__(self, item: T) -> bool:
        return item in self._parent

    def __iter__(self) -> Iterator[T]:
        return iter(self._parent)

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, item: T) -> T:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: T, b: T) -> T:
        """Merge the classes of ``a`` and ``b``; returns the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._members[ra].extend(self._members.pop(rb))
        return ra

    def same(self, a: T, b: T) -> bool:
        return self.find(a) == self.find(b)

    def members(self, item: T) -> List[T]:
        """All items in ``item``'s class (includes ``item``)."""
        return list(self._members[self.find(item)])

    def roots(self) -> List[T]:
        return [r for r in self._parent if self._parent[r] == r]

    def classes(self) -> List[List[T]]:
        return [list(self._members[r]) for r in self.roots()]

    def class_count(self) -> int:
        return len(self._members)

    def validate(self) -> None:
        """Invariant check used by property tests."""
        seen: Set[T] = set()
        total = 0
        for root, members in self._members.items():
            if self._parent[root] != root:
                raise AssertionError("member map keyed by non-root")
            for m in members:
                if self.find(m) != root:
                    raise AssertionError(f"{m!r} not in class of its root")
                if m in seen:
                    raise AssertionError(f"{m!r} in two classes")
                seen.add(m)
            total += len(members)
        if total != len(self._parent):
            raise AssertionError("member lists do not cover all items")

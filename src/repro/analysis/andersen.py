"""Andersen's inclusion-based points-to analysis (PhD thesis, 1994).

The second cascade stage.  Unlike Steensgaard's analysis it respects the
direction of assignments, so its points-to sets are smaller, but they are
*not* equivalence classes: a pointer may belong to several **Andersen
clusters** (the sets of pointers that point to a common object), which
together form a *disjunctive alias cover* (paper Theorem 7).

The solver is a standard difference-propagation worklist over a constraint
graph with on-the-fly load/store edge addition and periodic SCC collapse
(cycle elimination), and can be restricted to a statement subset — that is
how bootstrapping runs it "on the sliced sub-program only".

Two interchangeable solver backends implement that worklist:

* the **kernel** backend (default) interns every object to a dense int
  (:class:`~.kernel.NodeTable`) and keeps points-to sets as int bit
  masks — difference propagation carries only the delta mask
  (``new & ~old``), and SCC collapse unions masks instead of rebuilding
  sets;
* the **reference** backend (``use_kernel=False``) is the original
  frozenset implementation, kept as the oracle the kernel differential
  suite compares against bit-for-bit.
"""

from __future__ import annotations

from typing import (
    Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple,
)

from ..ir import (
    AddrOf,
    Copy,
    Load,
    MemObject,
    Program,
    Statement,
    Store,
    Var,
)
from .base import PointerAnalysis, PointsToResult
from .kernel import IntUnionFind, NodeTable, iter_bits
from .unionfind import UnionFind


class AndersenResult(PointsToResult):
    """Points-to sets plus cluster extraction.

    ``table`` (set by the kernel backend) provides the dense interned
    ids that make :meth:`clusters` iterate in a hash-seed-independent
    order; without it, string order stands in.
    """

    def __init__(self, pts: Dict[MemObject, FrozenSet[MemObject]],
                 universe: Set[Var],
                 table: Optional[NodeTable] = None) -> None:
        self._pts = pts
        self.universe = universe
        self._table = table

    def points_to(self, p: Var) -> FrozenSet[MemObject]:
        return self._pts.get(p, frozenset())

    def points_to_obj(self, o: MemObject) -> FrozenSet[MemObject]:
        """Points-to content of any abstract object (heap cells included)."""
        return self._pts.get(o, frozenset())

    def clusters(self, pointers: Optional[Iterable[Var]] = None,
                 include_singletons: bool = True) -> List[FrozenSet[Var]]:
        """Andersen clusters over ``pointers`` (default: the universe).

        One cluster per pointed-to object: the set of pointers whose
        points-to sets contain it.  Pointers with empty points-to sets
        cannot alias anything; with ``include_singletons`` they are
        emitted as singleton clusters so the result still covers every
        pointer (convenient for the cascade's bookkeeping).

        Every intermediate iteration runs in a deterministic order —
        interned-id order when the kernel built this result, string
        order otherwise — never raw set order, so cluster emission is
        identical under every ``PYTHONHASHSEED`` (pinned by the
        hash-seed test in ``tests/test_kernel.py``).
        """
        ptrs = set(pointers) if pointers is not None else set(self.universe)
        order = self._stable_order
        by_obj: Dict[MemObject, Set[Var]] = {}
        covered: Set[Var] = set()
        for p in sorted(ptrs, key=order):
            for obj in sorted(self.points_to(p), key=order):
                by_obj.setdefault(obj, set()).add(p)
                covered.add(p)
        clusters = {frozenset(c) for c in by_obj.values()}
        if include_singletons:
            for p in sorted(ptrs - covered, key=order):
                clusters.add(frozenset({p}))
        return sorted(clusters, key=lambda s: (-len(s), sorted(map(str, s))))

    def _stable_order(self, obj: MemObject):
        """Hash-seed-independent sort key: dense interned id when the
        kernel's table is attached (ints compare fastest), qualified
        string otherwise."""
        if self._table is not None:
            idx = self._table.id_of(obj)
            if idx is not None:
                return (0, idx)
        return (1, str(obj))

    def max_cluster_size(self, pointers: Optional[Iterable[Var]] = None) -> int:
        return max((len(c) for c in self.clusters(pointers)), default=0)


class Andersen(PointerAnalysis):
    """Worklist inclusion-constraint solver.

    Parameters
    ----------
    program:
        The program providing the object universe.
    statements:
        Optional statement subset to solve over (the bootstrapped mode);
        defaults to every statement in the program.
    cycle_elimination:
        Collapse constraint-graph SCCs periodically.  Identical results,
        usually faster on large inputs.
    use_kernel:
        Solve with the dense-int bitmask kernel (default).  ``False``
        selects the frozenset reference backend; both return identical
        results, which the differential suite enforces.
    """

    name = "andersen"

    def __init__(self, program: Program,
                 statements: Optional[Iterable[Statement]] = None,
                 cycle_elimination: bool = True,
                 use_kernel: bool = True) -> None:
        super().__init__(program)
        if statements is None:
            stmts: List[Statement] = [s for _, s in program.statements()]
        else:
            stmts = list(statements)
        self._statements = stmts
        self._cycle_elimination = cycle_elimination
        self._use_kernel = use_kernel

    def run(self) -> AndersenResult:
        if self._use_kernel:
            return self._run_kernel()
        return self._run_reference()

    # -- kernel backend: dense ids + bit masks ---------------------------

    def _run_kernel(self) -> AndersenResult:
        """The same worklist as :meth:`_run_reference`, with objects
        interned to dense ints (statement order, hence deterministic)
        and points-to / successor sets held as int bit masks.  Mask
        content is never rep-mapped — like the reference's sets it holds
        the original pointed-to objects — only graph *nodes* go through
        the union-find."""
        table = NodeTable()
        intern = table.intern
        addr: List[Tuple[int, int]] = []   # lhs ⊇ {target}
        copies: List[Tuple[int, int]] = [] # lhs ⊇ rhs
        loads: List[Tuple[int, int]] = []  # lhs ⊇ *rhs
        stores: List[Tuple[int, int]] = [] # *lhs ⊇ rhs
        for stmt in self._statements:
            if isinstance(stmt, AddrOf):
                addr.append((intern(stmt.lhs), intern(stmt.target)))
            elif isinstance(stmt, Copy):
                copies.append((intern(stmt.lhs), intern(stmt.rhs)))
            elif isinstance(stmt, Load):
                loads.append((intern(stmt.lhs), intern(stmt.rhs)))
            elif isinstance(stmt, Store):
                stores.append((intern(stmt.lhs), intern(stmt.rhs)))

        n = len(table)
        uf = IntUnionFind(n)
        find = uf.find
        pts: List[int] = [0] * n
        succs: List[int] = [0] * n
        delta: Dict[int, int] = {}
        load_cons: Dict[int, List[int]] = {}
        store_cons: Dict[int, List[int]] = {}
        # Edges already materialized for complex constraints, keyed
        # src * n + dst over representatives.
        done_edges: Set[int] = set()
        # Nodes whose successor mask is nonzero (the reference trigger
        # compares against len(succs), whose keys always hold nonempty
        # sets); recomputed after each collapse.
        succ_nodes = 0

        def add_edge(src: int, dst: int) -> None:
            nonlocal succ_nodes
            src, dst = find(src), find(dst)
            if src == dst:
                return
            bit = 1 << dst
            have = succs[src]
            if have & bit:
                return
            if not have:
                succ_nodes += 1
            succs[src] = have | bit
            new = pts[src] & ~pts[dst]
            if new:
                pts[dst] |= new
                delta[dst] = delta.get(dst, 0) | new

        for lhs, target in addr:
            r = find(lhs)
            bit = 1 << target
            pts[r] |= bit
            delta[r] = delta.get(r, 0) | bit
        for lhs, rhs in copies:
            add_edge(rhs, lhs)
        for lhs, rhs in loads:
            load_cons.setdefault(find(rhs), []).append(lhs)
        for lhs, rhs in stores:
            store_cons.setdefault(find(lhs), []).append(rhs)

        rounds_since_collapse = 0
        while delta:
            node, new_mask = delta.popitem()
            node = find(node)
            if not new_mask:
                continue
            for dst in load_cons.get(node, ()):  # dst = *node
                for obj in iter_bits(new_mask):
                    key = find(obj) * n + find(dst)
                    if key not in done_edges:
                        done_edges.add(key)
                        add_edge(obj, dst)
            for src in store_cons.get(node, ()):  # *node = src
                for obj in iter_bits(new_mask):
                    key = find(src) * n + find(obj)
                    if key not in done_edges:
                        done_edges.add(key)
                        add_edge(src, obj)
            # Propagate along copy edges (mask read after the complex
            # constraints above, so freshly added edges are included —
            # same as the reference's list() snapshot).
            for dst in iter_bits(succs[node]):
                dst = find(dst)
                if dst == node:
                    continue
                fresh = new_mask & ~pts[dst]
                if fresh:
                    pts[dst] |= fresh
                    delta[dst] = delta.get(dst, 0) | fresh
            rounds_since_collapse += 1
            if (self._cycle_elimination and not delta
                    and rounds_since_collapse > succ_nodes):
                rounds_since_collapse = 0
                self._collapse_sccs_kernel(
                    n, uf, pts, delta, succs, load_cons, store_cons)
                succ_nodes = sum(1 for m in succs if m)

        # Canonicalize exactly like the reference: one entry per program
        # object plus every representative holding facts, each decoding
        # its class representative's mask.
        final: Dict[MemObject, FrozenSet[MemObject]] = {}
        keys = set(self.program.objects)
        keys.update(table.obj_of(i) for i in range(n) if pts[i])
        empty: FrozenSet[MemObject] = frozenset()
        for obj in keys:
            idx = table.id_of(obj)
            if idx is None:
                final[obj] = empty
            else:
                final[obj] = table.objects_of(pts[find(idx)])
        return AndersenResult(final, set(self.program.pointers), table=table)

    @staticmethod
    def _collapse_sccs_kernel(n: int, uf: IntUnionFind,
                              pts: List[int], delta: Dict[int, int],
                              succs: List[int],
                              load_cons: Dict[int, List[int]],
                              store_cons: Dict[int, List[int]]) -> None:
        """Mask-space twin of :meth:`_collapse_sccs`: Tarjan over the
        copy graph, then classes merge by OR-ing masks onto the
        representative instead of rebuilding sets."""
        find = uf.find
        index: Dict[int, int] = {}
        low: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        counter = [0]
        merged_any = [False]

        def connect(root: int) -> None:
            work: List[Tuple[int, Iterator[int]]] = \
                [(root, iter_bits(succs[root]))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for nxt in it:
                    nxt = find(nxt)
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter_bits(succs[nxt])))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    low[work[-1][0]] = min(low[work[-1][0]], low[node])
                if low[node] == index[node]:
                    comp: List[int] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    if len(comp) > 1:
                        merged_any[0] = True
                        base = comp[0]
                        for other in comp[1:]:
                            uf.union(base, other)

        for i in range(n):
            if succs[i] and find(i) == i and i not in index:
                connect(i)
        if not merged_any[0]:
            return
        # Fold every absorbed node's masks into its representative.
        for i in range(n):
            r = find(i)
            if r == i:
                continue
            if pts[i]:
                pts[r] |= pts[i]
                pts[i] = 0
            if succs[i]:
                succs[r] |= succs[i]
                succs[i] = 0
        # Remap successor masks onto representatives; drop self-loops.
        for i in range(n):
            m = succs[i]
            if not m:
                continue
            remapped = 0
            for dst in iter_bits(m):
                remapped |= 1 << find(dst)
            succs[i] = remapped & ~(1 << i)
        old_delta = list(delta.items())
        delta.clear()
        for key, val in old_delta:
            r = find(key)
            delta[r] = delta.get(r, 0) | val
        for cons in (load_cons, store_cons):
            old_cons = list(cons.items())
            cons.clear()
            for key, val in old_cons:
                cons.setdefault(find(key), []).extend(val)
        # Merged classes may now have unpropagated facts.
        for i in range(n):
            if pts[i]:
                delta[i] = delta.get(i, 0) | pts[i]

    # -- reference backend: the original frozenset implementation --------

    def _run_reference(self) -> AndersenResult:
        addr: List[Tuple[MemObject, MemObject]] = []   # lhs ⊇ {target}
        copies: List[Tuple[MemObject, MemObject]] = [] # lhs ⊇ rhs
        loads: List[Tuple[Var, Var]] = []              # lhs ⊇ *rhs
        stores: List[Tuple[Var, Var]] = []             # *lhs ⊇ rhs
        for stmt in self._statements:
            if isinstance(stmt, AddrOf):
                addr.append((stmt.lhs, stmt.target))
            elif isinstance(stmt, Copy):
                copies.append((stmt.lhs, stmt.rhs))
            elif isinstance(stmt, Load):
                loads.append((stmt.lhs, stmt.rhs))
            elif isinstance(stmt, Store):
                stores.append((stmt.lhs, stmt.rhs))

        uf: UnionFind[MemObject] = UnionFind()
        pts: Dict[MemObject, Set[MemObject]] = {}
        delta: Dict[MemObject, Set[MemObject]] = {}
        succs: Dict[MemObject, Set[MemObject]] = {}
        load_cons: Dict[MemObject, List[MemObject]] = {}
        store_cons: Dict[MemObject, List[MemObject]] = {}
        # Edges already materialized for complex constraints.
        done_edges: Set[Tuple[MemObject, MemObject]] = set()

        def rep(n: MemObject) -> MemObject:
            return uf.find(n)

        def add_edge(src: MemObject, dst: MemObject) -> None:
            src, dst = rep(src), rep(dst)
            if src == dst:
                return
            if dst in succs.setdefault(src, set()):
                return
            succs[src].add(dst)
            new = pts.get(src, set()) - pts.get(dst, set())
            if new:
                pts.setdefault(dst, set()).update(new)
                delta.setdefault(dst, set()).update(new)

        for lhs, target in addr:
            pts.setdefault(rep(lhs), set()).add(target)
            delta.setdefault(rep(lhs), set()).add(target)
        for lhs, rhs in copies:
            add_edge(rhs, lhs)
        for lhs, rhs in loads:
            load_cons.setdefault(rep(rhs), []).append(lhs)
        for lhs, rhs in stores:
            store_cons.setdefault(rep(lhs), []).append(rhs)

        rounds_since_collapse = 0
        while delta:
            node, new_objs = delta.popitem()
            node = rep(node)
            if not new_objs:
                continue
            # Complex constraints: node's points-to grew, so loads from
            # and stores through node gain edges.
            for dst in load_cons.get(node, ()):  # dst = *node
                for obj in new_objs:
                    key = (rep(obj), rep(dst))
                    if key not in done_edges:
                        done_edges.add(key)
                        add_edge(obj, dst)
            for src in store_cons.get(node, ()):  # *node = src
                for obj in new_objs:
                    key = (rep(src), rep(obj))
                    if key not in done_edges:
                        done_edges.add(key)
                        add_edge(src, obj)
            # Propagate along copy edges.
            for dst in list(succs.get(node, ())):
                dst = rep(dst)
                if dst == node:
                    continue
                fresh = new_objs - pts.get(dst, set())
                if fresh:
                    pts.setdefault(dst, set()).update(fresh)
                    delta.setdefault(dst, set()).update(fresh)
            rounds_since_collapse += 1
            if (self._cycle_elimination and not delta
                    and rounds_since_collapse > len(succs)):
                rounds_since_collapse = 0
                self._collapse_sccs(uf, pts, delta, succs, load_cons, store_cons)

        # Canonicalize: every object maps to its representative's set,
        # with members of merged classes sharing the same set.
        final: Dict[MemObject, FrozenSet[MemObject]] = {}
        for obj in set(self.program.objects) | set(pts):
            final[obj] = frozenset(pts.get(rep(obj), ()))
        return AndersenResult(final, set(self.program.pointers))

    @staticmethod
    def _collapse_sccs(uf: UnionFind[MemObject],
                       pts: Dict[MemObject, Set[MemObject]],
                       delta: Dict[MemObject, Set[MemObject]],
                       succs: Dict[MemObject, Set[MemObject]],
                       load_cons: Dict[MemObject, List[MemObject]],
                       store_cons: Dict[MemObject, List[MemObject]]) -> None:
        """Collapse copy-edge SCCs (pointer equivalence), remapping every
        side table onto class representatives."""
        nodes = list(succs)
        index: Dict[MemObject, int] = {}
        low: Dict[MemObject, int] = {}
        on_stack: Set[MemObject] = set()
        stack: List[MemObject] = []
        counter = [0]
        merged_any = [False]

        def connect(root: MemObject) -> None:
            work: List[Tuple[MemObject, Iterable[MemObject]]] = \
                [(root, iter(list(succs.get(root, ()))))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for nxt in it:
                    nxt = uf.find(nxt)
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(list(succs.get(nxt, ())))))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    low[work[-1][0]] = min(low[work[-1][0]], low[node])
                if low[node] == index[node]:
                    comp: List[MemObject] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    if len(comp) > 1:
                        merged_any[0] = True
                        base = comp[0]
                        for other in comp[1:]:
                            uf.union(base, other)

        for n in nodes:
            if uf.find(n) == n and n not in index:
                connect(n)
        if not merged_any[0]:
            return
        # Rebuild side tables keyed by representatives.
        for table in (pts, delta):
            old = list(table.items())
            table.clear()
            for key, val in old:
                table.setdefault(uf.find(key), set()).update(val)
        old_succs = list(succs.items())
        succs.clear()
        for key, val in old_succs:
            r = uf.find(key)
            succs.setdefault(r, set()).update(uf.find(v) for v in val)
            succs[r].discard(r)
        for cons in (load_cons, store_cons):
            old_cons = list(cons.items())
            cons.clear()
            for key, val in old_cons:
                cons.setdefault(uf.find(key), []).extend(val)
        # Merged classes may now have unpropagated facts.
        for key, val in list(pts.items()):
            delta.setdefault(key, set()).update(val)

"""Das's One-Flow points-to analysis (PLDI 2000), the optional middle
cascade stage.

The paper suggests: "Another option is to cascade another analysis like
the One-Flow analysis between Steensgaard and Andersen."  One-Flow keeps
*one* level of directional (inclusion) flow at the top of the points-to
hierarchy and falls back to unification below it, landing between
Steensgaard and Andersen in both precision and cost:

* ``x = &o``  — ``pts(x) ∋ class(o)`` (directional)
* ``x = y``   — ``pts(x) ⊇ pts(y)`` (directional copy edge)
* ``x = *y``  — ``pts(x) ⊇ { pointee(c) | c ∈ pts(y) }``
* ``*x = y``  — below-top flow is unified: ``∀c ∈ pts(x), d ∈ pts(y):
  join(pointee(c), d)``

where ``class``/``pointee``/``join`` are Steensgaard-style union-find
operations over object classes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..ir import (
    AddrOf,
    Copy,
    Load,
    MemObject,
    Program,
    Statement,
    Store,
)
from .base import MapPointsTo, PointerAnalysis
from .unionfind import UnionFind


class OneFlow(PointerAnalysis):
    """Worklist solver for the one-level-flow constraint system."""

    name = "oneflow"

    def __init__(self, program: Program,
                 statements: Optional[Iterable[Statement]] = None) -> None:
        super().__init__(program)
        if statements is None:
            self._statements: List[Statement] = [s for _, s in program.statements()]
        else:
            self._statements = list(statements)

    def run(self) -> MapPointsTo:
        uf: UnionFind[MemObject] = UnionFind()
        pointee: Dict[MemObject, MemObject] = {}
        fresh = [0]

        def find(o: MemObject) -> MemObject:
            return uf.find(o)

        def get_pointee(c: MemObject) -> MemObject:
            c = find(c)
            p = pointee.get(c)
            if p is None:
                fresh[0] += 1
                cell: MemObject = (f"$of{fresh[0]}",)  # type: ignore[assignment]
                uf.add(cell)
                pointee[c] = cell
                return cell
            return find(p)

        def set_pointee(cls: MemObject, target: MemObject) -> None:
            # Merge-aware (see Steensgaard._set_pointee): the recursive
            # join may have already given the merged class a pointee.
            root = find(cls)
            existing = pointee.get(root)
            if existing is None:
                pointee[root] = target
                return
            if find(existing) == find(target):
                return
            set_pointee(cls, join(existing, target))

        def join(a: MemObject, b: MemObject) -> MemObject:
            ra, rb = find(a), find(b)
            if ra == rb:
                return ra
            pa = pointee.pop(ra, None)
            pb = pointee.pop(rb, None)
            root = uf.union(ra, rb)
            if pa is not None and pb is not None:
                set_pointee(root, join(pa, pb))
            elif pa is not None or pb is not None:
                set_pointee(root, pa if pa is not None else pb)
            return find(root)

        pts: Dict[MemObject, Set[MemObject]] = {}
        copy_edges: Dict[MemObject, Set[MemObject]] = {}
        loads: List[Tuple[MemObject, MemObject]] = []
        stores: List[Tuple[MemObject, MemObject]] = []
        mentioned: Set[MemObject] = set()

        for stmt in self._statements:
            if isinstance(stmt, AddrOf):
                uf.add(stmt.target)
                pts.setdefault(stmt.lhs, set()).add(find(stmt.target))
                mentioned.update((stmt.lhs, stmt.target))
            elif isinstance(stmt, Copy):
                copy_edges.setdefault(stmt.rhs, set()).add(stmt.lhs)
                mentioned.update((stmt.lhs, stmt.rhs))
            elif isinstance(stmt, Load):
                loads.append((stmt.lhs, stmt.rhs))
                mentioned.update((stmt.lhs, stmt.rhs))
            elif isinstance(stmt, Store):
                stores.append((stmt.lhs, stmt.rhs))
                mentioned.update((stmt.lhs, stmt.rhs))

        def canon(s: Set[MemObject]) -> Set[MemObject]:
            return {find(c) for c in s}

        changed = True
        iterations = 0
        while changed:
            changed = False
            iterations += 1
            for var in list(pts):
                pts[var] = canon(pts[var])
            # Address-taken variables live in both worlds: their cell can
            # be read/written through pointers (unification pointee) and
            # assigned directly (directional pts).  Keep the two in sync,
            # in both directions — this is where One-Flow gives up
            # directionality below the top level.
            target_reps = {find(t) for s in pts.values() for t in s}
            for var in mentioned:
                root = find(var)
                if root in target_reps and pts.get(var):
                    for d in list(pts[var]):
                        cell = get_pointee(find(var))
                        if find(cell) != find(d):
                            join(cell, d)
                            changed = True
                p = pointee.get(find(var))
                if p is not None:
                    dp = pts.setdefault(var, set())
                    target = find(p)
                    if target not in dp:
                        dp.add(target)
                        changed = True
            for src, dsts in copy_edges.items():
                sp = pts.get(src)
                if not sp:
                    continue
                for dst in dsts:
                    dp = pts.setdefault(dst, set())
                    before = len(dp)
                    dp.update(sp)
                    if len(dp) != before:
                        changed = True
            for lhs, rhs in loads:
                # Read existing pointees only: creating cells here would
                # diverge on self-loads (x = *x) by manufacturing an
                # unbounded chain of fresh cells.  A cell with no pointee
                # has no recorded content yet; when a store creates one,
                # this load is re-run by the fixpoint.
                contribution = set()
                for c in pts.get(rhs, ()):
                    p = pointee.get(find(c))
                    if p is not None:
                        contribution.add(find(p))
                dp = pts.setdefault(lhs, set())
                before = len(dp)
                dp.update(contribution)
                if len(dp) != before:
                    changed = True
            for lhs, rhs in stores:
                if not pts.get(rhs):
                    # Nothing to record; creating an empty pointee cell
                    # here could chain into unbounded fresh classes.
                    continue
                for c in list(pts.get(lhs, ())):
                    cell = get_pointee(c)
                    for d in list(pts.get(rhs, ())):
                        if find(cell) != find(d):
                            join(cell, d)
                            changed = True

        result: Dict[MemObject, FrozenSet[MemObject]] = {}
        for var, classes in pts.items():
            objs: Set[MemObject] = set()
            for c in canon(classes):
                objs.update(o for o in uf.members(c) if not isinstance(o, tuple))
            result[var] = frozenset(objs)
        for obj in self.program.objects:
            result.setdefault(obj, frozenset())
        return MapPointsTo(result)

"""Points-to constraints attached to summary tuples (paper Definition 8).

A summary tuple ``(p, loc, q, c1 ∧ ... ∧ ck)`` records a maximally
complete update sequence that is valid only under points-to side
conditions.  Each atom is one of the four forms from the paper:

* ``l : r → s``   — ``r`` points to ``s`` at ``l``       (:data:`POINTS_TO`)
* ``l : r ↛ s``   — ``r`` does not point to ``s`` at ``l``
* ``l : r ≐ s``   — ``r`` and ``s`` point to the same object at ``l``
* ``l : r ≭ s``   — they do not

Satisfiability is checked against the cluster's FSCI result exactly as the
paper prescribes ("the satisfiability of cond can be checked at the time
of computing the frontier"): a positive atom is satisfiable when the FSCI
may-facts allow it; a negative atom is only unsatisfiable when the FSCI
may-set *forces* the positive fact (singleton must-like case), plus purely
syntactic contradictions.  Everything errs toward satisfiable, which is
the sound direction for may-alias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from ..ir import Loc, MemObject, Var

POINTS_TO = "pt"      # r -> s
SAME_OBJECT = "same"  # r and s point to the same object

#: Pseudo-object standing for NULL in branch-condition atoms
#: (``l: r -> $NULL$`` reads "r is NULL at l").
NULL_MARKER = Var("$NULL$")


@dataclass(frozen=True, order=True)
class Atom:
    """One points-to side condition."""

    kind: str            # POINTS_TO or SAME_OBJECT
    loc: Loc
    r: Var
    s: MemObject
    positive: bool = True

    def negated(self) -> "Atom":
        return Atom(self.kind, self.loc, self.r, self.s, not self.positive)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == POINTS_TO:
            op = "->" if self.positive else "-/->"
        else:
            op = "==" if self.positive else "!="
        return f"{self.loc}: {self.r} {op} {self.s}"


#: A conjunction of atoms.  The empty conjunction is ``true``.
Constraint = FrozenSet[Atom]

TRUE: Constraint = frozenset()


def points_to_atom(loc: Loc, r: Var, s: MemObject, positive: bool = True) -> Atom:
    return Atom(POINTS_TO, loc, r, s, positive)


def null_atom(loc: Loc, r: Var, positive: bool = True) -> Atom:
    """Branch-condition atom: ``r`` is (not) NULL at ``loc`` — the
    paper's path-sensitivity extension records these in summary tuples."""
    return Atom(POINTS_TO, loc, r, NULL_MARKER, positive)


def same_object_atom(loc: Loc, r: Var, s: Var, positive: bool = True) -> Atom:
    return Atom(SAME_OBJECT, loc, r, s, positive)


def conjoin(cond: Constraint, atom: Atom,
            max_atoms: Optional[int] = None) -> Optional[Constraint]:
    """``cond ∧ atom``.

    Syntactic contradictions (``a`` and ``¬a`` both present) are *kept*,
    not pruned: atoms name **static** locations, and one backward path
    may traverse the same location in several dynamic instances (loop
    iterations, repeated calls), where both polarities can genuinely
    hold.  Only the FSCI oracle — whose facts quantify over every
    dynamic instance — may declare a condition unsatisfiable.  (Pruning
    here was a soundness bug our fuzzing caught: a cell written on the
    second of two calls to the same function lost its update.)

    When the conjunction would exceed ``max_atoms`` the oldest atoms are
    dropped — weakening a condition only admits more aliases, which is
    the sound direction for a may analysis (documented cap; the paper
    suggests BDDs for the same growth problem).

    The ``Optional`` return type is kept for future refinements that can
    prove single-visit locations; current callers handle ``None``.
    """
    out = cond | {atom}
    if max_atoms is not None and len(out) > max_atoms:
        out = frozenset(sorted(out)[:max_atoms])
        if atom not in out:
            out = frozenset(list(sorted(out))[: max_atoms - 1] + [atom])
    return out


def merge(a: Constraint, b: Constraint,
          max_atoms: Optional[int] = None) -> Optional[Constraint]:
    """Conjunction of two constraints (see :func:`conjoin` on why
    syntactic contradictions survive)."""
    out: Optional[Constraint] = a
    for atom in b:
        out = conjoin(out, atom, max_atoms)
        if out is None:
            return None
    return out


class SatOracle:
    """Constraint satisfiability against an FSCI result.

    ``fsci`` may be ``None`` (everything satisfiable — used before the
    cluster's FSCI pass exists, and in tests).
    """

    def __init__(self, fsci=None) -> None:
        self._fsci = fsci

    def atom_satisfiable(self, atom: Atom) -> bool:
        if self._fsci is None:
            return True
        if atom.kind == POINTS_TO:
            if atom.s == NULL_MARKER:
                if atom.positive:
                    return self._fsci.may_null_before(atom.loc, atom.r)
                return not self._fsci.must_null_before(atom.loc, atom.r)
            if atom.positive:
                # Garbage may point anywhere: a possibly-uninitialized
                # pointer satisfies any positive points-to.
                return (atom.s in self._fsci.pts_before(atom.loc, atom.r)
                        or self._fsci.maybe_uninit_before(atom.loc, atom.r))
            # r -/-> s refutable only if r MUST point to s (singleton
            # may-set with no uninitialized path).
            return not self._fsci.must_point_to(atom.r, atom.s, atom.loc)
        # SAME_OBJECT atoms assert *value* equality (they come from store
        # disambiguation and from branch conditions alike).
        if atom.positive:
            return self._fsci.may_values_equal(atom.r, atom.s, atom.loc)
        return not self._fsci.must_values_equal(atom.r, atom.s, atom.loc)

    def satisfiable(self, cond: Constraint) -> bool:
        return all(self.atom_satisfiable(a) for a in cond)


def format_constraint(cond: Constraint) -> str:
    if not cond:
        return "true"
    return " ∧ ".join(str(a) for a in sorted(cond))

"""Demand-driven Andersen-style points-to queries.

The paper's keyword list includes *demand-driven analysis*, and its
flexibility pitch ("we may not be interested in accurate aliases for all
pointers in the program but only a small subset") applies one level below
the cascade too: when a client only needs the points-to set of a handful
of pointers, even the bootstrapped Andersen stage can answer from a
*local* exploration of the constraint graph instead of a whole-program
fixpoint.

The algorithm is a CFL-reachability-flavoured backward exploration in the
spirit of Heintze & Tardieu (PLDI'01): to answer ``pts(p)`` it chases

* address-of edges at ``p`` (base facts),
* copy edges into ``p`` (recursive ``pts`` of sources),
* load edges ``p = *q`` (``pts`` of every cell ``q`` may point to, where
  cell contents are themselves resolved on demand from store statements
  ``*u = t`` whose ``u`` may reach the cell).

Results are memoized and computed by iterating a per-query fixpoint, so
repeated queries share work.  The answers are *identical* to the
exhaustive Andersen solver's (a property test asserts this); only the
work is demand-scaled.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import AnalysisBudgetExceeded
from ..ir import (
    AddrOf,
    Copy,
    Load,
    MemObject,
    Program,
    Statement,
    Store,
    Var,
)


class DemandAndersen:
    """Answer ``points_to`` queries without a whole-program solve.

    Parameters
    ----------
    statements:
        Statement subset to consider (defaults to the whole program) —
        composable with the cascade's slices.
    budget:
        Maximum number of fixpoint evaluation steps across the instance.
    """

    def __init__(self, program: Program,
                 statements: Optional[Iterable[Statement]] = None,
                 budget: Optional[int] = None) -> None:
        self.program = program
        if statements is None:
            stmts: List[Statement] = [s for _, s in program.statements()]
        else:
            stmts = list(statements)
        self.budget = budget
        self.steps = 0
        # Indexes for backward chasing.
        self._addr: Dict[Var, Set[MemObject]] = {}
        self._copy_into: Dict[Var, Set[Var]] = {}   # lhs -> {rhs}
        self._load_into: Dict[Var, Set[Var]] = {}   # lhs -> {rhs of *rhs}
        self._stores: List[Tuple[Var, Var]] = []    # (*lhs = rhs)
        for stmt in stmts:
            if isinstance(stmt, AddrOf):
                self._addr.setdefault(stmt.lhs, set()).add(stmt.target)
            elif isinstance(stmt, Copy):
                self._copy_into.setdefault(stmt.lhs, set()).add(stmt.rhs)
            elif isinstance(stmt, Load):
                self._load_into.setdefault(stmt.lhs, set()).add(stmt.rhs)
            elif isinstance(stmt, Store):
                self._stores.append((stmt.lhs, stmt.rhs))
        # Memoized, monotonically growing points-to sets, per *node*
        # (variables and cells alike).
        self._pts: Dict[MemObject, Set[MemObject]] = {}
        self._evaluating: Set[MemObject] = set()
        self._touched: Set[MemObject] = set()

    # ------------------------------------------------------------------
    def points_to(self, p: MemObject) -> FrozenSet[MemObject]:
        """The (exhaustive-Andersen-equal) points-to set of ``p``."""
        # Iterate the demanded sub-fixpoint until no queried set grows:
        # recursive cycles (p = q; q = p) and store/load feedback need
        # re-evaluation rounds.  Each round memoizes per-node evaluation
        # (``done``) so shared sub-queries cost once per round.
        while True:
            before = {n: len(s) for n, s in self._pts.items()}
            self._eval(p, set(), set())
            grew = any(len(self._pts.get(n, ())) != c
                       for n, c in before.items())
            grew = grew or any(n not in before for n in self._pts)
            if not grew:
                return frozenset(self._pts.get(p, ()))

    def queries_touched(self) -> int:
        """How many graph nodes this instance ever had to evaluate — the
        demand-driven savings measure."""
        return len(self._touched)

    # ------------------------------------------------------------------
    def _bump(self) -> None:
        self.steps += 1
        if self.budget is not None and self.steps > self.budget:
            raise AnalysisBudgetExceeded("demand-andersen", self.steps)

    def _eval(self, node: MemObject, active: Set[MemObject],
              done: Set[MemObject]) -> Set[MemObject]:
        """One evaluation pass for ``node`` (cycle-cut via ``active``;
        per-round memoization via ``done``)."""
        self._bump()
        self._touched.add(node)
        if node in active or node in done:
            return self._pts.setdefault(node, set())
        active = active | {node}
        out = self._pts.setdefault(node, set())
        if isinstance(node, Var):
            out.update(self._addr.get(node, ()))
            for src in self._copy_into.get(node, ()):
                out.update(self._eval(src, active, done))
            for base in self._load_into.get(node, ()):
                for cell in list(self._eval(base, active, done)):
                    out.update(self._eval(cell, active, done))
        # Cell contents (for both Var cells and alloc sites): every store
        # whose target set may contain this cell contributes its rhs.
        for u, t in self._stores:
            if node in self._eval(u, active, done):
                out.update(self._eval(t, active, done))
        done.add(node)
        return out


def demand_points_to(program: Program, pointers: Iterable[Var],
                     budget: Optional[int] = None
                     ) -> Dict[Var, FrozenSet[MemObject]]:
    """Convenience: demand-query several pointers with shared memoization."""
    engine = DemandAndersen(program, budget=budget)
    return {p: engine.points_to(p) for p in pointers}

"""Dense-integer solver kernels: interning and bitset points-to sets.

The pure-Python solvers spend most of their time hashing ``Var``
dataclasses and churning frozensets (``BENCH_parallel.json``: the
processes backend is dominated by solver + serialization cost, not by
parallelism).  Pavlogiannis' complexity analysis of Andersen's analysis
("The Fine-Grained and Parallel Complexity of Andersen's Pointer
Analysis", PAPERS.md) frames the cubic set-saturation as exactly the
workload that rewards dense bit-parallel set representations: a union is
one machine-word-parallel big-int ``|``, a difference-propagation delta
is ``new & ~old``, and membership is a shift — no per-element hashing
anywhere.

This module is that representation, shared by the Andersen worklist and
the FSCI dataflow:

* :class:`NodeTable` — interns :class:`~repro.ir.Var` /
  :class:`~repro.ir.AllocSite` objects to dense integer ids (insertion
  order, so a deterministic construction order makes every downstream
  iteration hash-seed independent) and decodes bit masks back to the
  *same* frozensets the legacy solvers produce.  ``reserved`` low bits
  let flow-sensitive clients keep sentinel values (UNINIT/NULL) inside
  the same mask.
* :class:`BitSet` — a mutable set of interned ids backed by one int,
  with the diff-propagation primitive :meth:`BitSet.or_into` returning
  the delta mask of genuinely new bits.
* :class:`IntUnionFind` — union-find over dense ids (SCC collapse
  merges classes by OR-ing masks instead of rebuilding frozensets).
* :func:`popcount` / :func:`iter_bits` — mask helpers shared by every
  kernel client (``int.bit_count`` when available, a portable fallback
  otherwise).

The kernels are an internal representation only: every public analysis
API still materializes the exact frozensets it always returned, which is
what lets the bit-identity differential suites act as the acceptance
oracle for this layer (see ``tests/test_kernel.py``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional

from ..ir import MemObject

try:  # Python >= 3.10
    _bit_count = int.bit_count

    def popcount(mask: int) -> int:
        """Number of set bits in ``mask``."""
        return _bit_count(mask)
except AttributeError:  # pragma: no cover - exercised on Python 3.9 CI
    def popcount(mask: int) -> int:
        """Number of set bits in ``mask``."""
        return bin(mask).count("1")


def iter_bits(mask: int) -> Iterator[int]:
    """Bit positions set in ``mask``, ascending (hence deterministic)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class NodeTable:
    """Interns memory objects to dense integer ids.

    ``reserved`` low bit positions are kept free of objects so clients
    can pack sentinel flags into the same mask (the FSCI kernel uses bit
    0 for UNINIT and bit 1 for NULL); object ``i`` occupies bit
    ``reserved + i``.  Mask decoding is memoized: the same mask value
    always returns the same frozenset object, which keeps oracle-heavy
    consumers (the summary engine asks for the same points-to sets over
    and over) from re-materializing sets in a loop.
    """

    __slots__ = ("_ids", "_objs", "reserved", "_decode")

    def __init__(self, objects: Iterable[MemObject] = (),
                 reserved: int = 0) -> None:
        self._ids: Dict[MemObject, int] = {}
        self._objs: List[MemObject] = []
        self.reserved = reserved
        self._decode: Dict[int, FrozenSet[MemObject]] = {}
        for obj in objects:
            self.intern(obj)

    def __len__(self) -> int:
        return len(self._objs)

    def __contains__(self, obj: MemObject) -> bool:
        return obj in self._ids

    def intern(self, obj: MemObject) -> int:
        """The id of ``obj``, assigning the next dense id on first use."""
        idx = self._ids.get(obj)
        if idx is None:
            idx = len(self._objs)
            self._ids[obj] = idx
            self._objs.append(obj)
        return idx

    def id_of(self, obj: MemObject) -> Optional[int]:
        """The id of ``obj`` if interned, else ``None`` (never interns)."""
        return self._ids.get(obj)

    def obj_of(self, idx: int) -> MemObject:
        return self._objs[idx]

    def bit(self, obj: MemObject) -> int:
        """The single-bit mask of ``obj`` (interning it if needed)."""
        return 1 << (self.reserved + self.intern(obj))

    def mask_of(self, objects: Iterable[MemObject]) -> int:
        """The mask holding every object in ``objects``."""
        mask = 0
        base = self.reserved
        for obj in objects:
            mask |= 1 << (base + self.intern(obj))
        return mask

    def objects_of(self, mask: int) -> FrozenSet[MemObject]:
        """The frozenset a mask denotes; reserved bits are ignored.

        Memoized by mask value — callers may treat the result as
        canonical (two equal masks share one frozenset object).
        """
        cached = self._decode.get(mask)
        if cached is None:
            base = self.reserved
            objs = self._objs
            cached = frozenset(
                objs[pos - base] for pos in iter_bits(mask >> base << base))
            self._decode[mask] = cached
        return cached

    def ids_of(self, mask: int) -> Iterator[int]:
        """Interned ids set in ``mask`` (reserved bits ignored)."""
        base = self.reserved
        for pos in iter_bits(mask >> base):
            yield pos


class BitSet:
    """A mutable set of dense ids backed by a single int.

    The reference model for the differential property suite is a plain
    ``set[int]``: every operation here must agree with it exactly
    (``tests/test_kernel.py``).
    """

    __slots__ = ("bits",)

    def __init__(self, bits: int = 0) -> None:
        self.bits = bits

    # -- diff propagation ------------------------------------------------
    def or_into(self, mask: int) -> int:
        """Union ``mask`` in; return the delta mask of genuinely new
        bits (empty delta == nothing to propagate)."""
        new = mask & ~self.bits
        if new:
            self.bits |= new
        return new

    # -- plain set operations --------------------------------------------
    def add(self, idx: int) -> None:
        self.bits |= 1 << idx

    def discard(self, idx: int) -> None:
        self.bits &= ~(1 << idx)

    def __contains__(self, idx: int) -> bool:
        return bool((self.bits >> idx) & 1)

    def __len__(self) -> int:
        return popcount(self.bits)

    def __bool__(self) -> bool:
        return self.bits != 0

    def __iter__(self) -> Iterator[int]:
        return iter_bits(self.bits)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitSet):
            return self.bits == other.bits
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.bits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitSet({{{', '.join(map(str, self))}}})"

    def copy(self) -> "BitSet":
        return BitSet(self.bits)

    def isdisjoint(self, mask: int) -> bool:
        return not (self.bits & mask)

    def difference_mask(self, mask: int) -> int:
        """Bits of this set not in ``mask`` (the would-be delta of
        ``or_into`` run in the other direction)."""
        return self.bits & ~mask

    def objects(self, table: NodeTable) -> FrozenSet[MemObject]:
        """Decode back to the interned objects (via ``table``).  Bits
        here are dense ids, so they sit ``table.reserved`` positions
        below the table's mask encoding."""
        return table.objects_of(self.bits << table.reserved)


class IntUnionFind:
    """Union-find over dense integer ids (path-halving find).

    ``union(a, b)`` attaches ``b``'s root under ``a``'s root, so merge
    order — not hash order — decides representatives; deterministic
    inputs give deterministic classes.
    """

    __slots__ = ("parent",)

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> int:
        """Merge the classes of ``a`` and ``b``; returns the surviving
        root (``a``'s)."""
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra
        return ra

"""The reusable demand-driven query engine over the bootstrapped cascade.

Every cascade client wants the same loop (PR-1's memory-safety checkers,
PR-4's taint driver, and now the leak and deadlock scenario clients):

1. name the *seed* pointers the query is actually about;
2. select only the clusters containing them
   (:func:`~repro.core.queries.select_clusters` — the paper's
   flexibility pitch) and run one **sliced** FSCI over the union of
   their ``V_P`` / ``St_P``;
3. hand the client a points-to resolver scoped to that slice; when a
   dereference resolves to a pointer *outside* the slice, record it as
   **demanded**, widen the selection with its cluster, and re-run;
4. stop at a fixpoint (nothing new demanded), at the deepening level
   (``max_rounds``), or when the per-query budget is exhausted.

Clusters are alias-closed (every pointer that may point to an object
shares a cluster with every other pointer to it — Theorem 7's
disjunctive cover), so the widening loop converges on exactly the alias
facts the client needs and never silently under-approximates: an
out-of-slice pointer is *reported*, not guessed at.

This module owns the loop; clients are callables receiving a
:class:`DemandView` per round.  ``checkers.base.CheckerContext`` and
``checkers.taint.run_taint`` delegate here (their hand-rolled copies are
gone), and ``checkers/leak.py`` / ``checkers/deadlock.py`` are built
directly on :meth:`DemandEngine.run`.

Layering note: ``core`` imports ``analysis``, so the ``core.queries``
import below is function-level by necessity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from ..errors import AnalysisBudgetExceeded
from ..ir import Loc, MemObject, Program, Var
from .fsci import FSCI, FSCIResult

#: A scoped points-to query: ``None`` means "outside the current slice"
#: (the pointer becomes demanded), a set is a sound may-points-to answer.
Resolver = Callable[[Loc, Var], Optional[FrozenSet[MemObject]]]

#: One engine round: receives the round's :class:`DemandView`, returns
#: ``(value, demanded)`` — an arbitrary client result plus the pointers
#: the client could not resolve and wants widened in.
Client = Callable[["DemandView"], Tuple[Any, Iterable[Var]]]


def make_resolver(fsci: Optional[FSCIResult],
                  tracked: Set[MemObject],
                  on_miss: Optional[Callable[[Var], None]] = None
                  ) -> Resolver:
    """The scoped resolver every cascade client uses.

    Out-of-slice pointers (or a missing FSCI: nothing selected yet)
    resolve to ``None`` and are reported through ``on_miss``; in-slice
    pointers get the flow-sensitive answer, falling back to the
    flow-insensitive projection when ``loc`` lies outside the sliced
    supergraph's reached states — a sound may-superset.
    """
    def resolve(loc: Loc, ptr: Var) -> Optional[FrozenSet[MemObject]]:
        if fsci is None or ptr not in tracked:
            if on_miss is not None:
                on_miss(ptr)
            return None
        pts = fsci.pts_before(loc, ptr)
        if pts:
            return pts
        return fsci.points_to(ptr)
    return resolve


@dataclass
class EngineStats:
    """Per-query accounting (the paper's savings pitch, generalized)."""

    rounds: int               # widening rounds actually run
    fsci_runs: int            # sliced FSCI fixpoints computed (cache misses)
    clusters_touched: int     # distinct clusters analyzed across rounds
    clusters_total: int
    pointers_tracked: int     # pointers inside the selected clusters
    pointers_total: int
    summary_bytes: int        # compact points-to summary for the demanded set

    @property
    def clusters_skipped(self) -> int:
        return self.clusters_total - self.clusters_touched


class DemandView:
    """One widening round's analysis view, handed to the client.

    ``fsci`` is ``None`` when no cluster contains a demanded pointer yet
    (round one of a query whose seeds live outside every cluster); the
    resolver then answers ``None`` everywhere and every queried pointer
    becomes demanded.
    """

    def __init__(self, fsci: Optional[FSCIResult], selection: Any,
                 demanded: Iterable[Var]) -> None:
        self.fsci = fsci
        self.selection = selection
        self.demanded: FrozenSet[Var] = frozenset(demanded)
        tracked: Set[MemObject] = set(self.demanded)
        for cluster in selection.selected:
            tracked |= cluster.slice.vp
        self.tracked: FrozenSet[MemObject] = frozenset(tracked)
        #: Pointers the resolver could not answer this round — the
        #: engine widens with these even if the client forgets to
        #: return them.
        self.unresolved: Set[Var] = set()
        self.resolver: Resolver = make_resolver(
            fsci, self.tracked, on_miss=self.unresolved.add)

    def pts_before(self, loc: Loc, ptr: Var) -> Optional[FrozenSet[MemObject]]:
        """Convenience alias for the scoped resolver."""
        return self.resolver(loc, ptr)


@dataclass
class DemandResult:
    """Everything one :meth:`DemandEngine.run` query produced."""

    value: Any                  # the client's last-round result
    view: DemandView            # the final round's view
    selection: Any              # final DemandSelection
    demanded: FrozenSet[Var]    # fixpoint of the demanded-pointer set
    rounds: int
    stats: EngineStats


class DemandEngine:
    """Owns cluster selection, sliced-FSCI construction and the widening
    loop for one ``(program, bootstrap result)`` pair.

    The sliced-FSCI cache is keyed by the demanded-pointer set (plus the
    purity flag), so repeated queries — and the rounds of one query,
    which grow the set monotonically — never recompute a slice.
    """

    def __init__(self, program: Program, result: Any) -> None:
        self.program = program
        self.result = result
        self._fsci_cache: Dict[Tuple[FrozenSet[Var], bool],
                               Tuple[Optional[FSCIResult], Any]] = {}
        self._cluster_index = {id(c): i
                               for i, c in enumerate(result.clusters)}

    # ------------------------------------------------------------------
    def select(self, interesting: Iterable[Var], pure: bool = False) -> Any:
        from ..core.queries import select_clusters
        return select_clusters(self.result, interesting, pure=pure)

    def sliced_fsci(self, interesting: Iterable[Var], pure: bool = False
                    ) -> Tuple[Optional[FSCIResult], Any]:
        """A sliced FSCI covering exactly the clusters that contain an
        interesting pointer.  Returns ``(None, selection)`` when no
        cluster qualifies (nothing to analyze — everything was skipped).
        """
        wanted = frozenset(v for v in interesting if isinstance(v, Var))
        key = (wanted, pure)
        cached = self._fsci_cache.get(key)
        if cached is not None:
            return cached
        selection = self.select(wanted, pure=pure)
        fsci: Optional[FSCIResult] = None
        if selection.selected:
            tracked: Set[MemObject] = set(wanted)
            relevant: Set[Loc] = set()
            for cluster in selection.selected:
                tracked |= cluster.slice.vp
                relevant |= cluster.slice.statements
            fsci = FSCI(self.program, tracked=tracked, relevant=relevant,
                        callgraph=self.result.callgraph).run()
        self._fsci_cache[key] = (fsci, selection)
        return fsci, selection

    # ------------------------------------------------------------------
    def run(self, seeds: Iterable[Var], client: Client,
            max_rounds: int = 10, budget: Optional[int] = None,
            pure: bool = False) -> DemandResult:
        """The demand loop: seed, select, analyze, widen until fixpoint.

        ``max_rounds`` is the incremental-deepening level: the demanded
        set grows monotonically, so answers at level ``k`` are a subset
        of answers at ``k + 1`` and the loop normally exits as soon as
        one round demands nothing new.  ``budget`` bounds the cumulative
        number of cluster slices analyzed across the query's rounds;
        exceeding it raises :class:`AnalysisBudgetExceeded` (the CLI
        maps that to its dedicated exit code).
        """
        demanded: Set[Var] = {v for v in seeds if isinstance(v, Var)}
        charged = 0
        touched: Set[int] = set()
        fsci_runs = 0
        rounds = 0
        while True:
            rounds += 1
            key = frozenset(demanded)
            fresh_run = (key, pure) not in self._fsci_cache
            fsci, selection = self.sliced_fsci(key, pure=pure)
            if fresh_run:
                fsci_runs += 1
                if budget is not None:
                    charged += len(selection.selected)
                    if charged > budget:
                        raise AnalysisBudgetExceeded(
                            "demand-engine", charged)
            touched |= {self._cluster_index[id(c)]
                        for c in selection.selected}
            view = DemandView(fsci, selection, demanded)
            value, want = client(view)
            fresh = {v for v in want if v in self.program.pointers}
            fresh |= {v for v in view.unresolved
                      if v in self.program.pointers}
            fresh -= demanded
            if not fresh or rounds >= max_rounds:
                break
            demanded |= fresh
        stats = EngineStats(
            rounds=rounds,
            fsci_runs=fsci_runs,
            clusters_touched=len(touched),
            clusters_total=selection.total_clusters,
            pointers_tracked=selection.selected_pointers,
            pointers_total=selection.total_pointers,
            summary_bytes=self._summary_bytes(fsci, demanded),
        )
        return DemandResult(value=value, view=view, selection=selection,
                            demanded=frozenset(demanded), rounds=rounds,
                            stats=stats)

    # ------------------------------------------------------------------
    @staticmethod
    def _summary_bytes(fsci: Optional[FSCIResult],
                       demanded: Iterable[Var]) -> int:
        """Size of the compact per-query summary: the demanded pointers'
        flow-insensitive points-to projection, JSON-encoded (the
        "generalized points-to graph" a daemon would ship around)."""
        if fsci is None:
            return 0
        table = {str(p): sorted(str(o) for o in fsci.points_to(p))
                 for p in sorted(demanded, key=str)}
        return len(json.dumps(table, sort_keys=True,
                              separators=(",", ":")).encode("utf-8"))

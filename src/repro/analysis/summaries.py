"""Summary-based backward value tracking (paper Definitions 3-8,
Algorithms 4 and 5).

The central object is a *term* describing a pointer value during the
backward traversal of maximally complete update sequences:

* :class:`ObjTerm` ``(v)``   — the value currently stored in cell ``v``
  (a variable or a heap cell); the paper's plain pointer ``q``.
* :class:`DerefTerm` ``(s)`` — the value stored in the cell ``s`` points
  to; the paper's ``~s``.
* :class:`AddrTerm` ``(o)``  — the resolved value ``&o``; a terminal.
* :class:`NullTerm`          — the resolved value ``NULL``; a terminal.
* :class:`UnknownTerm`       — sound top (used when a value escapes the
  term language and no FSCI oracle is available to resolve it).

:class:`SummaryEngine` computes, per function ``f`` and term ``t``, the
**exit summary**: the set of ``(term', cond)`` pairs such that the value
of ``t`` at ``f``'s exit equals the value of ``term'`` at ``f``'s *entry*
(or is fully resolved to a terminal) under points-to constraints ``cond``.
These are exactly the paper's summary tuples ``(p, exit_f, q, cond)``;
:meth:`SummaryEngine.backward_from` provides the same for arbitrary
interior locations, which is what alias queries use.

Recursion is handled by a demand-driven monotone fixpoint over
``(function, term)`` keys with dependency tracking — the effect of the
paper's reverse-topological SCC processing, computed on demand.
Constraint growth is capped (see :mod:`.constraints`); capping only
weakens conditions, which over-approximates — the sound direction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import AnalysisBudgetExceeded
from ..ir import (
    AddrOf,
    Assume,
    CallGraph,
    CallStmt,
    Copy,
    Load,
    Loc,
    MemObject,
    NullAssign,
    Program,
    Statement,
    Store,
    Var,
)
from .constraints import (
    TRUE,
    Constraint,
    SatOracle,
    conjoin,
    format_constraint,
    merge,
    null_atom,
    points_to_atom,
    same_object_atom,
)
from .fsci import FSCIResult


class Term:
    """Base class for backward-tracked value terms."""

    __slots__ = ()
    is_terminal = False


@dataclass(frozen=True, order=True)
class ObjTerm(Term):
    """The value stored in cell ``obj``."""

    obj: MemObject

    def __str__(self) -> str:
        return str(self.obj)


@dataclass(frozen=True, order=True)
class DerefTerm(Term):
    """The value stored in the cell ``var`` points to (the paper's ~var)."""

    var: Var

    def __str__(self) -> str:
        return f"*{self.var}"


@dataclass(frozen=True, order=True)
class AddrTerm(Term):
    """The resolved value ``&obj`` — the tracked pointer points to obj."""

    obj: MemObject
    is_terminal = True

    def __str__(self) -> str:
        return f"&{self.obj}"


@dataclass(frozen=True)
class NullTerm(Term):
    """The resolved value NULL."""

    is_terminal = True

    def __str__(self) -> str:
        return "NULL"


@dataclass(frozen=True)
class UnknownTerm(Term):
    """Sound top element: the value could be anything."""

    is_terminal = True

    def __str__(self) -> str:
        return "?"


#: One summary entry: the tracked value equals ``term`` (at function entry
#: if non-terminal) under ``cond``.
SummaryEntry = Tuple[Term, Constraint]


@dataclass(frozen=True)
class SummaryTuple:
    """A paper-style summary tuple ``(p, loc, q, cond)`` for reporting."""

    pointer: Var
    loc: Loc
    source: Term
    cond: Constraint

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"({self.pointer}, {self.loc}, {self.source}, "
                f"{format_constraint(self.cond)})")


class SummaryEngine:
    """Backward interprocedural summary computation for one cluster.

    Parameters
    ----------
    program:
        The program under analysis.
    fsci:
        The cluster's FSCI result; the oracle for Algorithm 4's
        ``PT_s^m`` sets and for constraint satisfiability.  ``None``
        degrades gracefully to :class:`UnknownTerm` where memory
        disambiguation would be needed.
    relevant:
        The cluster's ``St_P`` (locations).  Statements at other
        locations are skips, as in the paper's reduced program.  ``None``
        keeps every statement (the unclustered baseline).
    max_cond_atoms:
        Constraint size cap.
    budget:
        Maximum number of worklist items processed engine-wide; exceeded
        budgets raise :class:`~repro.errors.AnalysisBudgetExceeded`.
    """

    def __init__(self, program: Program,
                 fsci: Optional[FSCIResult] = None,
                 relevant: Optional[Set[Loc]] = None,
                 callgraph: Optional[CallGraph] = None,
                 max_cond_atoms: int = 4,
                 budget: Optional[int] = None,
                 deadline: Optional[float] = None,
                 path_sensitive: bool = True) -> None:
        self.program = program
        self.fsci = fsci
        self.relevant = relevant
        self.path_sensitive = path_sensitive
        self.sat = SatOracle(fsci)
        self.max_cond_atoms = max_cond_atoms
        self.budget = budget
        self.deadline = deadline
        self.steps = 0
        self._callgraph = callgraph or CallGraph(program)
        self._summaries: Dict[Tuple[str, Term], FrozenSet[SummaryEntry]] = {}
        self._deps: Dict[Tuple[str, Term], Set[Tuple[str, Term]]] = {}
        self._done: Set[Tuple[str, Term]] = set()
        self._transparent = self._compute_transparent()

    # ------------------------------------------------------------------
    # transparency: functions that cannot touch the cluster at all
    # ------------------------------------------------------------------
    def _compute_transparent(self) -> Set[str]:
        """Functions from which no relevant pointer assignment is
        reachable; the paper's observation that most functions need no
        summaries for a given cluster."""
        if self.relevant is not None:
            # Relevant locations are canonical by construction.
            modifiers = {loc.function for loc in self.relevant}
        else:
            modifiers = {loc.function
                         for loc, stmt in self.program.statements()
                         if stmt.is_pointer_assign}
        influencing = self._callgraph.ancestors_of(modifiers)
        return set(self.program.functions) - influencing

    def is_transparent(self, func: str) -> bool:
        return func in self._transparent

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def exit_summary(self, func: str, term: Term) -> FrozenSet[SummaryEntry]:
        """Value of ``term`` at ``func``'s exit, at-entry or terminal."""
        if term.is_terminal:
            return frozenset({(term, TRUE)})
        if self.is_transparent(func):
            return frozenset({(term, TRUE)})
        key = (func, term)
        if key in self._done:
            return self._summaries[key]
        self._fixpoint(key)
        return self._summaries[key]

    def function_summary(self, func: str,
                         pointers: Iterable[Var]) -> List[SummaryTuple]:
        """Paper-style summary tuples for ``func``'s exit location, for
        each pointer of interest (used by reports and Figure 5 tests)."""
        cfg = self.program.cfg_of(func)
        exit_loc = Loc(func, cfg.exit)
        out: List[SummaryTuple] = []
        for p in sorted(pointers, key=str):
            for term, cond in self.exit_summary(func, ObjTerm(p)):
                if term == ObjTerm(p) and not cond:
                    continue  # identity entries are implicit in the paper
                out.append(SummaryTuple(p, exit_loc, term, cond))
        return out

    def backward_from(self, loc: Loc, term: Term,
                      cond: Constraint = TRUE,
                      after: bool = True) -> FrozenSet[SummaryEntry]:
        """Value of ``term`` at ``loc`` (after its statement when
        ``after``), expressed at the enclosing function's entry or as
        terminals."""
        if term.is_terminal and not self.path_sensitive:
            return frozenset({(term, cond)})
        cfg = self.program.cfg_of(loc.function)
        if after:
            starts = [(loc.index, term, cond)]
        else:
            starts = [(p, term, cond) for p in cfg.predecessors(loc.index)]
            if loc.index == cfg.entry:
                return frozenset({(term, cond)})
        return self._walk(loc.function, starts)

    # ------------------------------------------------------------------
    # fixpoint driver
    # ------------------------------------------------------------------
    def _fixpoint(self, root: Tuple[str, Term]) -> None:
        worklist: List[Tuple[str, Term]] = [root]
        queued = {root}
        while worklist:
            key = worklist.pop()
            queued.discard(key)
            old = self._summaries.get(key, frozenset())
            self._summaries.setdefault(key, frozenset())
            self._done.add(key)
            requested: Set[Tuple[str, Term]] = set()
            new = self._compute_exit(key, requested)
            for req in requested:
                self._deps.setdefault(req, set()).add(key)
                if req not in self._done and req not in queued:
                    worklist.append(req)
                    queued.add(req)
            if new != old:
                self._summaries[key] = new | old
                for dep in self._deps.get(key, ()):
                    if dep not in queued:
                        worklist.append(dep)
                        queued.add(dep)

    def _compute_exit(self, key: Tuple[str, Term],
                      requested: Set[Tuple[str, Term]]) -> FrozenSet[SummaryEntry]:
        func, term = key
        cfg = self.program.cfg_of(func)
        return self._walk(func, [(cfg.exit, term, TRUE)], requested)

    # ------------------------------------------------------------------
    # the backward walk (Algorithm 5's worklist, intraprocedural steps)
    # ------------------------------------------------------------------
    def _walk(self, func: str,
              starts: List[Tuple[int, Term, Constraint]],
              requested: Optional[Set[Tuple[str, Term]]] = None
              ) -> FrozenSet[SummaryEntry]:
        cfg = self.program.cfg_of(func)
        results: Set[SummaryEntry] = set()
        processed: Set[Tuple[int, Term, Constraint]] = set()
        work: List[Tuple[int, Term, Constraint]] = []

        def push(node: int, term: Term, cond: Constraint) -> None:
            if term.is_terminal and not self.path_sensitive:
                # Resolved value: nothing before can change it.  With
                # path sensitivity on we keep walking to collect the
                # branch constraints that gate this path segment.
                results.add((term, cond))
                return
            item = (node, term, cond)
            if item not in processed:
                processed.add(item)
                work.append(item)

        for node, term, cond in starts:
            push(node, term, cond)

        while work:
            self.steps += 1
            if self.budget is not None and self.steps > self.budget:
                raise AnalysisBudgetExceeded("summary-engine", self.steps)
            if self.deadline is not None and self.steps % 256 == 0 \
                    and time.monotonic() > self.deadline:
                raise AnalysisBudgetExceeded("summary-engine", self.steps)
            node, term, cond = work.pop()
            loc = Loc(func, node)
            stmt = cfg.stmt(node)
            conts = self._inverse(loc, stmt, term, cond, requested)
            for t, c in conts:
                if not self.sat.satisfiable(c):
                    continue
                if t.is_terminal and not self.path_sensitive:
                    results.add((t, c))
                elif node == cfg.entry:
                    results.add((t, c))
                else:
                    preds = cfg.predecessors(node)
                    if not preds:
                        results.add((t, c))
                    for pred in preds:
                        push(pred, t, c)
        return frozenset(results)

    # ------------------------------------------------------------------
    # Algorithm 4: inverse transfer of one statement over a term
    # ------------------------------------------------------------------
    def _inverse(self, loc: Loc, stmt: Statement, term: Term,
                 cond: Constraint,
                 requested: Optional[Set[Tuple[str, Term]]]
                 ) -> List[SummaryEntry]:
        if term.is_terminal and not isinstance(stmt, Assume):
            # A resolved value only collects branch constraints.
            return [(term, cond)]
        if isinstance(stmt, CallStmt):
            return self._inverse_call(stmt, term, cond, requested)
        if isinstance(stmt, Assume):
            # Path sensitivity (paper Section 3): record the branching
            # constraint; the FSCI-backed oracle weeds out infeasible
            # tuples at satisfiability-check time.
            if not self.path_sensitive:
                return [(term, cond)]
            if stmt.rhs is None:
                atom = null_atom(loc, stmt.lhs, stmt.equal)
            else:
                atom = same_object_atom(loc, stmt.lhs, stmt.rhs, stmt.equal)
            refined = conjoin(cond, atom, self.max_cond_atoms)
            return [(term, refined)] if refined is not None else []
        if not stmt.is_pointer_assign:
            return [(term, cond)]
        if self.relevant is not None and loc not in self.relevant:
            # Outside St_P the reduced program executes a skip.
            return [(term, cond)]
        if isinstance(stmt, Copy):
            return self._inverse_write(loc, stmt.lhs, ObjTerm(stmt.rhs),
                                       term, cond)
        if isinstance(stmt, AddrOf):
            return self._inverse_write(loc, stmt.lhs, AddrTerm(stmt.target),
                                       term, cond)
        if isinstance(stmt, Load):
            return self._inverse_write(loc, stmt.lhs, DerefTerm(stmt.rhs),
                                       term, cond)
        if isinstance(stmt, NullAssign):
            return self._inverse_write(loc, stmt.lhs, NullTerm(), term, cond)
        if isinstance(stmt, Store):
            return self._inverse_store(loc, stmt.lhs, stmt.rhs, term, cond)
        return [(term, cond)]

    def _inverse_write(self, loc: Loc, lhs: Var, value: Term,
                       term: Term, cond: Constraint) -> List[SummaryEntry]:
        """Inverse of a direct write ``lhs = <value>`` (Algorithm 4's
        "r is a pointer variable" arm)."""
        if isinstance(term, ObjTerm):
            if term.obj == lhs:
                return [(value, cond)]
            return [(term, cond)]
        assert isinstance(term, DerefTerm)
        s = term.var
        if s == lhs:
            # The cell *s names changes identity across this statement:
            # after it, s holds <value>, so *s is the content of the cell
            # behind <value> — evaluated AFTER the statement, because the
            # statement may have written that very cell (s = &s etc.).
            return self._deref_after_write(loc, lhs, value, cond)
        # The write may also have landed in the cell s points to, iff
        # s -> lhs at this point (Algorithm 4 lines 10-18).
        pts_s = self._pts_before(loc, s)
        if pts_s is not None and lhs not in pts_s:
            return [(term, cond)]
        out: List[SummaryEntry] = []
        hit = conjoin(cond, points_to_atom(loc, s, lhs, True),
                      self.max_cond_atoms)
        if hit is not None:
            out.append((value, hit))
        miss = conjoin(cond, points_to_atom(loc, s, lhs, False),
                       self.max_cond_atoms)
        if miss is not None:
            out.append((term, miss))
        return out

    def _inverse_store(self, loc: Loc, u: Var, t: Var,
                       term: Term, cond: Constraint) -> List[SummaryEntry]:
        """Inverse of ``*u = t`` (Algorithm 4's "r is of the form ~u")."""
        value = ObjTerm(t)
        if isinstance(term, ObjTerm):
            v = term.obj
            pts_u = self._pts_before(loc, u)
            if pts_u is not None and v not in pts_u:
                return [(term, cond)]
            out: List[SummaryEntry] = []
            hit = conjoin(cond, points_to_atom(loc, u, v, True),
                          self.max_cond_atoms)
            if hit is not None:
                out.append((value, hit))
            miss = conjoin(cond, points_to_atom(loc, u, v, False),
                           self.max_cond_atoms)
            if miss is not None:
                out.append((term, miss))
            return out
        assert isinstance(term, DerefTerm)
        s = term.var
        if s == u:
            return [(value, cond)]
        out: List[SummaryEntry] = []
        # The store may overwrite the *base* variable s itself (when u
        # points to s), changing which cell *s denotes; resolve that
        # branch through FSCI at the after-state (fully conservative).
        pts_u = self._pts_before(loc, u)
        base_cond: Optional[Constraint] = cond
        if pts_u is None or s in pts_u:
            hit = conjoin(cond, points_to_atom(loc, u, s, True),
                          self.max_cond_atoms)
            if hit is not None:
                out.extend(self._resolve_deref_after(loc, s, hit))
            base_cond = conjoin(cond, points_to_atom(loc, u, s, False),
                                self.max_cond_atoms)
            if base_cond is None:
                return out
        # With s unchanged, the store affects *s only if s and u point to
        # the same cell (Algorithm 4 lines 28-35).
        if not self._may_alias_at(loc, s, u):
            out.append((term, base_cond))
            return out
        hit = conjoin(base_cond, same_object_atom(loc, s, u, True),
                      self.max_cond_atoms)
        if hit is not None:
            out.append((value, hit))
        miss = conjoin(base_cond, same_object_atom(loc, s, u, False),
                       self.max_cond_atoms)
        if miss is not None:
            out.append((term, miss))
        return out

    def _resolve_deref_after(self, loc: Loc, s: Var,
                             cond: Constraint) -> List[SummaryEntry]:
        """Fully resolve the term ``*s`` at the state after ``loc``'s
        statement, through FSCI facts (sound over-approximation)."""
        if self.fsci is None:
            return [(UnknownTerm(), cond)]
        objs: Set[MemObject] = set()
        for cell in self.fsci.pts_after(loc, s):
            objs.update(self.fsci.pts_after(loc, cell))
        return [(AddrTerm(o), cond) for o in objs] or [(UnknownTerm(), cond)]

    def _inverse_call(self, stmt: CallStmt, term: Term, cond: Constraint,
                      requested: Optional[Set[Tuple[str, Term]]]
                      ) -> List[SummaryEntry]:
        """Splice callee exit summaries (Algorithm 5 lines 9-18)."""
        targets = [g for g in stmt.targets if g in self.program.functions]
        if not targets:
            return [(term, cond)]
        out: List[SummaryEntry] = []
        for g in targets:
            if self.is_transparent(g):
                out.append((term, cond))
                continue
            key = (g, term)
            if requested is not None:
                requested.add(key)
                entries = self._summaries.setdefault(key, frozenset())
                if key not in self._done:
                    # Will be (re)computed by the fixpoint driver; the
                    # current (possibly empty) value is a monotone
                    # under-approximation that the driver repairs.
                    pass
            else:
                entries = self.exit_summary(g, term)
            for w, c in entries:
                combined = merge(cond, c, self.max_cond_atoms)
                if combined is not None:
                    out.append((w, combined))
        return out

    # ------------------------------------------------------------------
    # FSCI plumbing
    # ------------------------------------------------------------------
    def _pts_before(self, loc: Loc, p: Var) -> Optional[FrozenSet[MemObject]]:
        if self.fsci is None:
            return None
        return self.fsci.pts_before(loc, p)

    def _may_alias_at(self, loc: Loc, a: Var, b: Var) -> bool:
        if self.fsci is None:
            return True
        pa = self.fsci.pts_before(loc, a)
        pb = self.fsci.pts_before(loc, b)
        # Empty sets mean "uninitialized here as far as FSCI knows";
        # err toward aliasing.
        return bool(pa & pb) or not pa or not pb

    def _deref_after_write(self, loc: Loc, lhs: Var, value: Term,
                           cond: Constraint) -> List[SummaryEntry]:
        """The term ``*(value)`` evaluated just after ``lhs = <value>``.

        The write changed exactly one cell — ``lhs`` — whose content
        after the statement is ``value`` itself; every other cell's
        content equals its before-statement content, so the term can
        continue backward symbolically.  Unrepresentable cases resolve
        through FSCI (sound: FSCI over-approximates every execution)."""
        if isinstance(value, AddrTerm):
            if value.obj == lhs:
                # s = &s: *s is s's own content = the assigned value.
                return [(value, cond)]
            return [(ObjTerm(value.obj), cond)]
        if isinstance(value, NullTerm):
            return []  # *NULL: no defined value flows
        if isinstance(value, ObjTerm) and isinstance(value.obj, Var):
            q = value.obj
            # If q points to the written cell itself, *s is the assigned
            # value (= q's value); otherwise the cell was untouched and
            # *q-before-statement is correct.
            pts_q = self._pts_before(loc, q)
            out: List[SummaryEntry] = []
            if pts_q is None or lhs in pts_q:
                hit = conjoin(cond, points_to_atom(loc, q, lhs, True),
                              self.max_cond_atoms)
                if hit is not None:
                    out.append((ObjTerm(q), hit))
                miss = conjoin(cond, points_to_atom(loc, q, lhs, False),
                               self.max_cond_atoms)
                if miss is not None:
                    out.append((DerefTerm(q), miss))
                return out
            return [(DerefTerm(q), cond)]
        if self.fsci is None:
            return [(UnknownTerm(), cond)]
        # Coarse fallback: the possible cells after the statement are the
        # FSCI points-to of lhs there; their contents are FSCI facts too.
        objs: Set[MemObject] = set()
        for cell in self.fsci.pts_after(loc, lhs):
            objs.update(self.fsci.pts_after(loc, cell))
        return [(AddrTerm(o), cond) for o in objs] or [(UnknownTerm(), cond)]

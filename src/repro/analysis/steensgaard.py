"""Steensgaard's unification-based points-to analysis (POPL 1996).

This is the first, cheapest stage of the bootstrapping cascade.  Beyond
points-to sets, the bootstrapping framework needs three artifacts that are
specific to Steensgaard's analysis (paper Section 2.1):

* the **partitions** — equivalence classes of pointers that may alias.
  Two pointers may alias under unification semantics exactly when their
  pointee cells have been unified, so a partition is the set of objects
  sharing one pointee-cell class.  The paper's Figure 3 is the canonical
  example: ``x = &a; y = &b; p = x; *x = *y`` yields partitions
  ``{p, x}``, ``{y}`` and ``{a, b}`` — ``p`` and ``x`` share a pointee
  node, and the contents of ``a`` and ``b`` were unified by the
  store/load pair.  Objects that never carry a pointer value (no pointee
  cell) are grouped by their own node instead, matching the paper's
  Figure 2 where ``{a, b, c}`` is one class.
* the **class-level points-to graph** over partitions, in which every
  node has out-degree at most one;
* the **points-to hierarchy** — the partial order ``p > q`` induced by
  paths in that graph, and the **Steensgaard depth** of each partition.

The paper argues the class graph is acyclic because statements like
``*p = p`` merge ``p`` and ``*p`` into one partition (kept here as an
explicit *self-loop*, the paper's "cyclic case").  Unification does not
remove *every* cycle (``x = &y; y = &x`` yields a genuine two-partition
cycle), so after solving we collapse strongly connected partition cycles
by unifying their pointee classes — a sound coarsening under unification
semantics — and re-derive until the graph is acyclic.  This makes depth
well-defined exactly as the paper requires.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..ir import (
    AddrOf,
    Copy,
    Load,
    MemObject,
    Program,
    Statement,
    Store,
    Var,
)
from .base import PointerAnalysis, PointsToResult
from .unionfind import UnionFind

#: A partition key: ("c", pointee-class-root) for objects with a pointee
#: cell, ("t", own-class-root) for objects without one.
_Key = Tuple[str, object]


class _Solver:
    """One unification pass over a statement sequence."""

    def __init__(self) -> None:
        self.uf: UnionFind[object] = UnionFind()
        # pointee cell per class root; keyed by root, values are arbitrary
        # class members (re-canonicalized through find on access).
        self._pointee: Dict[object, object] = {}
        self._fresh = 0

    # -- class-level accessors ------------------------------------------
    def _root(self, item: object) -> object:
        return self.uf.find(item)

    def pointee(self, item: object) -> Optional[object]:
        member = self._pointee.get(self._root(item))
        return None if member is None else self._root(member)

    def _fresh_cell(self) -> object:
        self._fresh += 1
        return ("$cell", self._fresh)

    def ensure_pointee(self, item: object) -> object:
        root = self._root(item)
        member = self._pointee.get(root)
        if member is None:
            member = self._fresh_cell()
            self.uf.add(member)
            self._pointee[root] = member
        return self._root(member)

    def join(self, a: object, b: object) -> object:
        """Unify classes of ``a`` and ``b``, recursively unifying their
        pointees (Steensgaard's join)."""
        ra, rb = self._root(a), self._root(b)
        if ra == rb:
            return ra
        pa = self._pointee.pop(ra, None)
        pb = self._pointee.pop(rb, None)
        root = self.uf.union(ra, rb)
        if pa is not None and pb is not None:
            self._set_pointee(root, self.join(pa, pb))
        elif pa is not None or pb is not None:
            self._set_pointee(root, pa if pa is not None else pb)
        return self._root(root)

    def _set_pointee(self, cls: object, target: object) -> None:
        """Record ``cls -> target``, merging with any pointee the class
        already has.  A plain assignment would be wrong: the recursive
        pointee join may have cycled back and given ``cls``'s (merged)
        class a pointee of its own, which must be unified with — not
        clobbered by — ``target``."""
        root = self._root(cls)
        existing = self._pointee.get(root)
        if existing is None:
            self._pointee[root] = target
            return
        if self._root(existing) == self._root(target):
            return
        merged = self.join(existing, target)
        self._set_pointee(cls, merged)

    # -- statement transfer -----------------------------------------------
    def process(self, stmt: Statement) -> None:
        if isinstance(stmt, Copy):
            # x = y : unify pt(x) with pt(y)
            self.join(self.ensure_pointee(stmt.lhs), self.ensure_pointee(stmt.rhs))
        elif isinstance(stmt, AddrOf):
            # x = &t : t joins pt(x)
            self.join(self.ensure_pointee(stmt.lhs), stmt.target)
        elif isinstance(stmt, Load):
            # x = *y : unify pt(x) with pt(pt(y))
            inner = self.ensure_pointee(self.ensure_pointee(stmt.rhs))
            self.join(self.ensure_pointee(stmt.lhs), inner)
        elif isinstance(stmt, Store):
            # *x = y : unify pt(pt(x)) with pt(y)
            inner = self.ensure_pointee(self.ensure_pointee(stmt.lhs))
            self.join(inner, self.ensure_pointee(stmt.rhs))
        # NullAssign / calls / skip have no unification effect.


class SteensgaardResult(PointsToResult):
    """Partitions, hierarchy and points-to facts from a Steensgaard run."""

    def __init__(self, program: Program, solver: _Solver,
                 universe: Set[Var]) -> None:
        self.program = program
        self._solver = solver
        self.universe = universe
        self._derive()
        self._collapse_cycles()
        self._build_depths()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _derive(self) -> None:
        solver = self._solver
        # Node membership: objects grouped by their own union-find class.
        self._node_members: Dict[object, Set[MemObject]] = {}
        for obj in sorted(self.program.objects, key=str):
            self._node_members.setdefault(solver._root(obj), set()).add(obj)
        # Partitions: grouped by pointee-cell class when present.
        self._part_of: Dict[MemObject, _Key] = {}
        parts: Dict[_Key, Set[MemObject]] = {}
        for root, members in self._node_members.items():
            cell = solver.pointee(root)
            key: _Key = ("c", cell) if cell is not None else ("t", root)
            parts.setdefault(key, set()).update(members)
            for m in members:
                self._part_of[m] = key
        self._parts: Dict[_Key, FrozenSet[MemObject]] = {
            k: frozenset(v) for k, v in parts.items()}
        # Partition-level points-to edges: partition P (sharing pointee
        # class c) points to the partition of the objects living in node
        # c.  Out-degree is at most one by construction.
        self._edges: Dict[_Key, _Key] = {}
        self._selfloops: Set[_Key] = set()
        for key in self._parts:
            if key[0] != "c":
                continue
            targets = self._node_members.get(key[1])
            if not targets:
                continue
            tkey = self._part_of[next(iter(targets))]
            if tkey == key:
                self._selfloops.add(key)
            else:
                self._edges[key] = tkey

    def _collapse_cycles(self) -> None:
        while True:
            cycle = self._find_cycle()
            if cycle is None:
                return
            # Merge the partitions on the cycle by unifying their pointee
            # classes (all cycle members are "c"-keyed: "t" partitions
            # have no outgoing edge).
            base_cell = cycle[0][1]
            for key in cycle[1:]:
                self._solver.join(base_cell, key[1])
            self._derive()

    def _find_cycle(self) -> Optional[List[_Key]]:
        color: Dict[_Key, int] = {}
        for start in self._parts:
            if color.get(start):
                continue
            path: List[_Key] = []
            node: Optional[_Key] = start
            while node is not None and color.get(node, 0) == 0:
                color[node] = 1
                path.append(node)
                node = self._edges.get(node)
            if node is not None and color.get(node) == 1:
                return path[path.index(node):]
            for n in path:
                color[n] = 2
        return None

    def _build_depths(self) -> None:
        """Steensgaard depth: length of the longest path leading *to* a
        partition in the (acyclic) class graph; self-loops ignored."""
        indeg: Dict[_Key, int] = {k: 0 for k in self._parts}
        for src, dst in self._edges.items():
            indeg[dst] += 1
        order: List[_Key] = [k for k, d in indeg.items() if d == 0]
        depth: Dict[_Key, int] = {k: 0 for k in order}
        i = 0
        while i < len(order):
            node = order[i]
            i += 1
            dst = self._edges.get(node)
            if dst is None:
                continue
            depth[dst] = max(depth.get(dst, 0), depth[node] + 1)
            indeg[dst] -= 1
            if indeg[dst] == 0:
                order.append(dst)
        self._depth = depth

    # ------------------------------------------------------------------
    # PointsToResult interface
    # ------------------------------------------------------------------
    def points_to(self, p: Var) -> FrozenSet[MemObject]:
        key = self._part_of.get(p)
        if key is None or key[0] != "c":
            return frozenset()
        return frozenset(self._node_members.get(key[1], ()))

    def may_alias(self, p: Var, q: Var) -> bool:
        """Steensgaard aliasing is same-partition membership (the
        partitions *are* the alias cover)."""
        if p == q:
            return True
        kp, kq = self._part_of.get(p), self._part_of.get(q)
        return kp is not None and kp == kq

    # ------------------------------------------------------------------
    # partitions / hierarchy API used by the bootstrap core
    # ------------------------------------------------------------------
    def partitions(self) -> List[FrozenSet[MemObject]]:
        """All Steensgaard partitions over program objects, sorted from
        largest to smallest (deterministic order for scheduling)."""
        return sorted(self._parts.values(),
                      key=lambda s: (-len(s), sorted(map(str, s))))

    def partition_of(self, p: MemObject) -> FrozenSet[MemObject]:
        key = self._part_of.get(p)
        if key is None:
            return frozenset({p})
        return self._parts[key]

    def same_partition(self, p: MemObject, q: MemObject) -> bool:
        kp = self._part_of.get(p)
        return kp is not None and kp == self._part_of.get(q)

    def depth_of(self, p: MemObject) -> int:
        key = self._part_of.get(p)
        if key is None:
            return 0
        return self._depth.get(key, 0)

    def higher_than(self, p: MemObject, q: MemObject) -> bool:
        """The paper's ``p > q``: a path exists from ``p``'s partition to
        ``q``'s in the class points-to graph (``p`` is closer to the
        roots; modifications through ``p`` can affect aliases of ``q``)."""
        kp, kq = self._part_of.get(p), self._part_of.get(q)
        if kp is None or kq is None or kp == kq:
            return False
        node = self._edges.get(kp)
        while node is not None:
            if node == kq:
                return True
            node = self._edges.get(node)
        return False

    def pointee_partition(self, p: MemObject) -> Optional[FrozenSet[MemObject]]:
        """The partition holding the cells ``*p`` may denote (the
        partition itself in the cyclic/self-loop case)."""
        key = self._part_of.get(p)
        if key is None:
            return None
        if key in self._selfloops:
            return self._parts[key]
        succ = self._edges.get(key)
        return None if succ is None else self._parts[succ]

    def pointee_keys(self, p: MemObject) -> Tuple[_Key, ...]:
        """Partition keys of the cells ``*p`` may denote.  The classic
        class graph has out-degree at most one, so this is a zero- or
        one-element tuple; the field-sensitive result overrides it with
        the full successor set.  ``core/relevant.py`` indexes stores
        under every key."""
        key = self._part_of.get(p)
        if key is None:
            return ()
        if key in self._selfloops:
            return (key,)
        succ = self._edges.get(key)
        return () if succ is None else (succ,)

    def is_cyclic_partition(self, p: MemObject) -> bool:
        """True when ``p``'s partition points to itself (the paper's
        ``q = ~q`` case)."""
        key = self._part_of.get(p)
        return key is not None and key in self._selfloops

    def class_graph(self) -> List[Tuple[FrozenSet[MemObject], FrozenSet[MemObject]]]:
        """The acyclic partition-level points-to graph as member-set
        pairs (self-loops excluded)."""
        return [(self._parts[a], self._parts[b])
                for a, b in sorted(self._edges.items(), key=lambda kv: str(kv[0]))]

    def max_partition_size(self) -> int:
        return max((len(m) for m in self._parts.values()), default=0)


class Steensgaard(PointerAnalysis):
    """Run Steensgaard's analysis over a program (or statement subset)."""

    name = "steensgaard"

    def __init__(self, program: Program,
                 statements: Optional[Iterable[Statement]] = None) -> None:
        super().__init__(program)
        self._statements = statements

    def run(self) -> SteensgaardResult:
        solver = _Solver()
        stmts = self._statements
        if stmts is None:
            stmts = (s for _, s in self.program.statements())
        for stmt in stmts:
            solver.process(stmt)
        # Register every program object so isolated variables become
        # singleton partitions.
        for obj in self.program.objects:
            solver.uf.add(obj)
        return SteensgaardResult(self.program, solver, set(self.program.pointers))

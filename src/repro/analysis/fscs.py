"""Flow- and context-sensitive (FSCS) alias analysis for one cluster.

This module assembles the paper's Section 3 pipeline for a single
cluster ``P``:

1. the cluster's tracked pointers ``V_P`` and relevant statements
   ``St_P`` come from Algorithm 1 (:mod:`repro.core.relevant`);
2. FSCI points-to sets are computed on the sliced program
   (:mod:`.fsci`) — this plays the role of Algorithm 2's dovetailing:
   the dataflow fixpoint naturally resolves lower-depth pointers before
   the facts for higher-depth ones stabilize, and the summary engine
   consumes the finished result;
3. function summaries and alias queries run on the
   :class:`~.summaries.SummaryEngine` (Algorithms 4/5).

Alias queries follow Theorem 5: pointers ``p`` and ``q`` may alias at a
location iff backward maximally-complete-update-sequence *origins* of the
two intersect.  The paper computes the alias set of ``p`` with a backward
pass (set ``A``) followed by a forward pass (set ``Q``); since a cluster
is small we instead compute origins for every candidate in the cluster
and intersect, which returns the same set and reuses one engine.

Context-sensitive queries take an explicit call chain and splice
summaries along it only; context-insensitive queries union over all
callers (Algorithm 3's behaviour).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import AnalysisBudgetExceeded
from ..ir import CallGraph, CallStmt, Loc, MemObject, Program, Var
from .constraints import TRUE, Constraint, merge
from .fsci import FSCI, FSCIResult
from .summaries import (
    AddrTerm,
    DerefTerm,
    NullTerm,
    ObjTerm,
    SummaryEngine,
    SummaryEntry,
    SummaryTuple,
    Term,
    UnknownTerm,
)

#: A call context: the chain of function names from the program entry to
#: the function containing the query location (the paper's f1 ... fn).
Context = Sequence[str]


class ClusterFSCS:
    """FSCS analysis scoped to one cluster.

    Parameters
    ----------
    cluster:
        The cluster's pointers (a Steensgaard partition or an Andersen
        cluster).
    tracked:
        ``V_P`` from Algorithm 1; defaults to ``cluster``.
    relevant:
        ``St_P`` from Algorithm 1 as a set of locations; ``None`` means
        every statement is relevant (the unclustered baseline).
    budget:
        Engine step budget (``AnalysisBudgetExceeded`` on overrun).
    """

    def __init__(self, program: Program,
                 cluster: Iterable[Var],
                 tracked: Optional[Iterable[MemObject]] = None,
                 relevant: Optional[Set[Loc]] = None,
                 callgraph: Optional[CallGraph] = None,
                 fsci: Optional[FSCIResult] = None,
                 max_cond_atoms: int = 4,
                 budget: Optional[int] = None,
                 max_fsci_iterations: Optional[int] = None,
                 deadline: Optional[float] = None,
                 use_kernel: bool = True) -> None:
        self.program = program
        self.cluster: FrozenSet[Var] = frozenset(cluster)
        self.tracked: Optional[FrozenSet[MemObject]] = (
            frozenset(tracked) if tracked is not None else None)
        self.relevant = relevant
        self.callgraph = callgraph or CallGraph(program)
        self._fsci = fsci
        self._max_fsci_iterations = max_fsci_iterations
        self._engine: Optional[SummaryEngine] = None
        self._max_cond_atoms = max_cond_atoms
        self._budget = budget
        self._deadline = deadline
        self._use_kernel = use_kernel

    @property
    def fsci(self) -> FSCIResult:
        """The cluster's FSCI result, computed lazily on the *restricted*
        supergraph: only functions from which a relevant statement is
        reachable matter (transparent functions pass tracked state
        through unchanged), which is exactly the locality the paper's
        per-cluster summarization exploits."""
        if self._fsci is None:
            functions = None
            if self.relevant is not None:
                relevant_funcs = {loc.function for loc in self.relevant}
                functions = self.callgraph.ancestors_of(relevant_funcs)
                functions.add(self.program.entry)
            self._fsci = FSCI(self.program, tracked=self.tracked,
                              relevant=self.relevant, functions=functions,
                              max_iterations=self._max_fsci_iterations,
                              callgraph=self.callgraph,
                              deadline=self._deadline,
                              use_kernel=self._use_kernel).run()
        return self._fsci

    @property
    def engine(self) -> SummaryEngine:
        if self._engine is None:
            self._engine = SummaryEngine(
                self.program, fsci=self.fsci, relevant=self.relevant,
                callgraph=self.callgraph,
                max_cond_atoms=self._max_cond_atoms, budget=self._budget,
                deadline=self._deadline)
        return self._engine

    # ------------------------------------------------------------------
    # summaries (the precomputation the paper's Table 1 times)
    # ------------------------------------------------------------------
    def analyze(self) -> Dict[str, int]:
        """Compute exit summaries for every non-transparent function and
        every cluster pointer — the paper's per-cluster summary
        construction — and return basic statistics."""
        tuples = 0
        functions = 0
        for func in sorted(self.program.functions):
            if self.engine.is_transparent(func):
                continue
            functions += 1
            for p in sorted(self.cluster, key=str):
                tuples += len(self.engine.exit_summary(func, ObjTerm(p)))
        return {
            "summarized_functions": functions,
            "summary_entries": tuples,
            "engine_steps": self.engine.steps,
            "fsci_iterations": self.fsci.iterations,
        }

    def summary_tuples(self, func: str) -> List[SummaryTuple]:
        """Readable summary tuples for ``func`` over the cluster."""
        return self.engine.function_summary(func, self.cluster)

    # ------------------------------------------------------------------
    # origin computation (Theorem 5 machinery)
    # ------------------------------------------------------------------
    def origins(self, p: Var, loc: Loc,
                context: Optional[Context] = None,
                after: bool = True) -> FrozenSet[SummaryEntry]:
        """Backward origins of ``p``'s value at ``loc``.

        Results are pairs ``(term, cond)`` where ``term`` is a terminal
        (``&obj`` / ``NULL`` / unknown) or a non-terminal expressed at the
        *program* entry (an uninitialized carry-in).
        """
        start = self.engine.backward_from(loc, ObjTerm(p), after=after)
        if context is None:
            return self._spread_all_callers(loc.function, start)
        return self._spread_context(loc.function, start, context)

    def _spread_all_callers(self, func: str,
                            entries: FrozenSet[SummaryEntry]
                            ) -> FrozenSet[SummaryEntry]:
        """Algorithm 3 style: propagate entry facts through every caller
        transitively until the program entry."""
        results: Set[SummaryEntry] = set()
        seen: Set[Tuple[str, Term, Constraint]] = set()
        work: List[Tuple[str, Term, Constraint]] = []

        def push(f: str, term: Term, cond: Constraint) -> None:
            if term.is_terminal:
                results.add((term, cond))
                return
            key = (f, term, cond)
            if key not in seen:
                seen.add(key)
                work.append(key)

        for term, cond in entries:
            push(func, term, cond)
        while work:
            f, term, cond = work.pop()
            callers = self.callgraph.callers(f)
            if f == self.program.entry or not callers:
                results.add((term, cond))
                continue
            for g in sorted(callers):
                for site in self.callgraph.call_sites_of(g, f):
                    spliced = self.engine.backward_from(
                        site, term, cond, after=False)
                    for t, c in spliced:
                        push(g, t, c)
        return frozenset(results)

    def _spread_context(self, func: str, entries: FrozenSet[SummaryEntry],
                        context: Context) -> FrozenSet[SummaryEntry]:
        """Splice along one specific call chain f1 ... fn (fn == func)."""
        chain = list(context)
        if not chain or chain[-1] != func:
            raise ValueError(
                f"context must end at {func!r}, got {chain!r}")
        if chain[0] != self.program.entry:
            raise ValueError(
                f"context must start at the entry {self.program.entry!r}")
        current: Set[SummaryEntry] = set(entries)
        for callee, caller in zip(reversed(chain), reversed(chain[:-1])):
            sites = self.callgraph.call_sites_of(caller, callee)
            if not sites:
                raise ValueError(f"{caller!r} never calls {callee!r}")
            nxt: Set[SummaryEntry] = set()
            for term, cond in current:
                if term.is_terminal:
                    nxt.add((term, cond))
                    continue
                for site in sites:
                    nxt.update(self.engine.backward_from(
                        site, term, cond, after=False))
            current = nxt
        return frozenset(current)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def points_to(self, p: Var, loc: Loc,
                  context: Optional[Context] = None,
                  after: bool = True) -> FrozenSet[MemObject]:
        """Objects ``p`` may point to at ``loc`` (after its statement by
        default), context-sensitively when ``context`` is given."""
        objs: Set[MemObject] = set()
        unknown = False
        for term, _cond in self.origins(p, loc, context, after=after):
            if isinstance(term, AddrTerm):
                objs.add(term.obj)
            elif isinstance(term, UnknownTerm):
                unknown = True
        if unknown:
            getter = self.fsci.pts_after if after else self.fsci.pts_before
            objs.update(getter(loc, p))
        return frozenset(objs)

    def may_alias(self, p: Var, q: Var, loc: Loc,
                  context: Optional[Context] = None,
                  after: bool = True) -> bool:
        """Theorem 5: p and q may alias iff they share an origin."""
        if p == q:
            return True
        op = self.origins(p, loc, context, after=after)
        oq = self.origins(q, loc, context, after=after)
        if any(isinstance(t, UnknownTerm) for t, _ in op) or \
                any(isinstance(t, UnknownTerm) for t, _ in oq):
            return self.fsci.may_alias_at(p, q, loc)
        shared = ({t for t, _ in op if not isinstance(t, NullTerm)}
                  & {t for t, _ in oq if not isinstance(t, NullTerm)})
        return bool(shared)

    def alias_set(self, p: Var, loc: Loc,
                  context: Optional[Context] = None,
                  candidates: Optional[Iterable[Var]] = None,
                  after: bool = True) -> FrozenSet[Var]:
        """All cluster pointers that may alias ``p`` at ``loc``."""
        cands = set(candidates) if candidates is not None else set(self.cluster)
        return frozenset(q for q in cands
                         if self.may_alias(p, q, loc, context, after=after))


def whole_program_fscs(program: Program,
                       budget: Optional[int] = None,
                       max_fsci_iterations: Optional[int] = None,
                       max_cond_atoms: int = 4,
                       timeout_seconds: Optional[float] = None,
                       use_kernel: bool = True) -> ClusterFSCS:
    """The *unclustered* FSCS baseline (Table 1 column 6): one cluster
    containing every pointer, no slicing.  Expected not to scale — that
    is the point of the experiment (``timeout_seconds`` mirrors the
    paper's 15-minute wall-clock cap)."""
    import time as _time
    deadline = (_time.monotonic() + timeout_seconds
                if timeout_seconds is not None else None)
    return ClusterFSCS(program, cluster=program.pointers, tracked=None,
                       relevant=None, budget=budget,
                       max_cond_atoms=max_cond_atoms,
                       max_fsci_iterations=max_fsci_iterations,
                       deadline=deadline, use_kernel=use_kernel)

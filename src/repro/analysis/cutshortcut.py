"""Cut-shortcut: cheap context sensitivity without contexts (Ma et al.).

Flow-insensitive Andersen conflates every call site of a function: all
arguments merge into the parameter conduits and the merged return value
flows back to *every* caller.  Full context sensitivity (our FSCS) fixes
that at exponential cost.  "Context Sensitivity without Contexts" (see
PAPERS.md) recovers most of the precision at Andersen cost by a graph
transformation instead of context cloning:

* **cut** — for a callee whose return value provably derives only from
  its own parameters and address-taken constants (no heap read, no
  global written elsewhere), delete the per-site return copy
  ``x = $retval(g)``: the conflating edge through the shared return
  conduit is severed.
* **shortcut** — replace each deleted edge with direct per-site edges
  from the summary's sources: ``x = arg_k`` for a ``(param, k)`` source
  (the *cut-shortcut* around the callee's body) and ``x = &obj`` for an
  ``(addr, obj)`` source.

The parameter copies and the callee's body stay in the graph, so every
other flow (side effects through globals and the heap) is still solved
by the standard Andersen fixpoint; only the return conflation is
bypassed.  Each rewritten site then sees exactly its own arguments'
targets — the context-sensitive answer for return flow — while the
whole thing remains one (kernel-backed) Andersen run over a same-size
constraint graph.

Return summaries are computed per function in reverse-topological call
graph SCC order (:meth:`repro.ir.callgraph.CallGraph.sccs`): a source
set is the fixpoint of following copy definitions backwards from
``$retval`` across the whole program, stopping at parameters of the
summarized function, address-of constants, or anything heap-tainted
(loads, extern-call results, other functions' parameters, unsummarized
— e.g. recursive — callees' return values).  A summary that exceeds
``source_bound`` sources, or touches the heap, marks the function
non-shortcuttable and its sites keep their original return copies.

Site association relies on the builder/normalizer lowering invariant
that parameter copies ``$paramK(g) = arg`` immediately precede their
``CallStmt`` in a straight-line chain and the return copy immediately
follows it (``repro.ir.builder.FunctionBuilder.call`` and the
indirect-call splice both guarantee this).  Anything that does not
match the shape exactly — extra predecessors, interleaved statements,
stray parameter copies outside a recognized chain — conservatively
keeps the original return copy, so hand-built IR degrades to plain
Andersen instead of losing flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..ir import (
    CFG,
    AddrOf,
    CallStmt,
    Copy,
    ExternCall,
    Load,
    Loc,
    MemObject,
    Program,
    Statement,
    Var,
)
from ..ir.callgraph import CallGraph
from ..ir.program import param_var, retval_var
from .andersen import Andersen, AndersenResult
from .base import PointsToResult

#: Summaries larger than this many sources fall back to heap (classic
#: Andersen return flow) — the same cost-bounding idea as the
#: field-sensitive sharing bound.
DEFAULT_SOURCE_BOUND = 8

#: A return-value source: ``("param", k)`` or ``("addr", obj)``.
Source = Tuple[str, object]


@dataclass(frozen=True)
class RetSummary:
    """Where a function's return value can come from."""

    sources: FrozenSet[Source]
    heap: bool

    @property
    def shortcuttable(self) -> bool:
        return not self.heap


def _is_param(v: Var) -> Optional[int]:
    """The parameter index if ``v`` is a ``$paramK`` conduit."""
    if v.name.startswith("$param") and "__" not in v.name:
        suffix = v.name[len("$param"):]
        if suffix.isdigit():
            return int(suffix)
    return None


class CutShortcutTransform:
    """The precomputed constraint-graph transformation for one program.

    ``shortcut_edges`` maps each cut return-copy *location* to the
    shortcut statements that stand in for it; :meth:`transform_statements`
    applies the map to any located statement sequence, so the whole
    program and per-cluster slices share one precomputation.  Keying by
    location (not statement value) matters: statements are frozen
    dataclasses, so two occurrences of ``x = $retval(g)`` compare equal
    even when only one of them sits in a recognized call-site shape —
    the unrecognized occurrence must keep its original return copy.
    """

    def __init__(self, program: Program,
                 source_bound: int = DEFAULT_SOURCE_BOUND) -> None:
        self.program = program
        self.source_bound = max(1, source_bound)
        self.callgraph = CallGraph(program)
        #: Per-function return summaries (reverse topological order).
        self.summaries: Dict[str, RetSummary] = {}
        #: Functions whose return sites can be cut.
        self.shortcuttable: Set[str] = set()
        #: Cut return copies: (location, statement, callee).
        self.cut_edges: List[Tuple[Loc, Copy, str]] = []
        #: Added shortcut statements per cut location.
        self.shortcut_edges: Dict[Loc, List[Statement]] = {}
        #: The cut statement recorded at each location (guards
        #: :meth:`transform_statements` against stale locations).
        self._cut_stmt: Dict[Loc, Copy] = {}
        self._defs = self._index_defs()
        self._binders = self._index_binders()
        for comp in self.callgraph.sccs():
            for g in sorted(comp):
                self.summaries[g] = self._summarize(g)
        self.shortcuttable = {
            g for g, s in self.summaries.items() if s.shortcuttable}
        self._associate_sites()

    @classmethod
    def of(cls, program: Program,
           source_bound: int = DEFAULT_SOURCE_BOUND
           ) -> "CutShortcutTransform":
        """Per-program transform cache, keyed by source bound so callers
        with different bounds (the cascade's configured bound vs. the
        resilience rung's default) never thrash each other's entry."""
        bound = max(1, source_bound)
        cache = getattr(program, "_cutshortcut_transforms", None)
        if not isinstance(cache, dict):
            cache = {}
            program._cutshortcut_transforms = cache  # type: ignore[attr-defined]
        cached = cache.get(bound)
        if cached is None or cached.program is not program:
            cached = cls(program, bound)
            cache[bound] = cached
        return cached

    # -- summaries -------------------------------------------------------
    def _index_defs(self) -> Dict[Var, List[Statement]]:
        """Program-wide definition sites per variable (copies follow
        values through globals regardless of which function wrote
        them)."""
        defs: Dict[Var, List[Statement]] = {}
        for _loc, stmt in self.program.statements():
            if isinstance(stmt, (Copy, AddrOf, Load)):
                defs.setdefault(stmt.lhs, []).append(stmt)
            elif isinstance(stmt, ExternCall) and stmt.result is not None:
                defs.setdefault(stmt.result, []).append(stmt)
        return defs

    def _index_binders(self) -> Dict[str, Set[str]]:
        """Which functions contain a real parameter copy per callee."""
        binders: Dict[str, Set[str]] = {}
        for loc, stmt in self.program.statements():
            if isinstance(stmt, Copy) and _is_param(stmt.lhs) is not None \
                    and stmt.lhs.function is not None:
                binders.setdefault(stmt.lhs.function, set()).add(loc.function)
        return binders

    def _defines_ret_everywhere(self, g: str) -> bool:
        """Does every entry→exit path through ``g`` write ``$retval``?

        The IR's return conduit is a plain variable, so a path that
        skips the write leaves the *previous* activation's value in it —
        a cross-site flow no per-site shortcut covers.  Checked by BFS
        from entry with retval-defining nodes as barriers: reaching the
        exit means some path dodges every write.
        """
        fn = self.program.functions.get(g)
        if fn is None:
            return False
        cfg = fn.cfg
        rv = retval_var(g)
        seen = {cfg.entry}
        stack = [cfg.entry]
        while stack:
            n = stack.pop()
            if cfg.stmt(n).defined_var() == rv:
                continue
            if n == cfg.exit:
                return False
            for s in cfg.successors(n):
                if s not in seen:
                    seen.add(s)
                    stack.append(s)
        return True

    def _rebind_hazard(self, g: str) -> bool:
        """Can a call executed *during* ``g``'s body rebind ``g``'s
        parameter conduits?  (Again a consequence of conduits being
        plain variables: an inner bound call to ``g`` overwrites the
        outer activation's parameters, so the return no longer derives
        from this site's arguments.)  True when any function reachable
        from ``g`` in the call graph binds ``g``'s parameters.
        """
        binders = self._binders.get(g)
        if not binders:
            return False
        reach: Set[str] = set()
        stack = [g]
        while stack:
            h = stack.pop()
            for c in self.callgraph.edges.get(h, ()):
                if c not in reach:
                    reach.add(c)
                    stack.append(c)
        return bool(reach & binders)

    def _summarize(self, g: str) -> RetSummary:
        sources: Set[Source] = set()
        seen: Set[Var] = set()
        stack: List[Var] = [retval_var(g)]
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            if v.function is not None and v.function != g:
                k = _is_param(v)
                if k is not None or v.name == "$retval":
                    # Another function's conduit: its parameter is bound
                    # per *its* sites; its return value is summarized
                    # separately.  Inline an already-computed callee
                    # summary when it is context-free (addr-only);
                    # anything else is heap for our purposes.
                    if v.name == "$retval":
                        callee = self.summaries.get(v.function)
                        if callee is not None and callee.shortcuttable \
                                and all(s[0] == "addr"
                                        for s in callee.sources):
                            sources |= callee.sources
                            continue
                    return RetSummary(frozenset(), heap=True)
            elif v.function == g:
                k = _is_param(v)
                if k is not None:
                    sources.add(("param", k))
                    continue
            for stmt in self._defs.get(v, ()):
                if isinstance(stmt, Copy):
                    stack.append(stmt.rhs)
                elif isinstance(stmt, AddrOf):
                    sources.add(("addr", stmt.target))
                else:  # Load or extern-call result: heap
                    return RetSummary(frozenset(), heap=True)
            if len(sources) > self.source_bound:
                return RetSummary(frozenset(), heap=True)
        if self._defs.get(retval_var(g)) \
                and not self._defines_ret_everywhere(g):
            return RetSummary(frozenset(), heap=True)
        if any(s[0] == "param" for s in sources) and self._rebind_hazard(g):
            return RetSummary(frozenset(), heap=True)
        return RetSummary(frozenset(sources), heap=False)

    # -- site association ------------------------------------------------
    def _associate_sites(self) -> None:
        for fname in sorted(self.program.functions):
            fn = self.program.functions[fname]
            cfg = fn.cfg
            claimed: Set[int] = set()
            candidates: List[Tuple[int, Copy, str, int]] = []
            for idx, stmt in cfg.statements():
                if not (isinstance(stmt, Copy) and stmt.rhs.name == "$retval"
                        and stmt.rhs.function is not None
                        and stmt.rhs.function != fname):
                    continue
                g = stmt.rhs.function
                if g not in self.shortcuttable \
                        or g not in self.program.functions:
                    continue
                preds = cfg.predecessors(idx)
                if len(preds) != 1:
                    continue
                call = cfg.stmt(preds[0])
                if not isinstance(call, CallStmt) or not (
                        call.callee == g or g in call.targets):
                    continue
                candidates.append((idx, stmt, g, preds[0]))
            cuts: List[Tuple[int, Copy, str, List[Statement]]] = []
            stray_for: Set[str] = set()
            for idx, stmt, g, site in candidates:
                args = self._site_args(cfg, site, g, claimed)
                summary = self.summaries[g]
                repl: List[Statement] = []
                for src in sorted(summary.sources, key=str):
                    if src[0] == "addr":
                        repl.append(AddrOf(stmt.lhs, src[1]))
                    elif src[1] in args:
                        for rhs in args[src[1]]:
                            repl.append(Copy(stmt.lhs, rhs))
                    else:
                        # A site that passes no value for this parameter
                        # reads whatever an earlier call left in the
                        # conduit: fall back to the shared conduit edge
                        # (exactly Andersen's flow for this source, so
                        # the site loses nothing and stays sound).
                        repl.append(Copy(stmt.lhs, param_var(g, src[1])))
                cuts.append((idx, stmt, g, repl))
            # Any parameter copy targeting g outside a recognized chain
            # means the association is unreliable for that callee in
            # this function: keep its return copies.
            for idx, stmt in cfg.statements():
                if idx in claimed or not isinstance(stmt, Copy):
                    continue
                lhs = stmt.lhs
                if _is_param(lhs) is not None and lhs.function is not None \
                        and lhs.function in self.shortcuttable:
                    stray_for.add(lhs.function)
            for idx, stmt, g, repl in cuts:
                if g in stray_for:
                    continue
                loc = Loc(fname, idx)
                self.cut_edges.append((loc, stmt, g))
                self.shortcut_edges[loc] = repl
                self._cut_stmt[loc] = stmt

    def _site_args(self, cfg: CFG, site: int, g: str,
                   claimed: Set[int]) -> Dict[int, List[Var]]:
        """Arguments bound at one call site: walk the straight-line
        parameter-copy chain immediately preceding the call.

        Only copies binding ``g``'s own parameters are claimed; a copy
        binding a *different* callee's parameters stays visible to the
        stray-parameter-copy scan (it is claimed when that callee's own
        site in the same chain — e.g. an indirect call's other
        candidate — is associated, and flags the callee as unreliable
        otherwise).
        """
        args: Dict[int, List[Var]] = {}
        cur = site
        while True:
            preds = cfg.predecessors(cur)
            if len(preds) != 1:
                return args
            stmt = cfg.stmt(preds[0])
            if not (isinstance(stmt, Copy)
                    and stmt.lhs.name.startswith("$param")):
                return args
            k = _is_param(stmt.lhs)
            if k is not None and stmt.lhs == param_var(g, k):
                args.setdefault(k, []).append(stmt.rhs)
                claimed.add(preds[0])
            cur = preds[0]

    # -- application -----------------------------------------------------
    def transform_statements(
            self, located: Iterable[Tuple[Loc, Statement]]
    ) -> List[Statement]:
        """Rewrite a located statement sequence: statements at cut
        locations become their shortcut statements, everything else
        passes through.  Keyed by location, so a value-equal return
        copy at a site :meth:`_associate_sites` did not cut (stray
        copies, multi-predecessor sites) keeps its original conflating
        edge — conservative, never flow-losing.  A location whose
        statement no longer matches the recorded cut (a stale or
        foreign location) also passes through unchanged."""
        out: List[Statement] = []
        for loc, stmt in located:
            repl = self.shortcut_edges.get(loc)
            if repl is not None and self._cut_stmt.get(loc) == stmt:
                out.extend(repl)
            else:
                out.append(stmt)
        return out

    def stats(self) -> Dict[str, int]:
        return {
            "shortcuttable_functions": len(self.shortcuttable),
            "cut_edges": len(self.cut_edges),
            "shortcut_edges": sum(
                len(v) for v in self.shortcut_edges.values()),
        }


class CutShortcutResult(PointsToResult):
    """An Andersen result over the transformed graph, plus the
    transformation metadata (for diagnostics and ``repro dot``)."""

    def __init__(self, andersen: AndersenResult,
                 transform: CutShortcutTransform) -> None:
        self.andersen = andersen
        self.transform = transform
        self.universe = andersen.universe

    def points_to(self, p: Var) -> FrozenSet[MemObject]:
        return self.andersen.points_to(p)

    def points_to_obj(self, o: MemObject) -> FrozenSet[MemObject]:
        return self.andersen.points_to_obj(o)

    def clusters(self, pointers: Optional[Iterable[Var]] = None,
                 include_singletons: bool = True) -> List[FrozenSet[Var]]:
        return self.andersen.clusters(pointers, include_singletons)

    def max_cluster_size(self) -> int:
        return self.andersen.max_cluster_size()


class CutShortcut:
    """Run kernel-backed Andersen over the cut-shortcut transformed
    constraint graph."""

    name = "cutshortcut"

    def __init__(self, program: Program,
                 statements: Optional[Iterable[Tuple[Loc, Statement]]] = None,
                 source_bound: int = DEFAULT_SOURCE_BOUND,
                 cycle_elimination: bool = True,
                 use_kernel: bool = True) -> None:
        #: ``statements`` is a located ``(Loc, Statement)`` iterable (a
        #: slice of ``program.statements()``); locations select which
        #: return copies the transform may rewrite.
        self.program = program
        self._statements = statements
        self._source_bound = source_bound
        self._cycle_elimination = cycle_elimination
        self._use_kernel = use_kernel

    def run(self) -> CutShortcutResult:
        transform = CutShortcutTransform.of(self.program,
                                            self._source_bound)
        located = self._statements
        if located is None:
            located = self.program.statements()
        transformed = transform.transform_statements(located)
        andersen = Andersen(self.program, statements=transformed,
                            cycle_elimination=self._cycle_elimination,
                            use_kernel=self._use_kernel).run()
        return CutShortcutResult(andersen, transform)

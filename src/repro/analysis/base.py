"""Common interfaces for pointer analyses.

Every analysis stage of the bootstrapping cascade — Steensgaard, One-Flow,
Andersen, FSCI, FSCS — exposes points-to information through
:class:`PointsToResult` so the cascade driver, cluster extraction and the
test-suite precision-ordering checks can treat them uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Iterable, Optional, Set

from ..ir import MemObject, Program, Var


class PointsToResult(ABC):
    """Flow-insensitive view of an analysis' result.

    Flow-sensitive analyses implement this as the union over all
    locations, and offer richer location-indexed accessors of their own.
    """

    @abstractmethod
    def points_to(self, p: Var) -> FrozenSet[MemObject]:
        """Objects ``p`` may point to."""

    def may_alias(self, p: Var, q: Var) -> bool:
        """May ``p`` and ``q`` point to the same object?

        Two pointers with empty points-to sets never alias (they have no
        value to share under the paper's model).
        """
        if p == q:
            return True
        return bool(self.points_to(p) & self.points_to(q))

    def alias_set(self, p: Var, universe: Iterable[Var]) -> Set[Var]:
        """All pointers in ``universe`` that may alias ``p``."""
        return {q for q in universe if self.may_alias(p, q)}


class MapPointsTo(PointsToResult):
    """A points-to result backed by a plain dict (the common case)."""

    def __init__(self, pts: Dict[Var, FrozenSet[MemObject]]) -> None:
        self._pts = pts

    def points_to(self, p: Var) -> FrozenSet[MemObject]:
        return self._pts.get(p, frozenset())

    def as_dict(self) -> Dict[Var, FrozenSet[MemObject]]:
        return dict(self._pts)


class PointerAnalysis(ABC):
    """A runnable whole-program (or sub-program) pointer analysis."""

    #: Human-readable stage name used in cascade reports.
    name: str = "abstract"

    def __init__(self, program: Program) -> None:
        self.program = program

    @abstractmethod
    def run(self) -> PointsToResult:
        """Execute the analysis and return its result."""


def precision_refines(finer: PointsToResult, coarser: PointsToResult,
                      pointers: Iterable[Var]) -> bool:
    """True when ``finer`` reports a subset of ``coarser``'s points-to
    facts for every pointer — the ordering the cascade relies on."""
    return all(finer.points_to(p) <= coarser.points_to(p) for p in pointers)

"""Pointer analyses: Steensgaard, One-Flow, Andersen, FSCI, FSCS."""

from .andersen import Andersen, AndersenResult
from .base import MapPointsTo, PointerAnalysis, PointsToResult, precision_refines
from .constraints import (
    NULL_MARKER,
    TRUE,
    Atom,
    Constraint,
    SatOracle,
    conjoin,
    format_constraint,
    merge,
    null_atom,
    points_to_atom,
    same_object_atom,
)
from .cutshortcut import (
    DEFAULT_SOURCE_BOUND,
    CutShortcut,
    CutShortcutResult,
    CutShortcutTransform,
    RetSummary,
)
from .dataflow import ForwardDataflow, Supergraph
from .demand import DemandAndersen, demand_points_to
from .demand_engine import (
    DemandEngine,
    DemandResult,
    DemandView,
    EngineStats,
)
from .fsci import FSCI, FSCIResult
from .fscs import ClusterFSCS, whole_program_fscs
from .mustalias import MustAlias, MustAliasResult, MUST_NULL, TOP as MUST_TOP
from .oneflow import OneFlow
from .oracle import (
    ConcreteExecutor,
    ConcreteHeapExecutor,
    ConcreteLockExecutor,
    ConcreteTaintExecutor,
    OracleResult,
    execute,
    execute_heap,
    execute_lock_orders,
    execute_taint,
)
from .steensgaard import Steensgaard, SteensgaardResult
from .steensgaard_fs import (
    DEFAULT_SHARING_BOUND,
    SteensgaardFS,
    SteensgaardFSResult,
    field_key,
)
from .summaries import (
    AddrTerm,
    DerefTerm,
    NullTerm,
    ObjTerm,
    SummaryEngine,
    SummaryTuple,
    Term,
    UnknownTerm,
)
from .unionfind import UnionFind

__all__ = [
    "Andersen", "AndersenResult", "AddrTerm", "Atom", "ClusterFSCS",
    "ConcreteExecutor", "ConcreteHeapExecutor", "ConcreteLockExecutor",
    "ConcreteTaintExecutor", "Constraint",
    "CutShortcut", "CutShortcutResult", "CutShortcutTransform",
    "DEFAULT_SOURCE_BOUND", "RetSummary",
    "DemandAndersen", "DemandEngine", "DemandResult", "DemandView",
    "DerefTerm", "EngineStats", "FSCI", "FSCIResult", "demand_points_to",
    "ForwardDataflow", "MapPointsTo", "MustAlias", "MustAliasResult", "NULL_MARKER", "NullTerm", "ObjTerm", "OneFlow", "null_atom",
    "OracleResult", "PointerAnalysis", "PointsToResult", "SatOracle",
    "DEFAULT_SHARING_BOUND", "SteensgaardFS", "SteensgaardFSResult",
    "field_key",
    "Steensgaard", "SteensgaardResult", "SummaryEngine", "SummaryTuple",
    "Supergraph", "TRUE", "Term", "UnionFind", "UnknownTerm", "conjoin",
    "execute", "execute_heap", "execute_lock_orders", "execute_taint",
    "format_constraint", "merge",
    "points_to_atom",
    "precision_refines", "same_object_atom", "whole_program_fscs",
]

"""Interprocedural source-to-sink taint propagation over the cascade.

This is the client the paper's flexibility pitch asks for: a
flow-sensitive, context-sensitive analysis that only needs alias
precision for the pointers tainted data actually moves through.  The
engine is split the same way the cascade is:

* **Spec** (:class:`TaintSpec`) — sources, sinks and sanitizers are
  declared per library function (built-in defaults for the toy-C corpus,
  or a user JSON file).  Library calls appear in the IR as
  :class:`~repro.ir.ExternCall` statements with positionally
  materialized arguments, so rules match by function name + argument
  index.

* **Propagation** (:class:`TaintEngine`) — per-function forward
  dataflow over taint *provenance sets*.  Indirect loads and stores
  resolve through a caller-supplied ``resolver(loc, ptr)`` callback
  (backed by a demand-selected sliced FSCI, see
  :mod:`repro.checkers.taint`); pointers the resolver cannot answer are
  reported back as *demanded* so the driver can select their clusters
  and re-run — the paper's demand-driven loop.

* **Summaries** — functions are processed in reverse-topological SCC
  order (callees first, mirroring Algorithms 4-5): each function gets a
  transfer summary mapping output cells to the input cells / source
  events that taint them, plus the sink hits that fire when a given
  input cell is tainted.  Call sites apply summaries instead of
  re-walking callee bodies, which is what makes the engine
  context-sensitive without context cloning.

Every fact carries a witness *step list* (location + note per hop); a
completed source-to-sink flow therefore has a full trace from the
source call through stores/loads/calls to the sink argument.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..ir import (
    AddrOf,
    AllocSite,
    CallStmt,
    Copy,
    ExternCall,
    Load,
    Loc,
    MemObject,
    NullAssign,
    Program,
    Store,
    Var,
)
from ..ir.callgraph import CallGraph

# ---------------------------------------------------------------------------
# spec model
# ---------------------------------------------------------------------------

#: "return" or an argument index — where a source deposits taint
#: (``arg:i`` taints what the i-th argument points to) and what a
#: sanitizer cleans.
Effect = Any  # str "return" | int

SEVERITIES = ("note", "warning", "error")


@dataclass(frozen=True)
class SourceRule:
    """``function`` introduces tainted data."""

    function: str
    #: Effects: "return" taints the returned value, an int ``i`` taints
    #: the object(s) the i-th argument points to (a read-into-buffer).
    taints: Tuple[Effect, ...] = ("return",)


@dataclass(frozen=True)
class SinkRule:
    """``function`` must not receive tainted data in these arguments."""

    function: str
    args: Tuple[int, ...] = (0,)
    severity: str = "error"


@dataclass(frozen=True)
class SanitizerRule:
    """``function`` launders taint away."""

    function: str
    #: "return" cleans the returned value; an int ``i`` cleans the i-th
    #: argument variable (and its pointee when it is unambiguous).
    cleans: Tuple[Effect, ...] = ("return",)


def _parse_effect(raw: Any) -> Effect:
    if raw == "return":
        return "return"
    if isinstance(raw, int):
        return raw
    if isinstance(raw, str) and raw.startswith("arg:"):
        return int(raw.split(":", 1)[1])
    raise ValueError(f"bad taint effect {raw!r} "
                     "(expected \"return\", \"arg:N\" or an integer)")


@dataclass(frozen=True)
class TaintSpec:
    """Sources, sinks and sanitizers keyed by library-function name."""

    sources: Mapping[str, SourceRule] = field(default_factory=dict)
    sinks: Mapping[str, SinkRule] = field(default_factory=dict)
    sanitizers: Mapping[str, SanitizerRule] = field(default_factory=dict)

    # -- construction -----------------------------------------------------
    @classmethod
    def default(cls) -> "TaintSpec":
        """The built-in rules for the toy-C corpus: ``input()``-style
        sources, ``system()``/format-style sinks."""
        sources = {
            "input": SourceRule("input"),
            "read_input": SourceRule("read_input"),
            "getenv": SourceRule("getenv"),
            "gets": SourceRule("gets", taints=("return", 0)),
            "fgets": SourceRule("fgets", taints=("return", 0)),
            "scanf": SourceRule("scanf", taints=(1,)),
            "recv": SourceRule("recv", taints=(1,)),
            "read": SourceRule("read", taints=(1,)),
        }
        sinks = {
            "system": SinkRule("system"),
            "popen": SinkRule("popen"),
            "exec": SinkRule("exec"),
            "execl": SinkRule("execl"),
            "eval_query": SinkRule("eval_query"),
            "sql_query": SinkRule("sql_query"),
            "printf": SinkRule("printf", severity="warning"),
            "syslog": SinkRule("syslog", args=(1,), severity="warning"),
        }
        sanitizers = {
            "sanitize": SanitizerRule("sanitize"),
            "escape": SanitizerRule("escape"),
            "quote": SanitizerRule("quote"),
            "atoi": SanitizerRule("atoi"),
        }
        return cls(sources=sources, sinks=sinks, sanitizers=sanitizers)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TaintSpec":
        """Parse the ``--taint-spec`` JSON shape::

            {"sources":    {"input": {"taints": ["return", "arg:0"]}},
             "sinks":      {"system": {"args": [0], "severity": "error"}},
             "sanitizers": {"escape": {"cleans": ["return"]}}}
        """
        sources: Dict[str, SourceRule] = {}
        for name, rule in dict(data.get("sources", {})).items():
            taints = tuple(_parse_effect(e)
                           for e in rule.get("taints", ["return"]))
            sources[name] = SourceRule(name, taints=taints)
        sinks: Dict[str, SinkRule] = {}
        for name, rule in dict(data.get("sinks", {})).items():
            severity = rule.get("severity", "error")
            if severity not in SEVERITIES:
                raise ValueError(f"bad sink severity {severity!r} for "
                                 f"{name!r} (expected one of "
                                 f"{', '.join(SEVERITIES)})")
            sinks[name] = SinkRule(
                name, args=tuple(int(a) for a in rule.get("args", [0])),
                severity=severity)
        sanitizers: Dict[str, SanitizerRule] = {}
        for name, rule in dict(data.get("sanitizers", {})).items():
            cleans = tuple(_parse_effect(e)
                           for e in rule.get("cleans", ["return"]))
            sanitizers[name] = SanitizerRule(name, cleans=cleans)
        return cls(sources=sources, sinks=sinks, sanitizers=sanitizers)

    @classmethod
    def load(cls, path: str) -> "TaintSpec":
        with open(path, "r") as handle:
            return cls.from_dict(json.load(handle))

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "sources": {
                name: {"taints": ["return" if e == "return" else f"arg:{e}"
                                  for e in rule.taints]}
                for name, rule in sorted(self.sources.items())},
            "sinks": {
                name: {"args": list(rule.args), "severity": rule.severity}
                for name, rule in sorted(self.sinks.items())},
            "sanitizers": {
                name: {"cleans": ["return" if e == "return" else f"arg:{e}"
                                  for e in rule.cleans]}
                for name, rule in sorted(self.sanitizers.items())},
        }

    def digest(self) -> str:
        """A stable fingerprint of the rules (cache key component)."""
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# provenance values
# ---------------------------------------------------------------------------

#: One witness hop: where, and what happened there.
Step = Tuple[Loc, str]
Steps = Tuple[Step, ...]

#: Provenance token: ("src", function_name, loc) for a source event,
#: ("in", cell) for "tainted iff this cell was tainted at function entry".
Token = Tuple[Any, ...]

#: Per-cell taint: provenance token -> first-recorded witness steps.
TaintVal = Dict[Token, Steps]
#: Dataflow state: cell -> taint value.  A cell explicitly mapped to an
#: empty dict is *known clean* (strong kill); an absent boundary cell
#: defaults to depending on itself at entry.
TaintState = Dict[MemObject, TaintVal]

#: ``resolver(loc, ptr)`` -> points-to set, or None when ``ptr`` is
#: outside the currently demanded clusters.
Resolver = Callable[[Loc, Var], Optional[FrozenSet[MemObject]]]


def _cell_key(cell: MemObject) -> Tuple[int, str, str]:
    if isinstance(cell, AllocSite):
        return (1, cell.label, "")
    return (0, cell.name, cell.function or "")


def _token_key(tok: Token) -> Tuple[Any, ...]:
    if tok[0] == "src":
        return (0, tok[1], tok[2].function, tok[2].index)
    return (1,) + _cell_key(tok[1])


@dataclass(frozen=True)
class TaintFlow:
    """One completed source-to-sink flow with its witness trace."""

    source_fn: str
    source_loc: Loc
    sink_fn: str
    sink_loc: Loc
    sink_arg: int
    severity: str
    steps: Steps

    def key(self) -> Tuple[Any, ...]:
        return (self.source_fn, self.source_loc.function,
                self.source_loc.index, self.sink_fn,
                self.sink_loc.function, self.sink_loc.index, self.sink_arg)


@dataclass
class FunctionSummary:
    """Context-sensitive transfer facts for one function.

    ``outputs`` maps each non-private cell the function may taint to the
    provenance tokens that taint it (source events, or ``("in", c)`` —
    "tainted iff input cell ``c`` was tainted at entry").  ``sink_hits``
    are conditional: the sink fires when the named input cell arrives
    tainted.  Both grow monotonically across the SCC fixpoint.
    """

    outputs: Dict[MemObject, TaintVal] = field(default_factory=dict)
    #: (sink_fn, sink_loc, arg_index, input_cell) -> witness steps
    sink_hits: Dict[Tuple[str, Loc, int, MemObject], Steps] = \
        field(default_factory=dict)

    def shape(self) -> Tuple[FrozenSet, FrozenSet]:
        """The convergence-relevant structure (steps excluded)."""
        out = frozenset((cell, tok) for cell, toks in self.outputs.items()
                        for tok in toks)
        hits = frozenset(self.sink_hits)
        return (out, hits)


@dataclass
class TaintReport:
    """Everything one :meth:`TaintEngine.run` produced."""

    flows: List[TaintFlow]
    #: Pointers the engine needed points-to facts for but the resolver
    #: could not answer — the driver's next demand set.
    demanded: FrozenSet[Var]
    functions_analyzed: int
    scc_passes: int


class TaintEngine:
    """One propagation pass over the whole program.

    The engine is alias-oblivious by construction: every indirect
    operation goes through ``resolver``.  Run it with a full-program
    FSCI resolver for the baseline, or with a demand-sliced resolver
    plus the re-run loop for the paper's bootstrapped mode.
    """

    def __init__(self, program: Program, spec: TaintSpec,
                 resolver: Resolver,
                 callgraph: Optional[CallGraph] = None,
                 max_trace: int = 24) -> None:
        self.program = program
        self.spec = spec
        self.resolver = resolver
        self.callgraph = callgraph or CallGraph(program)
        self.max_trace = max_trace
        self._summaries: Dict[str, FunctionSummary] = {}
        self._flows: Dict[Tuple[Any, ...], TaintFlow] = {}
        self._demanded: Set[Var] = set()
        self._scc_passes = 0
        self._current = ""

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self) -> TaintReport:
        for scc in self.callgraph.sccs():  # reverse topological: callees first
            group = sorted(scc)
            for name in group:
                self._summaries.setdefault(name, FunctionSummary())
            while True:
                self._scc_passes += 1
                changed = False
                for name in group:
                    before = self._summaries[name].shape()
                    self._summarize(name)
                    if self._summaries[name].shape() != before:
                        changed = True
                if not changed:
                    break
        flows = sorted(self._flows.values(),
                       key=lambda f: (f.sink_loc.function, f.sink_loc.index,
                                      f.sink_arg, f.source_loc.function,
                                      f.source_loc.index))
        return TaintReport(
            flows=flows,
            demanded=frozenset(self._demanded),
            functions_analyzed=len(self._summaries),
            scc_passes=self._scc_passes)

    # ------------------------------------------------------------------
    # per-function dataflow
    # ------------------------------------------------------------------
    def _is_private(self, cell: MemObject, func: str) -> bool:
        """Cells invisible outside ``func``: its non-conduit locals."""
        return (isinstance(cell, Var) and cell.function == func
                and not cell.name.startswith(("$param", "$retval")))

    def _taint_of(self, state: TaintState, cell: MemObject,
                  func: str) -> TaintVal:
        val = state.get(cell)
        if val is not None:
            return val
        if self._is_private(cell, func):
            return {}
        # Boundary cell never written yet: tainted iff it arrived tainted.
        return {("in", cell): ()}

    def _extend(self, steps: Steps, step: Step) -> Steps:
        if len(steps) >= self.max_trace:
            return steps
        return steps + (step,)

    def _merge_into(self, state: TaintState, cell: MemObject,
                    incoming: TaintVal, func: str) -> None:
        """Weak update: union ``incoming`` into the cell's taint."""
        current = dict(self._taint_of(state, cell, func))
        for tok, steps in incoming.items():
            if tok not in current:
                current[tok] = steps
        state[cell] = current

    def _join(self, a: Optional[TaintState], b: TaintState) -> TaintState:
        if a is None:
            return {cell: dict(val) for cell, val in b.items()}
        out: TaintState = {cell: dict(val) for cell, val in a.items()}
        for cell, val in b.items():
            cur = out.get(cell)
            if cur is None:
                # Present in one branch only: the other branch kept the
                # entry-default, so re-add it alongside.
                merged = dict(val)
                for tok, steps in self._default_tokens(cell).items():
                    merged.setdefault(tok, steps)
                out[cell] = merged
            else:
                for tok, steps in val.items():
                    cur.setdefault(tok, steps)
        # Cells in `a` only: join with `b`'s implicit default.
        for cell, cur in out.items():
            if cell not in b:
                for tok, steps in self._default_tokens(cell).items():
                    cur.setdefault(tok, steps)
        return out

    def _default_tokens(self, cell: MemObject) -> TaintVal:
        if self._is_private(cell, self._current):
            return {}
        return {("in", cell): ()}

    def _states_equal(self, a: TaintState, b: TaintState) -> bool:
        if a.keys() != b.keys():
            return False
        return all(a[c].keys() == b[c].keys() for c in a)

    def _summarize(self, func: str) -> None:
        self._current = func
        cfg = self.program.cfg_of(func)
        nodes = self._rpo(cfg)
        in_states: Dict[int, Optional[TaintState]] = {n: None for n in nodes}
        in_states[cfg.entry] = {}
        worklist = list(nodes)
        summary = self._summaries[func]
        iterations = 0
        # A node re-enters the worklist only when its in-state gained a
        # provenance token, so iterations are bounded by total token
        # growth; the limit is a safety valve, not an expected exit.
        limit = 1000 * max(1, len(nodes))
        while worklist:
            iterations += 1
            if iterations > limit:  # pragma: no cover - safety valve
                break
            node = worklist.pop(0)
            in_state = in_states[node]
            if in_state is None:
                continue
            out_state = self._transfer(Loc(func, node), in_state)
            for succ in cfg.successors(node):
                joined = self._join(in_states[succ], out_state)
                if in_states[succ] is None or \
                        not self._states_equal(in_states[succ], joined):
                    in_states[succ] = joined
                    if succ not in worklist:
                        worklist.append(succ)
        exit_state = in_states.get(cfg.exit)
        if exit_state is None:
            exit_state = {}
        # Fold the exit state into the summary (monotone growth).
        for cell in sorted(exit_state, key=_cell_key):
            if self._is_private(cell, func):
                continue
            toks = exit_state[cell]
            if not toks:
                continue
            current = summary.outputs.setdefault(cell, {})
            for tok in sorted(toks, key=_token_key):
                current.setdefault(tok, toks[tok])

    def _rpo(self, cfg) -> List[int]:
        """Reverse post-order from the entry (deterministic)."""
        seen: Set[int] = set()
        order: List[int] = []
        stack: List[Tuple[int, bool]] = [(cfg.entry, False)]
        while stack:
            node, done = stack.pop()
            if done:
                order.append(node)
                continue
            if node in seen:
                continue
            seen.add(node)
            stack.append((node, True))
            for succ in reversed(list(cfg.successors(node))):
                if succ not in seen:
                    stack.append((succ, False))
        order.reverse()
        # Unreachable nodes keep their index order at the end.
        order.extend(n for n in cfg.nodes() if n not in seen)
        return order

    # ------------------------------------------------------------------
    # transfer functions
    # ------------------------------------------------------------------
    def _transfer(self, loc: Loc, state: TaintState) -> TaintState:
        stmt = self.program.stmt_at(loc)
        func = loc.function
        if isinstance(stmt, Copy):
            out = dict(state)
            out[stmt.lhs] = dict(self._taint_of(state, stmt.rhs, func))
            return out
        if isinstance(stmt, (AddrOf, NullAssign)):
            out = dict(state)
            out[stmt.lhs] = {}
            return out
        if isinstance(stmt, Load):
            return self._transfer_load(loc, stmt, state)
        if isinstance(stmt, Store):
            return self._transfer_store(loc, stmt, state)
        if isinstance(stmt, ExternCall):
            return self._transfer_extern(loc, stmt, state)
        if isinstance(stmt, CallStmt):
            return self._transfer_call(loc, stmt, state)
        return state

    def _has_taint(self, state: TaintState) -> bool:
        return any(state.values())

    def _transfer_load(self, loc: Loc, stmt: Load,
                       state: TaintState) -> TaintState:
        func = loc.function
        out = dict(state)
        pts = self.resolver(loc, stmt.rhs)
        if pts is None:
            # Unknown pointer: any taint it could read arrived through a
            # demanded pointer whose cluster also contains this one, so
            # ask for it when taint is in flight and treat the read as
            # clean this round.
            if self._has_taint(state):
                self._demanded.add(stmt.rhs)
            out[stmt.lhs] = {}
            return out
        gathered: TaintVal = {}
        note = f"tainted value loaded via *{stmt.rhs.name}"
        for obj in sorted(pts, key=_cell_key):
            for tok, steps in self._taint_of(state, obj, func).items():
                if tok not in gathered:
                    gathered[tok] = self._extend(steps, (loc, note))
        out[stmt.lhs] = gathered
        return out

    def _transfer_store(self, loc: Loc, stmt: Store,
                        state: TaintState) -> TaintState:
        func = loc.function
        rhs_taint = self._taint_of(state, stmt.rhs, func)
        if not rhs_taint:
            return state
        pts = self.resolver(loc, stmt.lhs)
        if pts is None:
            self._demanded.add(stmt.lhs)
            return state
        out = dict(state)
        note = f"tainted value stored via *{stmt.lhs.name}"
        stepped = {tok: self._extend(steps, (loc, note))
                   for tok, steps in rhs_taint.items()}
        for obj in sorted(pts, key=_cell_key):
            self._merge_into(out, obj, stepped, func)
        return out

    def _transfer_extern(self, loc: Loc, stmt: ExternCall,
                         state: TaintState) -> TaintState:
        func = loc.function
        # 1. Sinks observe the state *before* the call's own effects.
        sink = self.spec.sinks.get(stmt.name)
        if sink is not None:
            self._check_sink(loc, stmt, sink, state)
        out = dict(state)
        # 2. The returned value is fresh (and clean) by default.
        if stmt.result is not None:
            out[stmt.result] = {}
        # 3. Sanitizers launder argument taint.
        sanitizer = self.spec.sanitizers.get(stmt.name)
        if sanitizer is not None:
            for effect in sanitizer.cleans:
                if effect == "return":
                    continue  # result already cleared above
                if not isinstance(effect, int) or effect >= len(stmt.args):
                    continue
                arg = stmt.args[effect]
                out[arg] = {}
                pts = self.resolver(loc, arg)
                if pts is not None and len(pts) == 1:
                    # Unambiguous pointee: strong clear is safe.
                    out[next(iter(pts))] = {}
        # 4. Sources deposit fresh provenance.
        source = self.spec.sources.get(stmt.name)
        if source is not None:
            for effect in source.taints:
                if effect == "return":
                    if stmt.result is None:
                        continue
                    out[stmt.result] = {
                        ("src", stmt.name, loc):
                        ((loc, f"tainted by {stmt.name}()"),)}
                    continue
                if not isinstance(effect, int) or effect >= len(stmt.args):
                    continue
                arg = stmt.args[effect]
                pts = self.resolver(loc, arg)
                if pts is None:
                    self._demanded.add(arg)
                    continue
                gen = {("src", stmt.name, loc):
                       ((loc, f"buffer filled by {stmt.name}()"),)}
                for obj in sorted(pts, key=_cell_key):
                    self._merge_into(out, obj, gen, func)
        return out

    def _check_sink(self, loc: Loc, stmt: ExternCall, sink: SinkRule,
                    state: TaintState) -> None:
        func = loc.function
        summary = self._summaries[func]
        for index in sink.args:
            if index >= len(stmt.args):
                continue
            arg = stmt.args[index]
            reaching: TaintVal = dict(self._taint_of(state, arg, func))
            pts = self.resolver(loc, arg)
            if pts is None:
                if self._has_taint(state):
                    self._demanded.add(arg)
            else:
                for obj in sorted(pts, key=_cell_key):
                    for tok, steps in self._taint_of(state, obj,
                                                     func).items():
                        reaching.setdefault(tok, steps)
            for tok in sorted(reaching, key=_token_key):
                steps = reaching[tok]
                if tok[0] == "src":
                    self._emit(tok, stmt.name, loc, index, sink.severity,
                               steps)
                else:  # conditional on an input cell
                    summary.sink_hits.setdefault(
                        (stmt.name, loc, index, tok[1]), steps)

    def _transfer_call(self, loc: Loc, stmt: CallStmt,
                       state: TaintState) -> TaintState:
        targets = [t for t in stmt.targets if t in self.program.functions]
        if not targets:
            return state
        joined: Optional[TaintState] = None
        for target in sorted(targets):
            effect = self._apply_summary(loc, target, state)
            joined = effect if joined is None else self._join(joined, effect)
        return joined if joined is not None else state

    def _apply_summary(self, loc: Loc, callee: str,
                       state: TaintState) -> TaintState:
        func = loc.function
        summary = self._summaries.get(callee)
        if summary is None:
            return state
        out = dict(state)
        call_step: Step = (loc, f"through call to {callee}()")
        for cell in sorted(summary.outputs, key=_cell_key):
            contribution: TaintVal = {}
            for tok in sorted(summary.outputs[cell], key=_token_key):
                callee_steps = summary.outputs[cell][tok]
                if tok[0] == "src":
                    if tok not in contribution:
                        contribution[tok] = callee_steps
                else:
                    for ctok, csteps in self._taint_of(
                            state, tok[1], func).items():
                        if ctok not in contribution:
                            merged = self._extend(csteps, call_step)
                            merged = merged + callee_steps[
                                :max(0, self.max_trace - len(merged))]
                            contribution[ctok] = merged
            if contribution:
                self._merge_into(out, cell, contribution, func)
        caller_summary = self._summaries[func]
        for key in sorted(summary.sink_hits,
                          key=lambda k: (k[0], k[1].function, k[1].index,
                                         k[2]) + _cell_key(k[3])):
            sink_fn, sink_loc, arg_index, in_cell = key
            hit_steps = summary.sink_hits[key]
            severity = self.spec.sinks.get(
                sink_fn, SinkRule(sink_fn)).severity
            for ctok in sorted(self._taint_of(state, in_cell, func),
                               key=_token_key):
                csteps = self._taint_of(state, in_cell, func)[ctok]
                merged = self._extend(csteps, call_step)
                merged = merged + hit_steps[
                    :max(0, self.max_trace - len(merged))]
                if ctok[0] == "src":
                    self._emit(ctok, sink_fn, sink_loc, arg_index,
                               severity, merged)
                else:
                    caller_summary.sink_hits.setdefault(
                        (sink_fn, sink_loc, arg_index, ctok[1]), merged)
        return out

    def _emit(self, tok: Token, sink_fn: str, sink_loc: Loc,
              arg_index: int, severity: str, steps: Steps) -> None:
        flow = TaintFlow(
            source_fn=tok[1], source_loc=tok[2], sink_fn=sink_fn,
            sink_loc=sink_loc, sink_arg=arg_index, severity=severity,
            steps=steps)
        self._flows.setdefault(flow.key(), flow)


# ---------------------------------------------------------------------------
# whole-program baseline (the bench's comparison point)
# ---------------------------------------------------------------------------

def source_argument_pointers(program: Program, spec: TaintSpec) -> Set[Var]:
    """The pointer arguments of source/sink calls: the initial demand
    set (what :func:`repro.checkers.taint.run_taint` seeds its loop
    with)."""
    wanted: Set[Var] = set()
    for _, stmt in program.statements():
        if not isinstance(stmt, ExternCall):
            continue
        rule = spec.sources.get(stmt.name)
        if rule is not None:
            for effect in rule.taints:
                if isinstance(effect, int) and effect < len(stmt.args):
                    wanted.add(stmt.args[effect])
        sink = spec.sinks.get(stmt.name)
        if sink is not None:
            for index in sink.args:
                if index < len(stmt.args):
                    wanted.add(stmt.args[index])
    return {v for v in wanted if v in program.pointers}

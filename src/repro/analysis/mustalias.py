"""Must-alias analysis: the complement the lockset application needs.

The paper's race-detection motivation requires *must*-aliases of lock
pointers ("we need to compute must-aliases only for lock pointers").
A singleton may-points-to set is not a must-fact (uninitialized or NULL
paths hide in the join), so this module runs a dedicated forward
must-points-to dataflow with **intersection** semantics:

* each cell maps to one definite value — a specific object, NULL,
  definitely-uninitialized, or unknown (⊤);
* the join of two different definite values is ⊤;
* ambiguous stores invalidate every cell they might touch.

``must_alias(p, q, loc)`` holds when both resolve to the same concrete
object at ``loc`` — exactly the discipline locksets want.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Union

from ..ir import (
    AddrOf,
    AllocSite,
    Assume,
    CallGraph,
    Copy,
    Load,
    Loc,
    MemObject,
    NullAssign,
    Program,
    Statement,
    Store,
    Var,
)
from .base import PointerAnalysis
from .dataflow import ForwardDataflow, Supergraph


class _Top:
    """⊤: the cell's value is not known definitely."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "<top>"


class _MustNull:
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "<must-null>"


class _MustUninit:
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "<must-uninit>"


TOP = _Top()
MUST_NULL = _MustNull()
MUST_UNINIT = _MustUninit()

#: A definite value: a specific object, definitely-NULL,
#: definitely-uninitialized, or ⊤.
MustVal = Union[MemObject, _Top, _MustNull, _MustUninit]

#: State: cell -> definite value; a missing key means MUST_UNINIT.
MustState = Dict[MemObject, MustVal]

BOTTOM = None


def _get(state: MustState, cell: object) -> MustVal:
    return state.get(cell, MUST_UNINIT)


def _join(a: Optional[MustState], b: Optional[MustState]
          ) -> Optional[MustState]:
    if a is None:
        return b
    if b is None:
        return a
    if a is b:
        return a
    out: MustState = {}
    for k in set(a) | set(b):
        va, vb = _get(a, k), _get(b, k)
        out[k] = va if va == vb else TOP
    return out


class MustAliasResult:
    """Definite per-location value facts."""

    def __init__(self, engine: ForwardDataflow) -> None:
        self._engine = engine

    def _before(self, loc: Loc) -> MustState:
        state = self._engine.state_before(loc)
        return state if state is not None else {}

    def _after(self, loc: Loc) -> MustState:
        state = self._engine.state_after(loc)
        return state if state is not None else {}

    def value_before(self, loc: Loc, p: MemObject) -> MustVal:
        return _get(self._before(loc), p)

    def value_after(self, loc: Loc, p: MemObject) -> MustVal:
        return _get(self._after(loc), p)

    def must_point_to(self, p: Var, loc: Loc) -> Optional[MemObject]:
        """The single object ``p`` definitely points to before ``loc``,
        or ``None`` when unknown/NULL/uninitialized."""
        value = self.value_before(loc, p)
        if value in (TOP, MUST_NULL, MUST_UNINIT):
            return None
        return value  # type: ignore[return-value]

    def must_null(self, p: Var, loc: Loc) -> bool:
        return self.value_before(loc, p) is MUST_NULL

    def must_alias(self, p: Var, q: Var, loc: Loc) -> bool:
        """Do ``p`` and ``q`` definitely point to the same object?"""
        if p == q:
            return True
        vp = self.must_point_to(p, loc)
        return vp is not None and vp == self.must_point_to(q, loc)


class MustAlias(PointerAnalysis):
    """Forward interprocedural must-points-to fixpoint.

    ``invalidate_on_ambiguous_store`` controls the conservative big
    hammer: by default an ambiguous store wipes the whole state (always
    sound); passing a may-analysis result would allow finer kills, but
    the whole-state wipe keeps this module dependency-free.
    """

    name = "must-alias"

    def __init__(self, program: Program,
                 functions: Optional[Iterable[str]] = None,
                 max_iterations: Optional[int] = None) -> None:
        super().__init__(program)
        self._functions = set(functions) if functions is not None else None
        self._max_iterations = max_iterations
        cg = CallGraph(program)
        scc_of = cg.scc_of()
        self._recursive = {f for f in program.functions
                           if len(scc_of[f]) > 1 or f in cg.callees(f)}

    def _single_instance(self, obj: MustVal) -> bool:
        if not isinstance(obj, Var):
            return False
        return obj.function is None or obj.function not in self._recursive

    def _transfer(self, loc: Loc, stmt: Statement,
                  state: MustState) -> MustState:
        if isinstance(stmt, Copy):
            out = dict(state)
            out[stmt.lhs] = _get(state, stmt.rhs)
            return out
        if isinstance(stmt, AddrOf):
            out = dict(state)
            out[stmt.lhs] = stmt.target
            return out
        if isinstance(stmt, NullAssign):
            out = dict(state)
            out[stmt.lhs] = MUST_NULL
            return out
        if isinstance(stmt, Load):
            out = dict(state)
            target = _get(state, stmt.rhs)
            if target in (TOP, MUST_NULL, MUST_UNINIT):
                out[stmt.lhs] = TOP if target is TOP else MUST_UNINIT
            else:
                out[stmt.lhs] = _get(state, target)
            return out
        if isinstance(stmt, Store):
            target = _get(state, stmt.lhs)
            if target is MUST_NULL or target is MUST_UNINIT:
                # Definitely writes nowhere meaningful (concrete UB).
                return state
            if target is TOP:
                # Could write anything: all definite facts die.
                return {k: TOP for k in state}
            out = dict(state)
            if self._single_instance(target):
                out[target] = _get(state, stmt.rhs)  # strong update
            else:
                out[target] = TOP  # multi-instance cell: weak -> unknown
            return out
        if isinstance(stmt, Assume):
            out = dict(state)
            lv = _get(state, stmt.lhs)
            if stmt.rhs is None:
                if stmt.equal and lv is TOP:
                    out[stmt.lhs] = MUST_NULL
                    return out
                return state
            rv = _get(state, stmt.rhs)
            if stmt.equal:
                # Equality lets a definite value cross over.
                if lv is TOP and rv not in (TOP, MUST_UNINIT):
                    out[stmt.lhs] = rv
                    return out
                if rv is TOP and lv not in (TOP, MUST_UNINIT):
                    out[stmt.rhs] = lv
                    return out
            return state
        return state

    def run(self) -> MustAliasResult:
        graph = Supergraph(self.program, functions=self._functions)
        engine: ForwardDataflow[Optional[MustState]] = ForwardDataflow(
            graph, self._transfer, _join, initial={}, bottom=BOTTOM)
        engine.run(max_iterations=self._max_iterations)
        return MustAliasResult(engine)

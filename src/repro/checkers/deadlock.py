"""Deadlock checker: lock-order cycles over must-alias lock pointers.

The lock-order graph has one node per concrete lock *object* (resolved
by the classic singleton must-alias discipline at each acquisition,
via :class:`~repro.applications.lockset.LocksetAnalysis` over the
demand engine's sliced FSCI) and an edge ``A -> B`` for every site that
acquires ``B`` while ``A`` is must-held.  Edges carry the threads that
can execute them (:func:`~repro.applications.races.thread_assignment`).

A cycle is a *potential deadlock* only when its edges can be driven by
at least two distinct threads — one thread re-ordering its own
acquisitions cannot deadlock with itself under non-reentrant locks, so
single-thread cycles are dropped.  Each finding carries a two-thread
witness schedule ("t1 holds A and waits for B; t2 holds B and waits
for A") plus a trace step per acquisition site.

Thread entries come from ``spawn``-style calls (``pthread_create`` et
al.) whose function-pointer argument resolves syntactically, or are
passed explicitly (CLI ``--threads``).  Fewer than two entries means no
deadlock is possible and the checker reports nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..analysis.demand_engine import DemandView, EngineStats
from ..core.bootstrap import BootstrapAnalyzer, BootstrapResult
from ..core.queries import DemandSelection
from ..core.report import (
    Diagnostic,
    dedup_diagnostics,
    suppress_diagnostics,
)
from ..ir import AddrOf, ExternCall, Loc, MemObject, Program, Var
from .base import (
    Checker,
    CheckerContext,
    CheckerStats,
    register_checker,
)

RULE_ID = "repro-deadlock"
CHECKER_NAME = "deadlock"

#: Recognized thread-creation primitives (any argument may be the
#: thread's entry function pointer).
SPAWN_FUNCTIONS = {"spawn", "pthread_create", "thread_create",
                   "kthread_run"}

#: Safety valve for cycle enumeration on pathological lock graphs.
_MAX_CYCLE_LEN = 8


def spawn_entries(program: Program) -> List[str]:
    """Thread entry functions named by spawn-style extern calls.

    The function pointer reaches the spawn call through a materialized
    argument variable; walk the program for ``fp = &f`` with ``f`` a
    defined function (the frontend's function-sentinel lowering).
    """
    fp_targets: Dict[Var, Set[str]] = {}
    for _, stmt in program.statements():
        if isinstance(stmt, AddrOf) and isinstance(stmt.target, Var) \
                and stmt.target.name in program.functions:
            fp_targets.setdefault(stmt.lhs, set()).add(stmt.target.name)
    entries: Set[str] = set()
    for _, stmt in program.statements():
        if isinstance(stmt, ExternCall) and stmt.name in SPAWN_FUNCTIONS:
            for arg in stmt.args:
                entries |= fp_targets.get(arg, set())
                if arg.name in program.functions:
                    entries.add(arg.name)
    return sorted(entries)


@dataclass(frozen=True)
class LockOrderEdge:
    """``held -> wanted``: one acquisition of ``wanted`` under ``held``."""

    held: MemObject
    wanted: MemObject
    site: Loc
    threads: FrozenSet[str]


@dataclass
class LockOrderCycle:
    """A thread-realizable cycle in the lock-order graph."""

    edges: Tuple[LockOrderEdge, ...]

    @property
    def nodes(self) -> Tuple[MemObject, ...]:
        return tuple(e.held for e in self.edges)

    @property
    def key(self) -> str:
        return "->".join(str(n) for n in self.nodes + (self.nodes[0],))


def _build_edges(locks, threads: Dict[str, FrozenSet[str]]
                 ) -> List[LockOrderEdge]:
    edges: List[LockOrderEdge] = []
    for site in locks.sites:
        if not site.is_lock:
            continue
        wanted = locks.resolution.get(site.loc, frozenset())
        if len(wanted) != 1:
            continue  # ambiguous acquisition: no must-edge
        (target,) = wanted
        tset = threads.get(site.loc.function, frozenset())
        for held in locks.held_before(site.loc):
            if held != target:
                edges.append(LockOrderEdge(
                    held=held, wanted=target, site=site.loc,
                    threads=tset))
    return edges


def _find_cycles(edges: List[LockOrderEdge]) -> List[LockOrderCycle]:
    """Simple cycles, each enumerated once (rooted at its minimal node),
    kept only when driveable by two distinct threads."""
    adj: Dict[MemObject, List[LockOrderEdge]] = {}
    for e in edges:
        adj.setdefault(e.held, []).append(e)
    order = {n: i for i, n in enumerate(sorted(adj, key=str))}
    cycles: List[LockOrderCycle] = []

    def dfs(start: MemObject, node: MemObject,
            path: List[LockOrderEdge], on_path: Set[MemObject]) -> None:
        if len(path) >= _MAX_CYCLE_LEN:
            return
        for edge in sorted(adj.get(node, ()),
                           key=lambda e: (str(e.wanted), str(e.site))):
            nxt = edge.wanted
            if order.get(nxt, -1) < order[start]:
                continue
            if nxt == start:
                cycles.append(LockOrderCycle(edges=tuple(path + [edge])))
            elif nxt not in on_path:
                on_path.add(nxt)
                dfs(start, nxt, path + [edge], on_path)
                on_path.discard(nxt)

    for start in sorted(adj, key=str):
        dfs(start, start, [], {start})
    realizable = []
    seen: Set[Tuple] = set()
    for cycle in cycles:
        union: Set[str] = set()
        for e in cycle.edges:
            union |= e.threads
        if len(union) < 2:
            continue  # one thread alone cannot deadlock with itself
        key = (cycle.key, tuple(e.site for e in cycle.edges))
        if key in seen:
            continue
        seen.add(key)
        realizable.append(cycle)
    return realizable


@dataclass
class DeadlockRunResult:
    """Everything one :func:`run_deadlocks` invocation produced."""

    diagnostics: List[Diagnostic]
    cycles: List[LockOrderCycle]
    thread_entries: List[str]
    stats: CheckerStats
    selection: DemandSelection
    demanded: FrozenSet[Var]
    rounds: int
    engine: Optional[EngineStats] = None

    @property
    def counts(self):
        out = {}
        for d in self.diagnostics:
            out[d.severity] = out.get(d.severity, 0) + 1
        return out


def _witness(cycle: LockOrderCycle) -> str:
    """A two-thread schedule: assign distinct threads to two edges."""
    picks: List[Tuple[str, LockOrderEdge]] = []
    used: Set[str] = set()
    for e in cycle.edges:
        fresh = sorted(e.threads - used)
        t = fresh[0] if fresh else (sorted(e.threads)[0] if e.threads
                                    else "?")
        used.add(t)
        picks.append((t, e))
    return "; ".join(
        f"{t} holds {e.held} and waits for {e.wanted}"
        for t, e in picks)


def _cycle_diagnostic(ctx: CheckerContext,
                      cycle: LockOrderCycle) -> Diagnostic:
    message = (f"potential deadlock: lock-order cycle {cycle.key} "
               f"({_witness(cycle)})")
    trace = tuple(
        ctx.trace_step(e.site,
                       f"acquires {e.wanted} while holding {e.held}")
        for e in cycle.edges)
    return ctx.diagnostic(
        rule_id=RULE_ID, severity="warning", message=message,
        loc=cycle.edges[0].site, checker=CHECKER_NAME,
        subject=cycle.key, trace=trace)


def run_deadlocks(program: Program,
                  result: Optional[BootstrapResult] = None,
                  ctx: Optional[CheckerContext] = None,
                  thread_entries: Optional[List[str]] = None,
                  max_rounds: int = 10,
                  budget: Optional[int] = None,
                  whole_program: bool = False) -> DeadlockRunResult:
    """Demand-driven deadlock / lock-order-cycle analysis.

    ``whole_program=True`` seeds the engine with every pointer in the
    program (the bench baseline): same client, no cluster savings.
    """
    if ctx is None:
        if result is None:
            result = BootstrapAnalyzer(program).run()
        ctx = CheckerContext(program, result)
    entries = sorted(thread_entries) if thread_entries is not None \
        else spawn_entries(program)

    from ..applications.lockset import LocksetAnalysis, lock_pointers
    from ..applications.races import thread_assignment

    threads = thread_assignment(program, entries) if len(entries) >= 2 \
        else {}

    def client(view: DemandView):
        if view.fsci is None or len(entries) < 2:
            return [], ()
        locks = LocksetAnalysis(program, fsci=view.fsci).run()
        # Widen with any lock pointer whose cluster is not yet selected
        # (its sites resolve ambiguously until it is).
        demands = [s.pointer for s in locks.sites
                   if s.pointer not in view.tracked]
        edges = _build_edges(locks, threads)
        return _find_cycles(edges), demands

    seeds = set(program.pointers) if whole_program \
        else set(lock_pointers(program))
    outcome = ctx.engine.run(seeds, client,
                             max_rounds=max_rounds, budget=budget)
    selection = outcome.selection
    cycles = sorted(outcome.value, key=lambda c: c.key)
    raw = [_cycle_diagnostic(ctx, c) for c in cycles]
    level = ctx.result.degraded_precision_of(selection.selected)
    if level is not None:
        raw = [replace(d, precision=level) for d in raw]
    deduped = dedup_diagnostics(raw)
    kept, dropped = suppress_diagnostics(deduped, program)
    stats = CheckerStats(
        checker=CHECKER_NAME,
        findings=len(kept),
        suppressed=dropped,
        clusters_selected=len(selection.selected),
        clusters_total=selection.total_clusters,
        pointers_selected=selection.selected_pointers,
        pointers_total=selection.total_pointers,
    )
    return DeadlockRunResult(
        diagnostics=kept, cycles=cycles, thread_entries=entries,
        stats=stats, selection=selection, demanded=outcome.demanded,
        rounds=outcome.rounds, engine=outcome.stats)


@register_checker
class DeadlockChecker(Checker):
    """Registry adapter so ``repro check`` and the daemon's
    ``diagnostics`` method include deadlock findings (thread entries
    auto-detected from spawn calls)."""

    name = CHECKER_NAME
    rule_id = RULE_ID
    description = "lock-order cycle realizable by two threads"

    def interesting(self, program: Program) -> Set[Var]:
        from ..applications.lockset import lock_pointers
        return set(lock_pointers(program))

    def check(self, ctx: CheckerContext) -> List[Diagnostic]:
        return run_deadlocks(ctx.program, ctx=ctx).diagnostics

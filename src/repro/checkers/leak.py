"""Memory-leak checker: allocation sites provably dead at program exit.

A site leaks when, at the program's exit node, **no** live reference can
still reach it: the join state at ``main``'s exit covers every path, so
a site absent from the reachability closure over that state is
unreachable on *all* executions — a must-fact, reported as an error
with a witness trace (allocation, then the unreachable exit).

Flow-sensitive frees are honored through the shared
:class:`~repro.checkers.heapfacts.FreeFacts`: a site freed on *any*
path is excluded (it is not *provably* leaked on every path), and a
site re-allocated after a free starts a fresh lifetime, exactly as the
use-after-free family sees it.

Soundness of the demand-driven slice: clusters are alias-closed
(Theorem 7), so every cell that may hold a candidate site's address —
and, inductively, every cell on a root-to-site chain — lives in the
site's own cluster and is therefore tracked once the allocation
pointer's cluster is selected.  Untracked cells provably cannot reach a
candidate site, which is why the exit-state closure below may skip
them without demanding more clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..analysis.demand_engine import DemandView, EngineStats
from ..core.bootstrap import BootstrapAnalyzer, BootstrapResult
from ..core.queries import DemandSelection
from ..core.report import (
    Diagnostic,
    dedup_diagnostics,
    suppress_diagnostics,
)
from ..ir import AddrOf, AllocSite, Loc, MemObject, NullAssign, Program, Var
from .base import (
    Checker,
    CheckerContext,
    CheckerStats,
    register_checker,
)

RULE_ID = "repro-memory-leak"
CHECKER_NAME = "leak"


def allocation_sites(program: Program) -> List[Tuple[Loc, AllocSite, Var]]:
    """Every heap allocation: ``(loc, site, receiving pointer)``."""
    out: List[Tuple[Loc, AllocSite, Var]] = []
    for loc, stmt in program.statements():
        if isinstance(stmt, AddrOf) and isinstance(stmt.target, AllocSite):
            out.append((loc, stmt.target, stmt.lhs))
    return out


def allocation_pointers(program: Program) -> Set[Var]:
    """The leak query's seed set: pointers receiving an allocation, plus
    pointers handed to a deallocator (so free resolution is in-slice)."""
    seeds: Set[Var] = set()
    for _, _, ptr in allocation_sites(program):
        seeds.add(ptr)
    for _, stmt in program.statements():
        if isinstance(stmt, NullAssign) and stmt.is_free:
            seeds.add(stmt.lhs)
    return seeds & program.pointers


def _exit_reachable(cells: Dict[MemObject, FrozenSet[MemObject]],
                    roots: Set[MemObject]) -> Set[MemObject]:
    """Objects transitively reachable from the roots through the exit
    state.  Untracked cells have no entry in ``cells`` and stop the
    walk — sound for candidate sites per the module docstring."""
    reachable: Set[MemObject] = set()
    frontier = [r for r in roots]
    while frontier:
        cell = frontier.pop()
        for target in cells.get(cell, ()):  # type: ignore[call-overload]
            if target not in reachable:
                reachable.add(target)
                frontier.append(target)
    return reachable


@dataclass
class LeakRunResult:
    """Everything one :func:`run_leaks` invocation produced."""

    diagnostics: List[Diagnostic]
    leaked: List[AllocSite]
    stats: CheckerStats
    selection: DemandSelection
    demanded: FrozenSet[Var]
    rounds: int
    engine: Optional[EngineStats] = None

    @property
    def counts(self):
        out = {}
        for d in self.diagnostics:
            out[d.severity] = out.get(d.severity, 0) + 1
        return out


def _leak_diagnostic(ctx: CheckerContext, loc: Loc, site: AllocSite,
                     exit_loc: Loc) -> Diagnostic:
    program = ctx.program
    span = program.span_at(loc)
    pos = (f"line {span.line}" if span is not None
           else f"{loc.function}:{loc.index}")
    message = (f"allocation {site} ({pos}) is leaked: no live reference "
               f"remains at program exit and it is never freed")
    trace = (ctx.trace_step(loc, f"{site} allocated here"),
             ctx.trace_step(exit_loc,
                            "program exit: no path retains a reference"))
    return ctx.diagnostic(
        rule_id=RULE_ID, severity="error", message=message, loc=loc,
        checker=CHECKER_NAME, subject=str(site), trace=trace)


def run_leaks(program: Program,
              result: Optional[BootstrapResult] = None,
              ctx: Optional[CheckerContext] = None,
              max_rounds: int = 10,
              budget: Optional[int] = None,
              whole_program: bool = False) -> LeakRunResult:
    """Demand-driven memory-leak analysis.

    ``whole_program=True`` seeds the engine with every pointer in the
    program (the bench baseline): same client, no cluster savings.
    """
    if ctx is None:
        if result is None:
            result = BootstrapAnalyzer(program).run()
        ctx = CheckerContext(program, result)
    entry = program.entry
    exit_loc = Loc(entry, program.cfg_of(entry).exit)
    sites = allocation_sites(program)
    roots: Set[MemObject] = set(program.globals) \
        | program.functions[entry].variables()

    def client(view: DemandView):
        if view.fsci is None:
            return [], ()
        cells = view.fsci.cells_after(exit_loc)
        reachable = _exit_reachable(cells, roots)
        facts = ctx.free_facts(view.fsci)
        leaked: List[Tuple[Loc, AllocSite]] = []
        for loc, site, ptr in sites:
            if site in reachable:
                continue
            if not view.fsci.reached_before(loc):
                continue  # the allocation itself never executes
            if facts.freed_before(exit_loc, site):
                continue  # freed on some path: not provably leaked
            leaked.append((loc, site))
        return leaked, ()

    seeds = set(program.pointers) if whole_program \
        else allocation_pointers(program)
    outcome = ctx.engine.run(seeds, client,
                             max_rounds=max_rounds, budget=budget)
    selection = outcome.selection
    leaked_pairs = sorted(outcome.value,
                          key=lambda pair: (pair[0].function, pair[0].index))
    raw = [_leak_diagnostic(ctx, loc, site, exit_loc)
           for loc, site in leaked_pairs]
    level = ctx.result.degraded_precision_of(selection.selected)
    if level is not None:
        raw = [replace(d, precision=level) for d in raw]
    deduped = dedup_diagnostics(raw)
    kept, dropped = suppress_diagnostics(deduped, program)
    stats = CheckerStats(
        checker=CHECKER_NAME,
        findings=len(kept),
        suppressed=dropped,
        clusters_selected=len(selection.selected),
        clusters_total=selection.total_clusters,
        pointers_selected=selection.selected_pointers,
        pointers_total=selection.total_pointers,
    )
    return LeakRunResult(
        diagnostics=kept, leaked=[site for _, site in leaked_pairs],
        stats=stats, selection=selection, demanded=outcome.demanded,
        rounds=outcome.rounds, engine=outcome.stats)


@register_checker
class LeakChecker(Checker):
    """Registry adapter so ``repro check`` and the daemon's
    ``diagnostics`` method include leak findings."""

    name = CHECKER_NAME
    rule_id = RULE_ID
    description = "allocation with no live reference at program exit"

    def interesting(self, program: Program) -> Set[Var]:
        return allocation_pointers(program)

    def check(self, ctx: CheckerContext) -> List[Diagnostic]:
        return run_leaks(ctx.program, ctx=ctx).diagnostics

"""Static-analysis checkers driven by the bootstrapped cascade.

Each checker is a demand-driven client of :class:`~repro.core.bootstrap.
BootstrapAnalyzer`: it declares which pointers it cares about, the
framework selects only the clusters containing them (the paper's
flexibility pitch), runs a sliced FSCI over the union of their slices,
and the checker reports findings through the shared
:class:`~repro.core.report.Diagnostic` pipeline (text / JSON / SARIF).
"""

from .base import (
    CHECKER_REGISTRY,
    Checker,
    CheckerContext,
    CheckerStats,
    CheckReport,
    register_checker,
    run_checkers,
)
from .deadlock import (
    DeadlockChecker,
    DeadlockRunResult,
    run_deadlocks,
    spawn_entries,
)
from .doublefree import DoubleFreeChecker
from .heapfacts import FreeFacts
from .leak import LeakChecker, LeakRunResult, run_leaks
from .nullderef import NullDerefChecker
from .taint import TaintChecker, TaintRunResult, run_taint
from .useafterfree import UseAfterFreeChecker

__all__ = [
    "CHECKER_REGISTRY", "CheckReport", "Checker", "CheckerContext",
    "CheckerStats", "DeadlockChecker", "DeadlockRunResult",
    "DoubleFreeChecker", "FreeFacts", "LeakChecker", "LeakRunResult",
    "NullDerefChecker", "TaintChecker", "TaintRunResult",
    "UseAfterFreeChecker", "register_checker", "run_checkers",
    "run_deadlocks", "run_leaks", "run_taint", "spawn_entries",
]

"""Free-provenance dataflow: which frees poisoned which cells.

The paper models ``free(p)`` as ``p = NULL``, which is exactly right for
alias analysis but collapses two different bugs into one: a dereference
after ``free(p)`` would look like a null-dereference.  The frontend
tags free-lowered nulls (:attr:`NullAssign.is_free`), and this forward
may-analysis tracks what those tags mean:

* ``("freed", site)`` — the allocation site may have been freed at the
  recorded locations (killed when the same abstract site is re-allocated,
  so a ``malloc``/``free`` loop does not accuse itself);
* ``("prov", cell)`` — the cell's *value* is a NULL that came from a
  free at the recorded locations (propagated through copies, loads and
  stores via the FSCI points-to facts; cleared by a genuine ``= NULL``).

Clients: the use-after-free checker reports dereferences whose pointer
either carries provenance or may point at a freed site; the double-free
checker reports frees of already-poisoned operands; the null-dereference
checker *skips* pointers with provenance so each bug is reported once,
with the right rule id.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..analysis.dataflow import ForwardDataflow, Supergraph
from ..analysis.fsci import FSCIResult
from ..ir import (
    AddrOf,
    AllocSite,
    Copy,
    Load,
    Loc,
    NullAssign,
    Program,
    Statement,
    Store,
    Var,
)

FreeState = Dict[Tuple[str, object], FrozenSet[Loc]]

_EMPTY: FrozenSet[Loc] = frozenset()


def _join(a: Optional[FreeState], b: Optional[FreeState]
          ) -> Optional[FreeState]:
    if a is None:
        return b
    if b is None:
        return a
    if a == b:
        return a
    out = dict(a)
    for k, v in b.items():
        prev = out.get(k)
        out[k] = v if prev is None else prev | v
    return out


class FreeFacts:
    """Forward may-analysis over the supergraph; see module docstring."""

    def __init__(self, program: Program, fsci: FSCIResult) -> None:
        self.program = program
        self.fsci = fsci
        graph = Supergraph(program)
        self._engine: ForwardDataflow[Optional[FreeState]] = ForwardDataflow(
            graph, self._transfer, _join, initial={}, bottom=None)
        self._engine.run()

    # ------------------------------------------------------------------
    # transfer
    # ------------------------------------------------------------------
    def _transfer(self, loc: Loc, stmt: Statement,
                  state: Optional[FreeState]) -> Optional[FreeState]:
        state = state if state is not None else {}
        if isinstance(stmt, NullAssign):
            out = dict(state)
            if stmt.is_free:
                for obj in self.fsci.pts_before(loc, stmt.lhs):
                    if isinstance(obj, AllocSite):
                        key = ("freed", obj)
                        out[key] = state.get(key, _EMPTY) | {loc}
                out[("prov", stmt.lhs)] = frozenset({loc})
            else:
                out.pop(("prov", stmt.lhs), None)
            return out
        if isinstance(stmt, Copy):
            src = state.get(("prov", stmt.rhs))
            out = dict(state)
            if src:
                out[("prov", stmt.lhs)] = src
            else:
                out.pop(("prov", stmt.lhs), None)
            return out
        if isinstance(stmt, AddrOf):
            out = dict(state)
            out.pop(("prov", stmt.lhs), None)
            if isinstance(stmt.target, AllocSite):
                # Re-allocation of the abstract site: the new object is
                # live, so drop the freed mark (a may-analysis is free to
                # forget; keeping it would accuse loop re-allocations).
                out.pop(("freed", stmt.target), None)
            return out
        if isinstance(stmt, Load):
            gathered: FrozenSet[Loc] = _EMPTY
            for cell in self.fsci.pts_before(loc, stmt.rhs):
                gathered |= state.get(("prov", cell), _EMPTY)
            out = dict(state)
            if gathered:
                out[("prov", stmt.lhs)] = gathered
            else:
                out.pop(("prov", stmt.lhs), None)
            return out
        if isinstance(stmt, Store):
            src = state.get(("prov", stmt.rhs), _EMPTY)
            if not src:
                return state  # weak: never clears (sound over-approx)
            out = dict(state)
            for cell in self.fsci.pts_before(loc, stmt.lhs):
                key = ("prov", cell)
                out[key] = out.get(key, _EMPTY) | src
            return out
        return state

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _before(self, loc: Loc) -> FreeState:
        state = self._engine.state_before(loc)
        return state if state is not None else {}

    def prov_before(self, loc: Loc, cell: object) -> FrozenSet[Loc]:
        """Free locations whose NULL may be ``cell``'s value at ``loc``."""
        return self._before(loc).get(("prov", cell), _EMPTY)

    def freed_before(self, loc: Loc, site: AllocSite) -> FrozenSet[Loc]:
        """Free locations that may have already freed ``site`` at ``loc``."""
        return self._before(loc).get(("freed", site), _EMPTY)

    def freed_sites_hit(self, loc: Loc, ptr: Var
                        ) -> List[Tuple[AllocSite, FrozenSet[Loc]]]:
        """Allocation sites ``ptr`` may point at that may already be
        freed when ``loc`` executes, with the responsible free sites."""
        out: List[Tuple[AllocSite, FrozenSet[Loc]]] = []
        for obj in sorted(self.fsci.pts_before(loc, ptr),
                          key=str):
            if isinstance(obj, AllocSite):
                frees = self.freed_before(loc, obj)
                if frees:
                    out.append((obj, frees))
        return out

    def free_sites(self) -> List[Tuple[Loc, NullAssign]]:
        """Every free-lowered null assignment in the program."""
        return [(loc, stmt) for loc, stmt in self.program.statements()
                if isinstance(stmt, NullAssign) and stmt.is_free]

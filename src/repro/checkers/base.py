"""Checker framework: base class, registry, demand-driven plumbing.

The framework owns what every checker would otherwise reimplement:

* **demand-driven cluster selection** — a checker names its interesting
  pointers; :meth:`CheckerContext.demand_fsci` selects only the clusters
  containing them (``core.queries.select_clusters``) and runs one sliced
  FSCI over the union of their ``V_P`` / ``St_P`` (sound: Algorithm 1's
  slice contains every statement that can affect a member's value);
* **free-provenance facts** — shared between the use-after-free and
  double-free checkers, and used by null-deref to stay out of their way;
* **deduplication and suppression** — shadow variables and normalizer
  temporaries produce textual duplicates that collapse by (rule,
  function, line, subject); ``// repro:ignore`` lines are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..analysis.demand_engine import DemandEngine
from ..analysis.fsci import FSCIResult
from ..core.bootstrap import BootstrapAnalyzer, BootstrapResult
from ..core.queries import DemandSelection
from ..core.report import (
    Diagnostic,
    TraceStep,
    dedup_diagnostics,
    suppress_diagnostics,
)
from ..ir import Load, Loc, Program, Statement, Store, Var
from .heapfacts import FreeFacts


def root_name(var: Var) -> str:
    """The user-visible name behind a (possibly shadow) variable:
    ``p__next`` names ``p``; renamed block-scoped locals keep their
    source name."""
    name = var.name.split("__", 1)[0]
    return name.split("$", 1)[0] if not name.startswith("$") else name


def display_name(var: Var) -> str:
    """``root_name`` with normalizer temporaries rendered generically."""
    name = root_name(var)
    if name.startswith("$t"):
        return "<expression>"
    return name


def dereferences(program: Program) -> List[Tuple[Loc, Var]]:
    """Every (location, pointer) pair where memory is read or written
    through the pointer: ``x = *p`` and ``*p = x``."""
    out: List[Tuple[Loc, Var]] = []
    for loc, stmt in program.statements():
        if isinstance(stmt, Load):
            out.append((loc, stmt.rhs))
        elif isinstance(stmt, Store):
            out.append((loc, stmt.lhs))
    return out


class CheckerContext:
    """Shared state for one ``run_checkers`` invocation."""

    def __init__(self, program: Program, result: BootstrapResult) -> None:
        self.program = program
        self.result = result
        self.engine = DemandEngine(program, result)
        self._free_cache: Dict[int, FreeFacts] = {}

    def demand_fsci(self, interesting: Iterable[Var]
                    ) -> Tuple[Optional[FSCIResult], DemandSelection]:
        """A sliced FSCI covering exactly the clusters that contain an
        interesting pointer.  Returns ``(None, selection)`` when no
        cluster qualifies (nothing to check — everything was skipped)."""
        return self.engine.sliced_fsci(interesting)

    def free_facts(self, fsci: FSCIResult) -> FreeFacts:
        """Free-provenance facts over ``fsci``'s points-to view (cached)."""
        key = id(fsci)
        facts = self._free_cache.get(key)
        if facts is None:
            facts = FreeFacts(self.program, fsci)
            self._free_cache[key] = facts
        return facts

    def trace_step(self, loc: Loc, note: str) -> TraceStep:
        return TraceStep(loc=loc, span=self.program.span_at(loc), note=note)

    def diagnostic(self, rule_id: str, severity: str, message: str,
                   loc: Loc, checker: str, subject: str,
                   trace: Tuple[TraceStep, ...] = ()) -> Diagnostic:
        return Diagnostic(
            rule_id=rule_id, severity=severity, message=message, loc=loc,
            span=self.program.span_at(loc),
            file=self.program.source_path,
            checker=checker, subject=subject, trace=trace)


class Checker:
    """Base class: subclass, set the class attributes, implement
    :meth:`interesting` and :meth:`check`."""

    name: str = ""
    rule_id: str = ""
    description: str = ""

    def interesting(self, program: Program) -> Set[Var]:
        """The pointers whose aliases this checker needs (drives
        demand-driven cluster selection)."""
        raise NotImplementedError

    def check(self, ctx: CheckerContext) -> List[Diagnostic]:
        raise NotImplementedError


CHECKER_REGISTRY: Dict[str, type] = {}


def register_checker(cls: type) -> type:
    """Class decorator adding a checker to the registry."""
    if not getattr(cls, "name", ""):
        raise ValueError(f"{cls.__name__} needs a non-empty name")
    CHECKER_REGISTRY[cls.name] = cls
    return cls


@dataclass
class CheckerStats:
    """Per-checker demand-driven accounting (the paper's savings pitch)."""

    checker: str
    findings: int
    suppressed: int
    clusters_selected: int
    clusters_total: int
    pointers_selected: int
    pointers_total: int

    @property
    def clusters_skipped(self) -> int:
        return self.clusters_total - self.clusters_selected


@dataclass
class CheckReport:
    """Everything one ``run_checkers`` call produced."""

    diagnostics: List[Diagnostic]
    stats: List[CheckerStats]

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for d in self.diagnostics:
            out[d.severity] = out.get(d.severity, 0) + 1
        return out


def run_checkers(program: Program,
                 names: Optional[Iterable[str]] = None,
                 result: Optional[BootstrapResult] = None) -> CheckReport:
    """Run the selected checkers (default: all registered) and return the
    deduplicated, suppression-filtered report."""
    if result is None:
        result = BootstrapAnalyzer(program).run()
    ctx = CheckerContext(program, result)
    selected = list(names) if names is not None \
        else sorted(CHECKER_REGISTRY)
    diagnostics: List[Diagnostic] = []
    stats: List[CheckerStats] = []
    for name in selected:
        cls = CHECKER_REGISTRY.get(name)
        if cls is None:
            raise ValueError(
                f"unknown checker {name!r} (have: "
                f"{', '.join(sorted(CHECKER_REGISTRY))})")
        checker = cls()
        raw = checker.check(ctx)
        _, selection = ctx.demand_fsci(checker.interesting(program))
        # Findings that rest on clusters the resilience layer degraded
        # are still sound (coarser may-facts can only add findings, not
        # hide them) but carry the achieved precision level so every
        # emitter marks them.
        level = result.degraded_precision_of(selection.selected)
        if level is not None:
            raw = [replace(d, precision=level) for d in raw]
        deduped = dedup_diagnostics(raw)
        kept, dropped = suppress_diagnostics(deduped, program)
        diagnostics.extend(kept)
        stats.append(CheckerStats(
            checker=name,
            findings=len(kept),
            suppressed=dropped,
            clusters_selected=len(selection.selected),
            clusters_total=selection.total_clusters,
            pointers_selected=selection.selected_pointers,
            pointers_total=selection.total_pointers,
        ))
    return CheckReport(diagnostics=dedup_diagnostics(diagnostics),
                       stats=stats)

"""Null-dereference checker.

Flow-sensitive via the sliced FSCI: strong updates mean a pointer
re-assigned after a ``p = NULL`` is clean again, and ``if (p)`` guards
refine the NULL away through :class:`~repro.ir.statements.Assume`
conditions.  Interprocedural for free — the FSCI runs over the
supergraph, so ``f(NULL)`` flags the dereference inside ``f``.

Severity: a *must*-NULL dereference is an error (every path crashes); a
*may*-NULL one is a warning.  Pointers whose NULL came from a free are
left to the use-after-free checker (see :mod:`.heapfacts`).
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..core.report import Diagnostic, TraceStep
from ..ir import NullAssign, Program, Var
from .base import (
    Checker,
    CheckerContext,
    dereferences,
    display_name,
    register_checker,
    root_name,
)


@register_checker
class NullDerefChecker(Checker):
    name = "null-deref"
    rule_id = "repro-null-deref"
    description = ("dereference of a pointer the flow-sensitive analysis "
                   "proves (or cannot exclude) to be NULL")

    def interesting(self, program: Program) -> Set[Var]:
        return {ptr for _loc, ptr in dereferences(program)}

    def _null_trace(self, ctx: CheckerContext, ptr: Var
                    ) -> Tuple[TraceStep, ...]:
        steps = []
        for loc in ctx.program.assignments_to(ptr):
            stmt = ctx.program.stmt_at(loc)
            if isinstance(stmt, NullAssign) and not stmt.is_free:
                steps.append(ctx.trace_step(
                    loc, f"{display_name(ptr)} set to NULL here"))
        return tuple(steps)

    def check(self, ctx: CheckerContext) -> List[Diagnostic]:
        fsci, _selection = ctx.demand_fsci(self.interesting(ctx.program))
        if fsci is None:
            return []
        free = ctx.free_facts(fsci)
        out: List[Diagnostic] = []
        for loc, ptr in dereferences(ctx.program):
            if free.prov_before(loc, ptr):
                continue  # freed pointer: the UAF checker owns this
            shown = display_name(ptr)
            if fsci.must_null_before(loc, ptr):
                out.append(ctx.diagnostic(
                    self.rule_id, "error",
                    f"dereference of {shown!r}, which is NULL here "
                    "on every path",
                    loc, self.name, root_name(ptr),
                    trace=self._null_trace(ctx, ptr)))
            elif fsci.explicit_null_before(loc, ptr):
                out.append(ctx.diagnostic(
                    self.rule_id, "warning",
                    f"dereference of {shown!r}, which may be NULL here",
                    loc, self.name, root_name(ptr),
                    trace=self._null_trace(ctx, ptr)))
        return out

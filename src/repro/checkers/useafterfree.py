"""Use-after-free / dangling-pointer checker.

Two bug shapes:

* **use after free** — a dereference whose pointer either (a) may still
  point at an allocation site some path has already freed (the classic
  ``d = q; free(q); *d`` aliasing case — the FSCI keeps ``d`` aimed at
  the site because only ``q`` was nulled), or (b) is itself the freed
  operand (``free(p); *p`` — its NULL carries free provenance);
* **escaping stack address** — at a function's exit, an outliving cell
  (a global, an allocation site, or the function's return-value conduit)
  still holds the address of one of its locals; the caller receives a
  dangling pointer.
"""

from __future__ import annotations

from typing import List, Set

from ..core.report import Diagnostic
from ..ir import AddrOf, AllocSite, Loc, Program, Var, retval_var
from .base import (
    Checker,
    CheckerContext,
    dereferences,
    display_name,
    register_checker,
    root_name,
)


def _freed_vars(program: Program) -> Set[Var]:
    from ..ir import NullAssign
    return {stmt.lhs for _loc, stmt in program.statements()
            if isinstance(stmt, NullAssign) and stmt.is_free}


def _outliving_cells(program: Program, function: str) -> Set[object]:
    """Cells whose contents survive ``function``'s return."""
    cells: Set[object] = set(program.globals)
    cells.add(retval_var(function))
    cells |= set(program.alloc_sites)
    return cells


@register_checker
class UseAfterFreeChecker(Checker):
    name = "use-after-free"
    rule_id = "repro-use-after-free"
    description = ("dereference of a freed pointer or escape of a stack "
                   "address past its function's lifetime")

    def interesting(self, program: Program) -> Set[Var]:
        wanted = {ptr for _loc, ptr in dereferences(program)}
        wanted |= _freed_vars(program)
        # Escape analysis needs the outliving pointer cells too.
        pointers = program.pointers
        wanted |= {g for g in program.globals if g in pointers}
        wanted |= {retval_var(f) for f in program.functions
                   if retval_var(f) in pointers}
        return wanted

    def check(self, ctx: CheckerContext) -> List[Diagnostic]:
        fsci, _selection = ctx.demand_fsci(self.interesting(ctx.program))
        if fsci is None:
            return []
        free = ctx.free_facts(fsci)
        out: List[Diagnostic] = []
        out.extend(self._check_dereferences(ctx, fsci, free))
        out.extend(self._check_escapes(ctx, fsci))
        return out

    # ------------------------------------------------------------------
    def _check_dereferences(self, ctx: CheckerContext, fsci, free
                            ) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for loc, ptr in dereferences(ctx.program):
            shown = display_name(ptr)
            provs = free.prov_before(loc, ptr)
            if provs:
                trace = tuple(ctx.trace_step(f, "freed here")
                              for f in sorted(provs))
                out.append(ctx.diagnostic(
                    self.rule_id, "error",
                    f"use of {shown!r} after it was freed",
                    loc, self.name, root_name(ptr), trace=trace))
                continue
            hits = free.freed_sites_hit(loc, ptr)
            if hits:
                site, frees = hits[0]
                trace = tuple(ctx.trace_step(
                    f, f"{site.qualified} freed here")
                    for f in sorted(frees))
                out.append(ctx.diagnostic(
                    self.rule_id, "error",
                    f"dereference of {shown!r}, which may point to "
                    f"freed memory ({site.qualified})",
                    loc, self.name, root_name(ptr), trace=trace))
        return out

    # ------------------------------------------------------------------
    def _check_escapes(self, ctx: CheckerContext, fsci
                       ) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        program = ctx.program
        for fname, fn in program.functions.items():
            if fname == program.entry:
                continue  # main's locals live as long as the program
            exit_loc = Loc(fname, fn.cfg.exit)
            outliving = _outliving_cells(program, fname)
            for cell, value in sorted(fsci.cells_after(exit_loc).items(),
                                      key=lambda kv: str(kv[0])):
                if cell not in outliving:
                    continue
                for obj in sorted(value, key=str):
                    if not (isinstance(obj, Var) and obj.function == fname):
                        continue
                    if obj.name.startswith("$"):
                        continue  # conduits/temps are not stack cells
                    where = ("returned" if cell == retval_var(fname)
                             else f"stored in {cell}")
                    loc = self._addr_taken_at(program, fname, obj) \
                        or exit_loc
                    out.append(ctx.diagnostic(
                        self.rule_id, "warning",
                        f"address of local {root_name(obj)!r} escapes "
                        f"{fname!r} ({where}); it dangles after return",
                        loc, self.name, root_name(obj),
                        trace=(ctx.trace_step(
                            exit_loc, f"{fname} returns with the address "
                            "still reachable"),)))
        return out

    @staticmethod
    def _addr_taken_at(program: Program, fname: str, obj: Var
                       ) -> Loc | None:
        for loc, stmt in program.statements():
            if isinstance(stmt, AddrOf) and stmt.target == obj \
                    and loc.function == fname:
                return loc
        return None

"""The taint checker: demand-driven driver around the taint engine.

:func:`run_taint` runs the paper's demand loop on the shared
:class:`~repro.analysis.demand_engine.DemandEngine`.  The engine resolves
indirect loads and stores through a points-to resolver backed by a
*sliced* FSCI covering only the clusters that contain pointers taint
actually moves through.  Clusters are alias-closed (every pointer that
can reach a tainted object shares a cluster with the pointer that
tainted it), so the loop converges on exactly the alias facts the client
needs:

1. run the engine with the clusters demanded so far (initially none);
2. the engine reports the pointers it could not resolve while taint was
   in flight;
3. select their clusters, extend the sliced FSCI, re-run — until no new
   pointer is demanded.

Findings come out as ordinary :class:`~repro.core.report.Diagnostic`
objects with full witness traces, so every emitter (text / JSON /
SARIF ``codeFlows``) works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, List, Optional, Set

from ..analysis.demand_engine import DemandView, EngineStats, make_resolver
from ..analysis.taint import (
    TaintEngine,
    TaintFlow,
    TaintSpec,
    source_argument_pointers,
)
from ..core.bootstrap import BootstrapAnalyzer, BootstrapResult
from ..core.queries import DemandSelection
from ..core.report import (
    Diagnostic,
    TraceStep,
    dedup_diagnostics,
    suppress_diagnostics,
)
from ..ir import Program, Var
from .base import (
    Checker,
    CheckerContext,
    CheckerStats,
    register_checker,
)

RULE_ID = "taint-flow"
CHECKER_NAME = "taint"

#: Kept as an alias: bench/taint.py builds its whole-program baseline on
#: the exact resolver the demand loop uses.
_make_resolver = make_resolver


@dataclass
class TaintRunResult:
    """Everything one :func:`run_taint` invocation produced."""

    diagnostics: List[Diagnostic]
    flows: List[TaintFlow]
    stats: CheckerStats
    selection: DemandSelection
    demanded: FrozenSet[Var]
    rounds: int
    engine: Optional[EngineStats] = None

    @property
    def counts(self):
        out = {}
        for d in self.diagnostics:
            out[d.severity] = out.get(d.severity, 0) + 1
        return out


def _flow_diagnostic(ctx: CheckerContext, flow: TaintFlow) -> Diagnostic:
    program = ctx.program
    src_span = program.span_at(flow.source_loc)
    src_pos = (f"line {src_span.line}" if src_span is not None
               else f"{flow.source_loc.function}:{flow.source_loc.index}")
    message = (f"tainted data from {flow.source_fn}() ({src_pos}) reaches "
               f"{flow.sink_fn}() argument {flow.sink_arg}")
    trace = tuple(TraceStep(loc=loc, span=program.span_at(loc), note=note)
                  for loc, note in flow.steps)
    return ctx.diagnostic(
        rule_id=RULE_ID, severity=flow.severity, message=message,
        loc=flow.sink_loc, checker=CHECKER_NAME,
        subject=f"{flow.source_fn}@{src_pos}->{flow.sink_fn}",
        trace=trace)


def run_taint(program: Program,
              spec: Optional[TaintSpec] = None,
              result: Optional[BootstrapResult] = None,
              ctx: Optional[CheckerContext] = None,
              max_rounds: int = 10,
              budget: Optional[int] = None) -> TaintRunResult:
    """Demand-driven interprocedural taint analysis.

    ``max_rounds`` bounds the demand loop; the demanded-pointer set grows
    monotonically, so the loop normally exits as soon as one engine run
    demands nothing new.  ``budget`` caps the cumulative number of
    cluster slices the query may analyze (``AnalysisBudgetExceeded``
    beyond it).
    """
    if spec is None:
        spec = TaintSpec.default()
    if ctx is None:
        if result is None:
            result = BootstrapAnalyzer(program).run()
        ctx = CheckerContext(program, result)

    def client(view: DemandView):
        engine = TaintEngine(program, spec, view.resolver,
                             callgraph=ctx.result.callgraph)
        report = engine.run()
        return report, report.demanded

    outcome = ctx.engine.run(
        source_argument_pointers(program, spec), client,
        max_rounds=max_rounds, budget=budget)
    report = outcome.value
    selection = outcome.selection
    raw = [_flow_diagnostic(ctx, flow) for flow in report.flows]
    level = ctx.result.degraded_precision_of(selection.selected)
    if level is not None:
        # Sound but coarse: a supporting cluster fell down the cascade,
        # so stamp the achieved precision on every flow it backs.
        raw = [replace(d, precision=level) for d in raw]
    deduped = dedup_diagnostics(raw)
    kept, dropped = suppress_diagnostics(deduped, program)
    stats = CheckerStats(
        checker=CHECKER_NAME,
        findings=len(kept),
        suppressed=dropped,
        clusters_selected=len(selection.selected),
        clusters_total=selection.total_clusters,
        pointers_selected=selection.selected_pointers,
        pointers_total=selection.total_pointers,
    )
    return TaintRunResult(
        diagnostics=kept, flows=report.flows, stats=stats,
        selection=selection, demanded=outcome.demanded,
        rounds=outcome.rounds, engine=outcome.stats)


@register_checker
class TaintChecker(Checker):
    """Registry adapter so ``repro check`` and the daemon's
    ``diagnostics`` method include taint flows (with the default spec)."""

    name = CHECKER_NAME
    rule_id = RULE_ID
    description = "tainted data reaching a sensitive sink"

    def interesting(self, program: Program) -> Set[Var]:
        return source_argument_pointers(program, TaintSpec.default())

    def check(self, ctx: CheckerContext) -> List[Diagnostic]:
        return run_taint(ctx.program, ctx=ctx).diagnostics

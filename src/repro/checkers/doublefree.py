"""Double-free checker.

A free site is a free-tagged ``p = NULL``.  Two ways to refute the
"first free" assumption:

* the operand's value already carries free provenance — ``free(p);
  free(p)`` with no intervening reassignment (error: on that path the
  operand is the *same* freed value);
* the operand may point at an allocation site some path has already
  freed — the aliasing shape ``q = p; free(p); free(q)`` (error when the
  operand must-points at the freed site, warning when it only may).
"""

from __future__ import annotations

from typing import List, Set

from ..core.report import Diagnostic
from ..ir import NullAssign, Program, Var
from .base import (
    Checker,
    CheckerContext,
    display_name,
    register_checker,
    root_name,
)


@register_checker
class DoubleFreeChecker(Checker):
    name = "double-free"
    rule_id = "repro-double-free"
    description = "second free of an already-freed pointer or allocation"

    def interesting(self, program: Program) -> Set[Var]:
        return {stmt.lhs for _loc, stmt in program.statements()
                if isinstance(stmt, NullAssign) and stmt.is_free}

    def check(self, ctx: CheckerContext) -> List[Diagnostic]:
        fsci, _selection = ctx.demand_fsci(self.interesting(ctx.program))
        if fsci is None:
            return []
        free = ctx.free_facts(fsci)
        out: List[Diagnostic] = []
        for loc, stmt in free.free_sites():
            ptr = stmt.lhs
            shown = display_name(ptr)
            provs = free.prov_before(loc, ptr)
            if provs:
                trace = tuple(ctx.trace_step(f, "first freed here")
                              for f in sorted(provs))
                out.append(ctx.diagnostic(
                    self.rule_id, "error",
                    f"double free of {shown!r}",
                    loc, self.name, root_name(ptr), trace=trace))
                continue
            hits = free.freed_sites_hit(loc, ptr)
            if hits:
                site, frees = hits[0]
                must = fsci.must_point_to(ptr, site, loc)
                trace = tuple(ctx.trace_step(
                    f, f"{site.qualified} first freed here")
                    for f in sorted(frees))
                out.append(ctx.diagnostic(
                    self.rule_id, "error" if must else "warning",
                    f"{shown!r} frees {site.qualified}, which "
                    f"{'is' if must else 'may already be'} freed",
                    loc, self.name, root_name(ptr), trace=trace))
        return out

"""Exception types shared across the library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ParseError(ReproError):
    """Raised by the frontend on malformed source."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        where = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{where}")


class NormalizationError(ReproError):
    """Raised when source uses a construct outside the supported subset."""


class AnalysisBudgetExceeded(ReproError):
    """An analysis exceeded its step budget or deadline.

    The Table 1 harness converts this into the paper's ``> 15min``
    timeout markers for the unclustered baseline.
    """

    def __init__(self, analysis: str, steps: int) -> None:
        self.analysis = analysis
        self.steps = steps
        super().__init__(f"{analysis} exceeded its budget after {steps} steps")

"""Command-line driver: analyze mini-C files with the bootstrapped
cascade.

Examples::

    python -m repro analyze driver.c                 # cascade report
    python -m repro analyze driver.c --aliases p q   # alias query
    python -m repro analyze driver.c --backend processes --jobs 4 \
        --cache .repro-cache                         # real parallel run
    python -m repro partitions driver.c              # Steensgaard view
    python -m repro races driver.c --threads t1,t2   # race detection
    python -m repro check driver.c --sarif out.sarif # memory-safety scan
    python -m repro taint driver.c --fail-on error   # source->sink flows
    python -m repro demand driver.c --points-to p q  # demand Andersen
    python -m repro serve --socket /tmp/repro.sock   # query daemon
    python -m repro query --socket /tmp/repro.sock \
        points-to driver.c p                         # ask the daemon
    python -m repro fleet serve --port 7400 --workers 4 \
        --cache .repro-cache                         # sharded fleet
    python -m repro fleet status --port 7400         # ring + breakers
    python -m repro cache stats .repro-cache         # summary-cache peek
    python -m repro table1 --scale 0.02              # the paper's table
    python -m repro figure1                          # the paper's figure

Exit codes: 0 success, 1 findings/races with the ``--fail-on-*`` flags
or a cluster that failed past its retry budget without ``--degrade``,
2 usage errors, 3 an analysis budget was exceeded (clean message on
stderr, never a traceback).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from .analysis import Andersen, Steensgaard
from .applications import RaceDetector, find_lock_sites, lock_pointers
from .core import (
    BootstrapAnalyzer,
    BootstrapConfig,
    CascadeConfig,
    ClusterExecutionError,
    RunPolicy,
    parse_fault_arg,
    resolve_pointer,
    select_clusters,
)
from .errors import AnalysisBudgetExceeded
from .ir import Loc, Program, Var

#: Exit code for a clean :class:`AnalysisBudgetExceeded` failure.
EXIT_BUDGET = 3


def _package_version() -> str:
    try:
        from importlib.metadata import version
        return version("repro")
    except Exception:
        from . import __version__
        return __version__


def _load(path: str, entry: str) -> Program:
    from .frontend import parse_program
    try:
        with open(path, "r") as handle:
            source = handle.read()
    except OSError as exc:
        raise SystemExit(f"repro: cannot read {path}: {exc.strerror}")
    return parse_program(source, entry=entry, path=path)


def _find_var(program: Program, name: str) -> Var:
    """Resolve ``name`` or ``func::name`` against the program."""
    try:
        return resolve_pointer(program, name)
    except LookupError as exc:
        raise SystemExit(str(exc))


def _severity_fails(diags, fail_on: Optional[str]) -> bool:
    """True when any finding is at least as severe as ``fail_on``."""
    if fail_on is None:
        return False
    from .core.report import SEVERITY_ORDER
    limit = SEVERITY_ORDER[fail_on]
    return any(SEVERITY_ORDER.get(d.severity, 3) <= limit for d in diags)


def cmd_analyze(args: argparse.Namespace) -> int:
    program = _load(args.file, args.entry)
    config = BootstrapConfig(
        cascade=CascadeConfig(andersen_threshold=args.threshold,
                              use_oneflow=args.oneflow,
                              clustering=args.clustering,
                              sharing_bound=args.sharing_bound,
                              cutshortcut=args.cutshortcut),
        parts=args.parts,
        fscs_budget=args.fscs_budget)
    result = BootstrapAnalyzer(program, config).run()
    counts = program.counts()
    print(f"{args.file}: {counts['functions']} functions, "
          f"{counts['pointers']} pointers, "
          f"{counts['pointer_assignments']} pointer assignments")
    cascade = result.cascade
    print(f"cascade: {len(cascade.clusters)} clusters "
          f"(max {cascade.max_cluster_size()}, "
          f"{cascade.refined_partitions} partitions Andersen-refined) "
          f"in {cascade.partition_time + cascade.clustering_time:.3f}s")
    if args.aliases:
        p, q = (_find_var(program, n) for n in args.aliases)
        loc = Loc(program.entry, program.cfg_of(program.entry).exit)
        verdict = result.may_alias(p, q, loc)
        print(f"may_alias({p}, {q}) at end of {program.entry}: {verdict}")
        print(f"(analyzed {result.analyzed_cluster_count} of "
              f"{len(result.clusters)} clusters)")
    if args.points_to:
        p = _find_var(program, args.points_to)
        loc = Loc(program.entry, program.cfg_of(program.entry).exit)
        objs = sorted(str(o) for o in result.points_to(p, loc))
        print(f"points_to({p}) at end of {program.entry}: {objs}")
    policy = None
    if (args.cluster_timeout is not None or args.retries != 1
            or args.degrade):
        policy = RunPolicy(cluster_timeout=args.cluster_timeout,
                           retries=args.retries, degrade=args.degrade)
    faults = None
    if args.inject_fault:
        try:
            faults = [parse_fault_arg(arg) for arg in args.inject_fault]
        except ValueError as exc:
            raise SystemExit(f"repro analyze: {exc}")
    backend_requested = (args.backend != "simulate" or args.cache
                         or args.jobs is not None or policy is not None
                         or faults is not None)
    if args.summaries or backend_requested:
        report = result.analyze_all(backend=args.backend, jobs=args.jobs,
                                    scheduler=args.scheduler,
                                    cache=args.cache, policy=policy,
                                    faults=faults)
        if report.backend == "simulate":
            print(f"summaries built for all clusters: "
                  f"max part time {report.max_part_time:.3f}s over "
                  f"{args.parts} simulated machines")
        else:
            jobs = args.jobs if args.jobs is not None else args.parts
            print(f"summaries built for all clusters: "
                  f"{report.wall_time:.3f}s wall "
                  f"(max part {report.max_part_time:.3f}s) on "
                  f"{jobs} {report.backend} worker(s), "
                  f"{args.scheduler} schedule")
        if args.cache:
            print(f"summary cache: {report.cache_hits} hit(s), "
                  f"{report.cache_misses} miss(es) in {args.cache}")
        degraded = report.degraded
        if degraded:
            levels = ", ".join(f"#{i}: {lvl}" for i, lvl in
                               sorted(degraded.items()))
            print(f"degraded clusters: {len(degraded)} of "
                  f"{len(report.results)} fell back down the cascade "
                  f"({levels})")
        elif policy is not None or faults is not None:
            print(f"degraded clusters: none "
                  f"(all {len(report.results)} at full FSCS precision)")
    if args.report:
        from .core import render_report
        print()
        print(render_report(result))
    if args.json:
        import json
        from .core import cascade_summary
        print(json.dumps(cascade_summary(result), indent=2, sort_keys=True))
    if args.dot:
        from .analysis import Andersen, CutShortcut, Steensgaard, SteensgaardFS
        from .ir import andersen_dot, callgraph_dot, steensgaard_dot
        from .ir.dot import cutshortcut_dot
        if args.dot == "steensgaard":
            print(steensgaard_dot(Steensgaard(program).run()))
        elif args.dot == "steensgaard-fs":
            print(steensgaard_dot(
                SteensgaardFS(program,
                              sharing_bound=args.sharing_bound).run()))
        elif args.dot == "andersen":
            print(andersen_dot(Andersen(program).run()))
        elif args.dot == "cutshortcut":
            print(cutshortcut_dot(CutShortcut(program).run()))
        else:
            print(callgraph_dot(program))
    return 0


def cmd_partitions(args: argparse.Namespace) -> int:
    program = _load(args.file, args.entry)
    steens = Steensgaard(program).run()
    parts = steens.partitions()
    print(f"{len(parts)} Steensgaard partitions "
          f"(max size {steens.max_partition_size()})")
    shown = 0
    for part in parts:
        if len(part) < args.min_size:
            continue
        print(f"  [{len(part)}] " + ", ".join(sorted(map(str, part))[:12])
              + (" ..." if len(part) > 12 else ""))
        shown += 1
        if shown >= args.limit:
            print(f"  ... ({len(parts) - shown} more)")
            break
    if args.andersen:
        andersen = Andersen(program).run()
        clusters = andersen.clusters()
        print(f"{len(clusters)} Andersen clusters "
              f"(max size {andersen.max_cluster_size()})")
    return 0


def _write_sarif(path: str, diags) -> None:
    import json

    from .core import diagnostics_to_sarif
    try:
        with open(path, "w") as handle:
            json.dump(diagnostics_to_sarif(diags), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
    except OSError as exc:
        raise SystemExit(f"repro: cannot write {path}: {exc.strerror}")


def cmd_races(args: argparse.Namespace) -> int:
    import json

    from .applications import race_diagnostics
    from .core import diagnostics_to_dict
    program = _load(args.file, args.entry)
    threads = args.threads.split(",") if args.threads else []
    if not threads:
        raise SystemExit("--threads f1,f2 is required")
    warnings = RaceDetector(program, threads).run()
    diags = race_diagnostics(program, warnings)
    if args.sarif:
        _write_sarif(args.sarif, diags)
    if args.json:
        print(json.dumps(diagnostics_to_dict(diags), indent=2,
                         sort_keys=True))
    else:
        locks = lock_pointers(program)
        print(f"{len(find_lock_sites(program))} lock/unlock sites; "
              f"lock pointers: {sorted(map(str, locks))}")
        result = BootstrapAnalyzer(program).run()
        sel = select_clusters(result, locks)
        print(f"demand-driven: {len(sel.selected)}/{sel.total_clusters} "
              f"clusters involve lock pointers")
        print(f"{len(warnings)} race warning(s)")
        for w in warnings:
            print("  " + str(w))
        if args.sarif:
            print(f"SARIF written to {args.sarif}")
    fail_on = args.fail_on or ("warning" if args.fail_on_race else None)
    return 1 if _severity_fails(diags, fail_on) else 0


def cmd_check(args: argparse.Namespace) -> int:
    import json

    from .checkers import CHECKER_REGISTRY, run_checkers
    from .core import diagnostics_to_dict, render_diagnostics_text
    names = list(dict.fromkeys(args.checkers)) if args.checkers else None
    if names:
        unknown = [n for n in names if n not in CHECKER_REGISTRY]
        if unknown:
            raise SystemExit(
                f"unknown checker(s): {', '.join(unknown)} "
                f"(have: {', '.join(sorted(CHECKER_REGISTRY))})")
    program = _load(args.file, args.entry)
    report = run_checkers(program, names=names)
    diags = report.diagnostics
    if args.sarif:
        _write_sarif(args.sarif, diags)
    if args.json:
        print(json.dumps(diagnostics_to_dict(diags), indent=2,
                         sort_keys=True))
    else:
        if diags:
            print(render_diagnostics_text(diags))
        counts = report.counts
        summary = ", ".join(f"{counts[s]} {s}(s)" for s in
                            ("error", "warning", "note") if s in counts)
        print(f"{args.file}: {len(diags)} finding(s)"
              + (f" ({summary})" if summary else ""))
        for st in report.stats:
            print(f"  {st.checker}: {st.findings} finding(s), "
                  f"{st.suppressed} suppressed; analyzed "
                  f"{st.clusters_selected}/{st.clusters_total} clusters "
                  f"({st.clusters_skipped} skipped), "
                  f"{st.pointers_selected}/{st.pointers_total} pointers")
        if args.sarif:
            print(f"SARIF written to {args.sarif}")
    fail_on = args.fail_on or ("note" if args.fail_on_finding else None)
    return 1 if _severity_fails(diags, fail_on) else 0


def cmd_taint(args: argparse.Namespace) -> int:
    import json

    from .analysis.taint import TaintSpec
    from .checkers import run_taint
    from .core import diagnostics_to_dict, render_diagnostics_text
    spec = None
    if args.taint_spec:
        try:
            spec = TaintSpec.load(args.taint_spec)
        except OSError as exc:
            raise SystemExit(
                f"repro taint: cannot read {args.taint_spec}: "
                f"{exc.strerror}")
        except (ValueError, TypeError, KeyError) as exc:
            raise SystemExit(
                f"repro taint: bad spec {args.taint_spec}: {exc}")
    program = _load(args.file, args.entry)
    run = run_taint(program, spec=spec)
    diags = run.diagnostics
    if args.sarif:
        _write_sarif(args.sarif, diags)
    if args.json:
        print(json.dumps(diagnostics_to_dict(diags), indent=2,
                         sort_keys=True))
    else:
        if diags:
            print(render_diagnostics_text(diags))
        counts = run.counts
        summary = ", ".join(f"{counts[s]} {s}(s)" for s in
                            ("error", "warning", "note") if s in counts)
        st = run.stats
        print(f"{args.file}: {len(diags)} taint flow(s)"
              + (f" ({summary})" if summary else ""))
        print(f"  demand loop: {run.rounds} round(s), "
              f"{len(run.demanded)} pointer(s) demanded; analyzed "
              f"{st.clusters_selected}/{st.clusters_total} clusters "
              f"({st.clusters_skipped} skipped), "
              f"{st.pointers_selected}/{st.pointers_total} pointers; "
              f"{st.suppressed} suppressed")
        if args.sarif:
            print(f"SARIF written to {args.sarif}")
    fail_on = args.fail_on or ("note" if args.fail_on_finding else None)
    return 1 if _severity_fails(diags, fail_on) else 0


def cmd_leaks(args: argparse.Namespace) -> int:
    import json

    from .checkers import run_leaks
    from .core import diagnostics_to_dict, render_diagnostics_text
    program = _load(args.file, args.entry)
    run = run_leaks(program, budget=args.budget)
    diags = run.diagnostics
    if args.sarif:
        _write_sarif(args.sarif, diags)
    if args.json:
        print(json.dumps(diagnostics_to_dict(diags), indent=2,
                         sort_keys=True))
    else:
        if diags:
            print(render_diagnostics_text(diags))
        counts = run.counts
        summary = ", ".join(f"{counts[s]} {s}(s)" for s in
                            ("error", "warning", "note") if s in counts)
        st = run.stats
        print(f"{args.file}: {len(diags)} leaked allocation(s)"
              + (f" ({summary})" if summary else ""))
        print(f"  demand loop: {run.rounds} round(s), "
              f"{len(run.demanded)} pointer(s) demanded; analyzed "
              f"{st.clusters_selected}/{st.clusters_total} clusters "
              f"({st.clusters_skipped} skipped), "
              f"{st.pointers_selected}/{st.pointers_total} pointers; "
              f"{st.suppressed} suppressed")
        if args.sarif:
            print(f"SARIF written to {args.sarif}")
    fail_on = args.fail_on or ("note" if args.fail_on_finding else None)
    return 1 if _severity_fails(diags, fail_on) else 0


def cmd_deadlocks(args: argparse.Namespace) -> int:
    import json

    from .checkers import run_deadlocks
    from .core import diagnostics_to_dict, render_diagnostics_text
    program = _load(args.file, args.entry)
    threads = [t for t in (args.threads or "").split(",") if t] or None
    if threads:
        unknown = [t for t in threads if t not in program.functions]
        if unknown:
            raise SystemExit(
                f"repro deadlocks: unknown thread entr"
                f"{'y' if len(unknown) == 1 else 'ies'}: "
                f"{', '.join(unknown)}")
    run = run_deadlocks(program, thread_entries=threads,
                        budget=args.budget)
    diags = run.diagnostics
    if args.sarif:
        _write_sarif(args.sarif, diags)
    if args.json:
        print(json.dumps(diagnostics_to_dict(diags), indent=2,
                         sort_keys=True))
    else:
        if diags:
            print(render_diagnostics_text(diags))
        counts = run.counts
        summary = ", ".join(f"{counts[s]} {s}(s)" for s in
                            ("error", "warning", "note") if s in counts)
        st = run.stats
        entries = ", ".join(run.thread_entries) or "none found"
        print(f"{args.file}: {len(diags)} lock-order cycle(s)"
              + (f" ({summary})" if summary else ""))
        print(f"  thread entries: {entries}")
        print(f"  demand loop: {run.rounds} round(s), "
              f"{len(run.demanded)} pointer(s) demanded; analyzed "
              f"{st.clusters_selected}/{st.clusters_total} clusters "
              f"({st.clusters_skipped} skipped), "
              f"{st.pointers_selected}/{st.pointers_total} pointers; "
              f"{st.suppressed} suppressed")
        if args.sarif:
            print(f"SARIF written to {args.sarif}")
    fail_on = args.fail_on or ("note" if args.fail_on_finding else None)
    return 1 if _severity_fails(diags, fail_on) else 0


def cmd_demand(args: argparse.Namespace) -> int:
    import json

    from .analysis.demand import DemandAndersen
    program = _load(args.file, args.entry)
    engine = DemandAndersen(program, budget=args.budget)
    pointers = [_find_var(program, name) for name in args.points_to]
    sets = {str(p): sorted(str(o) for o in engine.points_to(p))
            for p in pointers}
    if args.json:
        print(json.dumps({"points_to": sets,
                          "nodes_touched": engine.queries_touched(),
                          "steps": engine.steps},
                         indent=2, sort_keys=True))
        return 0
    for name, objs in sets.items():
        print(f"points_to({name}): {objs}")
    print(f"demand-driven: touched {engine.queries_touched()} graph "
          f"node(s) in {engine.steps} step(s)")
    return 0


def _server_config(args: argparse.Namespace) -> "ServerConfig":
    """The :class:`ServerConfig` shared by ``serve`` and ``fleet
    serve`` (both parsers carry the same analysis flags)."""
    from .server import ServerConfig
    return ServerConfig(
        entry=args.entry, threshold=args.threshold, oneflow=args.oneflow,
        clustering=args.clustering, sharing_bound=args.sharing_bound,
        cutshortcut=args.cutshortcut,
        parts=args.parts, backend=args.backend, jobs=args.jobs,
        scheduler=args.scheduler, fscs_budget=args.fscs_budget,
        max_clusters=args.max_clusters, max_files=args.max_files,
        cache_dir=args.cache, watch=not args.no_watch,
        max_request_bytes=args.max_request_bytes,
        cluster_timeout=args.cluster_timeout, retries=args.retries,
        degrade=args.degrade)


def cmd_serve(args: argparse.Namespace) -> int:
    from .server import AliasServer
    if (args.socket is None) == (args.port is None):
        raise SystemExit(
            "repro serve: pass exactly one of --socket PATH or --port N")
    config = _server_config(args)
    from .server.protocol import RequestError
    server = AliasServer(config, socket_path=args.socket,
                         host=args.host, port=args.port)
    for path in args.files:
        try:
            summary = server.files.get(os.path.abspath(path)).summary()
        except RequestError as exc:
            raise SystemExit(f"repro serve: {exc}")
        print(f"preloaded {summary['path']}: "
              f"{summary['clusters']} clusters, "
              f"{summary['pointers']} pointers "
              f"({summary['last_refresh']['seconds']:.3f}s)", flush=True)
    print(f"repro serve: listening on {server.bind()}", flush=True)
    server.serve_forever()
    print("repro serve: drained, shut down cleanly")
    return 0


#: ``repro query`` positional-argument shapes per method.  ``*name``
#: swallows the remaining operands; ``?name`` is optional.  The ``spec``
#: slot is a path to a taint-spec JSON file, parsed client-side and sent
#: as the structured ``spec`` parameter; the ``threads`` slot is a
#: comma-separated list of thread entry functions, split client-side.
_QUERY_SPECS = {
    "ping": (),
    "stats": (),
    "shutdown": (),
    "invalidate": ("file",),
    "points-to": ("file", "ptr"),
    "alias": ("file", "p", "q"),
    "must-alias": ("file", "p", "q"),
    "diagnostics": ("file", "*checkers"),
    "taint": ("file", "?spec"),
    "leaks": ("file",),
    "deadlocks": ("file", "?threads"),
}


def cmd_query(args: argparse.Namespace) -> int:
    import json

    from .server import protocol
    from .server.client import ConnectError, ServerClient, ServerError
    if (args.socket is None) == (args.port is None):
        raise SystemExit(
            "repro query: pass exactly one of --socket PATH or --port N")
    spec = _QUERY_SPECS.get(args.method)
    if spec is None:
        raise SystemExit(
            f"repro query: unknown method {args.method!r} "
            f"(have: {', '.join(sorted(_QUERY_SPECS))})")
    params = {}
    operands = list(args.args)
    for slot in spec:
        if slot.startswith("*"):
            if operands:
                params[slot[1:]] = operands
                operands = []
            break
        optional = slot.startswith("?")
        if optional:
            slot = slot[1:]
            if not operands:
                continue
        if not operands:
            raise SystemExit(
                f"repro query {args.method}: missing "
                f"{' '.join(s.upper().lstrip('*?') for s in spec)}")
        value = operands.pop(0)
        if slot == "file":
            value = os.path.abspath(value)
        elif slot == "spec":
            try:
                with open(value, "r") as handle:
                    value = json.load(handle)
            except OSError as exc:
                raise SystemExit(
                    f"repro query taint: cannot read {value}: "
                    f"{exc.strerror}")
            except ValueError as exc:
                raise SystemExit(
                    f"repro query taint: bad spec JSON: {exc}")
        elif slot == "threads":
            value = [t for t in value.split(",") if t]
        params[slot] = value
    if operands:
        raise SystemExit(
            f"repro query {args.method}: unexpected extra arguments "
            f"{operands}")
    try:
        with ServerClient(socket_path=args.socket, host=args.host,
                          port=args.port, timeout=args.timeout,
                          deadline=args.deadline) as client:
            result = client.call(args.method.replace("-", "_"), **params)
    except ConnectError as exc:
        raise SystemExit(f"repro query: cannot reach the daemon: {exc}")
    except ServerError as exc:
        print(f"repro query: {exc}", file=sys.stderr)
        # A blown end-to-end deadline is a budget overrun in time
        # rather than steps: same distinct exit code.
        budget_codes = (protocol.BUDGET_EXCEEDED,
                        protocol.DEADLINE_EXCEEDED)
        return EXIT_BUDGET if exc.code in budget_codes else 1
    except OSError as exc:
        raise SystemExit(f"repro query: cannot reach the daemon: {exc}")
    try:
        print(json.dumps(result, indent=2, sort_keys=True))
    except BrokenPipeError:
        # Downstream (e.g. ``| grep -q``) closed the pipe early; the
        # query itself succeeded.  Point stdout at devnull so the
        # interpreter's shutdown flush stays quiet too.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def cmd_fleet_serve(args: argparse.Namespace) -> int:
    import threading

    from .fleet import DEFAULT_REPLICAS, FleetConfig, FleetCoordinator
    if (args.socket is None) == (args.port is None):
        raise SystemExit(
            "repro fleet serve: pass exactly one of --socket PATH "
            "or --port N")
    if not args.worker and args.workers < 1:
        raise SystemExit("repro fleet serve: --workers must be >= 1")
    config = FleetConfig(
        workers=args.workers, worker_addrs=args.worker or [],
        replicas=args.replicas if args.replicas is not None
        else DEFAULT_REPLICAS,
        balance_epsilon=args.balance_epsilon,
        conns_per_worker=args.conns_per_worker,
        max_inflight=args.max_inflight, max_per_shard=args.max_per_shard,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        worker_timeout=args.worker_timeout,
        probe_interval=args.probe_interval,
        respawn=not args.no_respawn,
        respawn_backoff=args.respawn_backoff,
        crash_loop_threshold=args.crash_loop_threshold,
        crash_loop_window=args.crash_loop_window,
        hedge=args.hedge,
        hedge_max_fraction=args.hedge_max_fraction,
        hedge_min_delay=args.hedge_min_delay,
        journal_dir=args.journal,
        envelope_all=args.envelope_all,
        server=_server_config(args))
    coordinator = FleetCoordinator(config, host=args.host,
                                   port=args.port,
                                   socket_path=args.socket)
    # The front door binds inside the event loop; announce the resolved
    # address (workers included) the moment it is ready.
    ready = threading.Event()

    def announce() -> None:
        ready.wait()
        workers = ", ".join(
            f"{name}={shard.link.host}:{shard.link.port}"
            for name, shard in sorted(coordinator.shards.items()))
        print(f"repro fleet: listening on {coordinator.address} "
              f"({len(coordinator.shards)} worker(s): {workers})",
              flush=True)

    threading.Thread(target=announce, daemon=True).start()
    coordinator.serve_forever(ready=ready)
    print("repro fleet: drained, shut down cleanly")
    return 0


def cmd_fleet_status(args: argparse.Namespace) -> int:
    import json

    from .server.client import ServerClient, ServerError
    if (args.socket is None) == (args.port is None):
        raise SystemExit(
            "repro fleet status: pass exactly one of --socket PATH "
            "or --port N")
    try:
        with ServerClient(socket_path=args.socket, host=args.host,
                          port=args.port,
                          timeout=args.timeout) as client:
            status = client.fleet_status()
    except ServerError as exc:
        print(f"repro fleet status: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        raise SystemExit(
            f"repro fleet status: cannot reach the coordinator: {exc}")
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    import json

    from .core import SummaryCache
    if not os.path.isdir(args.dir):
        raise SystemExit(f"repro cache: no cache directory at {args.dir}")
    cache = SummaryCache(args.dir)
    if args.cache_command == "stats":
        print(json.dumps(cache.stats(), indent=2, sort_keys=True))
        return 0
    removed = cache.prune(args.max_age_days)
    print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} older "
          f"than {args.max_age_days:g} day(s) from {args.dir}")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from .bench.table1 import main as table1_main
    argv: List[str] = ["--scale", str(args.scale)]
    if args.programs:
        argv += ["--programs", args.programs]
    if args.skip_nocluster:
        argv.append("--skip-nocluster")
    if args.csv:
        argv.append("--csv")
    return table1_main(argv)


def cmd_figure1(args: argparse.Namespace) -> int:
    from .bench.figure1 import main as figure1_main
    argv = ["--program", args.program, "--scale", str(args.scale)]
    if args.csv:
        argv.append("--csv")
    return figure1_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bootstrapped flow/context-sensitive pointer alias "
                    "analysis (Kahlon, PLDI 2008)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_package_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="run the full cascade on a file")
    p.add_argument("file")
    p.add_argument("--entry", default="main")
    p.add_argument("--threshold", type=int, default=60,
                   help="Andersen threshold (paper: 60)")
    p.add_argument("--oneflow", action="store_true",
                   help="insert the One-Flow cascade stage")
    p.add_argument("--clustering",
                   choices=["steensgaard", "steensgaard_fs"],
                   default="steensgaard",
                   help="first-stage unification: classic Steensgaard "
                        "or the field-sensitive variant (finer "
                        "partitions at the same cost regime)")
    p.add_argument("--sharing-bound", type=int, default=8, metavar="N",
                   help="field slots per class before steensgaard_fs "
                        "collapses to classic behaviour (default 8)")
    p.add_argument("--cutshortcut", action="store_true",
                   help="apply the cut-shortcut transformation to the "
                        "Andersen stage (cheap context sensitivity "
                        "for return-value flow)")
    p.add_argument("--parts", type=int, default=5)
    p.add_argument("--aliases", nargs=2, metavar=("P", "Q"),
                   help="query may-alias of two pointers")
    p.add_argument("--points-to", metavar="P",
                   help="query the points-to set of a pointer")
    p.add_argument("--summaries", action="store_true",
                   help="precompute summaries for every cluster")
    p.add_argument("--backend",
                   choices=["simulate", "threads", "processes"],
                   default="simulate",
                   help="how to execute the per-cluster analyses "
                        "(default: simulate, the paper's accounting)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker count for threads/processes backends "
                        "(default: --parts)")
    p.add_argument("--scheduler", choices=["greedy", "lpt"],
                   default="greedy",
                   help="cluster-to-part assignment (default: the "
                        "paper's greedy sweep)")
    p.add_argument("--cache", metavar="DIR",
                   help="on-disk summary cache; unchanged clusters are "
                        "skipped on repeat runs")
    p.add_argument("--fscs-budget", type=int, default=None, metavar="N",
                   help="per-cluster FSCS step budget; exceeding it "
                        f"exits with code {EXIT_BUDGET}")
    p.add_argument("--cluster-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="wall-clock deadline per cluster analysis; "
                        "overruns are retried, then degraded or failed")
    p.add_argument("--retries", type=int, default=1, metavar="N",
                   help="attempts per failed cluster beyond the first "
                        "(default: 1)")
    p.add_argument("--degrade", action="store_true",
                   help="convert cluster failures into sound coarser "
                        "results (FSCI -> Andersen -> Steensgaard) "
                        "instead of failing the run")
    p.add_argument("--inject-fault", action="append", metavar="SPEC",
                   help="inject a deterministic fault for resilience "
                        "testing: KIND[:SELECTOR[:DURATION]] with KIND "
                        "one of crash/hang/corrupt/flaky-once and "
                        "SELECTOR '*', '#IDX', or a fingerprint prefix "
                        "(repeatable)")
    p.add_argument("--report", action="store_true",
                   help="print a markdown analysis report")
    p.add_argument("--json", action="store_true",
                   help="print the analysis summary as JSON")
    p.add_argument("--dot",
                   choices=["steensgaard", "steensgaard-fs", "andersen",
                            "cutshortcut", "callgraph"],
                   help="emit a Graphviz view of the chosen structure")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("partitions", help="show Steensgaard partitions")
    p.add_argument("file")
    p.add_argument("--entry", default="main")
    p.add_argument("--min-size", type=int, default=2)
    p.add_argument("--limit", type=int, default=25)
    p.add_argument("--andersen", action="store_true")
    p.set_defaults(func=cmd_partitions)

    p = sub.add_parser("races", help="lockset-based race detection")
    p.add_argument("file")
    p.add_argument("--entry", default="main")
    p.add_argument("--threads", help="comma-separated thread entries")
    p.add_argument("--sarif", metavar="OUT",
                   help="write race warnings as SARIF 2.1.0 to OUT")
    p.add_argument("--fail-on", choices=["note", "warning", "error"],
                   default=None,
                   help="exit 1 when any warning at or above this "
                        "severity remains")
    p.add_argument("--fail-on-race", action="store_true",
                   help="alias for --fail-on warning")
    p.add_argument("--json", action="store_true",
                   help="emit warnings as JSON diagnostics")
    p.set_defaults(func=cmd_races)

    p = sub.add_parser(
        "check", help="run the memory-safety checkers on a file")
    p.add_argument("file")
    p.add_argument("--entry", default="main")
    p.add_argument("--checkers", nargs="+", metavar="NAME",
                   help="subset of checkers to run (default: all)")
    p.add_argument("--sarif", metavar="OUT",
                   help="write findings as SARIF 2.1.0 to OUT")
    p.add_argument("--json", action="store_true",
                   help="print findings as JSON instead of text")
    p.add_argument("--fail-on", choices=["note", "warning", "error"],
                   default=None,
                   help="exit 1 when any finding at or above this "
                        "severity remains")
    p.add_argument("--fail-on-finding", action="store_true",
                   help="alias for --fail-on note")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "taint", help="source-to-sink taint analysis on a file")
    p.add_argument("file")
    p.add_argument("--entry", default="main")
    p.add_argument("--taint-spec", metavar="JSON",
                   help="sources/sinks/sanitizers spec file "
                        "(default: the built-in toy-C rules)")
    p.add_argument("--sarif", metavar="OUT",
                   help="write flows as SARIF 2.1.0 (with codeFlows) "
                        "to OUT")
    p.add_argument("--json", action="store_true",
                   help="print flows as JSON instead of text")
    p.add_argument("--fail-on", choices=["note", "warning", "error"],
                   default=None,
                   help="exit 1 when any flow at or above this "
                        "severity remains")
    p.add_argument("--fail-on-finding", action="store_true",
                   help="alias for --fail-on note")
    p.set_defaults(func=cmd_taint)

    p = sub.add_parser(
        "leaks", help="demand-driven memory-leak analysis on a file")
    p.add_argument("file")
    p.add_argument("--entry", default="main")
    p.add_argument("--budget", type=int, default=None, metavar="N",
                   help="cluster budget for the demand loop; exceeding "
                        f"it exits with code {EXIT_BUDGET}")
    p.add_argument("--sarif", metavar="OUT",
                   help="write findings as SARIF 2.1.0 to OUT")
    p.add_argument("--json", action="store_true",
                   help="print findings as JSON instead of text")
    p.add_argument("--fail-on", choices=["note", "warning", "error"],
                   default=None,
                   help="exit 1 when any finding at or above this "
                        "severity remains")
    p.add_argument("--fail-on-finding", action="store_true",
                   help="alias for --fail-on note")
    p.set_defaults(func=cmd_leaks)

    p = sub.add_parser(
        "deadlocks",
        help="lock-order-cycle (deadlock) analysis on a file")
    p.add_argument("file")
    p.add_argument("--entry", default="main")
    p.add_argument("--threads",
                   help="comma-separated thread entries (default: "
                        "functions passed to spawn-like primitives)")
    p.add_argument("--budget", type=int, default=None, metavar="N",
                   help="cluster budget for the demand loop; exceeding "
                        f"it exits with code {EXIT_BUDGET}")
    p.add_argument("--sarif", metavar="OUT",
                   help="write findings as SARIF 2.1.0 to OUT")
    p.add_argument("--json", action="store_true",
                   help="print findings as JSON instead of text")
    p.add_argument("--fail-on", choices=["note", "warning", "error"],
                   default=None,
                   help="exit 1 when any finding at or above this "
                        "severity remains")
    p.add_argument("--fail-on-finding", action="store_true",
                   help="alias for --fail-on note")
    p.set_defaults(func=cmd_deadlocks)

    p = sub.add_parser(
        "demand", help="demand-driven Andersen points-to queries")
    p.add_argument("file")
    p.add_argument("--entry", default="main")
    p.add_argument("--points-to", nargs="+", required=True, metavar="P",
                   help="pointers to query (name or func::name)")
    p.add_argument("--budget", type=int, default=None, metavar="N",
                   help="fixpoint step budget; exceeding it exits with "
                        f"code {EXIT_BUDGET}")
    p.add_argument("--json", action="store_true",
                   help="print the answers as JSON")
    p.set_defaults(func=cmd_demand)

    def add_daemon_flags(p: argparse.ArgumentParser) -> None:
        """Bind address + analysis knobs shared by ``serve`` and
        ``fleet serve`` (one daemon or every spawned worker)."""
        p.add_argument("--socket", metavar="PATH",
                       help="serve on a Unix domain socket at PATH")
        p.add_argument("--host", default="127.0.0.1",
                       help="TCP bind address (default 127.0.0.1)")
        p.add_argument("--port", type=int, default=None,
                       help="serve on TCP PORT (0 picks a free port)")
        p.add_argument("--entry", default="main")
        p.add_argument("--threshold", type=int, default=60)
        p.add_argument("--oneflow", action="store_true")
        p.add_argument("--clustering",
                       choices=["steensgaard", "steensgaard_fs"],
                       default="steensgaard")
        p.add_argument("--sharing-bound", type=int, default=8,
                       metavar="N")
        p.add_argument("--cutshortcut", action="store_true")
        p.add_argument("--parts", type=int, default=5)
        p.add_argument("--backend",
                       choices=["simulate", "threads", "processes"],
                       default="simulate",
                       help="how (re)analysis executes clusters "
                            "(processes = the PR-2 worker pool)")
        p.add_argument("--jobs", type=int, default=None)
        p.add_argument("--scheduler", choices=["greedy", "lpt"],
                       default="greedy")
        p.add_argument("--cache", metavar="DIR",
                       help="on-disk summary cache backing the "
                            "in-memory LRU; restarts warm-start from "
                            "it (fleet workers share it)")
        p.add_argument("--max-files", type=int, default=16,
                       help="resident per-file analysis states (LRU)")
        p.add_argument("--max-clusters", type=int, default=4096,
                       help="resident per-cluster outcomes (LRU)")
        p.add_argument("--max-request-bytes", type=int,
                       default=4 * 1024 * 1024, metavar="N",
                       help="reject request lines longer than N bytes "
                            "with a structured REQUEST_TOO_LARGE error "
                            "(default 4 MiB)")
        p.add_argument("--fscs-budget", type=int, default=None,
                       metavar="N")
        p.add_argument("--cluster-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock deadline per cluster "
                            "(re)analysis")
        p.add_argument("--retries", type=int, default=1, metavar="N",
                       help="attempts per failed cluster beyond the "
                            "first")
        p.add_argument("--degrade", action="store_true",
                       help="answer queries from sound coarser results "
                            "when a cluster analysis fails; responses "
                            "carry degraded-precision warnings")
        p.add_argument("--no-watch", action="store_true",
                       help="do not auto-reload files whose content "
                            "changed (clients must send invalidate)")

    p = sub.add_parser(
        "serve", help="run the persistent alias query daemon")
    p.add_argument("files", nargs="*", metavar="FILE",
                   help="source files to analyze before accepting "
                        "connections")
    add_daemon_flags(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "fleet",
        help="coordinate a fleet of alias daemons behind one front door")
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)
    pf = fleet_sub.add_parser(
        "serve",
        help="run the coordinator (spawns workers unless --worker "
             "names external ones)")
    add_daemon_flags(pf)
    pf.add_argument("--workers", type=int, default=2, metavar="N",
                    help="local worker daemons to spawn (default 2)")
    pf.add_argument("--worker", action="append", metavar="HOST:PORT",
                    help="externally managed worker daemon "
                         "(repeatable; disables spawning)")
    pf.add_argument("--replicas", type=int, default=None, metavar="N",
                    help="virtual nodes per worker on the hash ring "
                         "(default 1024)")
    pf.add_argument("--balance-epsilon", type=float, default=0.05,
                    metavar="E",
                    help="bounded-load slack: no shard takes more than "
                         "(1+E)/N of a file's cluster traffic "
                         "(default 0.05)")
    pf.add_argument("--conns-per-worker", type=int, default=2,
                    metavar="N",
                    help="pipelined connections per worker (default 2)")
    pf.add_argument("--max-inflight", type=int, default=1024,
                    metavar="N",
                    help="admission control: global in-flight bound; "
                         "excess gets a structured OVERLOADED error")
    pf.add_argument("--max-per-shard", type=int, default=256,
                    metavar="N",
                    help="admission control: per-shard in-flight bound")
    pf.add_argument("--breaker-threshold", type=int, default=3,
                    metavar="N",
                    help="consecutive failures that trip a shard's "
                         "circuit breaker (default 3)")
    pf.add_argument("--breaker-reset", type=float, default=2.0,
                    metavar="SECONDS",
                    help="seconds until an open breaker turns "
                         "half-open and admits a heal probe")
    pf.add_argument("--worker-timeout", type=float, default=300.0,
                    metavar="SECONDS",
                    help="per-request deadline on a worker")
    pf.add_argument("--probe-interval", type=float, default=0.25,
                    metavar="SECONDS",
                    help="how often the heal loop checks sick shards")
    pf.add_argument("--no-respawn", action="store_true",
                    help="do not respawn dead spawned workers")
    pf.add_argument("--respawn-backoff", type=float, default=0.5,
                    metavar="SECONDS",
                    help="initial delay before respawning a dead "
                         "worker; doubles per consecutive death")
    pf.add_argument("--crash-loop-threshold", type=int, default=5,
                    metavar="N",
                    help="deaths inside the crash-loop window that "
                         "park a worker for good (shards reroute)")
    pf.add_argument("--crash-loop-window", type=float, default=30.0,
                    metavar="SECONDS",
                    help="sliding window for the crash-loop breaker")
    pf.add_argument("--hedge", action="store_true",
                    help="hedge slow warm queries: duplicate to the "
                         "ring successor past the p95 delay, first "
                         "answer wins (tagged 'hedged')")
    pf.add_argument("--hedge-max-fraction", type=float, default=0.05,
                    metavar="F",
                    help="cap hedges at this fraction of eligible "
                         "traffic")
    pf.add_argument("--hedge-min-delay", type=float, default=0.05,
                    metavar="SECONDS",
                    help="floor for the p95-derived hedge delay")
    pf.add_argument("--journal", metavar="DIR", default=None,
                    help="journal served files and observed query "
                         "weights to DIR (checksummed JSONL + atomic "
                         "snapshot) so a killed coordinator restarts "
                         "with warm routing state")
    pf.add_argument("--envelope-all", action="store_true",
                    help="attach the fleet envelope to every response, "
                         "not only rerouted ones")
    pf.set_defaults(func=cmd_fleet_serve)
    pf = fleet_sub.add_parser(
        "status", help="query a coordinator's fleet_status (JSON)")
    pf.add_argument("--socket", metavar="PATH")
    pf.add_argument("--host", default="127.0.0.1")
    pf.add_argument("--port", type=int, default=None)
    pf.add_argument("--timeout", type=float, default=30.0)
    pf.set_defaults(func=cmd_fleet_status)

    p = sub.add_parser(
        "query", help="query a running daemon (JSON to stdout)")
    p.add_argument("method",
                   help="one of: " + ", ".join(sorted(_QUERY_SPECS)))
    p.add_argument("args", nargs="*",
                   help="method operands, e.g. FILE PTR for points-to")
    p.add_argument("--socket", metavar="PATH")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None)
    p.add_argument("--timeout", type=float, default=300.0)
    p.add_argument("--deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="end-to-end budget for the query, propagated "
                        "to every hop (coordinator, worker, solver); "
                        "on expiry the query fails with "
                        f"DEADLINE_EXCEEDED and exit code {EXIT_BUDGET}")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "cache", help="inspect or prune an on-disk summary cache")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    pc = cache_sub.add_parser("stats", help="entry count, bytes, ages")
    pc.add_argument("dir", metavar="DIR")
    pc.set_defaults(func=cmd_cache)
    pc = cache_sub.add_parser(
        "prune", help="delete entries older than --max-age-days")
    pc.add_argument("dir", metavar="DIR")
    pc.add_argument("--max-age-days", type=float, required=True,
                    metavar="N")
    pc.set_defaults(func=cmd_cache)

    p = sub.add_parser("table1", help="regenerate the paper's Table 1")
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--programs")
    p.add_argument("--skip-nocluster", action="store_true")
    p.add_argument("--csv", action="store_true")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("figure1", help="regenerate the paper's Figure 1")
    p.add_argument("--program", default="autofs")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--csv", action="store_true")
    p.set_defaults(func=cmd_figure1)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except AnalysisBudgetExceeded as exc:
        # A budget overrun is an expected outcome, not a crash: one
        # clean line on stderr and a distinct exit code.
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except ClusterExecutionError as exc:
        # A cluster failed past its retry budget with --degrade off:
        # clean message, ordinary failure code (pass --degrade to turn
        # this into a sound coarser answer instead).
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream (e.g. ``| head``) closed the pipe early; the run
        # itself succeeded.  Point stdout at devnull so the
        # interpreter's shutdown flush stays quiet too.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""The mini-C type system.

Types drive two normalizer decisions: which assignments carry pointer
values (everything else lowers to ``skip``) and how struct variables are
flattened into per-field scalars.  The representation is deliberately
structural — ``same shape == same type``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import NormalizationError


class CType:
    """Base class for mini-C types."""

    __slots__ = ()

    @property
    def is_pointer(self) -> bool:
        return False

    @property
    def is_struct(self) -> bool:
        return False

    @property
    def is_function(self) -> bool:
        return False


@dataclass(frozen=True)
class IntType(CType):
    """All integral scalars (int/char/long/... collapse here)."""

    name: str = "int"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FloatType(CType):
    name: str = "double"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class VoidType(CType):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class PointerType(CType):
    base: CType

    @property
    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.base}*"


@dataclass(frozen=True)
class ArrayType(CType):
    base: CType
    size: Optional[int] = None

    def __str__(self) -> str:
        return f"{self.base}[{self.size if self.size is not None else ''}]"


@dataclass(frozen=True)
class StructType(CType):
    """A struct; fields resolve through the :class:`StructTable` so that
    recursive structs (``struct node *next``) do not recurse in the type
    value itself."""

    tag: str

    @property
    def is_struct(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"struct {self.tag}"


@dataclass(frozen=True)
class FuncType(CType):
    ret: CType
    params: Tuple[CType, ...] = ()
    variadic: bool = False

    @property
    def is_function(self) -> bool:
        return True

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"{self.ret}({params})"


INT = IntType()
VOID = VoidType()


class StructTable:
    """Declared struct layouts, keyed by tag."""

    def __init__(self) -> None:
        self._fields: Dict[str, List[Tuple[str, CType]]] = {}

    def declare(self, tag: str, fields: List[Tuple[str, CType]]) -> StructType:
        self._fields[tag] = list(fields)
        return StructType(tag)

    def is_defined(self, tag: str) -> bool:
        return tag in self._fields

    def fields_of(self, t: StructType) -> List[Tuple[str, CType]]:
        try:
            return self._fields[t.tag]
        except KeyError:
            raise NormalizationError(
                f"struct {t.tag} used before its definition") from None

    def field_type(self, t: StructType, name: str) -> CType:
        for fname, ftype in self.fields_of(t):
            if fname == name:
                return ftype
        raise NormalizationError(f"struct {t.tag} has no field {name!r}")

    def flatten(self, t: StructType, prefix: str,
                _seen: Optional[Tuple[str, ...]] = None
                ) -> List[Tuple[str, CType]]:
        """Flattened (name, scalar type) pairs for a struct variable
        named ``prefix``, recursing through nested by-value structs.
        Field separator is ``__`` per the paper's flattening."""
        seen = _seen or ()
        if t.tag in seen:
            raise NormalizationError(
                f"struct {t.tag} recursively contains itself by value")
        out: List[Tuple[str, CType]] = []
        for fname, ftype in self.fields_of(t):
            qualified = f"{prefix}__{fname}"
            if isinstance(ftype, StructType):
                out.extend(self.flatten(ftype, qualified, seen + (t.tag,)))
            elif isinstance(ftype, ArrayType):
                out.append((qualified, element_type(ftype)))
            else:
                out.append((qualified, ftype))
        return out


def element_type(t: ArrayType) -> CType:
    """Arrays collapse to a single element (paper: naive array model)."""
    base = t.base
    while isinstance(base, ArrayType):
        base = base.base
    return base


def is_pointerish(t: CType) -> bool:
    """Types whose values participate in pointer analysis."""
    if isinstance(t, (PointerType, FuncType)):
        return True
    if isinstance(t, ArrayType):
        return is_pointerish(element_type(t))
    return False


def pointee(t: CType) -> CType:
    if isinstance(t, PointerType):
        return t.base
    if isinstance(t, ArrayType):
        return element_type(t)
    raise NormalizationError(f"cannot dereference non-pointer type {t}")

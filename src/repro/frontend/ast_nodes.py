"""Abstract syntax for the mini-C subset.

Plain dataclasses; the parser builds these, the normalizer consumes them.
Every node carries the source line and column for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .types import CType


class Node:
    __slots__ = ()


class Expr(Node):
    __slots__ = ()


class Stmt(Node):
    __slots__ = ()


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass
class Ident(Expr):
    name: str
    line: int = 0
    col: int = 0


@dataclass
class IntLit(Expr):
    value: int
    line: int = 0
    col: int = 0


@dataclass
class StrLit(Expr):
    text: str
    line: int = 0
    col: int = 0


@dataclass
class NullLit(Expr):
    line: int = 0
    col: int = 0


@dataclass
class Unary(Expr):
    """op in {'*', '&', '-', '+', '!', '~', '++', '--', 'p++', 'p--'}."""

    op: str
    operand: Expr
    line: int = 0
    col: int = 0


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr
    line: int = 0
    col: int = 0


@dataclass
class Assign(Expr):
    """``lhs op= rhs``; plain assignment has op == '='."""

    lhs: Expr
    rhs: Expr
    op: str = "="
    line: int = 0
    col: int = 0


@dataclass
class Call(Expr):
    fn: Expr
    args: List[Expr]
    line: int = 0
    col: int = 0


@dataclass
class Member(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""

    base: Expr
    field: str
    arrow: bool
    line: int = 0
    col: int = 0


@dataclass
class Index(Expr):
    base: Expr
    index: Expr
    line: int = 0
    col: int = 0


@dataclass
class Cast(Expr):
    type: CType
    operand: Expr
    line: int = 0
    col: int = 0


@dataclass
class SizeOf(Expr):
    line: int = 0
    col: int = 0


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    otherwise: Expr
    line: int = 0
    col: int = 0


@dataclass
class Comma(Expr):
    parts: List[Expr]
    line: int = 0
    col: int = 0


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

@dataclass
class Declarator:
    """One declared name with its full type and optional initializer."""

    name: str
    type: CType
    init: Optional[Expr] = None
    line: int = 0
    col: int = 0


@dataclass
class DeclStmt(Stmt):
    decls: List[Declarator]
    line: int = 0
    col: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Expr
    line: int = 0
    col: int = 0


@dataclass
class Block(Stmt):
    body: List[Stmt]
    line: int = 0
    col: int = 0


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    otherwise: Optional[Stmt] = None
    line: int = 0
    col: int = 0


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt
    do_while: bool = False
    line: int = 0
    col: int = 0


@dataclass
class For(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt
    line: int = 0
    col: int = 0


@dataclass
class Switch(Stmt):
    cond: Expr
    arms: List[Stmt]  # one Stmt (usually Block) per case/default arm
    line: int = 0
    col: int = 0


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None
    line: int = 0
    col: int = 0


@dataclass
class Break(Stmt):
    line: int = 0
    col: int = 0


@dataclass
class Continue(Stmt):
    line: int = 0
    col: int = 0


@dataclass
class Empty(Stmt):
    line: int = 0
    col: int = 0


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------

@dataclass
class Param:
    name: Optional[str]
    type: CType


@dataclass
class FuncDef(Node):
    name: str
    ret: CType
    params: List[Param]
    body: Block
    line: int = 0
    col: int = 0


@dataclass
class TranslationUnit(Node):
    globals: List[DeclStmt]
    functions: List[FuncDef]

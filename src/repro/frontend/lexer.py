"""Tokenizer for the mini-C subset.

Hand-written scanner producing a flat token list with line/column info.
Comments (``//`` and ``/* */``) and preprocessor lines (``# ...``) are
skipped; string/char literals are retained as single tokens (their
contents never matter to pointer analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..errors import ParseError

KEYWORDS = {
    "int", "char", "long", "short", "unsigned", "signed", "void", "float",
    "double", "struct", "union", "typedef", "if", "else", "while", "for",
    "do", "return", "break", "continue", "sizeof", "NULL", "static",
    "extern", "const", "volatile", "switch", "case", "default", "goto",
    "enum",
}

# Longest-match-first punctuation.
PUNCT = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "{", "}", "(", ")", "[", "]", ";", ",", ".", "&", "*", "+", "-", "~",
    "!", "/", "%", "<", ">", "=", "^", "|", "?", ":",
]


@dataclass(frozen=True)
class Token:
    kind: str      # "id", "num", "str", "char", "kw", "punct", "eof"
    text: str
    line: int
    column: int

    def is_punct(self, *texts: str) -> bool:
        return self.kind == "punct" and self.text in texts

    def is_kw(self, *texts: str) -> bool:
        return self.kind == "kw" and self.text in texts

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.text!r})"


def tokenize(source: str) -> List[Token]:
    """Scan ``source`` into tokens, ending with a single ``eof`` token."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str) -> ParseError:
        return ParseError(msg, line, col)

    while i < n:
        ch = source[i]
        # -- whitespace ------------------------------------------------
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r\f\v":
            i += 1
            col += 1
            continue
        # -- comments / preprocessor ------------------------------------
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise error("unterminated block comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        if ch == "#" and (not tokens or tokens[-1].line != line):
            while i < n and source[i] != "\n":
                if source[i] == "\\" and i + 1 < n and source[i + 1] == "\n":
                    i += 2
                    line += 1
                    continue
                i += 1
            continue
        # -- identifiers / keywords -------------------------------------
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "kw" if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue
        # -- numbers ----------------------------------------------------
        if ch.isdigit():
            start = i
            if source.startswith(("0x", "0X"), i):
                i += 2
                while i < n and (source[i].isalnum()):
                    i += 1
            else:
                while i < n and (source[i].isdigit() or source[i] in ".eEuUlLfF"):
                    if source[i] in "eE" and i + 1 < n and source[i + 1] in "+-":
                        i += 1
                    i += 1
            tokens.append(Token("num", source[start:i], line, col))
            col += i - start
            continue
        # -- string / char literals -------------------------------------
        if ch in "\"'":
            quote = ch
            start = i
            i += 1
            while i < n and source[i] != quote:
                if source[i] == "\\":
                    i += 1
                if i < n and source[i] == "\n":
                    line += 1
                i += 1
            if i >= n:
                raise error("unterminated literal")
            i += 1
            kind = "str" if quote == '"' else "char"
            tokens.append(Token(kind, source[start:i], line, col))
            col += i - start
            continue
        # -- punctuation --------------------------------------------------
        for p in PUNCT:
            if source.startswith(p, i):
                tokens.append(Token("punct", p, line, col))
                i += len(p)
                col += len(p)
                break
        else:
            raise error(f"unexpected character {ch!r}")
    tokens.append(Token("eof", "", line, col))
    return tokens


def scan_suppressions(source: str, marker: str = "repro:ignore"
                      ) -> Dict[int, Optional[frozenset]]:
    """Suppressed lines: ``{line: None}`` for blanket suppressions,
    ``{line: frozenset of rule ids}`` for rule-scoped ones.

    A marker in a trailing comment suppresses its own line; a marker on a
    comment-only line suppresses the next line (the annotated statement).
    A bare marker suppresses every rule on the line; ``marker[rule-id]``
    (comma-separated ids allowed) suppresses only those rules::

        *p = 1;  // repro:ignore                 <- all rules
        *q = 2;  // repro:ignore[null-deref]     <- that rule only
        // repro:ignore[use-after-free,taint-flow]
        *r = 3;                                  <- those two rules

    Both ``//`` and ``/* */`` comment styles are recognized; the scan is
    line-wise and deliberately forgiving (markers inside string literals
    would also count, which is harmless for analysis fixtures).
    """
    suppressed: Dict[int, Optional[frozenset]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if marker not in text:
            continue
        comment_pos = len(text)
        for opener in ("//", "/*"):
            pos = text.find(opener)
            if pos != -1:
                comment_pos = min(comment_pos, pos)
        comment = text[comment_pos:]
        mark = comment.find(marker)
        if mark == -1:
            continue
        rules: Optional[frozenset] = None
        rest = comment[mark + len(marker):]
        if rest.startswith("["):
            end = rest.find("]")
            if end != -1:
                rules = frozenset(
                    r.strip() for r in rest[1:end].split(",") if r.strip())
        code = text[:comment_pos].strip()
        target = lineno if code else lineno + 1
        previous = suppressed.get(target, frozenset())
        if rules is None or previous is None:
            # A blanket marker (on either of two stacked comments) wins.
            suppressed[target] = None
        else:
            suppressed[target] = previous | rules
    return suppressed

"""Mini-C frontend: lexer, parser, types, normalizer."""

from typing import Optional, Set

from ..ir import Program, resolve_indirect_calls
from .ast_nodes import TranslationUnit
from .lexer import Token, scan_suppressions, tokenize
from .normalize import Normalizer, normalize
from .parser import Parser, parse_source
from .types import (
    ArrayType,
    CType,
    FuncType,
    IntType,
    PointerType,
    StructTable,
    StructType,
    VoidType,
)

__all__ = [
    "ArrayType", "CType", "FuncType", "IntType", "Normalizer", "Parser",
    "PointerType", "Program", "StructTable", "StructType", "Token",
    "TranslationUnit", "VoidType", "normalize", "parse_program",
    "parse_source", "scan_suppressions", "tokenize",
]


def parse_program(source: str, entry: str = "main",
                  resolve_function_pointers: bool = True,
                  path: Optional[str] = None) -> Program:
    """Parse + normalize mini-C source into an analyzable program.

    Function pointers are resolved Emami-style against a quick
    Steensgaard pass so that indirect call sites carry candidate targets
    before any client analysis runs.  ``path`` (when known) is recorded
    on the program for diagnostics, along with any ``// repro:ignore``
    suppression lines found in the source.
    """
    unit, structs = parse_source(source)
    program = normalize(unit, structs, entry=entry)
    program.source_path = path
    program.suppressed_lines = scan_suppressions(source)
    if resolve_function_pointers and getattr(program, "_indirect_plumbing", None):
        from ..analysis.steensgaard import Steensgaard
        pts = Steensgaard(program).run()
        resolve_indirect_calls(program, pts.points_to)
    return program

"""Recursive-descent parser for the mini-C subset.

Grammar highlights:

* top level: struct definitions, typedefs, global variable declarations,
  function definitions;
* declarators: pointers (``int **p``), arrays (``int *a[4]``), function
  pointers (``int (*fp)(int, char*)``);
* statements: blocks, ``if``/``else``, ``while``, ``do``/``while``,
  ``for``, ``switch`` (arms become nondeterministic branches),
  ``return``, ``break``, ``continue``, declarations with initializers;
* expressions: full C precedence ladder minus bit-level exotica, with
  ``sizeof``, casts, ``?:``, comma, and compound assignment.

The parser performs *no* semantic analysis; it produces the AST of
:mod:`.ast_nodes`, and the normalizer does the rest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ParseError
from . import ast_nodes as A
from .lexer import Token, tokenize
from .types import (
    INT,
    VOID,
    ArrayType,
    CType,
    FloatType,
    FuncType,
    IntType,
    PointerType,
    StructTable,
    StructType,
)

_TYPE_KEYWORDS = {"int", "char", "long", "short", "unsigned", "signed",
                  "void", "float", "double", "struct", "union", "enum"}
_QUALIFIERS = {"static", "extern", "const", "volatile"}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}

# Binary operator precedence (higher binds tighter).
_BINARY_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0
        self.structs = StructTable()
        self.typedefs: Dict[str, CType] = {}
        self._anon_counter = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect_punct(self, text: str) -> Token:
        tok = self.peek()
        if not tok.is_punct(text):
            raise ParseError(f"expected {text!r}, found {tok.text!r}",
                             tok.line, tok.column)
        return self.next()

    def expect_id(self) -> Token:
        tok = self.peek()
        if tok.kind != "id":
            raise ParseError(f"expected identifier, found {tok.text!r}",
                             tok.line, tok.column)
        return self.next()

    def error(self, msg: str) -> ParseError:
        tok = self.peek()
        return ParseError(msg + f" (at {tok.text!r})", tok.line, tok.column)

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def parse(self) -> A.TranslationUnit:
        globals_: List[A.DeclStmt] = []
        functions: List[A.FuncDef] = []
        while self.peek().kind != "eof":
            if self.peek().is_kw("typedef"):
                self._parse_typedef()
                continue
            item = self._parse_external()
            if isinstance(item, A.FuncDef):
                functions.append(item)
            elif isinstance(item, A.DeclStmt) and item.decls:
                globals_.append(item)
        return A.TranslationUnit(globals=globals_, functions=functions)

    def _parse_external(self):
        """A function definition or a global declaration."""
        self._skip_qualifiers()
        base = self._parse_type_specifier()
        if self.peek().is_punct(";"):  # bare struct definition
            self.next()
            return A.DeclStmt(decls=[], line=self.peek().line, col=self.peek().column)
        name, full_type, params = self._parse_declarator(base)
        if isinstance(full_type, FuncType) and self.peek().is_punct("{"):
            if name is None:
                raise self.error("function definition requires a name")
            body = self._parse_block()
            return A.FuncDef(name=name, ret=full_type.ret,
                             params=params or [], body=body,
                             line=self.peek().line, col=self.peek().column)
        # Global declaration (possibly several declarators).
        decls = [self._finish_declarator(name, full_type)]
        while self.peek().is_punct(","):
            self.next()
            n2, t2, _ = self._parse_declarator(base)
            decls.append(self._finish_declarator(n2, t2))
        self.expect_punct(";")
        return A.DeclStmt(decls=decls, line=self.peek().line, col=self.peek().column)

    def _finish_declarator(self, name: Optional[str], typ: CType
                           ) -> A.Declarator:
        if name is None:
            raise self.error("declaration requires a name")
        init = None
        line = self.peek().line
        col = self.peek().column
        if self.peek().is_punct("="):
            self.next()
            init = self._parse_initializer()
        return A.Declarator(name=name, type=typ, init=init, line=line, col=col)

    def _parse_initializer(self) -> A.Expr:
        if self.peek().is_punct("{"):
            # Aggregate initializer: parse and collapse to a comma expr of
            # its parts (the normalizer pairs them with flattened fields).
            line = self.peek().line
            col = self.peek().column
            self.next()
            parts: List[A.Expr] = []
            while not self.peek().is_punct("}"):
                parts.append(self._parse_initializer())
                if self.peek().is_punct(","):
                    self.next()
            self.expect_punct("}")
            return A.Comma(parts=parts, line=line, col=col)
        return self._parse_assignment()

    def _parse_typedef(self) -> None:
        self.next()  # typedef
        self._skip_qualifiers()
        base = self._parse_type_specifier()
        name, full_type, _ = self._parse_declarator(base)
        if name is None:
            raise self.error("typedef requires a name")
        self.typedefs[name] = full_type
        self.expect_punct(";")

    # ------------------------------------------------------------------
    # types and declarators
    # ------------------------------------------------------------------
    def _skip_qualifiers(self) -> None:
        while self.peek().is_kw(*_QUALIFIERS):
            self.next()

    def at_type_start(self) -> bool:
        tok = self.peek()
        if tok.is_kw(*(_TYPE_KEYWORDS | _QUALIFIERS)):
            return True
        return tok.kind == "id" and tok.text in self.typedefs

    def _parse_type_specifier(self) -> CType:
        self._skip_qualifiers()
        tok = self.peek()
        if tok.kind == "id" and tok.text in self.typedefs:
            self.next()
            return self.typedefs[tok.text]
        if tok.is_kw("struct", "union"):
            return self._parse_struct()
        if tok.is_kw("enum"):
            return self._parse_enum()
        if not tok.is_kw(*_TYPE_KEYWORDS):
            raise self.error("expected a type")
        names: List[str] = []
        while self.peek().is_kw(*(_TYPE_KEYWORDS - {"struct", "union", "enum"})):
            names.append(self.next().text)
            self._skip_qualifiers()
        text = " ".join(names)
        if "void" in names:
            return VOID
        if "float" in names or "double" in names:
            return FloatType(text)
        return IntType(text or "int")

    def _parse_struct(self) -> CType:
        self.next()  # struct/union
        tag: Optional[str] = None
        if self.peek().kind == "id":
            tag = self.next().text
        if self.peek().is_punct("{"):
            self.next()
            if tag is None:
                self._anon_counter += 1
                tag = f"$anon{self._anon_counter}"
            fields: List[Tuple[str, CType]] = []
            while not self.peek().is_punct("}"):
                self._skip_qualifiers()
                base = self._parse_type_specifier()
                while True:
                    fname, ftype, _ = self._parse_declarator(base)
                    if fname is None:
                        raise self.error("struct field requires a name")
                    fields.append((fname, ftype))
                    if self.peek().is_punct(","):
                        self.next()
                        continue
                    break
                self.expect_punct(";")
            self.expect_punct("}")
            return self.structs.declare(tag, fields)
        if tag is None:
            raise self.error("struct requires a tag or body")
        return StructType(tag)

    def _parse_enum(self) -> CType:
        self.next()  # enum
        if self.peek().kind == "id":
            self.next()
        if self.peek().is_punct("{"):
            self.next()
            while not self.peek().is_punct("}"):
                self.next()
            self.expect_punct("}")
        return INT

    def _parse_declarator(self, base: CType
                          ) -> Tuple[Optional[str], CType, Optional[List[A.Param]]]:
        """Parse one declarator; returns (name, full type, params-if-function).

        Handles ``* const``-style pointers, parenthesized declarators
        (function pointers), array suffixes and parameter lists.
        """
        typ = base
        while self.peek().is_punct("*"):
            self.next()
            self._skip_qualifiers()
            typ = PointerType(typ)
        name: Optional[str] = None
        inner_marker: Optional[int] = None
        if self.peek().is_punct("("):
            # Could be a parenthesized declarator `(*fp)` or a parameter
            # list for an abstract declarator; disambiguate on `*` or id.
            if self.peek(1).is_punct("*") or self.peek(1).kind == "id":
                self.next()
                inner_marker = self.pos
                depth = 1
                while depth:
                    tok = self.next()
                    if tok.is_punct("("):
                        depth += 1
                    elif tok.is_punct(")"):
                        depth -= 1
                    elif tok.kind == "eof":
                        raise self.error("unterminated declarator")
        elif self.peek().kind == "id":
            name = self.next().text
        # Suffixes: arrays and parameter lists (applied to `typ`).
        params: Optional[List[A.Param]] = None
        while True:
            if self.peek().is_punct("["):
                self.next()
                size = None
                if not self.peek().is_punct("]"):
                    tok = self.next()
                    if tok.kind == "num":
                        try:
                            size = int(tok.text, 0)
                        except ValueError:
                            size = None
                    while not self.peek().is_punct("]"):
                        self.next()
                self.expect_punct("]")
                typ = ArrayType(typ, size)
            elif self.peek().is_punct("("):
                self.next()
                params = self._parse_params()
                self.expect_punct(")")
                typ = FuncType(ret=typ,
                               params=tuple(p.type for p in params),
                               variadic=any(p.name == "..." for p in params))
                params = [p for p in params if p.name != "..."]
            else:
                break
        if inner_marker is not None:
            # Re-parse the parenthesized inner declarator against the
            # suffixed outer type.
            saved = self.pos
            self.pos = inner_marker
            name, typ, inner_params = self._parse_declarator(typ)
            self.expect_punct(")")
            self.pos = saved
            if inner_params is not None:
                params = inner_params
        return name, typ, params

    def _parse_params(self) -> List[A.Param]:
        params: List[A.Param] = []
        if self.peek().is_punct(")"):
            return params
        while True:
            if self.peek().is_punct("..."):
                self.next()
                params.append(A.Param(name="...", type=INT))
            elif self.peek().is_kw("void") and self.peek(1).is_punct(")"):
                self.next()
            else:
                self._skip_qualifiers()
                base = self._parse_type_specifier()
                name, typ, _ = self._parse_declarator(base)
                if isinstance(typ, ArrayType):
                    typ = PointerType(typ.base)  # array params decay
                if isinstance(typ, FuncType):
                    typ = PointerType(typ)  # function params decay
                params.append(A.Param(name=name, type=typ))
            if self.peek().is_punct(","):
                self.next()
                continue
            break
        return params

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _parse_block(self) -> A.Block:
        line = self.peek().line
        col = self.peek().column
        self.expect_punct("{")
        body: List[A.Stmt] = []
        while not self.peek().is_punct("}"):
            body.append(self._parse_stmt())
        self.expect_punct("}")
        return A.Block(body=body, line=line, col=col)

    def _parse_stmt(self) -> A.Stmt:
        tok = self.peek()
        line = tok.line
        col = tok.column
        if tok.is_punct("{"):
            return self._parse_block()
        if tok.is_punct(";"):
            self.next()
            return A.Empty(line=line, col=col)
        if tok.is_kw("if"):
            self.next()
            self.expect_punct("(")
            cond = self._parse_expr()
            self.expect_punct(")")
            then = self._parse_stmt()
            otherwise = None
            if self.peek().is_kw("else"):
                self.next()
                otherwise = self._parse_stmt()
            return A.If(cond=cond, then=then, otherwise=otherwise, line=line, col=col)
        if tok.is_kw("while"):
            self.next()
            self.expect_punct("(")
            cond = self._parse_expr()
            self.expect_punct(")")
            body = self._parse_stmt()
            return A.While(cond=cond, body=body, line=line, col=col)
        if tok.is_kw("do"):
            self.next()
            body = self._parse_stmt()
            if not self.peek().is_kw("while"):
                raise self.error("expected while after do body")
            self.next()
            self.expect_punct("(")
            cond = self._parse_expr()
            self.expect_punct(")")
            self.expect_punct(";")
            return A.While(cond=cond, body=body, do_while=True, line=line, col=col)
        if tok.is_kw("for"):
            self.next()
            self.expect_punct("(")
            init: Optional[A.Stmt] = None
            if not self.peek().is_punct(";"):
                if self.at_type_start():
                    init = self._parse_decl_stmt()
                else:
                    init = A.ExprStmt(expr=self._parse_expr(), line=line, col=col)
                    self.expect_punct(";")
            else:
                self.next()
            cond = None
            if not self.peek().is_punct(";"):
                cond = self._parse_expr()
            self.expect_punct(";")
            step = None
            if not self.peek().is_punct(")"):
                step = self._parse_expr()
            self.expect_punct(")")
            body = self._parse_stmt()
            return A.For(init=init, cond=cond, step=step, body=body, line=line, col=col)
        if tok.is_kw("switch"):
            return self._parse_switch()
        if tok.is_kw("return"):
            self.next()
            value = None
            if not self.peek().is_punct(";"):
                value = self._parse_expr()
            self.expect_punct(";")
            return A.Return(value=value, line=line, col=col)
        if tok.is_kw("break"):
            self.next()
            self.expect_punct(";")
            return A.Break(line=line, col=col)
        if tok.is_kw("continue"):
            self.next()
            self.expect_punct(";")
            return A.Continue(line=line, col=col)
        if tok.is_kw("goto"):
            # Unsupported control flow: treated as an early return, which
            # over-approximates by ending the path (documented limit).
            self.next()
            self.expect_id()
            self.expect_punct(";")
            return A.Return(line=line, col=col)
        if self.at_type_start():
            return self._parse_decl_stmt()
        if tok.kind == "id" and self.peek(1).is_punct(":"):
            # Label: skip it, parse the labelled statement.
            self.next()
            self.next()
            return self._parse_stmt()
        expr = self._parse_expr()
        self.expect_punct(";")
        return A.ExprStmt(expr=expr, line=line, col=col)

    def _parse_decl_stmt(self) -> A.DeclStmt:
        line = self.peek().line
        col = self.peek().column
        self._skip_qualifiers()
        base = self._parse_type_specifier()
        decls: List[A.Declarator] = []
        if not self.peek().is_punct(";"):
            while True:
                name, typ, _ = self._parse_declarator(base)
                decls.append(self._finish_declarator(name, typ))
                if self.peek().is_punct(","):
                    self.next()
                    continue
                break
        self.expect_punct(";")
        return A.DeclStmt(decls=decls, line=line, col=col)

    def _parse_switch(self) -> A.Switch:
        line = self.peek().line
        col = self.peek().column
        self.next()  # switch
        self.expect_punct("(")
        cond = self._parse_expr()
        self.expect_punct(")")
        self.expect_punct("{")
        arms: List[A.Stmt] = []
        current: List[A.Stmt] = []
        saw_arm = False
        while not self.peek().is_punct("}"):
            if self.peek().is_kw("case", "default"):
                if saw_arm and current:
                    arms.append(A.Block(body=current, line=line, col=col))
                    current = []
                saw_arm = True
                if self.next().text == "case":
                    self._parse_expr()  # the case value is irrelevant
                self.expect_punct(":")
                continue
            stmt = self._parse_stmt()
            if isinstance(stmt, A.Break):
                if current:
                    arms.append(A.Block(body=current, line=line, col=col))
                    current = []
                continue
            current.append(stmt)
        if current:
            arms.append(A.Block(body=current, line=line, col=col))
        self.expect_punct("}")
        return A.Switch(cond=cond, arms=arms, line=line, col=col)

    # ------------------------------------------------------------------
    # expressions (precedence ladder)
    # ------------------------------------------------------------------
    def _parse_expr(self) -> A.Expr:
        expr = self._parse_assignment()
        if self.peek().is_punct(","):
            parts = [expr]
            while self.peek().is_punct(","):
                self.next()
                parts.append(self._parse_assignment())
            return A.Comma(parts=parts, line=parts[0].line,
                           col=parts[0].col)
        return expr

    def _parse_assignment(self) -> A.Expr:
        lhs = self._parse_ternary()
        tok = self.peek()
        if tok.kind == "punct" and tok.text in _ASSIGN_OPS:
            self.next()
            rhs = self._parse_assignment()
            return A.Assign(lhs=lhs, rhs=rhs, op=tok.text, line=tok.line, col=tok.column)
        return lhs

    def _parse_ternary(self) -> A.Expr:
        cond = self._parse_binary(1)
        if self.peek().is_punct("?"):
            qtok = self.next()
            then = self._parse_expr()
            self.expect_punct(":")
            otherwise = self._parse_assignment()
            return A.Ternary(cond=cond, then=then, otherwise=otherwise,
                             line=qtok.line, col=qtok.column)
        return cond

    def _parse_binary(self, min_prec: int) -> A.Expr:
        left = self._parse_unary()
        while True:
            tok = self.peek()
            prec = _BINARY_PREC.get(tok.text) if tok.kind == "punct" else None
            if prec is None or prec < min_prec:
                return left
            self.next()
            right = self._parse_binary(prec + 1)
            left = A.Binary(op=tok.text, left=left, right=right,
                            line=tok.line, col=tok.column)

    def _parse_unary(self) -> A.Expr:
        tok = self.peek()
        if tok.is_punct("*", "&", "-", "+", "!", "~"):
            self.next()
            operand = self._parse_unary()
            return A.Unary(op=tok.text, operand=operand, line=tok.line, col=tok.column)
        if tok.is_punct("++", "--"):
            self.next()
            operand = self._parse_unary()
            return A.Unary(op=tok.text, operand=operand, line=tok.line, col=tok.column)
        if tok.is_kw("sizeof"):
            self.next()
            if self.peek().is_punct("(") and self._looks_like_type(1):
                self.next()
                self._parse_type_name()
                self.expect_punct(")")
            else:
                self._parse_unary()
            return A.SizeOf(line=tok.line, col=tok.column)
        if tok.is_punct("(") and self._looks_like_type(1):
            self.next()
            typ = self._parse_type_name()
            self.expect_punct(")")
            operand = self._parse_unary()
            return A.Cast(type=typ, operand=operand, line=tok.line, col=tok.column)
        return self._parse_postfix()

    def _looks_like_type(self, offset: int) -> bool:
        tok = self.peek(offset)
        if tok.is_kw(*(_TYPE_KEYWORDS | _QUALIFIERS)):
            return True
        return tok.kind == "id" and tok.text in self.typedefs

    def _parse_type_name(self) -> CType:
        self._skip_qualifiers()
        base = self._parse_type_specifier()
        # Abstract declarator: only pointer/array suffixes supported.
        typ = base
        while self.peek().is_punct("*"):
            self.next()
            self._skip_qualifiers()
            typ = PointerType(typ)
        while self.peek().is_punct("["):
            self.next()
            while not self.peek().is_punct("]"):
                self.next()
            self.expect_punct("]")
            typ = ArrayType(typ)
        return typ

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            tok = self.peek()
            if tok.is_punct("("):
                self.next()
                args: List[A.Expr] = []
                while not self.peek().is_punct(")"):
                    args.append(self._parse_assignment())
                    if self.peek().is_punct(","):
                        self.next()
                self.expect_punct(")")
                expr = A.Call(fn=expr, args=args, line=tok.line, col=tok.column)
            elif tok.is_punct("["):
                self.next()
                idx = self._parse_expr()
                self.expect_punct("]")
                expr = A.Index(base=expr, index=idx, line=tok.line, col=tok.column)
            elif tok.is_punct("."):
                self.next()
                field = self.expect_id().text
                expr = A.Member(base=expr, field=field, arrow=False,
                                line=tok.line, col=tok.column)
            elif tok.is_punct("->"):
                self.next()
                field = self.expect_id().text
                expr = A.Member(base=expr, field=field, arrow=True,
                                line=tok.line, col=tok.column)
            elif tok.is_punct("++", "--"):
                self.next()
                expr = A.Unary(op="p" + tok.text, operand=expr,
                               line=tok.line, col=tok.column)
            else:
                return expr

    def _parse_primary(self) -> A.Expr:
        tok = self.peek()
        if tok.is_punct("("):
            self.next()
            expr = self._parse_expr()
            self.expect_punct(")")
            return expr
        if tok.kind == "num":
            self.next()
            try:
                value = int(tok.text.rstrip("uUlL"), 0)
            except ValueError:
                value = 0
            return A.IntLit(value=value, line=tok.line, col=tok.column)
        if tok.kind in ("str", "char"):
            self.next()
            return A.StrLit(text=tok.text, line=tok.line, col=tok.column)
        if tok.is_kw("NULL"):
            self.next()
            return A.NullLit(line=tok.line, col=tok.column)
        if tok.kind == "id":
            self.next()
            return A.Ident(name=tok.text, line=tok.line, col=tok.column)
        raise self.error("expected an expression")


def parse_source(source: str) -> Tuple[A.TranslationUnit, StructTable]:
    """Parse mini-C source; returns the AST and the struct table."""
    parser = Parser(source)
    unit = parser.parse()
    return unit, parser.structs

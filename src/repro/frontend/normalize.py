"""Lowering mini-C ASTs to the normalized pointer IR.

This implements the paper's Remark 1 program model:

* every pointer assignment becomes one of ``x = y``, ``x = &y``,
  ``*x = y``, ``x = *y`` (temporaries split deeper expressions);
* ``p = malloc(...)`` at location *loc* becomes ``p = &alloc@loc``;
  ``free(p)`` and null assignments become ``p = NULL``;
* structures are flattened into one variable per (recursively nested)
  field, named ``base__field``; this makes the analysis field-sensitive;
* pointers whose base type is a struct get **shadow field pointers**: a
  variable ``p`` of type ``S*`` (or ``S**`` ...) carries companions
  ``p__f`` of type ``F*`` (``F**`` ...) per flattened field ``f``, and
  every canonical operation on ``p`` is mirrored on its shadows.  This
  turns ``p->f`` into the canonical load/store ``*(p__f)`` while staying
  inside the four-form model — the flattening trick the paper alludes to;
* pointer arithmetic is naive: ``t = p + i`` aliases ``t`` with every
  pointer operand (paper Section 2, Remark 1);
* conditionals are non-deterministic; ``&&``/``||``/``?:`` evaluate all
  arms for their side effects (a sound over-approximation);
* function pointers become indirect call sites resolved later against a
  flow-insensitive analysis (Emami-style).

Documented limitations (see DESIGN.md): struct-by-value parameters and
returns are rejected; struct pointers laundered through non-struct
pointer variables (e.g. stored in a ``void*`` variable) lose their shadow
fields — direct casts ``(S*)expr`` are transparent and keep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import NormalizationError
from ..ir import (
    AllocSite,
    CallStmt,
    Copy,
    ExternCall,
    Program,
    ProgramBuilder,
    Span,
    Var,
)
from ..ir.builder import FunctionBuilder
from ..ir.program import param_var, retval_var
from . import ast_nodes as A
from .types import (
    INT,
    VOID,
    ArrayType,
    CType,
    FuncType,
    IntType,
    PointerType,
    StructTable,
    StructType,
    element_type,
    is_pointerish,
    pointee,
)

#: Functions with allocator semantics (result is a fresh heap object).
ALLOCATORS = {"malloc", "calloc", "realloc", "valloc", "kmalloc", "kzalloc",
              "xmalloc", "alloca"}
#: Functions with deallocator semantics (argument becomes NULL, per paper).
DEALLOCATORS = {"free", "kfree", "xfree"}


def base_struct(t: CType, structs: StructTable) -> Optional[Tuple[int, StructType]]:
    """If ``t`` is ``S`` or ``S*``..``S**...``, return (pointer depth, S)
    for defined structs; otherwise ``None``."""
    depth = 0
    while isinstance(t, PointerType):
        depth += 1
        t = t.base
    if isinstance(t, ArrayType):
        t = element_type(t)
    if isinstance(t, StructType) and structs.is_defined(t.tag):
        return depth, t
    return None


def shadow_leaves(t: CType, structs: StructTable
                  ) -> List[Tuple[str, CType]]:
    """Flattened field paths and their shadow types for a struct-based
    type at pointer depth ``k``: leaf field ``f : F`` yields shadow type
    ``Ptr^k(F)``."""
    info = base_struct(t, structs)
    if info is None:
        return []
    depth, struct_t = info
    leaves = structs.flatten(struct_t, "")
    out: List[Tuple[str, CType]] = []
    for path, ftype in leaves:
        shadow_t = ftype
        for _ in range(depth):
            shadow_t = PointerType(shadow_t)
        out.append((path.lstrip("_"), shadow_t))  # path starts with "__"
    return out


# ---------------------------------------------------------------------------
# lowered values
# ---------------------------------------------------------------------------

@dataclass
class Val:
    """An evaluated expression.

    ``kind`` is one of:

    * ``"var"``   — value lives in ``var`` (shadows listed if any);
    * ``"addr"``  — the constant ``&obj`` (``shadow_objs`` for structs);
    * ``"null"``  — NULL;
    * ``"opaque"``— a non-pointer scalar or unknown value.
    """

    kind: str
    ctype: CType
    var: Optional[Var] = None
    obj: Optional[object] = None
    shadows: Dict[str, Var] = field(default_factory=dict)
    shadow_objs: Dict[str, object] = field(default_factory=dict)
    #: For "opaque" values: the variables the value was computed from.
    #: Assignments copy from these, generalizing the paper's naive
    #: pointer-arithmetic rule (result aliases every operand) to all
    #: scalar dataflow — it also keeps reads/writes of shared scalars
    #: visible to clients like the race detector.
    deps: List[Var] = field(default_factory=list)


@dataclass
class LValue:
    """A lowered assignable location.

    ``kind``:
    * ``"var"``   — a direct variable (with shadow companions);
    * ``"deref"`` — ``*ptr`` (``ptr`` with shadow companions: stores
      mirror into ``*ptr__f``).

    ``summary_key`` identifies the (struct tag, flattened field) this
    location instantiates, when it is a struct field: writes are then
    mirrored into the field's type-based summary cell so shadow-less
    readers (``a->b->c`` chains, pointers laundered through memory) still
    observe them — the classic field-based fallback.
    """

    kind: str
    ctype: CType
    var: Optional[Var] = None
    ptr: Optional[Var] = None
    shadows: Dict[str, Var] = field(default_factory=dict)
    summary_key: Optional[Tuple[str, str]] = None


class _Scope:
    """Lexically scoped symbol table (name -> (Var, CType))."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.names: Dict[str, Tuple[Var, CType]] = {}

    def lookup(self, name: str) -> Optional[Tuple[Var, CType]]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None

    def define(self, name: str, var: Var, ctype: CType) -> None:
        self.names[name] = (var, ctype)


class _Emitter(FunctionBuilder):
    """FunctionBuilder extended with break/continue frontiers."""

    def __init__(self, program: ProgramBuilder, name: str) -> None:
        super().__init__(program, name, params=())
        self.break_stack: List[List[int]] = []
        self.continue_stack: List[List[int]] = []

    def terminated(self) -> bool:
        return not self._frontier


class Normalizer:
    """Drives the AST -> IR lowering for one translation unit."""

    def __init__(self, unit: A.TranslationUnit, structs: StructTable,
                 entry: str = "main") -> None:
        self.unit = unit
        self.structs = structs
        self.entry = entry
        self.builder = ProgramBuilder()
        self.global_scope = _Scope()
        self.func_types: Dict[str, FuncType] = {}
        self.func_param_names: Dict[str, List[Optional[str]]] = {}
        self.warnings: List[str] = []
        self._temp_counter = 0

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(self) -> Program:
        for fn in self.unit.functions:
            ftype = FuncType(ret=fn.ret,
                             params=tuple(p.type for p in fn.params))
            self.func_types[fn.name] = ftype
            self.func_param_names[fn.name] = [p.name for p in fn.params]
            self.global_scope.define(fn.name, Var(fn.name), ftype)
        self._global_inits: List[Tuple[A.Declarator, Var, CType]] = []
        for decl_stmt in self.unit.globals:
            for decl in decl_stmt.decls:
                self._declare_global(decl)
        for fn in self.unit.functions:
            self._lower_function(fn)
        if self.entry not in self.func_types:
            raise NormalizationError(
                f"entry function {self.entry!r} is not defined")
        return self.builder.build(entry=self.entry)

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------
    def _declare_global(self, decl: A.Declarator) -> None:
        if isinstance(decl.type, FuncType):
            # Function prototype.
            self.func_types.setdefault(decl.name, decl.type)
            self.global_scope.define(decl.name, Var(decl.name), decl.type)
            return
        var = self.builder.global_var(decl.name)
        self.global_scope.define(decl.name, var, decl.type)
        if isinstance(decl.type, StructType):
            for path, ftype in self.structs.flatten(decl.type, decl.name):
                self.builder.global_var(path)
        else:
            for path, _stype in shadow_leaves(decl.type, self.structs):
                self.builder.global_var(f"{decl.name}__{path}")
        if decl.init is not None:
            self._global_inits.append((decl, var, decl.type))

    # ------------------------------------------------------------------
    # functions
    # ------------------------------------------------------------------
    def _lower_function(self, fn: A.FuncDef) -> None:
        em = _Emitter(self.builder, fn.name)
        scope = _Scope(self.global_scope)
        self._em = em
        self._scope = scope
        self._func = fn
        # Bind parameters: conduit -> named local (mirroring shadows).
        em.fn.params = [param_var(fn.name, i) for i in range(len(fn.params))]
        for i, p in enumerate(fn.params):
            if p.name is None:
                continue
            if isinstance(p.type, StructType):
                raise NormalizationError(
                    f"{fn.name}: struct-by-value parameter {p.name!r} is "
                    "not supported (pass a pointer instead)")
            local = self._local(p.name)
            scope.define(p.name, local, p.type)
            conduit = param_var(fn.name, i)
            em.emit(Copy(local, conduit))
            for path, stype in shadow_leaves(p.type, self.structs):
                em.emit(Copy(self._shadow_var(local, path),
                             self._shadow_var(conduit, path)))
        if isinstance(fn.ret, StructType):
            raise NormalizationError(
                f"{fn.name}: struct-by-value return is not supported")
        if fn.name == self.entry:
            self._lower_global_inits()
        self._lower_stmt(fn.body)
        self.builder._functions[fn.name] = em.finish()

    def _lower_global_inits(self) -> None:
        for decl, var, ctype in self._global_inits:
            self._lower_init(var, ctype, decl.init, decl.name)

    # ------------------------------------------------------------------
    # variable helpers
    # ------------------------------------------------------------------
    def _local(self, name: str) -> Var:
        v = Var(name, self._em.name)
        self._em.fn.locals.add(v)
        return v

    def _temp(self, ctype: CType) -> Var:
        self._temp_counter += 1
        return self._local(f"$t{self._temp_counter}")

    def _shadow_var(self, base: Var, path: str) -> Var:
        v = Var(f"{base.name}__{path}", base.function)
        if base.function is not None:
            self._em.fn.locals.add(v)
        else:
            self.builder.globals.add(v)
        return v

    def _shadow_map(self, base: Var, ctype: CType) -> Dict[str, Var]:
        return {path: self._shadow_var(base, path)
                for path, _t in shadow_leaves(ctype, self.structs)}

    def _fresh_label(self, line: int) -> str:
        self._temp_counter += 1
        return f"{self._em.name}:{line}#{self._temp_counter}"

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _lower_stmt(self, stmt: A.Stmt) -> None:
        em = self._em
        if getattr(stmt, "line", 0):
            em.default_span = Span(stmt.line, getattr(stmt, "col", 0))
        if em.terminated() and not isinstance(stmt, (A.Block, A.Empty)):
            # Unreachable code after return/break; still lower it into the
            # CFG as dead nodes? Simpler and sound: skip it.
            return
        if isinstance(stmt, A.Block):
            outer = self._scope
            self._scope = _Scope(outer)
            for s in stmt.body:
                self._lower_stmt(s)
            self._scope = outer
        elif isinstance(stmt, A.DeclStmt):
            for decl in stmt.decls:
                self._lower_local_decl(decl)
        elif isinstance(stmt, A.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, A.If):
            self._lower_expr(stmt.cond)
            assumes = self._branch_assumes(stmt.cond)
            cond_node = em.skip("if")
            frontier_after: List[int] = []
            em._frontier = [cond_node]
            self._emit_assume(assumes, True)
            self._lower_stmt(stmt.then)
            frontier_after.extend(em._frontier)
            em._frontier = [cond_node]
            self._emit_assume(assumes, False)
            if stmt.otherwise is not None:
                self._lower_stmt(stmt.otherwise)
            frontier_after.extend(em._frontier)
            em._frontier = frontier_after
        elif isinstance(stmt, A.While):
            self._lower_while(stmt)
        elif isinstance(stmt, A.For):
            self._lower_for(stmt)
        elif isinstance(stmt, A.Switch):
            self._lower_expr(stmt.cond)
            head = em.skip("switch")
            frontier_after: List[int] = [head]  # no arm taken
            em.break_stack.append([])
            for arm in stmt.arms:
                em._frontier = [head]
                self._lower_stmt(arm)
                frontier_after.extend(em._frontier)
            frontier_after.extend(em.break_stack.pop())
            em._frontier = frontier_after
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                val = self._lower_expr(stmt.value)
                ret = retval_var(em.name)
                self._assign_var(ret, self._func.ret, val)
            em.ret()
        elif isinstance(stmt, A.Break):
            if not em.break_stack:
                self.warnings.append("break outside loop/switch ignored")
                return
            em.break_stack[-1].extend(em._frontier)
            em._frontier = []
        elif isinstance(stmt, A.Continue):
            if not em.continue_stack:
                self.warnings.append("continue outside loop ignored")
                return
            em.continue_stack[-1].extend(em._frontier)
            em._frontier = []
        elif isinstance(stmt, A.Empty):
            pass
        else:  # pragma: no cover - parser produces no other nodes
            raise NormalizationError(f"unhandled statement {type(stmt).__name__}")

    def _lower_while(self, stmt: A.While) -> None:
        em = self._em
        head = em.skip("while")
        em.break_stack.append([])
        em.continue_stack.append([])
        self._lower_expr(stmt.cond)
        assumes = self._branch_assumes(stmt.cond)
        cond_node = em.skip("cond")
        self._emit_assume(assumes, True)
        self._lower_stmt(stmt.body)
        for f in em._frontier + em.continue_stack.pop():
            em._cfg.add_edge(f, head)
        # Loop may exit from the condition (or skip entirely for while,
        # after one iteration for do-while — both covered by cond_node).
        em._frontier = [cond_node]
        self._emit_assume(assumes, False)
        em._frontier.extend(em.break_stack.pop())

    def _lower_for(self, stmt: A.For) -> None:
        em = self._em
        outer = self._scope
        self._scope = _Scope(outer)
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        head = em.skip("for")
        em.break_stack.append([])
        em.continue_stack.append([])
        if stmt.cond is not None:
            self._lower_expr(stmt.cond)
        cond_node = em.skip("cond")
        self._lower_stmt(stmt.body)
        em._frontier.extend(em.continue_stack.pop())
        if stmt.step is not None:
            self._lower_expr(stmt.step)
        for f in em._frontier:
            em._cfg.add_edge(f, head)
        em._frontier = [cond_node] + em.break_stack.pop()
        self._scope = outer

    # ------------------------------------------------------------------
    # path conditions (paper Section 3's path-sensitivity extension)
    # ------------------------------------------------------------------
    def _branch_assumes(self, cond: A.Expr):
        """Extract a pointer path condition from a branch condition.

        Recognized shapes: ``p`` / ``!p`` (pointer truthiness tests NULL)
        and ``a == b`` / ``a != b`` with at least one pointer operand
        (NULL/0 literals map to NULL comparisons).  Returns
        ``(lhs_var, rhs_var_or_None, equal_when_taken)`` or ``None``.
        """
        negate = False
        while isinstance(cond, A.Unary) and cond.op == "!":
            negate = not negate
            cond = cond.operand

        def pointer_var(e: A.Expr):
            if not isinstance(e, A.Ident):
                return None
            bound = self._scope.lookup(e.name)
            if bound is None or not is_pointerish(bound[1]):
                return None
            return bound[0]

        if isinstance(cond, A.Ident):
            var = pointer_var(cond)
            if var is None:
                return None
            # `if (p)` takes the then-arm when p != NULL.
            return (var, None, negate)
        if isinstance(cond, A.Binary) and cond.op in ("==", "!="):
            equal = (cond.op == "==") != negate
            lhs, rhs = pointer_var(cond.left), pointer_var(cond.right)
            null_left = isinstance(cond.left, (A.NullLit,)) or \
                (isinstance(cond.left, A.IntLit) and cond.left.value == 0)
            null_right = isinstance(cond.right, (A.NullLit,)) or \
                (isinstance(cond.right, A.IntLit) and cond.right.value == 0)
            if lhs is not None and null_right:
                return (lhs, None, equal)
            if rhs is not None and null_left:
                return (rhs, None, equal)
            if lhs is not None and rhs is not None:
                return (lhs, rhs, equal)
        return None

    def _emit_assume(self, assumes, taken: bool) -> None:
        """Emit the path condition for the taken/not-taken arm."""
        if assumes is None:
            return
        from ..ir import Assume
        lhs, rhs, equal = assumes
        self._em.emit(Assume(lhs, rhs, equal if taken else not equal))

    def _lower_local_decl(self, decl: A.Declarator) -> None:
        if isinstance(decl.type, FuncType):
            self.func_types.setdefault(decl.name, decl.type)
            self.global_scope.define(decl.name, Var(decl.name), decl.type)
            return
        name = decl.name
        bound = self._scope.lookup(name)
        if bound is not None and bound[0].function == self._em.name:
            # Block-scoped shadowing of another local: rename so the
            # inner variable gets its own cell (the Var namespace is flat
            # per function).  Shadowing a *global* needs no rename — the
            # local lives in the function's own namespace already.
            self._temp_counter += 1
            name = f"{decl.name}${self._temp_counter}"
        var = self._local(name)
        self._scope.define(decl.name, var, decl.type)
        if isinstance(decl.type, StructType):
            for path, _t in self.structs.flatten(decl.type, name):
                self._local(path)
        else:
            self._shadow_map(var, decl.type)
        if decl.init is not None:
            self._lower_init(var, decl.type, decl.init, name)

    def _lower_init(self, var: Var, ctype: CType, init: A.Expr,
                    name: str) -> None:
        if isinstance(ctype, StructType):
            leaves = self.structs.flatten(ctype, name)
            parts = init.parts if isinstance(init, A.Comma) else [init]
            for (path, ftype), part in zip(leaves, parts):
                leaf_var = (Var(path, var.function)
                            if var.function else Var(path))
                self._assign_var(leaf_var, ftype, self._lower_expr(part))
            return
        if isinstance(init, A.Comma) and isinstance(ctype, ArrayType):
            for part in init.parts:
                self._assign_var(var, element_type(ctype),
                                 self._lower_expr(part))
            return
        self._assign_var(var, ctype, self._lower_expr(init))

    # ------------------------------------------------------------------
    # assignment plumbing
    # ------------------------------------------------------------------
    def _assign_var(self, var: Var, ctype: CType, val: Val) -> None:
        """Assign ``val`` into direct variable ``var`` of type ``ctype``,
        mirroring shadow fields when both sides carry them."""
        em = self._em
        shadows = self._shadow_map(var, ctype)
        if val.kind == "null":
            em.emit_null(var) if hasattr(em, "emit_null") else em.null(var)
            for sv in shadows.values():
                em.null(sv)
            return
        if val.kind == "addr":
            if isinstance(val.obj, (Var, AllocSite)):
                em.emit(self._addrof(var, val.obj))
            if isinstance(val.obj, AllocSite) and shadows \
                    and not val.shadow_objs:
                # A fresh heap object assigned to a struct pointer: give
                # each flattened field its own allocation-site cell.
                val.shadow_objs = {
                    path: AllocSite(f"{val.obj.label}__{path}")
                    for path in shadows}
            for path, sv in shadows.items():
                sobj = val.shadow_objs.get(path)
                if sobj is not None:
                    em.emit(self._addrof(sv, sobj))
            return
        if val.kind == "var" and val.var is not None:
            em.emit(Copy(var, val.var))
            for path, sv in shadows.items():
                src = val.shadows.get(path)
                if src is not None:
                    em.emit(Copy(sv, src))
                else:
                    self._note_shadow_loss(var, path)
            return
        # Opaque value: copy from each variable it was computed from.
        for dep in val.deps:
            em.emit(Copy(var, dep))

    def _note_shadow_loss(self, var: Var, path: str) -> None:
        self.warnings.append(
            f"field tracking lost for {var}.{path} (value came through a "
            "non-struct pointer)")

    @staticmethod
    def _addrof(lhs: Var, obj):
        from ..ir import AddrOf
        return AddrOf(lhs, obj)

    def _assign(self, lv: LValue, val: Val) -> None:
        em = self._em
        if lv.kind == "var":
            self._assign_var(lv.var, lv.ctype, val)
            self._mirror_summary(lv, val)
            return
        # deref store: *ptr = value (value must be in a var or NULL).
        src = self._materialize(val, lv.ctype)
        if src is None:
            return
        em.emit(self._store(lv.ptr, src.var))
        for path, sptr in lv.shadows.items():
            s_src = src.shadows.get(path)
            if s_src is not None:
                em.emit(self._store(sptr, s_src))
        self._mirror_summary(lv, src)

    def _mirror_summary(self, lv: LValue, val: Val) -> None:
        """Mirror a struct-field write into the field's type-based
        summary cell, so shadow-less readers observe it."""
        if lv.summary_key is None or not is_pointerish(lv.ctype):
            return
        # Skip when the write already targets the summary cell itself.
        tag, leaf = lv.summary_key
        if lv.ptr is not None and lv.ptr.name == f"$fld${tag}${leaf}":
            return
        src = self._materialize(val, lv.ctype)
        if src is None or src.var is None:
            return
        self._em.emit(self._store(self._summary_ptr(tag, leaf), src.var))

    @staticmethod
    def _store(ptr: Var, rhs: Var):
        from ..ir import Store
        return Store(ptr, rhs)

    def _materialize(self, val: Val, ctype: CType) -> Optional[Val]:
        """Force a value into a variable (for stores, calls, arithmetic)."""
        if val.kind == "var" and val.var is not None:
            return val
        tmp = self._temp(ctype)
        tmp_val = Val(kind="var", ctype=ctype, var=tmp,
                      shadows=self._shadow_map(tmp, ctype))
        self._assign_var(tmp, ctype, val)
        return tmp_val

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _lower_expr(self, expr: A.Expr) -> Val:
        em = self._em
        if getattr(expr, "line", 0):
            em.default_span = Span(expr.line, getattr(expr, "col", 0))
        if isinstance(expr, A.IntLit):
            if expr.value == 0:
                return Val(kind="null", ctype=INT)
            return Val(kind="opaque", ctype=INT)
        if isinstance(expr, (A.StrLit, A.SizeOf)):
            return Val(kind="opaque", ctype=INT)
        if isinstance(expr, A.NullLit):
            return Val(kind="null", ctype=PointerType(VOID))
        if isinstance(expr, A.Ident):
            return self._lower_ident(expr)
        if isinstance(expr, A.Cast):
            inner = self._lower_expr(expr.operand)
            # Casts are transparent for values; retarget the static type.
            inner.ctype = expr.type
            return inner
        if isinstance(expr, A.Comma):
            out = Val(kind="opaque", ctype=INT)
            for part in expr.parts:
                out = self._lower_expr(part)
            return out
        if isinstance(expr, A.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, A.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, A.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, A.Ternary):
            return self._lower_ternary(expr)
        if isinstance(expr, A.Call):
            return self._lower_call(expr)
        if isinstance(expr, (A.Member, A.Index)):
            lv = self._lower_lvalue(expr)
            return self._read_lvalue(lv)
        raise NormalizationError(f"unhandled expression {type(expr).__name__}")

    def _lower_ident(self, expr: A.Ident) -> Val:
        bound = self._scope.lookup(expr.name)
        if bound is None:
            if expr.name in self.func_types:
                return Val(kind="addr", ctype=self.func_types[expr.name],
                           obj=Var(expr.name))
            # Undeclared identifier: tolerate (old-C style), as an int.
            self.warnings.append(f"undeclared identifier {expr.name!r}")
            var = self.builder.global_var(expr.name)
            self.global_scope.define(expr.name, var, INT)
            return Val(kind="var", ctype=INT, var=var)
        var, ctype = bound
        if isinstance(ctype, FuncType):
            # Function designator decays to its address.
            return Val(kind="addr", ctype=ctype, obj=Var(expr.name))
        if isinstance(ctype, ArrayType):
            # Arrays decay to a pointer to their (collapsed) element.
            return Val(kind="addr", ctype=PointerType(element_type(ctype)),
                       obj=var)
        return Val(kind="var", ctype=ctype, var=var,
                   shadows=self._shadow_map(var, ctype))

    def _lower_assign(self, expr: A.Assign) -> Val:
        if expr.op != "=":
            # Compound assignment: evaluate both sides; pointer identity
            # is unchanged under the naive arithmetic model.
            lv = self._lower_lvalue(expr.lhs)
            self._lower_expr(expr.rhs)
            return self._read_lvalue(lv)
        val = self._lower_expr(expr.rhs)
        lv = self._lower_lvalue(expr.lhs)
        self._assign(lv, val)
        return val if val.kind != "opaque" else self._read_lvalue(lv)

    def _lower_unary(self, expr: A.Unary) -> Val:
        if expr.op == "*":
            lv = self._lower_lvalue(expr)
            return self._read_lvalue(lv)
        if expr.op == "&":
            return self._lower_addressof(expr.operand)
        if expr.op in ("++", "--", "p++", "p--"):
            lv = self._lower_lvalue(expr.operand)
            # Pointer stepping keeps the same abstract object.
            return self._read_lvalue(lv)
        # Arithmetic/logical unary: evaluate for effects, value is opaque.
        inner = self._lower_expr(expr.operand)
        return Val(kind="opaque", ctype=INT, deps=self._deps_of(inner))

    def _lower_addressof(self, operand: A.Expr) -> Val:
        if isinstance(operand, A.Ident):
            bound = self._scope.lookup(operand.name)
            if bound is None and operand.name in self.func_types:
                return Val(kind="addr", ctype=PointerType(
                    self.func_types[operand.name]), obj=Var(operand.name))
            if bound is None:
                raise NormalizationError(
                    f"&{operand.name}: undeclared identifier")
            var, ctype = bound
            if isinstance(ctype, FuncType):
                return Val(kind="addr", ctype=PointerType(ctype),
                           obj=Var(operand.name))
            if isinstance(ctype, ArrayType):
                return Val(kind="addr",
                           ctype=PointerType(element_type(ctype)), obj=var)
            out = Val(kind="addr", ctype=PointerType(ctype), obj=var)
            if isinstance(ctype, StructType):
                prefix = var.name
                for path, _t in self.structs.flatten(ctype, prefix):
                    rel = path[len(prefix) + 2:]
                    out.shadow_objs[rel] = (Var(path, var.function)
                                            if var.function else Var(path))
            return out
        if isinstance(operand, A.Unary) and operand.op == "*":
            # &*e == e
            return self._lower_expr(operand.operand)
        if isinstance(operand, (A.Member, A.Index)):
            lv = self._lower_lvalue(operand)
            if lv.kind == "var":
                out = Val(kind="addr", ctype=PointerType(lv.ctype),
                          obj=lv.var)
                if isinstance(lv.ctype, StructType):
                    prefix = lv.var.name
                    for path, _t in self.structs.flatten(lv.ctype, prefix):
                        rel = path[len(prefix) + 2:]
                        out.shadow_objs[rel] = Var(path, lv.var.function)
                return out
            # &(*p ...) — the pointer itself is the address.
            out = Val(kind="var", ctype=PointerType(lv.ctype), var=lv.ptr,
                      shadows=dict(lv.shadows))
            return out
        raise NormalizationError(
            f"cannot take the address of {type(operand).__name__}")

    def _lower_binary(self, expr: A.Binary) -> Val:
        left = self._lower_expr(expr.left)
        right = self._lower_expr(expr.right)
        if expr.op in ("+", "-"):
            ptr_vals = [v for v in (left, right)
                        if v.kind in ("var", "addr") and
                        is_pointerish(v.ctype)]
            if ptr_vals:
                # Naive pointer arithmetic: result aliases all pointer
                # operands (paper Remark 1).
                ctype = ptr_vals[0].ctype
                tmp = self._temp(ctype)
                tmp_shadows = self._shadow_map(tmp, ctype)
                for v in ptr_vals:
                    self._assign_var(tmp, ctype, v)
                return Val(kind="var", ctype=ctype, var=tmp,
                           shadows=tmp_shadows)
        return Val(kind="opaque", ctype=INT,
                   deps=self._deps_of(left) + self._deps_of(right))

    @staticmethod
    def _deps_of(val: Val) -> List[Var]:
        if val.kind == "var" and val.var is not None:
            return [val.var]
        return list(val.deps)

    def _lower_ternary(self, expr: A.Ternary) -> Val:
        em = self._em
        self._lower_expr(expr.cond)
        cond_node = em.skip("ternary")
        # Arm 1
        em._frontier = [cond_node]
        then_val = self._lower_expr(expr.then)
        ctype = then_val.ctype if then_val.kind != "opaque" else INT
        result: Optional[Var] = None
        if then_val.kind != "opaque" or is_pointerish(ctype):
            result = self._temp(then_val.ctype if then_val.kind != "opaque"
                                else PointerType(VOID))
            ctype = then_val.ctype
            self._assign_var(result, ctype, then_val)
        frontier = list(em._frontier)
        # Arm 2
        em._frontier = [cond_node]
        other_val = self._lower_expr(expr.otherwise)
        if result is None and other_val.kind != "opaque":
            result = self._temp(other_val.ctype)
            ctype = other_val.ctype
        if result is not None:
            self._assign_var(result, ctype, other_val)
        em._frontier = frontier + em._frontier
        if result is None:
            return Val(kind="opaque", ctype=INT)
        return Val(kind="var", ctype=ctype, var=result,
                   shadows=self._shadow_map(result, ctype))

    # ------------------------------------------------------------------
    # lvalues
    # ------------------------------------------------------------------
    def _lower_lvalue(self, expr: A.Expr) -> LValue:
        if isinstance(expr, A.Ident):
            bound = self._scope.lookup(expr.name)
            if bound is None:
                self.warnings.append(f"undeclared identifier {expr.name!r}")
                var = self.builder.global_var(expr.name)
                self.global_scope.define(expr.name, var, INT)
                return LValue(kind="var", ctype=INT, var=var)
            var, ctype = bound
            return LValue(kind="var", ctype=ctype, var=var,
                          shadows=self._shadow_map(var, ctype))
        if isinstance(expr, A.Unary) and expr.op == "*":
            base = self._lower_expr(expr.operand)
            mat = self._materialize(base, base.ctype)
            if mat is None or mat.var is None:
                raise NormalizationError("dereference of a non-value")
            try:
                target_t = pointee(base.ctype)
            except NormalizationError:
                target_t = INT
            return LValue(kind="deref", ctype=target_t, ptr=mat.var,
                          shadows=dict(mat.shadows))
        if isinstance(expr, A.Member):
            return self._lower_member_lvalue(expr)
        if isinstance(expr, A.Index):
            # a[i]: collapse the array to one element; through a pointer
            # this is just *p on the (aliased) pointer value.
            base = self._lower_expr(expr.base)
            self._lower_expr(expr.index)
            if base.kind == "addr" and isinstance(base.obj, Var):
                # direct array variable: the element is the variable itself
                elem_t = pointee(base.ctype)
                lv = LValue(kind="var", ctype=elem_t, var=base.obj)
                lv.shadows = {p: Var(f"{base.obj.name}__{p}",
                                     base.obj.function)
                              for p, _ in shadow_leaves(elem_t, self.structs)}
                return lv
            mat = self._materialize(base, base.ctype)
            if mat is None or mat.var is None:
                raise NormalizationError("index of a non-value")
            try:
                elem_t = pointee(base.ctype)
            except NormalizationError:
                elem_t = INT
            return LValue(kind="deref", ctype=elem_t, ptr=mat.var,
                          shadows=dict(mat.shadows))
        if isinstance(expr, A.Cast):
            lv = self._lower_lvalue(expr.operand)
            lv.ctype = expr.type
            return lv
        raise NormalizationError(
            f"{type(expr).__name__} is not assignable")

    def _lower_member_lvalue(self, expr: A.Member) -> LValue:
        """``base.f`` / ``base->f``, resolving through flattened structs
        and shadow pointers.  Nested paths (``p->a.b``) accumulate."""
        if expr.arrow:
            # a->f: whatever `a` evaluates to is the pointer; this covers
            # o.in->f, (*pp)->f, f(x)->g and friends uniformly.
            return self._field_through_pointer(
                self._lower_expr(expr.base), [expr.field])
        path: List[str] = [expr.field]
        node: A.Expr = expr.base
        while isinstance(node, A.Member) and not node.arrow:
            path.insert(0, node.field)
            node = node.base
        # node is now the innermost base; normalize (*p).f to p->f.
        deref = False
        if isinstance(node, A.Unary) and node.op == "*":
            deref = True
            node = node.operand
        # Re-check arrow position: for p->a.b the arrow is on the *inner*
        # member; handle by recursing when the base itself is an arrow
        # member (struct-valued through pointer shadows).
        if isinstance(node, A.Member) and node.arrow:
            inner = self._lower_member_lvalue(node)
            leaf = "__".join(path)
            if inner.kind == "var" and isinstance(inner.ctype, StructType):
                var = Var(f"{inner.var.name}__{leaf}", inner.var.function)
                ftype = self._leaf_type(inner.ctype, path)
                return LValue(kind="var", ctype=ftype, var=var,
                              shadows=self._shadow_map(var, ftype),
                              summary_key=(inner.ctype.tag, leaf))
            if inner.kind == "deref" and isinstance(inner.ctype, StructType):
                sptr = inner.shadows.get(leaf)
                ftype = self._leaf_type(inner.ctype, path)
                if sptr is None:
                    return self._collapsed_field(inner.ctype.tag, ftype,
                                                 leaf)
                return LValue(kind="deref", ctype=ftype, ptr=sptr,
                              shadows=self._nested_shadows(inner.shadows,
                                                           leaf),
                              summary_key=(inner.ctype.tag, leaf))
            # The inner lvalue holds a pointer (a->b->c chains): read it
            # and resolve the outer field through that value.
            inner_val = self._read_lvalue(inner)
            return self._field_through_pointer(inner_val, path)
        if deref:
            base_val = self._lower_expr(node)
            return self._field_through_pointer(base_val, path)
        # Direct struct variable access.
        if isinstance(node, A.Ident):
            bound = self._scope.lookup(node.name)
            if bound is None:
                raise NormalizationError(
                    f"undeclared struct variable {node.name!r}")
            var, ctype = bound
            if not isinstance(ctype, StructType):
                if isinstance(ctype, PointerType):
                    # s.f where s is actually a pointer (tolerate `.` for
                    # `->`, seen in sloppy code).
                    return self._field_through_pointer(
                        self._lower_ident(node), path)
                raise NormalizationError(
                    f"{node.name} is not a struct")
            leaf = "__".join([var.name] + path)
            ftype = self._leaf_type(ctype, path)
            leaf_var = Var(leaf, var.function)
            return LValue(kind="var", ctype=ftype, var=leaf_var,
                          shadows=self._shadow_map(leaf_var, ftype),
                          summary_key=(ctype.tag, "__".join(path)))
        if isinstance(node, A.Index):
            lv = self._lower_lvalue(node)
            if lv.kind == "var" and isinstance(lv.ctype, StructType):
                leaf = "__".join([lv.var.name] + path)
                ftype = self._leaf_type(lv.ctype, path)
                leaf_var = Var(leaf, lv.var.function)
                return LValue(kind="var", ctype=ftype, var=leaf_var,
                              shadows=self._shadow_map(leaf_var, ftype),
                              summary_key=(lv.ctype.tag, "__".join(path)))
            if lv.kind == "deref" and isinstance(lv.ctype, StructType):
                leafrel = "__".join(path)
                ftype = self._leaf_type(lv.ctype, path)
                sptr = lv.shadows.get(leafrel)
                if sptr is None:
                    return self._collapsed_field(lv.ctype.tag, ftype,
                                                 leafrel)
                return LValue(kind="deref", ctype=ftype, ptr=sptr,
                              shadows=self._nested_shadows(lv.shadows,
                                                           leafrel),
                              summary_key=(lv.ctype.tag, leafrel))
        raise NormalizationError(
            f"unsupported member base {type(node).__name__}")

    def _leaf_type(self, struct_t: StructType, path: Sequence[str]) -> CType:
        t: CType = struct_t
        for fname in path:
            if not isinstance(t, StructType):
                raise NormalizationError(
                    f"field path {'.'.join(path)} does not resolve")
            t = self.structs.field_type(t, fname)
        if isinstance(t, ArrayType):
            t = element_type(t)
        return t

    def _field_through_pointer(self, base_val: Val, path: List[str]
                               ) -> LValue:
        leaf = "__".join(path)
        info = base_struct(base_val.ctype, self.structs) \
            if base_val.ctype else None
        ftype = (self._leaf_type(info[1], path) if info else INT)
        key = (info[1].tag, leaf) if info else None
        if base_val.kind == "addr" and isinstance(base_val.obj, Var) \
                and info and info[0] == 1:
            # (&s)->f: direct access to the flattened field.
            fvar = Var(f"{base_val.obj.name}__{leaf}", base_val.obj.function)
            return LValue(kind="var", ctype=ftype, var=fvar,
                          shadows=self._shadow_map(fvar, ftype),
                          summary_key=key)
        mat = self._materialize(base_val, base_val.ctype)
        if mat is None or mat.var is None:
            raise NormalizationError("member access on a non-value")
        if isinstance(ftype, StructType):
            # Struct-valued field through a pointer: no single cell; its
            # own fields resolve through the nested shadows.
            return LValue(kind="deref", ctype=ftype, ptr=mat.var,
                          shadows=self._nested_shadows(mat.shadows, leaf))
        if key is None:
            self._note_shadow_loss(mat.var, leaf)
            return LValue(kind="deref", ctype=ftype, ptr=mat.var)
        sptr = mat.shadows.get(leaf)
        if sptr is None:
            return self._collapsed_field(key[0], ftype, leaf)
        return LValue(kind="deref", ctype=ftype, ptr=sptr,
                      shadows=self._nested_shadows(mat.shadows, leaf),
                      summary_key=key)

    def _nested_shadows(self, shadows: Dict[str, Var], leaf: str
                        ) -> Dict[str, Var]:
        """Shadows of a field lvalue: deeper paths under ``leaf``."""
        prefix = leaf + "__"
        return {p[len(prefix):]: v for p, v in shadows.items()
                if p.startswith(prefix)}

    def _summary_ptr(self, tag: str, leaf: str) -> Var:
        """A global pointer to the type-based summary cell for field
        ``leaf`` of ``struct tag`` (one abstract cell per field, shared
        by every instance — the field-based abstraction).  The pointer
        is (re-)aimed at the cell at each use; AddrOf is idempotent for
        every analysis."""
        name = f"$fld${tag}${leaf}"
        ptr = self.builder.global_var(name)
        self._em.emit(self._addrof(ptr, AllocSite(f"field:{tag}.{leaf}")))
        return ptr

    def _collapsed_field(self, tag: str, ftype: CType, leaf: str) -> LValue:
        """Field access whose shadows were lost: fall back to the
        type-based summary cell (sound w.r.t. the IR semantics: all
        precise writes mirror into it)."""
        return LValue(kind="deref", ctype=ftype,
                      ptr=self._summary_ptr(tag, leaf),
                      summary_key=(tag, leaf))

    def _read_lvalue(self, lv: LValue) -> Val:
        em = self._em
        if lv.kind == "var":
            if isinstance(lv.ctype, StructType):
                # Struct value read: used only as assignment source.
                return Val(kind="var", ctype=lv.ctype, var=lv.var,
                           shadows=lv.shadows)
            return Val(kind="var", ctype=lv.ctype, var=lv.var,
                       shadows=self._shadow_map(lv.var, lv.ctype))
        # deref read: t = *ptr (mirrored on shadows).  Emitted for
        # non-pointer cells too: the paper's model treats every cell
        # uniformly (Figure 3 computes partitions over int variables).
        from ..ir import Load
        tmp = self._temp(lv.ctype)
        em.emit(Load(tmp, lv.ptr))
        shadows: Dict[str, Var] = {}
        for path, _t in shadow_leaves(lv.ctype, self.structs):
            sptr = lv.shadows.get(path)
            if sptr is None:
                # No shadow source for this field: leave it out so later
                # accesses fall back to the type-based summary cells
                # rather than reading a dead local.
                continue
            stmp = self._shadow_var(tmp, path)
            em.emit(Load(stmp, sptr))
            shadows[path] = stmp
        return Val(kind="var", ctype=lv.ctype, var=tmp, shadows=shadows)

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def _lower_call(self, expr: A.Call) -> Val:
        em = self._em
        fn = expr.fn
        while isinstance(fn, A.Cast):
            fn = fn.operand
        # Allocators / deallocators.
        if isinstance(fn, A.Ident) and fn.name in ALLOCATORS:
            for a in expr.args:
                self._lower_expr(a)
            label = self._fresh_label(expr.line)
            site = AllocSite(label)
            out = Val(kind="addr", ctype=PointerType(VOID), obj=site)
            return out
        if isinstance(fn, A.Ident) and fn.name in DEALLOCATORS:
            for a in expr.args:
                val = self._lower_expr(a)
                if val.kind == "var" and val.var is not None:
                    em.free(val.var)
                    for sv in val.shadows.values():
                        em.free(sv)
            return Val(kind="opaque", ctype=VOID)
        # Direct call to a defined or declared function.
        if isinstance(fn, A.Ident):
            bound = self._scope.lookup(fn.name)
            is_fp_var = bound is not None and not isinstance(bound[1], FuncType)
            if not is_fp_var:
                return self._lower_direct_call(fn.name, expr)
        # Indirect call through a pointer expression.
        return self._lower_indirect_call(fn, expr)

    def _lower_direct_call(self, name: str, expr: A.Call) -> Val:
        em = self._em
        ftype = self.func_types.get(name)
        defined = any(f.name == name for f in self.unit.functions)
        arg_vals = [self._lower_expr(a) for a in expr.args]
        if not defined:
            # External function: no body; pointer arguments may be
            # captured but we follow the paper in ignoring library
            # internals (the fresh return temporary aliases nothing).
            # The call itself is kept as an ExternCall statement with one
            # materialized variable per argument, so clients that assign
            # meaning to library calls (the taint engine's sources,
            # sinks and sanitizers) see it with positional arguments.
            ret_t = ftype.ret if ftype else INT
            arg_vars: List[Var] = []
            for val in arg_vals:
                mat = self._materialize(val, val.ctype)
                if mat is None or mat.var is None:
                    mat_var = self._temp(val.ctype)
                else:
                    mat_var = mat.var
                arg_vars.append(mat_var)
            tmp = self._temp(ret_t)
            em.emit(ExternCall(name, tuple(arg_vars), tmp))
            if is_pointerish(ret_t):
                return Val(kind="var", ctype=ret_t, var=tmp,
                           shadows=self._shadow_map(tmp, ret_t))
            # Scalar/void returns stay in the temporary too, so scalar
            # dataflow out of the call (e.g. `x = input()`) is a Copy.
            return Val(kind="var", ctype=ret_t, var=tmp)
        param_types = list(ftype.params) if ftype else []
        for i, val in enumerate(arg_vals):
            ptype = param_types[i] if i < len(param_types) else val.ctype
            conduit = param_var(name, i)
            self._assign_conduit(conduit, ptype, val)
        em.emit(CallStmt(callee=name))
        ret_t = ftype.ret if ftype else INT
        if is_pointerish(ret_t) or isinstance(ret_t, StructType):
            tmp = self._temp(ret_t)
            rv = retval_var(name)
            em.emit(Copy(tmp, rv))
            shadows: Dict[str, Var] = {}
            for path, _t in shadow_leaves(ret_t, self.structs):
                stmp = self._shadow_var(tmp, path)
                em.emit(Copy(stmp, Var(f"{rv.name}__{path}", name)))
                shadows[path] = stmp
            return Val(kind="var", ctype=ret_t, var=tmp, shadows=shadows)
        return Val(kind="opaque", ctype=ret_t)

    def _assign_conduit(self, conduit: Var, ctype: CType, val: Val) -> None:
        """Like :meth:`_assign_var` but the conduit belongs to the callee
        (shadow vars are named in the callee's namespace)."""
        em = self._em
        if val.kind == "null":
            em.emit(self._nullassign(conduit))
            return
        if val.kind == "addr":
            if isinstance(val.obj, (Var, AllocSite)):
                em.emit(self._addrof(conduit, val.obj))
            shadow_paths = [p for p, _t in shadow_leaves(ctype, self.structs)]
            if isinstance(val.obj, AllocSite) and shadow_paths \
                    and not val.shadow_objs:
                val.shadow_objs = {
                    path: AllocSite(f"{val.obj.label}__{path}")
                    for path in shadow_paths}
            for path, sobj in val.shadow_objs.items():
                em.emit(self._addrof(
                    Var(f"{conduit.name}__{path}", conduit.function), sobj))
            return
        if val.kind == "var" and val.var is not None:
            em.emit(Copy(conduit, val.var))
            for path, src in val.shadows.items():
                em.emit(Copy(Var(f"{conduit.name}__{path}",
                                 conduit.function), src))

    @staticmethod
    def _nullassign(lhs: Var):
        from ..ir import NullAssign
        return NullAssign(lhs)

    def _lower_indirect_call(self, fn: A.Expr, expr: A.Call) -> Val:
        em = self._em
        # Strip a leading * (calling through (*fp)(...) or fp(...)).
        while isinstance(fn, A.Unary) and fn.op == "*":
            fn = fn.operand
        fp_val = self._materialize(self._lower_expr(fn),
                                   PointerType(FuncType(INT)))
        if fp_val is None or fp_val.var is None:
            raise NormalizationError("call through a non-pointer value")
        staged: List[Var] = []
        staged_shadows: List[Dict[str, Var]] = []
        for i, a in enumerate(expr.args):
            val = self._lower_expr(a)
            ctype = val.ctype if val.kind != "opaque" else INT
            conduit = self._temp(ctype)
            self._assign_var(conduit, ctype, val)
            staged.append(conduit)
            staged_shadows.append(self._shadow_map(conduit, ctype))
        node = em.emit(CallStmt(fp=fp_val.var))
        # Determine the return type from the pointer's static type.
        ret_t: CType = INT
        t = fp_val.ctype
        while isinstance(t, PointerType):
            t = t.base
        if isinstance(t, FuncType):
            ret_t = t.ret
        ret_var: Optional[Var] = None
        if is_pointerish(ret_t):
            ret_var = self._temp(ret_t)
        self.builder._indirect_sites.append(
            (em.name, node, tuple(staged), ret_var,
             tuple(staged_shadows)))
        if ret_var is not None:
            return Val(kind="var", ctype=ret_t, var=ret_var,
                       shadows=self._shadow_map(ret_var, ret_t))
        return Val(kind="opaque", ctype=ret_t)


def normalize(unit: A.TranslationUnit, structs: StructTable,
              entry: str = "main") -> Program:
    """Lower a parsed translation unit to a :class:`Program`."""
    return Normalizer(unit, structs, entry=entry).run()

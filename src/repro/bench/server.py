"""Query-daemon benchmark: cold vs. warm latency and edit invalidation.

The server's pitch is that the paper's cluster decomposition makes alias
queries *servable*: parse and bootstrap once, then answer each query
from resident per-cluster state, and after an edit re-analyze only the
clusters whose payload fingerprints changed.  This harness measures all
three claims against a synthetic multi-web program (each web is one
function, so a one-function edit should touch a small cluster fraction):

* cold: first query on a fresh daemon (parse + bootstrap + analyze);
* warm: repeated queries over resident state, client-measured over a
  real Unix socket;
* edit: one-function edit -> ``invalidate`` -> re-analyzed cluster
  fraction and post-edit warm latency.

Results go to ``BENCH_server.json`` so CI can archive them next to
``BENCH_parallel.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from .metrics import format_table
from .synth import SynthConfig, generate_source


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[idx]


def _latency_summary(seconds: List[float]) -> Dict[str, Any]:
    ordered = sorted(seconds)
    return {
        "count": len(ordered),
        "mean_ms": 1000.0 * sum(ordered) / len(ordered) if ordered else 0.0,
        "p50_ms": 1000.0 * _percentile(ordered, 0.50),
        "p95_ms": 1000.0 * _percentile(ordered, 0.95),
    }


def _edit_one_function(source: str) -> str:
    """Rebind one web pointer to a same-web target: a one-function edit
    that changes that web's sliced sub-program and no other's."""
    match = re.search(r"(w(\d+)p1) = w\2p0;", source)
    if match is None:
        raise RuntimeError("synthetic source has no editable web")
    return source.replace(match.group(0),
                          f"{match.group(1)} = &w{match.group(2)}t0;", 1)


def run_server_bench(pointers: int = 120, seed: int = 2008,
                     queries: int = 50,
                     verbose: bool = False) -> Dict[str, Any]:
    """Measure one daemon lifecycle; returns a JSON-safe result dict."""
    from ..server import AliasServer, ServerConfig
    from ..server.client import ServerClient

    source = generate_source(SynthConfig(name="server-bench",
                                         pointers=pointers, seed=seed))
    query_names = sorted(set(re.findall(r"\bw\d+p\d+\b", source)))
    with tempfile.TemporaryDirectory(prefix="repro-bench-server-") as tmp:
        path = os.path.join(tmp, "bench.c")
        with open(path, "w") as handle:
            handle.write(source)
        sock = os.path.join(tmp, "repro.sock")
        server = AliasServer(ServerConfig(), socket_path=sock)
        ready = threading.Event()
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"install_signal_handlers": False, "ready": ready})
        thread.start()
        ready.wait(30.0)
        try:
            with ServerClient(socket_path=sock) as client:
                # Cold: the first query pays parse + bootstrap + analyze.
                t0 = time.perf_counter()
                first = client.points_to(path, query_names[0])
                cold_seconds = time.perf_counter() - t0
                n_clusters = first["clusters"]["total"]
                if verbose:
                    print(f"  cold query: {cold_seconds * 1000:.1f}ms "
                          f"({n_clusters} clusters)", file=sys.stderr)

                def measure(count: int) -> List[float]:
                    out = []
                    for i in range(count):
                        name = query_names[i % len(query_names)]
                        t1 = time.perf_counter()
                        client.points_to(path, name)
                        out.append(time.perf_counter() - t1)
                    return out

                warm = _latency_summary(measure(queries))
                if verbose:
                    print(f"  warm queries: mean {warm['mean_ms']:.2f}ms, "
                          f"p95 {warm['p95_ms']:.2f}ms", file=sys.stderr)

                # One-function edit -> fingerprint-grained invalidation.
                with open(path, "w") as handle:
                    handle.write(_edit_one_function(source))
                t2 = time.perf_counter()
                refresh = client.invalidate(path)
                invalidate_seconds = time.perf_counter() - t2
                post = _latency_summary(measure(queries))
                if verbose:
                    print(f"  edit: re-analyzed {refresh['reanalyzed']}"
                          f"/{refresh['clusters']} clusters "
                          f"({refresh['reanalyzed_fraction']:.1%}) in "
                          f"{invalidate_seconds * 1000:.1f}ms",
                          file=sys.stderr)
                stats = client.stats()
                client.shutdown()
        finally:
            server.request_shutdown()
            thread.join(30.0)

    # Reference: what every query would cost without the daemon.
    from ..core import BootstrapAnalyzer, resolve_pointer
    from ..frontend import parse_program
    from ..ir import Loc

    program = parse_program(source, entry="main")
    t3 = time.perf_counter()
    result = BootstrapAnalyzer(program).run()
    p = resolve_pointer(program, query_names[0])
    loc = Loc(program.entry, program.cfg_of(program.entry).exit)
    result.points_to(p, loc)
    one_shot_seconds = time.perf_counter() - t3

    return {
        "pointers": len(program.pointers),
        "clusters": n_clusters,
        "queries": queries,
        "cold_seconds": cold_seconds,
        "warm": warm,
        "edit": {
            "reanalyzed": refresh["reanalyzed"],
            "reused": refresh["reused"],
            "clusters": refresh["clusters"],
            "reanalyzed_fraction": refresh["reanalyzed_fraction"],
            "invalidate_seconds": invalidate_seconds,
        },
        "post_edit_warm": post,
        "one_shot_seconds": one_shot_seconds,
        "warm_speedup_vs_one_shot": (
            one_shot_seconds / (warm["mean_ms"] / 1000.0)
            if warm["mean_ms"] else 0.0),
        "cluster_store": stats["clusters"],
    }


def render(data: Dict[str, Any]) -> str:
    rows = [
        ["cold (first query)", f"{data['cold_seconds'] * 1000:.1f}"],
        ["warm mean", f"{data['warm']['mean_ms']:.2f}"],
        ["warm p95", f"{data['warm']['p95_ms']:.2f}"],
        ["invalidate after edit",
         f"{data['edit']['invalidate_seconds'] * 1000:.1f}"],
        ["post-edit warm mean", f"{data['post_edit_warm']['mean_ms']:.2f}"],
        ["one-shot run (no daemon)", f"{data['one_shot_seconds'] * 1000:.1f}"],
    ]
    table = format_table(
        ["query", "latency (ms)"], rows,
        title=f"Query daemon ({data['pointers']} pointers, "
              f"{data['clusters']} clusters, {data['queries']} queries)")
    edit = data["edit"]
    return (table + "\n\n"
            f"one-function edit re-analyzed {edit['reanalyzed']}/"
            f"{edit['clusters']} clusters "
            f"({edit['reanalyzed_fraction']:.1%}); warm query is "
            f"{data['warm_speedup_vs_one_shot']:.0f}x faster than a "
            f"one-shot run")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure daemon query latency and edit invalidation")
    parser.add_argument("--pointers", type=int, default=120,
                        help="synthetic program size (default 120)")
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--queries", type=int, default=50,
                        help="warm queries per phase (default 50)")
    parser.add_argument("--out", default="BENCH_server.json",
                        help="output JSON path (default BENCH_server.json)")
    args = parser.parse_args(argv)
    data = run_server_bench(pointers=args.pointers, seed=args.seed,
                            queries=args.queries, verbose=True)
    with open(args.out, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render(data))
    print(f"\nwritten to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

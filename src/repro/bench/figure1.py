"""Figure 1 harness: cluster-size frequencies, Steensgaard vs Andersen.

The paper plots, for the Linux driver ``autofs``, the frequency of every
cluster size under Steensgaard partitioning (white squares) and Andersen
clustering (black squares), observing (i) both are dense at small sizes
and (ii) the maximum Steensgaard partition is far larger than the
maximum Andersen cluster.  This harness reproduces both series for any
corpus program and checks the two observations.

Run ``python -m repro.bench.figure1 --help`` for the CLI.
"""

from __future__ import annotations

import argparse
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.steensgaard import Steensgaard
from ..core.cascade import CascadeConfig, run_cascade
from ..ir import Program
from .corpus import build
from .metrics import ascii_histogram, format_csv
from .synth import SynthProgram


@dataclass
class Figure1Data:
    """Both series plus the headline observations."""

    program: str
    steensgaard: Dict[int, int]   # size -> frequency
    andersen: Dict[int, int]

    @property
    def steens_max(self) -> int:
        return max(self.steensgaard, default=0)

    @property
    def andersen_max(self) -> int:
        return max(self.andersen, default=0)

    def small_density(self, cutoff: int = 8) -> Tuple[float, float]:
        """Fraction of clusters at or below ``cutoff`` for each series
        (the paper's observation (i))."""
        def frac(hist: Dict[int, int]) -> float:
            total = sum(hist.values())
            if not total:
                return 0.0
            return sum(f for s, f in hist.items() if s <= cutoff) / total
        return frac(self.steensgaard), frac(self.andersen)


def compute_figure1(program: Program,
                    andersen_threshold: int = 6) -> Figure1Data:
    steens = Steensgaard(program).run()
    partitions = run_cascade(
        program, CascadeConfig(refine_with_andersen=False), steens=steens)
    clusters = run_cascade(
        program, CascadeConfig(andersen_threshold=andersen_threshold),
        steens=steens)
    s_hist = Counter(c.size for c in partitions.clusters)
    a_hist = Counter(c.size for c in clusters.clusters)
    return Figure1Data(program="<program>",
                       steensgaard=dict(s_hist), andersen=dict(a_hist))


def run_figure1(name: str = "autofs", scale: float = 0.25,
                andersen_threshold: Optional[int] = None) -> Figure1Data:
    sp: SynthProgram = build(name, scale=scale)
    threshold = andersen_threshold if andersen_threshold is not None \
        else max(6, int(60 * scale))
    data = compute_figure1(sp.program, andersen_threshold=threshold)
    data.program = name
    return data


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's Figure 1 series")
    parser.add_argument("--program", default="autofs")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--csv", action="store_true")
    args = parser.parse_args(argv)
    data = run_figure1(args.program, scale=args.scale)
    if args.csv:
        sizes = sorted(set(data.steensgaard) | set(data.andersen))
        rows = [[str(s), str(data.steensgaard.get(s, 0)),
                 str(data.andersen.get(s, 0))] for s in sizes]
        print(format_csv(["size", "steensgaard_freq", "andersen_freq"], rows))
    else:
        print(ascii_histogram(
            {"steensgaard": data.steensgaard, "andersen": data.andersen},
            title=f"Figure 1: cluster size frequencies ({data.program})"))
        sd, ad = data.small_density()
        print()
        print(f"max partition (Steensgaard): {data.steens_max}")
        print(f"max cluster (Andersen):      {data.andersen_max}")
        print(f"small-cluster density:       {sd:.0%} / {ad:.0%}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
